//! The single stuck-at fault model: enumeration, collapsing, injection.

use netlist::{Gate, Gate2, Netlist, SignalId};

/// Where a stuck-at fault sits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultSite {
    /// On the output (stem) of a signal — an input, inverter or gate.
    Stem(SignalId),
    /// On input pin `pin` (0 or 1) of the two-input gate driving `gate`.
    Pin {
        /// The gate whose input pin is faulty.
        gate: SignalId,
        /// Which of the two fanins (0 = first, 1 = second).
        pin: u8,
    },
}

/// A single stuck-at fault.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fault {
    /// Fault location.
    pub site: FaultSite,
    /// Stuck value: `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck_at: bool,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = u8::from(self.stuck_at);
        match self.site {
            FaultSite::Stem(s) => write!(f, "n{s} stuck-at-{v}"),
            FaultSite::Pin { gate, pin } => write!(f, "n{gate}.in{pin} stuck-at-{v}"),
        }
    }
}

/// Enumerates the uncollapsed fault universe of the live part of the
/// netlist: both polarities on every stem and on every gate input pin.
pub fn enumerate_faults(nl: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for &s in &nl.live_signals() {
        match nl.gate(s) {
            Gate::Const(_) => continue,
            Gate::Input(_) => {
                push_both(&mut faults, FaultSite::Stem(s));
            }
            Gate::Not(_) => {
                // The inverter's input pin faults are equivalent to its
                // stem faults; model the stem only (see `collapse`).
                push_both(&mut faults, FaultSite::Stem(s));
            }
            Gate::Binary(..) => {
                push_both(&mut faults, FaultSite::Stem(s));
                push_both(&mut faults, FaultSite::Pin { gate: s, pin: 0 });
                push_both(&mut faults, FaultSite::Pin { gate: s, pin: 1 });
            }
        }
    }
    faults
}

fn push_both(faults: &mut Vec<Fault>, site: FaultSite) {
    faults.push(Fault { site, stuck_at: false });
    faults.push(Fault { site, stuck_at: true });
}

/// Classical structural equivalence collapsing: drops each gate-input
/// fault that is equivalent to the gate's own stem fault
/// (AND/NAND input s-a-0, OR/NOR input s-a-1). XOR/XNOR pins never
/// collapse.
pub fn collapse(nl: &Netlist, faults: &[Fault]) -> Vec<Fault> {
    faults
        .iter()
        .copied()
        .filter(|f| {
            let FaultSite::Pin { gate, .. } = f.site else { return true };
            match nl.gate(gate) {
                Gate::Binary(op, _, _) => !matches!(
                    (op, f.stuck_at),
                    (Gate2::And, false)
                        | (Gate2::Nand, false)
                        | (Gate2::Or, true)
                        | (Gate2::Nor, true)
                ),
                _ => true,
            }
        })
        .collect()
}

/// Builds the faulty circuit: a copy of `nl` with `fault` injected.
///
/// The copy goes through the ordinary constructors, so constant
/// propagation may structurally simplify it — the *function* is exactly
/// the faulty function, which is all fault simulation and ATPG need.
pub fn inject(nl: &Netlist, fault: Fault) -> Netlist {
    let mut out = Netlist::new();
    let mut map: Vec<SignalId> = Vec::with_capacity(nl.nodes().len());
    for (idx, gate) in nl.nodes().iter().enumerate() {
        let s = idx as SignalId;
        let mut new_sig = match gate {
            Gate::Input(name) => out.add_input(name.clone()),
            Gate::Const(v) => out.constant(*v),
            Gate::Not(a) => {
                let fa = map[*a as usize];
                out.add_not(fa)
            }
            Gate::Binary(op, a, b) => {
                let mut fa = map[*a as usize];
                let mut fb = map[*b as usize];
                if let FaultSite::Pin { gate, pin } = fault.site {
                    if gate == s {
                        let c = out.constant(fault.stuck_at);
                        if pin == 0 {
                            fa = c;
                        } else {
                            fb = c;
                        }
                    }
                }
                out.add_gate(*op, fa, fb)
            }
        };
        if fault.site == FaultSite::Stem(s) {
            new_sig = out.constant(fault.stuck_at);
        }
        map.push(new_sig);
    }
    for (name, s) in nl.outputs() {
        out.add_output(name.clone(), map[*s as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_circuit() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(Gate2::And, a, b);
        nl.add_output("f", g);
        nl
    }

    #[test]
    fn enumeration_counts() {
        let nl = and_circuit();
        let faults = enumerate_faults(&nl);
        // 3 stems (a, b, g) × 2 + 2 pins × 2 = 10.
        assert_eq!(faults.len(), 10);
    }

    #[test]
    fn collapsing_drops_equivalent_pin_faults() {
        let nl = and_circuit();
        let faults = collapse(&nl, &enumerate_faults(&nl));
        // AND pin s-a-0 collapses into the stem; pin s-a-1 stays.
        assert_eq!(faults.len(), 8);
        assert!(faults
            .iter()
            .all(|f| !matches!((f.site, f.stuck_at), (FaultSite::Pin { .. }, false))));
    }

    #[test]
    fn xor_pins_do_not_collapse() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(Gate2::Xor, a, b);
        nl.add_output("f", g);
        let all = enumerate_faults(&nl);
        assert_eq!(collapse(&nl, &all).len(), all.len());
    }

    #[test]
    fn stem_injection_forces_constant() {
        let nl = and_circuit();
        let g = nl.outputs()[0].1;
        let faulty = inject(&nl, Fault { site: FaultSite::Stem(g), stuck_at: true });
        for vals in [[false, false], [true, false], [true, true]] {
            assert_eq!(faulty.eval_all(&vals), vec![true]);
        }
    }

    #[test]
    fn pin_injection_changes_function() {
        let nl = and_circuit();
        let g = nl.outputs()[0].1;
        // Pin 0 (input a) stuck-at-1 turns AND(a, b) into b.
        let faulty =
            inject(&nl, Fault { site: FaultSite::Pin { gate: g, pin: 0 }, stuck_at: true });
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(faulty.eval_all(&[a, b]), vec![b]);
        }
    }

    #[test]
    fn input_stem_fault() {
        let nl = and_circuit();
        let a = nl.inputs()[0];
        let faulty = inject(&nl, Fault { site: FaultSite::Stem(a), stuck_at: false });
        assert_eq!(faulty.eval_all(&[true, true]), vec![false]);
    }

    #[test]
    fn display_formats() {
        let f = Fault { site: FaultSite::Stem(3), stuck_at: true };
        assert_eq!(f.to_string(), "n3 stuck-at-1");
        let f = Fault { site: FaultSite::Pin { gate: 4, pin: 1 }, stuck_at: false };
        assert_eq!(f.to_string(), "n4.in1 stuck-at-0");
    }
}
