//! Single stuck-at fault testing for two-input gate netlists.
//!
//! Theorem 5 of the paper claims that netlists produced by bi-decomposition
//! with the Fig. 6 grouping are *completely testable* for single stuck-at
//! faults (no redundant internal signals). This crate provides the
//! machinery to validate that claim:
//!
//! * a structural fault model with classical equivalence collapsing
//!   ([`enumerate_faults`], [`collapse`]);
//! * fault injection ([`inject`]) producing the faulty circuit;
//! * 64-way parallel-pattern single-fault fault simulation
//!   ([`fault_coverage`], [`detects`]) with an instrumented variant
//!   reporting faults/sec and patterns/sec throughput
//!   ([`fault_coverage_report`]);
//! * exact, BDD-based test generation and redundancy identification
//!   ([`generate_tests`]): a fault is redundant iff the good and faulty
//!   circuits are equivalent, decided by BDD comparison.
//!
//! ```
//! use netlist::{Netlist, Gate2};
//!
//! let mut nl = Netlist::new();
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_gate(Gate2::And, a, b);
//! nl.add_output("f", g);
//! let report = atpg::generate_tests(&nl);
//! assert_eq!(report.redundant, 0, "a bare AND gate is fully testable");
//! assert_eq!(report.coverage(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod sim;
mod tpg;

pub use fault::{collapse, enumerate_faults, inject, Fault, FaultSite};
pub use sim::{detects, fault_coverage, fault_coverage_report, FaultSimReport};
pub use tpg::{compact_tests, generate_tests, remove_redundancies, test_for_fault, TestReport};
