//! Parallel-pattern single-fault fault simulation (PPSFP).

use std::time::{Duration, Instant};

use netlist::Netlist;
use obs::json::Json;
use obs::report::per_second;
use obs::Recorder;

use crate::fault::{inject, Fault};

/// Does the pattern set detect the fault? `patterns[k]` packs 64 values of
/// input `k`; a fault is detected iff some pattern makes some output
/// differ between the good and faulty circuits.
///
/// # Panics
///
/// Panics if `patterns.len()` differs from the number of inputs.
pub fn detects(nl: &Netlist, fault: Fault, patterns: &[u64]) -> bool {
    let good = nl.simulate(patterns);
    let faulty = inject(nl, fault).simulate(patterns);
    good.iter().zip(&faulty).any(|(g, f)| g != f)
}

/// Fault coverage of a test set over a fault list: the fraction of faults
/// detected by at least one of the `tests` (each a complete input
/// assignment).
///
/// Uses 64-way parallel simulation: tests are packed into words and all
/// faults are simulated against each 64-test batch.
///
/// # Panics
///
/// Panics if a test's length differs from the number of inputs.
pub fn fault_coverage(nl: &Netlist, faults: &[Fault], tests: &[Vec<bool>]) -> f64 {
    fault_coverage_report(nl, faults, tests).coverage
}

/// The outcome of one [`fault_coverage_report`] run, with wall-clock
/// throughput figures alongside the coverage.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultSimReport {
    /// Faults simulated.
    pub faults: usize,
    /// Faults detected by at least one test.
    pub detected: usize,
    /// Test patterns applied.
    pub patterns: usize,
    /// Detected over simulated (1.0 on an empty fault list).
    pub coverage: f64,
    /// Wall-clock time of the whole simulation.
    pub elapsed: Duration,
}

impl FaultSimReport {
    /// Faults simulated per second of wall-clock time.
    pub fn faults_per_sec(&self) -> f64 {
        per_second(self.faults, self.elapsed)
    }

    /// Test patterns applied per second of wall-clock time.
    pub fn patterns_per_sec(&self) -> f64 {
        per_second(self.patterns, self.elapsed)
    }

    /// The report as a JSON object (used by the bench report writer).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("faults", self.faults as u64)
            .field("detected", self.detected as u64)
            .field("patterns", self.patterns as u64)
            .field("coverage", self.coverage)
            .field("elapsed_s", self.elapsed.as_secs_f64())
            .field("faults_per_sec", self.faults_per_sec())
            .field("patterns_per_sec", self.patterns_per_sec())
    }

    /// Publishes the report on a recorder: throughput gauges plus one
    /// `atpg.fault_sim` point carrying the full record.
    pub fn emit(&self, rec: &Recorder) {
        rec.gauge("atpg.coverage", self.coverage);
        rec.gauge("atpg.faults_per_sec", self.faults_per_sec());
        rec.gauge("atpg.patterns_per_sec", self.patterns_per_sec());
        rec.point("atpg.fault_sim", self.to_json());
    }
}

/// [`fault_coverage`] with instrumentation: returns the coverage together
/// with fault/pattern throughput over the run's wall-clock time.
///
/// # Panics
///
/// Panics if a test's length differs from the number of inputs.
pub fn fault_coverage_report(
    nl: &Netlist,
    faults: &[Fault],
    tests: &[Vec<bool>],
) -> FaultSimReport {
    let start = Instant::now();
    if faults.is_empty() {
        return FaultSimReport {
            faults: 0,
            detected: 0,
            patterns: tests.len(),
            coverage: 1.0,
            elapsed: start.elapsed(),
        };
    }
    let num_inputs = nl.inputs().len();
    let mut detected = vec![false; faults.len()];
    for chunk in tests.chunks(64) {
        let mut patterns = vec![0u64; num_inputs];
        for (t, test) in chunk.iter().enumerate() {
            assert_eq!(test.len(), num_inputs, "test arity mismatch");
            for (k, &bit) in test.iter().enumerate() {
                if bit {
                    patterns[k] |= 1 << t;
                }
            }
        }
        let good = nl.simulate(&patterns);
        let used: u64 = if chunk.len() == 64 { u64::MAX } else { (1 << chunk.len()) - 1 };
        for (fi, &fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let faulty = inject(nl, fault).simulate(&patterns);
            if good.iter().zip(&faulty).any(|(g, f)| (g ^ f) & used != 0) {
                detected[fi] = true;
            }
        }
    }
    let hit = detected.iter().filter(|&&d| d).count();
    FaultSimReport {
        faults: faults.len(),
        detected: hit,
        patterns: tests.len(),
        coverage: hit as f64 / faults.len() as f64,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{collapse, enumerate_faults, FaultSite};
    use netlist::Gate2;

    fn and_circuit() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(Gate2::And, a, b);
        nl.add_output("f", g);
        nl
    }

    #[test]
    fn detection_basics() {
        let nl = and_circuit();
        let g = nl.outputs()[0].1;
        let f = Fault { site: FaultSite::Stem(g), stuck_at: false };
        // Pattern a=b=1 detects output s-a-0 (bit 0 of each word).
        assert!(detects(&nl, f, &[0b1, 0b1]));
        // Pattern a=1,b=0 does not.
        assert!(!detects(&nl, f, &[0b1, 0b0]));
    }

    #[test]
    fn exhaustive_tests_cover_an_and_gate_fully() {
        let nl = and_circuit();
        let faults = collapse(&nl, &enumerate_faults(&nl));
        let tests: Vec<Vec<bool>> = (0..4u32).map(|m| vec![m & 1 != 0, m & 2 != 0]).collect();
        assert_eq!(fault_coverage(&nl, &faults, &tests), 1.0);
    }

    #[test]
    fn insufficient_tests_give_partial_coverage() {
        let nl = and_circuit();
        let faults = collapse(&nl, &enumerate_faults(&nl));
        // Only the all-ones test: detects s-a-0 faults but no s-a-1.
        let coverage = fault_coverage(&nl, &faults, &[vec![true, true]]);
        assert!(coverage > 0.0 && coverage < 1.0, "got {coverage}");
    }

    #[test]
    fn more_than_64_tests_use_multiple_batches() {
        // 7-input circuit, 128 exhaustive tests.
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..7).map(|k| nl.add_input(format!("x{k}"))).collect();
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = nl.add_gate(Gate2::Xor, acc, i);
        }
        nl.add_output("p", acc);
        let faults = collapse(&nl, &enumerate_faults(&nl));
        let tests: Vec<Vec<bool>> =
            (0..128u32).map(|m| (0..7).map(|k| m & (1 << k) != 0).collect()).collect();
        assert_eq!(fault_coverage(&nl, &faults, &tests), 1.0, "parity chain fully testable");
    }

    #[test]
    fn empty_fault_list_is_fully_covered() {
        let nl = and_circuit();
        assert_eq!(fault_coverage(&nl, &[], &[]), 1.0);
    }

    #[test]
    fn report_carries_throughput_and_emits_to_a_recorder() {
        let nl = and_circuit();
        let faults = collapse(&nl, &enumerate_faults(&nl));
        let tests: Vec<Vec<bool>> = (0..4u32).map(|m| vec![m & 1 != 0, m & 2 != 0]).collect();
        let report = fault_coverage_report(&nl, &faults, &tests);
        assert_eq!(report.coverage, 1.0);
        assert_eq!(report.faults, faults.len());
        assert_eq!(report.detected, faults.len());
        assert_eq!(report.patterns, 4);
        assert!(report.faults_per_sec() > 0.0);
        assert!(report.patterns_per_sec() > 0.0);
        let json = report.to_json();
        assert_eq!(json.get("coverage").and_then(Json::as_f64), Some(1.0));
        assert_eq!(json.get("patterns").and_then(Json::as_f64), Some(4.0));
        let rec = Recorder::new();
        report.emit(&rec);
        assert_eq!(rec.gauge_value("atpg.coverage"), Some(1.0));
        assert!(rec.gauge_value("atpg.faults_per_sec").unwrap() > 0.0);
    }
}
