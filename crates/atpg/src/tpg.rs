//! Exact, BDD-based test pattern generation and redundancy identification.

use bdd::{Bdd, Func};
use netlist::Netlist;

use crate::fault::{collapse, enumerate_faults, inject, Fault};
use crate::sim::detects;

/// Result of a complete ATPG run.
#[derive(Clone, Debug)]
pub struct TestReport {
    /// Collapsed fault universe size.
    pub total_faults: usize,
    /// Faults detected by the generated test set.
    pub detected: usize,
    /// Provably redundant faults (good ≡ faulty circuit).
    pub redundant: usize,
    /// The generated test patterns (complete input assignments).
    pub tests: Vec<Vec<bool>>,
    /// The redundant faults, for diagnosis.
    pub redundant_faults: Vec<Fault>,
}

impl TestReport {
    /// Detected / total. A fully testable netlist has coverage 1.0 and no
    /// redundant faults.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }

    /// Detected / (total − redundant): 1.0 whenever ATPG is complete.
    pub fn testable_coverage(&self) -> f64 {
        let testable = self.total_faults - self.redundant;
        if testable == 0 {
            1.0
        } else {
            self.detected as f64 / testable as f64
        }
    }
}

/// Reverse-order test compaction: drops every test that detects no fault
/// left undetected by the others (classic static compaction). The
/// returned set covers exactly the same faults.
///
/// # Panics
///
/// Panics if a test's length differs from the netlist's input count.
pub fn compact_tests(nl: &Netlist, faults: &[Fault], tests: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let num_inputs = nl.inputs().len();
    let word = |test: &Vec<bool>| -> Vec<u64> {
        assert_eq!(test.len(), num_inputs, "test arity mismatch");
        test.iter().map(|&v| if v { u64::MAX } else { 0 }).collect()
    };
    // Which faults does each test detect?
    let detections: Vec<Vec<usize>> = tests
        .iter()
        .map(|t| {
            let patterns = word(t);
            faults
                .iter()
                .enumerate()
                .filter_map(|(fi, &f)| detects(nl, f, &patterns).then_some(fi))
                .collect()
        })
        .collect();
    let mut needed = vec![true; tests.len()];
    // Reverse order: later tests (found for the stubborn faults) tend to
    // detect more, letting earlier ones drop.
    for i in (0..tests.len()).rev() {
        needed[i] = false;
        let mut covered = vec![false; faults.len()];
        for (j, det) in detections.iter().enumerate() {
            if needed[j] {
                for &fi in det {
                    covered[fi] = true;
                }
            }
        }
        let all_still_covered = detections[i].iter().all(|&fi| covered[fi]);
        if !all_still_covered {
            needed[i] = true;
        }
    }
    tests.iter().zip(&needed).filter(|&(_t, &k)| k).map(|(t, &_k)| t.clone()).collect()
}

/// Classic redundancy removal: while complete ATPG proves some fault
/// undetectable, replace that line by the stuck value (which by
/// definition does not change the circuit's functions) and let constant
/// propagation shrink the logic.
///
/// Returns the cleaned netlist and the number of redundancies removed.
/// The result is fully testable: [`generate_tests`] on it reports zero
/// redundant faults.
pub fn remove_redundancies(nl: &Netlist) -> (Netlist, usize) {
    let mut current = nl.clone();
    let mut removed = 0;
    loop {
        let report = generate_tests(&current);
        match report.redundant_faults.first() {
            None => return (current, removed),
            Some(&fault) => {
                current = inject(&current, fault);
                removed += 1;
            }
        }
    }
}

/// Finds one test for `fault`, or proves it redundant (`None`).
///
/// Exact: builds the BDDs of the good and faulty circuits and picks a
/// satisfying assignment of their XOR. `None` means the two circuits are
/// equivalent — the fault is undetectable.
pub fn test_for_fault(nl: &Netlist, fault: Fault) -> Option<Vec<bool>> {
    let mut mgr = Bdd::new(nl.inputs().len());
    let good = nl.to_bdds(&mut mgr);
    let faulty_nl = inject(nl, fault);
    let faulty = faulty_nl.to_bdds(&mut mgr);
    let mut difference = Func::ZERO;
    for (&g, &f) in good.iter().zip(&faulty) {
        let d = mgr.xor(g, f);
        difference = mgr.or(difference, d);
    }
    mgr.pick_minterm(difference)
}

/// Complete ATPG: collapses the fault list, fault-simulates each new test
/// against the remaining faults (fault dropping), and calls the exact
/// engine for the survivors. Every fault ends up detected or proven
/// redundant, so [`TestReport::testable_coverage`] is always 1.0.
pub fn generate_tests(nl: &Netlist) -> TestReport {
    let faults = collapse(nl, &enumerate_faults(nl));
    let num_inputs = nl.inputs().len();
    let mut remaining: Vec<Fault> = faults.clone();
    let mut tests: Vec<Vec<bool>> = Vec::new();
    let mut redundant_faults = Vec::new();
    let mut detected = 0;
    while let Some(fault) = remaining.pop() {
        match test_for_fault(nl, fault) {
            None => redundant_faults.push(fault),
            Some(test) => {
                detected += 1;
                // Fault dropping: the new test often detects many more.
                // Replicate the test across the whole word so no stray
                // all-zero pattern sneaks into the detection check.
                let patterns: Vec<u64> =
                    (0..num_inputs).map(|k| if test[k] { u64::MAX } else { 0 }).collect();
                remaining.retain(|&f| {
                    if detects(nl, f, &patterns) {
                        detected += 1;
                        false
                    } else {
                        true
                    }
                });
                tests.push(test);
            }
        }
    }
    TestReport {
        total_faults: faults.len(),
        detected,
        redundant: redundant_faults.len(),
        tests,
        redundant_faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSite;
    use crate::sim::fault_coverage;
    use netlist::Gate2;

    #[test]
    fn irredundant_circuit_fully_covered() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(Gate2::And, a, b);
        let f = nl.add_gate(Gate2::Xor, ab, c);
        nl.add_output("f", f);
        let report = generate_tests(&nl);
        assert_eq!(report.redundant, 0);
        assert_eq!(report.coverage(), 1.0);
        assert_eq!(report.testable_coverage(), 1.0);
        // The emitted tests really do cover the collapsed list.
        let faults = collapse(&nl, &enumerate_faults(&nl));
        assert_eq!(fault_coverage(&nl, &faults, &report.tests), 1.0);
    }

    #[test]
    fn redundant_logic_is_identified() {
        // f = (a·b) + (a·b) — duplicated term is impossible through the
        // hash-consed constructors, so build redundancy via complement:
        // f = a + (a · b): the AND gate is functionally dominated, its
        // pin-b s-a-1 fault is undetectable.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ab = nl.add_gate(Gate2::And, a, b);
        let f = nl.add_gate(Gate2::Or, a, ab);
        nl.add_output("f", f);
        let report = generate_tests(&nl);
        assert!(report.redundant > 0, "absorbed term must yield redundant faults");
        assert_eq!(report.testable_coverage(), 1.0);
        assert!(report.coverage() < 1.0);
    }

    #[test]
    fn exact_engine_agrees_with_simulation() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let nb = nl.add_not(b);
        let g = nl.add_gate(Gate2::Or, a, nb);
        nl.add_output("f", g);
        for fault in collapse(&nl, &enumerate_faults(&nl)) {
            match test_for_fault(&nl, fault) {
                Some(test) => {
                    let patterns: Vec<u64> = test.iter().map(|&v| u64::from(v)).collect();
                    assert!(detects(&nl, fault, &patterns), "{fault} test must detect");
                }
                None => {
                    // Exhaustive check: really undetectable.
                    for m in 0..4u64 {
                        let patterns = vec![m & 1, (m >> 1) & 1];
                        assert!(!detects(&nl, fault, &patterns), "{fault} is not redundant");
                    }
                }
            }
        }
    }

    #[test]
    fn redundancy_removal_cleans_absorbed_terms() {
        // f = a + a·b: the absorbed AND term carries redundant faults.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ab = nl.add_gate(Gate2::And, a, b);
        let f = nl.add_gate(Gate2::Or, a, ab);
        nl.add_output("f", f);
        let before = generate_tests(&nl);
        assert!(before.redundant > 0);
        let (clean, removed) = remove_redundancies(&nl);
        assert!(removed > 0);
        // Same function, now fully testable (f collapses to the wire a).
        for m in 0..4u64 {
            let vals = [m & 1 != 0, m & 2 != 0];
            assert_eq!(clean.eval_all(&vals), nl.eval_all(&vals));
        }
        let after = generate_tests(&clean);
        assert_eq!(after.redundant, 0);
        assert!(clean.stats().gates < nl.stats().gates);
    }

    #[test]
    fn redundancy_removal_is_a_no_op_on_clean_circuits() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(Gate2::Xor, a, b);
        nl.add_output("f", g);
        let (clean, removed) = remove_redundancies(&nl);
        assert_eq!(removed, 0);
        assert_eq!(clean.stats().gates, nl.stats().gates);
    }

    #[test]
    fn compaction_preserves_coverage() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(Gate2::And, a, b);
        let f = nl.add_gate(Gate2::Xor, ab, c);
        nl.add_output("f", f);
        let faults = collapse(&nl, &enumerate_faults(&nl));
        // A deliberately bloated test set: the exhaustive inputs.
        let tests: Vec<Vec<bool>> =
            (0..8u32).map(|m| (0..3).map(|k| m & (1 << k) != 0).collect()).collect();
        let before = fault_coverage(&nl, &faults, &tests);
        let compact = compact_tests(&nl, &faults, &tests);
        assert!(compact.len() < tests.len(), "must drop some of the 8 tests");
        assert_eq!(fault_coverage(&nl, &faults, &compact), before);
    }

    #[test]
    fn compaction_keeps_atpg_test_sets_complete() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let nb = nl.add_not(b);
        let g = nl.add_gate(Gate2::Or, a, nb);
        nl.add_output("f", g);
        let report = generate_tests(&nl);
        let faults = collapse(&nl, &enumerate_faults(&nl));
        let compact = compact_tests(&nl, &faults, &report.tests);
        assert!(compact.len() <= report.tests.len());
        assert_eq!(fault_coverage(&nl, &faults, &compact), report.coverage());
    }

    #[test]
    fn stem_fault_on_input_gets_tested() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        nl.add_output("f", a);
        let fault = Fault { site: FaultSite::Stem(a), stuck_at: false };
        let test = test_for_fault(&nl, fault).expect("detectable");
        assert_eq!(test, vec![true]);
    }

    #[test]
    fn decomposed_netlist_is_fully_testable() {
        // Theorem 5 end-to-end on a small benchmark: rd73 through the full
        // decomposition, then complete ATPG.
        let b = benchmarks_rd73();
        let outcome = bidecomp::decompose_pla(&b, &bidecomp::Options::default());
        assert!(outcome.verified);
        let report = generate_tests(&outcome.netlist);
        assert_eq!(
            report.redundant, 0,
            "Theorem 5: bi-decomposed netlists are 100% testable; redundant: {:?}",
            report.redundant_faults
        );
        assert_eq!(report.coverage(), 1.0);
    }

    /// rd73 built locally to avoid a dev-dependency cycle on `benchmarks`.
    fn benchmarks_rd73() -> pla::Pla {
        let mut p = pla::Pla::new(7, 3);
        for m in 0..128u32 {
            let count = m.count_ones();
            if count == 0 {
                continue;
            }
            let ins: String = (0..7).map(|k| if m & (1 << k) != 0 { '1' } else { '0' }).collect();
            let outs: String =
                (0..3).map(|b| if count & (1 << b) != 0 { '1' } else { '-' }).collect();
            p.push_str(&ins, &outs);
        }
        p
    }
}
