//! The gate graph, with structural hashing and constant folding.

use std::collections::HashMap;
use std::fmt;

/// Index of a signal (the output of a gate, an input, or a constant).
pub type SignalId = u32;

/// Two-input gate types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Gate2 {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Equivalence.
    Xnor,
}

impl Gate2 {
    /// Evaluates the gate on two bit-vectors of input values.
    #[inline]
    pub fn eval_words(self, a: u64, b: u64) -> u64 {
        match self {
            Gate2::And => a & b,
            Gate2::Or => a | b,
            Gate2::Xor => a ^ b,
            Gate2::Nand => !(a & b),
            Gate2::Nor => !(a | b),
            Gate2::Xnor => !(a ^ b),
        }
    }

    /// Evaluates the gate on two scalar values.
    pub fn eval(self, a: bool, b: bool) -> bool {
        self.eval_words(a as u64, b as u64) & 1 != 0
    }

    /// Is this one of the EXOR-family gates (XOR/XNOR)?
    pub fn is_exor(self) -> bool {
        matches!(self, Gate2::Xor | Gate2::Xnor)
    }

    /// The gate computing the complement of this gate.
    pub fn complement(self) -> Gate2 {
        match self {
            Gate2::And => Gate2::Nand,
            Gate2::Nand => Gate2::And,
            Gate2::Or => Gate2::Nor,
            Gate2::Nor => Gate2::Or,
            Gate2::Xor => Gate2::Xnor,
            Gate2::Xnor => Gate2::Xor,
        }
    }

    /// Lowercase name used in reports and BLIF comments.
    pub fn name(self) -> &'static str {
        match self {
            Gate2::And => "and",
            Gate2::Or => "or",
            Gate2::Xor => "xor",
            Gate2::Nand => "nand",
            Gate2::Nor => "nor",
            Gate2::Xnor => "xnor",
        }
    }
}

impl fmt::Display for Gate2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A node of the netlist DAG.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Gate {
    /// Primary input with its name.
    Input(String),
    /// Constant 0 or 1.
    Const(bool),
    /// Inverter.
    Not(SignalId),
    /// Two-input gate.
    Binary(Gate2, SignalId, SignalId),
}

/// A combinational network of two-input gates.
///
/// Gates are created through the `add_*` methods, which perform structural
/// hashing (identical gates share one node), constant folding, and local
/// simplifications (`x·x = x`, `x·¬x = 0`, double-negation elimination, …).
#[derive(Clone, Default)]
pub struct Netlist {
    nodes: Vec<Gate>,
    outputs: Vec<(String, SignalId)>,
    strash: HashMap<(Gate2, SignalId, SignalId), SignalId>,
    not_cache: HashMap<SignalId, SignalId>,
    consts: [Option<SignalId>; 2],
    inputs: Vec<SignalId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a primary input and returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalId {
        let id = self.push(Gate::Input(name.into()));
        self.inputs.push(id);
        id
    }

    /// The constant signal `value` (created on first use).
    pub fn constant(&mut self, value: bool) -> SignalId {
        if let Some(id) = self.consts[value as usize] {
            return id;
        }
        let id = self.push(Gate::Const(value));
        self.consts[value as usize] = Some(id);
        id
    }

    /// Adds (or reuses) an inverter on `a`.
    ///
    /// Double negations cancel and constants fold.
    pub fn add_not(&mut self, a: SignalId) -> SignalId {
        match self.nodes[a as usize] {
            Gate::Const(v) => return self.constant(!v),
            Gate::Not(inner) => return inner,
            _ => {}
        }
        if let Some(&id) = self.not_cache.get(&a) {
            return id;
        }
        let id = self.push(Gate::Not(a));
        self.not_cache.insert(a, id);
        self.not_cache.insert(id, a);
        id
    }

    /// Adds (or reuses) a two-input gate.
    ///
    /// Applies constant folding and the local identities
    /// `x∘x`, `x∘¬x` for every connective before hashing.
    pub fn add_gate(&mut self, op: Gate2, a: SignalId, b: SignalId) -> SignalId {
        // Constant folding.
        let const_of = |nl: &Self, s: SignalId| match nl.nodes[s as usize] {
            Gate::Const(v) => Some(v),
            _ => None,
        };
        if let (Some(va), Some(vb)) = (const_of(self, a), const_of(self, b)) {
            return self.constant(op.eval(va, vb));
        }
        if let Some(v) = const_of(self, a) {
            return self.fold_with_const(op, b, v);
        }
        if let Some(v) = const_of(self, b) {
            return self.fold_with_const(op, a, v);
        }
        // Idempotence / complement identities.
        let complement_pair = self.is_complement_pair(a, b);
        match op {
            Gate2::And if a == b => return a,
            Gate2::Or if a == b => return a,
            Gate2::Xor if a == b => return self.constant(false),
            Gate2::Xnor if a == b => return self.constant(true),
            Gate2::Nand if a == b => return self.add_not(a),
            Gate2::Nor if a == b => return self.add_not(a),
            Gate2::And if complement_pair => return self.constant(false),
            Gate2::Or if complement_pair => return self.constant(true),
            Gate2::Xor if complement_pair => return self.constant(true),
            Gate2::Xnor if complement_pair => return self.constant(false),
            Gate2::Nand if complement_pair => return self.constant(true),
            Gate2::Nor if complement_pair => return self.constant(false),
            _ => {}
        }
        // All our connectives are commutative: normalize operand order.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(op, a, b)) {
            return id;
        }
        let id = self.push(Gate::Binary(op, a, b));
        self.strash.insert((op, a, b), id);
        id
    }

    fn fold_with_const(&mut self, op: Gate2, x: SignalId, v: bool) -> SignalId {
        match (op, v) {
            (Gate2::And, true) => x,
            (Gate2::And, false) => self.constant(false),
            (Gate2::Or, false) => x,
            (Gate2::Or, true) => self.constant(true),
            (Gate2::Xor, false) => x,
            (Gate2::Xor, true) => self.add_not(x),
            (Gate2::Xnor, true) => x,
            (Gate2::Xnor, false) => self.add_not(x),
            (Gate2::Nand, true) => self.add_not(x),
            (Gate2::Nand, false) => self.constant(true),
            (Gate2::Nor, false) => self.add_not(x),
            (Gate2::Nor, true) => self.constant(false),
        }
    }

    fn is_complement_pair(&self, a: SignalId, b: SignalId) -> bool {
        matches!(self.nodes[a as usize], Gate::Not(x) if x == b)
            || matches!(self.nodes[b as usize], Gate::Not(x) if x == a)
    }

    /// Declares a named primary output driven by `signal`.
    pub fn add_output(&mut self, name: impl Into<String>, signal: SignalId) {
        self.outputs.push((name.into(), signal));
    }

    fn push(&mut self, gate: Gate) -> SignalId {
        let id = self.nodes.len() as SignalId;
        self.nodes.push(gate);
        id
    }

    /// All nodes, indexable by [`SignalId`]. Nodes appear in topological
    /// order (fanins precede fanouts) by construction.
    pub fn nodes(&self) -> &[Gate] {
        &self.nodes
    }

    /// The node driving `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn gate(&self, signal: SignalId) -> &Gate {
        &self.nodes[signal as usize]
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Named primary outputs in declaration order.
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// The name of an input signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is not an input.
    pub fn input_name(&self, signal: SignalId) -> &str {
        match &self.nodes[signal as usize] {
            Gate::Input(name) => name,
            other => panic!("signal {signal} is not an input: {other:?}"),
        }
    }

    /// Replays every node of `other` into `self`, re-declaring `other`'s
    /// outputs, and returns the signal mapping (`other`'s id → `self`'s id).
    ///
    /// Inputs are matched **positionally**: `other`'s `k`-th declared input
    /// maps to `self`'s `k`-th declared input. Gates go through the normal
    /// `add_*` constructors, so structural hashing, constant folding and the
    /// local identities deduplicate against everything already in `self` —
    /// replaying netlists produced independently per output reconstructs
    /// exactly the netlist a single shared builder would have produced.
    ///
    /// # Panics
    ///
    /// Panics if `other` declares more inputs than `self`.
    pub fn merge_from(&mut self, other: &Netlist) -> Vec<SignalId> {
        assert!(
            other.inputs.len() <= self.inputs.len(),
            "merge_from: other has {} inputs, self only {}",
            other.inputs.len(),
            self.inputs.len()
        );
        let mut map = vec![0; other.nodes.len()];
        let mut next_input = 0;
        for (id, gate) in other.nodes.iter().enumerate() {
            map[id] = match *gate {
                Gate::Input(_) => {
                    let mapped = self.inputs[next_input];
                    next_input += 1;
                    mapped
                }
                Gate::Const(v) => self.constant(v),
                Gate::Not(a) => self.add_not(map[a as usize]),
                Gate::Binary(op, a, b) => self.add_gate(op, map[a as usize], map[b as usize]),
            };
        }
        for (name, signal) in &other.outputs {
            self.add_output(name.clone(), map[*signal as usize]);
        }
        map
    }

    /// Signals actually reachable from the outputs (live logic), in
    /// topological order.
    pub fn live_signals(&self) -> Vec<SignalId> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<SignalId> = self.outputs.iter().map(|&(_, s)| s).collect();
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut live[s as usize], true) {
                continue;
            }
            match self.nodes[s as usize] {
                Gate::Not(a) => stack.push(a),
                Gate::Binary(_, a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                _ => {}
            }
        }
        (0..self.nodes.len() as SignalId).filter(|&s| live[s as usize]).collect()
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Netlist")
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .field("gates", &stats.gates)
            .field("exors", &stats.exors)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_hashing_shares_gates() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(Gate2::And, a, b);
        let g2 = nl.add_gate(Gate2::And, b, a); // commuted
        assert_eq!(g1, g2);
        let n1 = nl.add_not(g1);
        let n2 = nl.add_not(g1);
        assert_eq!(n1, n2);
        assert_eq!(nl.add_not(n1), g1, "double negation cancels");
    }

    #[test]
    fn constant_folding() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let zero = nl.constant(false);
        let one = nl.constant(true);
        assert_eq!(nl.add_gate(Gate2::And, a, zero), zero);
        assert_eq!(nl.add_gate(Gate2::And, a, one), a);
        assert_eq!(nl.add_gate(Gate2::Or, a, one), one);
        assert_eq!(nl.add_gate(Gate2::Or, zero, a), a);
        assert_eq!(nl.add_gate(Gate2::Xor, a, zero), a);
        let na = nl.add_not(a);
        assert_eq!(nl.add_gate(Gate2::Xor, a, one), na);
        assert_eq!(nl.add_gate(Gate2::Nand, a, zero), one);
        assert_eq!(nl.add_gate(Gate2::Nor, a, zero), na);
        assert_eq!(nl.add_gate(Gate2::Xnor, one, a), a);
        let f = nl.add_gate(Gate2::And, one, zero);
        assert_eq!(f, zero);
        assert_eq!(nl.add_not(zero), one);
    }

    #[test]
    fn local_identities() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let na = nl.add_not(a);
        assert_eq!(nl.add_gate(Gate2::And, a, a), a);
        assert_eq!(nl.add_gate(Gate2::Or, a, a), a);
        let xaa = nl.add_gate(Gate2::Xor, a, a);
        assert!(matches!(nl.gate(xaa), Gate::Const(false)));
        let and_compl = nl.add_gate(Gate2::And, a, na);
        assert!(matches!(nl.gate(and_compl), Gate::Const(false)));
        let or_compl = nl.add_gate(Gate2::Or, na, a);
        assert!(matches!(nl.gate(or_compl), Gate::Const(true)));
        let xor_compl = nl.add_gate(Gate2::Xor, a, na);
        assert!(matches!(nl.gate(xor_compl), Gate::Const(true)));
        assert_eq!(nl.add_gate(Gate2::Nand, a, a), na);
    }

    #[test]
    fn gate2_eval_and_complement() {
        for op in [Gate2::And, Gate2::Or, Gate2::Xor, Gate2::Nand, Gate2::Nor, Gate2::Xnor] {
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                assert_eq!(op.complement().eval(a, b), !op.eval(a, b), "{op} {a} {b}");
            }
        }
        assert!(Gate2::Xor.is_exor() && Gate2::Xnor.is_exor());
        assert!(!Gate2::And.is_exor());
    }

    #[test]
    fn live_signals_skip_dead_logic() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let keep = nl.add_gate(Gate2::And, a, b);
        let _dead = nl.add_gate(Gate2::Xor, a, b);
        nl.add_output("f", keep);
        let live = nl.live_signals();
        assert!(live.contains(&keep));
        assert!(!live.contains(&_dead));
        assert!(live.contains(&a) && live.contains(&b));
    }

    #[test]
    fn input_bookkeeping() {
        let mut nl = Netlist::new();
        let a = nl.add_input("alpha");
        assert_eq!(nl.input_name(a), "alpha");
        assert_eq!(nl.inputs(), &[a]);
        nl.add_output("out", a);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn merge_from_replays_and_deduplicates() {
        // Two "worker" netlists over the same inputs, sharing the cone a·b.
        let mut host = Netlist::new();
        host.add_input("a");
        host.add_input("b");
        host.add_input("c");
        let mut w1 = Netlist::new();
        {
            let (a, b, _c) = (w1.add_input("a"), w1.add_input("b"), w1.add_input("c"));
            let ab = w1.add_gate(Gate2::And, a, b);
            w1.add_output("f", ab);
        }
        let mut w2 = Netlist::new();
        {
            let (a, b, c) = (w2.add_input("a"), w2.add_input("b"), w2.add_input("c"));
            let ab = w2.add_gate(Gate2::And, b, a); // commuted on purpose
            let f = w2.add_gate(Gate2::Or, ab, c);
            w2.add_output("g", f);
        }
        host.merge_from(&w1);
        host.merge_from(&w2);
        assert_eq!(host.stats().gates, 2, "a·b must be shared across merges");
        assert_eq!(host.outputs().len(), 2);
        // Byte-identity with the single-builder netlist.
        let mut serial = Netlist::new();
        let (a, b, c) = (serial.add_input("a"), serial.add_input("b"), serial.add_input("c"));
        let ab = serial.add_gate(Gate2::And, a, b);
        serial.add_output("f", ab);
        let f = serial.add_gate(Gate2::Or, ab, c);
        serial.add_output("g", f);
        assert_eq!(host.to_blif("m"), serial.to_blif("m"));
    }

    #[test]
    #[should_panic(expected = "is not an input")]
    fn input_name_of_gate_panics() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let na = nl.add_not(a);
        let _ = nl.input_name(na);
    }
}
