//! Bit-parallel simulation: 64 input patterns per pass.

use crate::graph::{Gate, Netlist};

impl Netlist {
    /// Simulates 64 input patterns at once.
    ///
    /// `patterns[k]` packs the value of input `k` (declaration order)
    /// across the 64 patterns, one per bit. Returns one packed word per
    /// primary output, in output declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len()` differs from the number of inputs.
    pub fn simulate(&self, patterns: &[u64]) -> Vec<u64> {
        let values = self.simulate_all(patterns);
        self.outputs().iter().map(|&(_, s)| values[s as usize]).collect()
    }

    /// Like [`simulate`](Netlist::simulate) but returns the packed value of
    /// *every* signal (indexable by [`crate::SignalId`]) — used by the
    /// fault simulator.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len()` differs from the number of inputs.
    pub fn simulate_all(&self, patterns: &[u64]) -> Vec<u64> {
        assert_eq!(patterns.len(), self.inputs().len(), "need one pattern word per primary input");
        let mut values = vec![0u64; self.nodes().len()];
        let mut next_input = 0;
        for (idx, gate) in self.nodes().iter().enumerate() {
            values[idx] = match *gate {
                Gate::Input(_) => {
                    let w = patterns[next_input];
                    next_input += 1;
                    w
                }
                Gate::Const(v) => {
                    if v {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Gate::Not(a) => !values[a as usize],
                Gate::Binary(op, a, b) => op.eval_words(values[a as usize], values[b as usize]),
            };
        }
        values
    }

    /// Evaluates the named output on a single assignment
    /// (`assignment[k]` = value of input `k`). Returns `None` if no output
    /// has that name.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the number of inputs.
    pub fn eval_single(&self, output: &str, assignment: &[bool]) -> Option<bool> {
        let patterns: Vec<u64> = assignment.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let (pos, _) = self.outputs().iter().enumerate().find(|(_, (name, _))| name == output)?;
        Some(self.simulate(&patterns)[pos] & 1 != 0)
    }

    /// Evaluates all outputs on a single assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the number of inputs.
    pub fn eval_all(&self, assignment: &[bool]) -> Vec<bool> {
        let patterns: Vec<u64> = assignment.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.simulate(&patterns).iter().map(|&w| w & 1 != 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{Gate2, Netlist};

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let axb = nl.add_gate(Gate2::Xor, a, b);
        let sum = nl.add_gate(Gate2::Xor, axb, cin);
        let ab = nl.add_gate(Gate2::And, a, b);
        let t = nl.add_gate(Gate2::And, axb, cin);
        let cout = nl.add_gate(Gate2::Or, ab, t);
        nl.add_output("sum", sum);
        nl.add_output("cout", cout);
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for bits in 0..8u32 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(nl.eval_single("sum", &[a, b, c]), Some(total % 2 == 1));
            assert_eq!(nl.eval_single("cout", &[a, b, c]), Some(total >= 2));
            assert_eq!(nl.eval_all(&[a, b, c]), vec![total % 2 == 1, total >= 2]);
        }
        assert_eq!(nl.eval_single("nope", &[false, false, false]), None);
    }

    #[test]
    fn parallel_simulation_matches_scalar() {
        let nl = full_adder();
        // Pack all 8 assignments into one simulation call.
        let mut patterns = vec![0u64; 3];
        for bits in 0..8u64 {
            for (k, word) in patterns.iter_mut().enumerate() {
                if bits & (1 << k) != 0 {
                    *word |= 1 << bits;
                }
            }
        }
        let words = nl.simulate(&patterns);
        for bits in 0..8u64 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(words[0] >> bits & 1 != 0, total % 2 == 1, "sum at {bits}");
            assert_eq!(words[1] >> bits & 1 != 0, total >= 2, "cout at {bits}");
        }
    }

    #[test]
    fn constants_simulate_correctly() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let one = nl.constant(true);
        let f = nl.add_gate(Gate2::Xor, a, one); // folds to ¬a
        nl.add_output("f", f);
        assert_eq!(nl.eval_single("f", &[true]), Some(false));
        assert_eq!(nl.eval_single("f", &[false]), Some(true));
    }

    #[test]
    #[should_panic(expected = "one pattern word per primary input")]
    fn wrong_pattern_arity_panics() {
        let nl = full_adder();
        let _ = nl.simulate(&[0, 0]);
    }
}
