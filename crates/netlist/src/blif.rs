//! BLIF export and import.
//!
//! The paper's program writes its results into BLIF files (§8, "CPU time
//! ... needed to perform the bi-decomposition and write the results into a
//! BLIF file"). The writer emits one `.names` block per live gate; the
//! reader accepts arbitrary combinational single-output `.names` covers
//! (so it can read back everything we write, plus simple SIS-style files).

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use crate::graph::{Gate, Gate2, Netlist, SignalId};

impl Netlist {
    /// Serializes the live part of the netlist as a BLIF model.
    pub fn to_blif(&self, model: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, ".model {model}");
        let names: Vec<String> =
            self.inputs().iter().map(|&s| self.input_name(s).to_owned()).collect();
        let _ = writeln!(out, ".inputs {}", names.join(" "));
        let onames: Vec<&str> = self.outputs().iter().map(|(n, _)| n.as_str()).collect();
        let _ = writeln!(out, ".outputs {}", onames.join(" "));
        let signal_name = |s: SignalId| -> String {
            match self.gate(s) {
                Gate::Input(name) => name.clone(),
                _ => format!("n{s}"),
            }
        };
        for &s in &self.live_signals() {
            match *self.gate(s) {
                Gate::Input(_) => {}
                Gate::Const(v) => {
                    let _ = writeln!(out, ".names n{s}");
                    if v {
                        let _ = writeln!(out, "1");
                    }
                }
                Gate::Not(a) => {
                    let _ = writeln!(out, ".names {} n{s}", signal_name(a));
                    let _ = writeln!(out, "0 1");
                }
                Gate::Binary(op, a, b) => {
                    let _ = writeln!(out, ".names {} {} n{s}", signal_name(a), signal_name(b));
                    let cover = match op {
                        Gate2::And => "11 1\n",
                        Gate2::Or => "1- 1\n-1 1\n",
                        Gate2::Xor => "10 1\n01 1\n",
                        Gate2::Nand => "0- 1\n-0 1\n",
                        Gate2::Nor => "00 1\n",
                        Gate2::Xnor => "11 1\n00 1\n",
                    };
                    out.push_str(cover);
                }
            }
        }
        // Output buffers bind internal names to the declared output names.
        for (name, s) in self.outputs() {
            let _ = writeln!(out, ".names {} {name}", signal_name(*s));
            let _ = writeln!(out, "1 1");
        }
        out.push_str(".end\n");
        out
    }

    /// Parses a combinational BLIF model (the subset with `.model`,
    /// `.inputs`, `.outputs`, single-output `.names` covers and `.end`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBlifError`] on sequential elements (`.latch`),
    /// undriven signals, combinational cycles or malformed covers.
    pub fn from_blif(text: &str) -> Result<Netlist, ParseBlifError> {
        let mut inputs: Vec<String> = Vec::new();
        let mut outputs: Vec<String> = Vec::new();
        let mut defs: Defs = HashMap::new();
        let mut current: Option<String> = None;

        // Join continuation lines ending with '\'.
        let mut logical_lines: Vec<String> = Vec::new();
        let mut pending = String::new();
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim_end();
            if let Some(stripped) = line.strip_suffix('\\') {
                pending.push_str(stripped);
                pending.push(' ');
            } else {
                pending.push_str(line);
                logical_lines.push(std::mem::take(&mut pending));
            }
        }

        for line in &logical_lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                let mut parts = rest.split_whitespace();
                match parts.next().unwrap_or("") {
                    "model" => {}
                    "inputs" => inputs.extend(parts.map(str::to_owned)),
                    "outputs" => outputs.extend(parts.map(str::to_owned)),
                    "names" => {
                        let mut signals: Vec<String> = parts.map(str::to_owned).collect();
                        let target = signals.pop().ok_or_else(|| {
                            ParseBlifError::new(".names needs at least an output")
                        })?;
                        defs.insert(target.clone(), (signals, Vec::new()));
                        current = Some(target);
                    }
                    "end" => current = None,
                    "latch" => {
                        return Err(ParseBlifError::new(
                            "sequential BLIF (.latch) is not supported",
                        ));
                    }
                    other => {
                        return Err(ParseBlifError::new(format!("unsupported directive .{other}")));
                    }
                }
                continue;
            }
            // A cover row for the current .names block.
            let target = current
                .as_ref()
                .ok_or_else(|| ParseBlifError::new("cover row outside .names block"))?;
            let def = defs.get_mut(target).expect("current target is defined");
            let mut parts = line.split_whitespace();
            let (ins, out_char) = if def.0.is_empty() {
                ("".to_owned(), line.trim().chars().next().unwrap_or('1'))
            } else {
                let ins = parts
                    .next()
                    .ok_or_else(|| ParseBlifError::new("cover row missing input part"))?
                    .to_owned();
                let out = parts
                    .next()
                    .and_then(|s| s.chars().next())
                    .ok_or_else(|| ParseBlifError::new("cover row missing output part"))?;
                (ins, out)
            };
            if ins.len() != def.0.len() {
                return Err(ParseBlifError::new(format!(
                    "cover row arity {} does not match .names arity {}",
                    ins.len(),
                    def.0.len()
                )));
            }
            def.1.push((ins, out_char));
        }

        let mut nl = Netlist::new();
        let mut signals: HashMap<String, SignalId> = HashMap::new();
        for name in &inputs {
            let s = nl.add_input(name.clone());
            signals.insert(name.clone(), s);
        }
        // Resolve definitions depth-first.
        let mut in_progress: Vec<String> = Vec::new();
        for name in &outputs {
            let s = resolve(name, &defs, &mut signals, &mut nl, &mut in_progress)?;
            nl.add_output(name.clone(), s);
        }
        Ok(nl)
    }
}

/// `.names` definitions: target → (fanin names, cover rows of
/// (input pattern, output char)).
type Defs = HashMap<String, (Vec<String>, Vec<(String, char)>)>;

fn resolve(
    name: &str,
    defs: &Defs,
    signals: &mut HashMap<String, SignalId>,
    nl: &mut Netlist,
    in_progress: &mut Vec<String>,
) -> Result<SignalId, ParseBlifError> {
    if let Some(&s) = signals.get(name) {
        return Ok(s);
    }
    if in_progress.iter().any(|n| n == name) {
        return Err(ParseBlifError::new(format!("combinational cycle through {name:?}")));
    }
    let (fanins, rows) = defs
        .get(name)
        .ok_or_else(|| ParseBlifError::new(format!("signal {name:?} is never driven")))?;
    in_progress.push(name.to_owned());
    let fanin_signals: Vec<SignalId> = fanins
        .iter()
        .map(|f| resolve(f, defs, signals, nl, in_progress))
        .collect::<Result<_, _>>()?;
    in_progress.pop();

    // Build the single-output cover as a sum of products.
    let mut on_terms: Vec<SignalId> = Vec::new();
    let mut off_rows = false;
    let mut on_rows = false;
    for (pattern, out_char) in rows {
        match out_char {
            '1' => on_rows = true,
            '0' => off_rows = true,
            other => {
                return Err(ParseBlifError::new(format!("unsupported cover output {other:?}")));
            }
        }
        let _ = pattern;
    }
    if on_rows && off_rows {
        return Err(ParseBlifError::new("covers mixing on-set and off-set rows are not supported"));
    }
    let complemented = off_rows;
    for (pattern, _) in rows {
        let mut term: Option<SignalId> = None;
        for (k, c) in pattern.chars().enumerate() {
            let lit = match c {
                '1' => fanin_signals[k],
                '0' => nl.add_not(fanin_signals[k]),
                '-' => continue,
                other => {
                    return Err(ParseBlifError::new(format!(
                        "unsupported cover character {other:?}"
                    )));
                }
            };
            term = Some(match term {
                None => lit,
                Some(t) => nl.add_gate(Gate2::And, t, lit),
            });
        }
        let term = term.unwrap_or_else(|| nl.constant(true));
        on_terms.push(term);
    }
    let mut result = match on_terms.len() {
        0 => nl.constant(false),
        _ => {
            let mut acc = on_terms[0];
            for &t in &on_terms[1..] {
                acc = nl.add_gate(Gate2::Or, acc, t);
            }
            acc
        }
    };
    if complemented {
        result = nl.add_not(result);
    }
    signals.insert(name.to_owned(), result);
    Ok(result)
}

/// Error produced when parsing a BLIF file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseBlifError {
    message: String,
}

impl ParseBlifError {
    fn new(message: impl Into<String>) -> Self {
        ParseBlifError { message: message.into() }
    }
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blif parse error: {}", self.message)
    }
}

impl std::error::Error for ParseBlifError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let nb = nl.add_not(b);
        let anb = nl.add_gate(Gate2::And, a, nb);
        let f = nl.add_gate(Gate2::Xor, anb, c);
        let g = nl.add_gate(Gate2::Nor, a, c);
        nl.add_output("f", f);
        nl.add_output("g", g);
        nl
    }

    #[test]
    fn blif_roundtrip_preserves_semantics() {
        let nl = sample_netlist();
        let text = nl.to_blif("sample");
        let back = Netlist::from_blif(&text).expect("parse back");
        assert_eq!(back.inputs().len(), 3);
        assert_eq!(back.outputs().len(), 2);
        for bits in 0..8u32 {
            let vals = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            assert_eq!(nl.eval_all(&vals), back.eval_all(&vals), "at {bits:03b}");
        }
    }

    #[test]
    fn writer_emits_expected_structure() {
        let nl = sample_netlist();
        let text = nl.to_blif("sample");
        assert!(text.starts_with(".model sample\n"));
        assert!(text.contains(".inputs a b c"));
        assert!(text.contains(".outputs f g"));
        assert!(text.contains("10 1\n01 1\n"), "xor cover present");
        assert!(text.contains("00 1\n"), "nor cover present");
        assert!(text.ends_with(".end\n"));
    }

    #[test]
    fn reader_handles_general_covers() {
        let text = "\
.model m
.inputs x y z
.outputs o
.names x y z o
11- 1
--1 1
.end
";
        let nl = Netlist::from_blif(text).expect("valid");
        for bits in 0..8u32 {
            let vals = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expected = (vals[0] && vals[1]) || vals[2];
            assert_eq!(nl.eval_all(&vals), vec![expected]);
        }
    }

    #[test]
    fn reader_handles_offset_covers_and_constants() {
        let text = "\
.model m
.inputs x y
.outputs o k
.names x y o
11 0
.names k
1
.end
";
        let nl = Netlist::from_blif(text).expect("valid");
        assert_eq!(nl.eval_all(&[true, true]), vec![false, true]);
        assert_eq!(nl.eval_all(&[true, false]), vec![true, true]);
    }

    #[test]
    fn reader_rejects_cycles_and_undriven() {
        let cyclic = ".model m\n.inputs a\n.outputs o\n.names o a o\n11 1\n.end\n";
        let err = Netlist::from_blif(cyclic).unwrap_err();
        assert!(err.to_string().contains("cycle"));

        let undriven = ".model m\n.inputs a\n.outputs o\n.end\n";
        let err = Netlist::from_blif(undriven).unwrap_err();
        assert!(err.to_string().contains("never driven"));

        let latch = ".model m\n.inputs a\n.outputs o\n.latch a o re clk 0\n.end\n";
        let err = Netlist::from_blif(latch).unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn continuation_lines_are_joined() {
        let text = ".model m\n.inputs a \\\nb\n.outputs o\n.names a b o\n11 1\n.end\n";
        let nl = Netlist::from_blif(text).expect("valid");
        assert_eq!(nl.inputs().len(), 2);
    }

    #[test]
    fn output_driven_directly_by_input() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        nl.add_output("o", a);
        let text = nl.to_blif("wire");
        let back = Netlist::from_blif(&text).expect("valid");
        assert_eq!(back.eval_all(&[true]), vec![true]);
        assert_eq!(back.eval_all(&[false]), vec![false]);
    }
}
