//! Two-input gate networks — the output representation of bi-decomposition.
//!
//! A [`Netlist`] is a DAG of primary inputs, constants, inverters and
//! two-input gates (AND/OR/XOR and their complements). The crate provides:
//!
//! * structural hashing and constant folding on construction
//!   (shared sub-circuits are created once);
//! * the paper's area/delay cost model ([`CostModel`]: XOR/NOR area ratio
//!   5/2, delay ratio 2.1/1.0, inverters free) and circuit statistics
//!   ([`Netlist::stats`]);
//! * 64-way bit-parallel simulation ([`Netlist::simulate`]);
//! * extraction of output BDDs ([`Netlist::to_bdds`]) for the BDD-based
//!   verifier;
//! * BLIF export/import ([`Netlist::to_blif`], [`Netlist::from_blif`]) —
//!   the paper writes its results to BLIF files.
//!
//! ```
//! use netlist::{Netlist, Gate2};
//!
//! let mut nl = Netlist::new();
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let ab = nl.add_gate(Gate2::And, a, b);
//! let f = nl.add_gate(Gate2::Or, ab, c);
//! nl.add_output("f", f);
//! assert_eq!(nl.stats().gates, 2);
//! assert!(nl.eval_single("f", &[true, false, false]).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blif;
mod cost;
mod extract;
mod graph;
mod optimize;
mod report;
mod sim;

pub use blif::ParseBlifError;
pub use cost::{CostModel, NetlistStats};
pub use graph::{Gate, Gate2, Netlist, SignalId};
pub use report::ConeReport;
