//! The paper's area/delay cost model and netlist statistics.

use crate::graph::{Gate, Gate2, Netlist};

/// Area and delay figures per gate type.
///
/// Defaults follow §8 of the paper: "the ratio of area and delay of EXOR
/// and NOR is assumed to be 5/2 and 2.1/1.0 respectively". Inverters are
/// free (the paper counts only two-input gates; inverter polarity is
/// assumed absorbed into NAND/NOR-style cells).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostModel {
    /// Area of AND/OR/NAND/NOR gates.
    pub simple_area: f64,
    /// Area of XOR/XNOR gates.
    pub exor_area: f64,
    /// Area of an inverter.
    pub not_area: f64,
    /// Delay through AND/OR/NAND/NOR gates.
    pub simple_delay: f64,
    /// Delay through XOR/XNOR gates.
    pub exor_delay: f64,
    /// Delay through an inverter.
    pub not_delay: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            simple_area: 2.0,
            exor_area: 5.0,
            not_area: 0.0,
            simple_delay: 1.0,
            exor_delay: 2.1,
            not_delay: 0.0,
        }
    }
}

impl CostModel {
    /// Area of one two-input gate of type `op`.
    pub fn gate_area(&self, op: Gate2) -> f64 {
        if op.is_exor() {
            self.exor_area
        } else {
            self.simple_area
        }
    }

    /// Delay through one two-input gate of type `op`.
    pub fn gate_delay(&self, op: Gate2) -> f64 {
        if op.is_exor() {
            self.exor_delay
        } else {
            self.simple_delay
        }
    }
}

/// Summary statistics of a netlist — the columns of the paper's Table 2.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct NetlistStats {
    /// Number of primary inputs ("ins").
    pub inputs: usize,
    /// Number of primary outputs ("outs").
    pub outputs: usize,
    /// Number of live two-input gates ("gates").
    pub gates: usize,
    /// Number of live EXOR-family gates ("exors").
    pub exors: usize,
    /// Number of live inverters (not counted in `gates`).
    pub inverters: usize,
    /// Number of logic levels counting two-input gates ("cascades").
    pub cascades: usize,
    /// Total area under the cost model ("area").
    pub area: f64,
    /// Critical-path delay under the cost model ("delay").
    pub delay: f64,
}

impl NetlistStats {
    /// The statistics as a JSON object (one Table 2 row, used by the bench
    /// report writer).
    pub fn to_json(&self) -> obs::json::Json {
        obs::json::Json::obj()
            .field("inputs", self.inputs as u64)
            .field("outputs", self.outputs as u64)
            .field("gates", self.gates as u64)
            .field("exors", self.exors as u64)
            .field("inverters", self.inverters as u64)
            .field("cascades", self.cascades as u64)
            .field("area", self.area)
            .field("delay", self.delay)
    }
}

impl Netlist {
    /// Statistics under the default (paper) cost model.
    pub fn stats(&self) -> NetlistStats {
        self.stats_with(&CostModel::default())
    }

    /// Statistics under a custom cost model. Only logic reachable from the
    /// outputs is counted.
    pub fn stats_with(&self, model: &CostModel) -> NetlistStats {
        let live = self.live_signals();
        let mut stats = NetlistStats {
            inputs: self.inputs().len(),
            outputs: self.outputs().len(),
            ..Default::default()
        };
        // Per-signal (levels, delay) accumulated in topological order.
        let mut level = vec![0usize; self.nodes().len()];
        let mut arrival = vec![0f64; self.nodes().len()];
        for &s in &live {
            match *self.gate(s) {
                Gate::Input(_) | Gate::Const(_) => {}
                Gate::Not(a) => {
                    stats.inverters += 1;
                    stats.area += model.not_area;
                    level[s as usize] = level[a as usize];
                    arrival[s as usize] = arrival[a as usize] + model.not_delay;
                }
                Gate::Binary(op, a, b) => {
                    stats.gates += 1;
                    if op.is_exor() {
                        stats.exors += 1;
                    }
                    stats.area += model.gate_area(op);
                    level[s as usize] = 1 + level[a as usize].max(level[b as usize]);
                    arrival[s as usize] =
                        model.gate_delay(op) + arrival[a as usize].max(arrival[b as usize]);
                }
            }
        }
        for &(_, s) in self.outputs() {
            stats.cascades = stats.cascades.max(level[s as usize]);
            stats.delay = stats.delay.max(arrival[s as usize]);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Gate2;

    #[test]
    fn default_model_matches_paper_ratios() {
        let m = CostModel::default();
        assert_eq!(m.gate_area(Gate2::Xor) / m.gate_area(Gate2::Nor), 5.0 / 2.0);
        assert_eq!(m.gate_delay(Gate2::Xor) / m.gate_delay(Gate2::Nor), 2.1);
        assert_eq!(m.gate_area(Gate2::And), m.gate_area(Gate2::Nand));
    }

    #[test]
    fn stats_count_live_logic_only() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(Gate2::And, a, b);
        let f = nl.add_gate(Gate2::Xor, ab, c);
        let _dead = nl.add_gate(Gate2::Or, a, c);
        nl.add_output("f", f);
        let s = nl.stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 2, "dead OR gate not counted");
        assert_eq!(s.exors, 1);
        assert_eq!(s.cascades, 2);
        assert_eq!(s.area, 2.0 + 5.0);
        assert!((s.delay - (1.0 + 2.1)).abs() < 1e-12);
    }

    #[test]
    fn inverters_are_free_by_default_but_configurable() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let na = nl.add_not(a);
        let f = nl.add_gate(Gate2::And, na, b);
        nl.add_output("f", f);
        let s = nl.stats();
        assert_eq!(s.inverters, 1);
        assert_eq!(s.gates, 1);
        assert_eq!(s.area, 2.0);
        assert_eq!(s.cascades, 1, "inverters do not add levels");
        let custom = CostModel { not_area: 1.0, not_delay: 0.5, ..CostModel::default() };
        let s2 = nl.stats_with(&custom);
        assert_eq!(s2.area, 3.0);
        assert!((s2.delay - 1.5).abs() < 1e-12);
    }

    #[test]
    fn delay_takes_worst_path() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let x1 = nl.add_gate(Gate2::Xor, a, b); // 2.1
        let x2 = nl.add_gate(Gate2::Xor, x1, c); // 4.2
        let cheap = nl.add_gate(Gate2::And, c, d); // 1.0
        nl.add_output("slow", x2);
        nl.add_output("fast", cheap);
        let s = nl.stats();
        assert!((s.delay - 4.2).abs() < 1e-12);
        assert_eq!(s.cascades, 2);
    }

    #[test]
    fn empty_netlist_stats() {
        let nl = Netlist::new();
        let s = nl.stats();
        assert_eq!(s.gates, 0);
        assert_eq!(s.delay, 0.0);
    }
}
