//! BDD extraction: turning a netlist back into output BDDs.
//!
//! This is the substrate of the paper's BDD-based verifier ("The
//! correctness of the resulting networks has been tested using a BDD-based
//! verifier", §8): the netlist's output BDDs are compared against the
//! specification interval.

use bdd::{Bdd, Func};

use crate::graph::{Gate, Netlist};

impl Netlist {
    /// Computes the BDD of every primary output.
    ///
    /// Input `k` (in declaration order) maps to manager variable `k`.
    ///
    /// # Panics
    ///
    /// Panics if the manager has fewer variables than the netlist has
    /// inputs.
    pub fn to_bdds(&self, mgr: &mut Bdd) -> Vec<Func> {
        assert!(
            mgr.num_vars() >= self.inputs().len(),
            "manager needs at least {} variables",
            self.inputs().len()
        );
        let mut values: Vec<Func> = Vec::with_capacity(self.nodes().len());
        let mut next_input = 0u32;
        for gate in self.nodes() {
            let f = match *gate {
                Gate::Input(_) => {
                    let v = mgr.var(next_input);
                    next_input += 1;
                    v
                }
                Gate::Const(v) => mgr.constant(v),
                Gate::Not(a) => {
                    let fa = values[a as usize];
                    mgr.not(fa)
                }
                Gate::Binary(op, a, b) => {
                    let (fa, fb) = (values[a as usize], values[b as usize]);
                    match op {
                        crate::Gate2::And => mgr.and(fa, fb),
                        crate::Gate2::Or => mgr.or(fa, fb),
                        crate::Gate2::Xor => mgr.xor(fa, fb),
                        crate::Gate2::Nand => mgr.nand(fa, fb),
                        crate::Gate2::Nor => mgr.nor(fa, fb),
                        crate::Gate2::Xnor => mgr.xnor(fa, fb),
                    }
                }
            };
            values.push(f);
        }
        self.outputs().iter().map(|&(_, s)| values[s as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Gate2;

    #[test]
    fn extraction_matches_simulation() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let nb = nl.add_not(b);
        let anb = nl.add_gate(Gate2::And, a, nb);
        let f = nl.add_gate(Gate2::Xor, anb, c);
        let g = nl.add_gate(Gate2::Nor, a, c);
        nl.add_output("f", f);
        nl.add_output("g", g);
        let mut mgr = Bdd::new(3);
        let bdds = nl.to_bdds(&mut mgr);
        assert_eq!(bdds.len(), 2);
        for bits in 0..8u32 {
            let vals = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let sim = nl.eval_all(&vals);
            assert_eq!(mgr.eval(bdds[0], &vals), sim[0]);
            assert_eq!(mgr.eval(bdds[1], &vals), sim[1]);
        }
    }

    #[test]
    fn extraction_of_constant_output() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let na = nl.add_not(a);
        let zero = nl.add_gate(Gate2::And, a, na);
        nl.add_output("zero", zero);
        let mut mgr = Bdd::new(1);
        let bdds = nl.to_bdds(&mut mgr);
        assert!(bdds[0].is_zero());
    }
}
