//! Peephole netlist optimization: inverter folding.
//!
//! The paper's §9 lists "extending the algorithm to work with arbitrary
//! standard cell libraries" as future work. This module takes the first
//! step: absorbing inverters into the complement gate types
//! (`¬(a·b) → NAND`, `¬(a ⊕ b) → XNOR`, …), which re-expresses the same
//! network over the NAND/NOR/XNOR half of a standard-cell library and
//! eliminates inverter cells on internal edges.

use std::collections::HashMap;
use std::time::Instant;

use obs::json::Json;
use obs::Recorder;

use crate::graph::{Gate, Netlist, SignalId};

impl Netlist {
    /// Rebuilds the netlist with inverters folded into complement gates.
    ///
    /// Two local rewrites are applied until none fires:
    /// * an inverter whose fanin is a two-input gate becomes the
    ///   complement gate type (`Not(And(a,b))` → `Nand(a,b)`);
    /// * double inverters cancel (already guaranteed by construction, but
    ///   re-checked after the first rewrite creates new sharing).
    ///
    /// The result computes the same functions on the same outputs; only
    /// gate *types* and inverter counts change. When a folded gate's
    /// positive polarity is otherwise unused the original gate dies and
    /// the two-input gate count is unchanged; a signal used in *both*
    /// polarities keeps both gates (trading its inverter for a complement
    /// gate — the classic standard-cell win, since the inverter is a real
    /// cell there).
    pub fn fold_inverters(&self) -> Netlist {
        self.fold_inverters_with_recorder(None)
    }

    /// [`fold_inverters`](Netlist::fold_inverters) with pass telemetry:
    /// when a recorder is attached the rewrite runs inside a
    /// `netlist.fold_inverters` span, counts folded inverters on
    /// `netlist.inverters_folded`, and emits one `netlist.fold_inverters`
    /// point with before/after gate and inverter counts.
    pub fn fold_inverters_with_recorder(&self, recorder: Option<&Recorder>) -> Netlist {
        let span = recorder.map(|r| r.span("netlist.fold_inverters"));
        let start = Instant::now();
        let mut folded_count: u64 = 0;
        let mut out = Netlist::new();
        let mut map: HashMap<SignalId, SignalId> = HashMap::new();
        for (idx, gate) in self.nodes().iter().enumerate() {
            let s = idx as SignalId;
            let new = match gate {
                Gate::Input(name) => out.add_input(name.clone()),
                Gate::Const(v) => out.constant(*v),
                Gate::Binary(op, a, b) => {
                    let (fa, fb) = (map[a], map[b]);
                    out.add_gate(*op, fa, fb)
                }
                Gate::Not(a) => {
                    let fa = map[a];
                    // Fold into the driving gate when it is binary.
                    match *out.gate(fa) {
                        Gate::Binary(op, x, y) => {
                            folded_count += 1;
                            out.add_gate(op.complement(), x, y)
                        }
                        _ => out.add_not(fa),
                    }
                }
            };
            map.insert(s, new);
        }
        for (name, s) in self.outputs() {
            out.add_output(name.clone(), map[s]);
        }
        if let Some(rec) = recorder {
            let before = self.stats();
            let after = out.stats();
            rec.count("netlist.inverters_folded", folded_count);
            rec.point(
                "netlist.fold_inverters",
                Json::obj()
                    .field("gates_before", before.gates as u64)
                    .field("gates_after", after.gates as u64)
                    .field("inverters_before", before.inverters as u64)
                    .field("inverters_after", after.inverters as u64)
                    .field("folded", folded_count)
                    .field("elapsed_s", start.elapsed().as_secs_f64()),
            );
        }
        drop(span);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Gate2;

    fn equivalent(a: &Netlist, b: &Netlist) -> bool {
        let n = a.inputs().len();
        assert!(n <= 10);
        (0..1u64 << n).all(|m| {
            let vals: Vec<bool> = (0..n).map(|k| m & (1 << k) != 0).collect();
            a.eval_all(&vals) == b.eval_all(&vals)
        })
    }

    #[test]
    fn not_of_and_becomes_nand() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(Gate2::And, a, b);
        let ng = nl.add_not(g);
        nl.add_output("f", ng);
        let folded = nl.fold_inverters();
        assert!(equivalent(&nl, &folded));
        assert_eq!(folded.stats().inverters, 0);
        assert_eq!(folded.stats().gates, 1);
        let out = folded.outputs()[0].1;
        assert!(matches!(folded.gate(out), Gate::Binary(Gate2::Nand, _, _)));
    }

    #[test]
    fn all_complement_pairs_fold() {
        for (op, complement) in [
            (Gate2::And, Gate2::Nand),
            (Gate2::Or, Gate2::Nor),
            (Gate2::Xor, Gate2::Xnor),
            (Gate2::Nand, Gate2::And),
            (Gate2::Nor, Gate2::Or),
            (Gate2::Xnor, Gate2::Xor),
        ] {
            let mut nl = Netlist::new();
            let a = nl.add_input("a");
            let b = nl.add_input("b");
            let g = nl.add_gate(op, a, b);
            let ng = nl.add_not(g);
            nl.add_output("f", ng);
            let folded = nl.fold_inverters();
            assert!(equivalent(&nl, &folded), "{op}");
            let out = folded.outputs()[0].1;
            match folded.gate(out) {
                Gate::Binary(got, _, _) => assert_eq!(*got, complement, "{op}"),
                other => panic!("expected a binary gate, got {other:?}"),
            }
        }
    }

    #[test]
    fn input_inverters_stay() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let na = nl.add_not(a);
        nl.add_output("f", na);
        let folded = nl.fold_inverters();
        assert!(equivalent(&nl, &folded));
        assert_eq!(folded.stats().inverters, 1, "nothing to fold into");
    }

    #[test]
    fn shared_gate_with_both_polarities_keeps_sharing() {
        // f = a·b, g = ¬(a·b): folding creates a NAND but the AND is still
        // needed for f — both must exist, no equivalence is broken.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ab = nl.add_gate(Gate2::And, a, b);
        let nab = nl.add_not(ab);
        nl.add_output("f", ab);
        nl.add_output("g", nab);
        let folded = nl.fold_inverters();
        assert!(equivalent(&nl, &folded));
        assert_eq!(folded.stats().inverters, 0);
        assert_eq!(folded.stats().gates, 2, "AND and NAND both live");
    }

    #[test]
    fn folding_reports_pass_telemetry() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(Gate2::And, a, b);
        let ng = nl.add_not(g);
        nl.add_output("f", ng);
        let rec = Recorder::new();
        let sink = obs::MemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        let folded = nl.fold_inverters_with_recorder(Some(&rec));
        assert!(equivalent(&nl, &folded));
        assert_eq!(rec.counter("netlist.inverters_folded"), 1);
        let events = sink.events();
        assert!(events.iter().any(
            |e| matches!(e, obs::Event::SpanEnd { name, .. } if name == "netlist.fold_inverters")
        ));
        let point = events
            .iter()
            .find_map(|e| match e {
                obs::Event::Point { name, fields } if name == "netlist.fold_inverters" => {
                    Some(fields)
                }
                _ => None,
            })
            .expect("pass summary point");
        assert_eq!(point.get("inverters_before").and_then(Json::as_f64), Some(1.0));
        assert_eq!(point.get("inverters_after").and_then(Json::as_f64), Some(0.0));
        assert_eq!(point.get("folded").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn folding_never_increases_gate_count_on_decomposition_output() {
        // A slightly larger structural case built by hand.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(Gate2::And, a, b);
        let nab = nl.add_not(ab);
        let t = nl.add_gate(Gate2::Or, nab, c);
        let nt = nl.add_not(t);
        let u = nl.add_gate(Gate2::Xor, nt, a);
        nl.add_output("f", u);
        let folded = nl.fold_inverters();
        assert!(equivalent(&nl, &folded));
        assert!(folded.stats().gates <= nl.stats().gates);
        assert!(folded.stats().inverters < nl.stats().inverters);
    }
}
