//! Reporting helpers: gate histograms, per-output cones, DOT export.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use crate::cost::CostModel;
use crate::graph::{Gate, Gate2, Netlist, SignalId};

impl Netlist {
    /// Live gate counts per two-input gate type.
    pub fn gate_histogram(&self) -> HashMap<Gate2, usize> {
        let mut histogram = HashMap::new();
        for &s in &self.live_signals() {
            if let Gate::Binary(op, _, _) = self.gate(s) {
                *histogram.entry(*op).or_insert(0) += 1;
            }
        }
        histogram
    }

    /// The transitive fanin cone of one signal (gates only), plus its
    /// depth in two-input gates — the per-output view of
    /// [`stats`](Netlist::stats).
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn cone(&self, signal: SignalId) -> ConeReport {
        let mut seen: HashSet<SignalId> = HashSet::new();
        let mut stack = vec![signal];
        let mut gates = 0;
        let mut exors = 0;
        let mut inputs = HashSet::new();
        while let Some(s) = stack.pop() {
            if !seen.insert(s) {
                continue;
            }
            match *self.gate(s) {
                Gate::Input(_) => {
                    inputs.insert(s);
                }
                Gate::Const(_) => {}
                Gate::Not(a) => stack.push(a),
                Gate::Binary(op, a, b) => {
                    gates += 1;
                    if op.is_exor() {
                        exors += 1;
                    }
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        // Depth by a second, topological pass over the cone (signal ids
        // are created fanin-first, so ascending order is topological).
        let mut level: HashMap<SignalId, usize> = HashMap::new();
        for s in 0..=signal {
            if !seen.contains(&s) {
                continue;
            }
            let l = match *self.gate(s) {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Not(a) => level.get(&a).copied().unwrap_or(0),
                Gate::Binary(_, a, b) => {
                    1 + level.get(&a).copied().unwrap_or(0).max(level.get(&b).copied().unwrap_or(0))
                }
            };
            level.insert(s, l);
        }
        ConeReport {
            gates,
            exors,
            depth: level.get(&signal).copied().unwrap_or(0),
            support: inputs.len(),
        }
    }

    /// Renders the live netlist as a Graphviz `digraph` (inputs as boxes,
    /// gates labelled by type, outputs as plaintext tags).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        out.push_str("  rankdir=LR;\n");
        for &s in &self.live_signals() {
            match self.gate(s) {
                Gate::Input(n) => {
                    let _ = writeln!(out, "  n{s} [label=\"{n}\", shape=box];");
                }
                Gate::Const(v) => {
                    let _ = writeln!(out, "  n{s} [label=\"{}\", shape=box];", u8::from(*v));
                }
                Gate::Not(a) => {
                    let _ = writeln!(out, "  n{s} [label=\"not\", shape=invtriangle];");
                    let _ = writeln!(out, "  n{a} -> n{s};");
                }
                Gate::Binary(op, a, b) => {
                    let _ = writeln!(out, "  n{s} [label=\"{op}\", shape=ellipse];");
                    let _ = writeln!(out, "  n{a} -> n{s};");
                    let _ = writeln!(out, "  n{b} -> n{s};");
                }
            }
        }
        for (oname, s) in self.outputs() {
            let _ = writeln!(out, "  out_{oname} [label=\"{oname}\", shape=plaintext];");
            let _ = writeln!(out, "  n{s} -> out_{oname};");
        }
        out.push_str("}\n");
        out
    }

    /// One-line human-readable summary, e.g. for example binaries.
    pub fn summary(&self) -> String {
        let s = self.stats_with(&CostModel::default());
        format!(
            "{} in / {} out, {} gates ({} exor, {} inv), {} levels, area {}, delay {:.1}",
            s.inputs, s.outputs, s.gates, s.exors, s.inverters, s.cascades, s.area, s.delay
        )
    }
}

/// Per-output cone measurements (see [`Netlist::cone`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConeReport {
    /// Two-input gates in the cone.
    pub gates: usize,
    /// EXOR-family gates among them.
    pub exors: usize,
    /// Depth of the cone in two-input gates.
    pub depth: usize,
    /// Number of primary inputs the cone reaches.
    pub support: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(Gate2::And, a, b);
        let f = nl.add_gate(Gate2::Xor, ab, c);
        let g = nl.add_gate(Gate2::Nor, a, c);
        nl.add_output("f", f);
        nl.add_output("g", g);
        nl
    }

    #[test]
    fn histogram_counts_by_type() {
        let nl = sample();
        let h = nl.gate_histogram();
        assert_eq!(h.get(&Gate2::And), Some(&1));
        assert_eq!(h.get(&Gate2::Xor), Some(&1));
        assert_eq!(h.get(&Gate2::Nor), Some(&1));
        assert_eq!(h.get(&Gate2::Or), None);
        assert_eq!(h.values().sum::<usize>(), nl.stats().gates);
    }

    #[test]
    fn cone_measurements() {
        let nl = sample();
        let f = nl.outputs()[0].1;
        let cone = nl.cone(f);
        assert_eq!(cone.gates, 2);
        assert_eq!(cone.exors, 1);
        assert_eq!(cone.depth, 2);
        assert_eq!(cone.support, 3);
        let g = nl.outputs()[1].1;
        let cone = nl.cone(g);
        assert_eq!(cone.gates, 1);
        assert_eq!(cone.support, 2);
        assert_eq!(cone.depth, 1);
    }

    #[test]
    fn dot_mentions_everything() {
        let nl = sample();
        let dot = nl.to_dot("sample");
        assert!(dot.starts_with("digraph sample"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"xor\""));
        assert!(dot.contains("out_f"));
        assert!(dot.contains("out_g"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn summary_is_informative() {
        let nl = sample();
        let s = nl.summary();
        assert!(s.contains("3 in / 2 out"));
        assert!(s.contains("3 gates (1 exor"));
    }
}
