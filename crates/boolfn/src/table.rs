//! The dense truth-table representation.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Maximum variables a [`TruthTable`] supports (2^24 bits = 2 MiB).
pub const MAX_TT_VARS: usize = 24;

/// A completely specified Boolean function of `n ≤ 24` variables, stored as
/// a dense bitset with one bit per minterm.
///
/// Minterm index convention: bit `k` of the index is the value of variable
/// `x_k` (so variable 0 is the least significant input bit).
///
/// All the standard operators are provided both as methods and as `&`/`|`/
/// `^`/`!` operator overloads on references.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// The constant-false function of `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 24`.
    pub fn zeros(num_vars: usize) -> Self {
        assert!(num_vars <= MAX_TT_VARS, "at most {MAX_TT_VARS} truth-table variables");
        let bits = 1usize << num_vars;
        TruthTable { num_vars, words: vec![0; bits.div_ceil(64)] }
    }

    /// The constant-true function of `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 24`.
    pub fn ones(num_vars: usize) -> Self {
        let mut t = Self::zeros(num_vars);
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.mask_tail();
        t
    }

    /// Builds a function by evaluating `f` on every minterm index.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 24`.
    pub fn from_fn(num_vars: usize, mut f: impl FnMut(u32) -> bool) -> Self {
        let mut t = Self::zeros(num_vars);
        for m in 0..(1u32 << num_vars) {
            if f(m) {
                t.set(m, true);
            }
        }
        t
    }

    /// The projection function `x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars` or `num_vars > 24`.
    pub fn var(num_vars: usize, v: usize) -> Self {
        assert!(v < num_vars, "variable x{v} out of range");
        Self::from_fn(num_vars, |m| m & (1 << v) != 0)
    }

    /// A pseudo-random function with on-set density `density`, generated
    /// from `seed` by a splitmix64 stream (reproducible, dependency-free).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 24` or `density` is outside `[0, 1]`.
    pub fn random(num_vars: usize, density: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        let threshold = (density * u32::MAX as f64) as u64;
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self::from_fn(num_vars, |_| (next() & 0xffff_ffff) <= threshold)
    }

    /// Number of variables of the function's domain.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Value at the minterm whose bits encode the input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `minterm >= 2^num_vars`.
    pub fn get(&self, minterm: u32) -> bool {
        assert!((minterm as usize) < (1usize << self.num_vars), "minterm out of range");
        self.words[(minterm / 64) as usize] & (1u64 << (minterm % 64)) != 0
    }

    /// Sets the value at a minterm.
    ///
    /// # Panics
    ///
    /// Panics if `minterm >= 2^num_vars`.
    pub fn set(&mut self, minterm: u32, value: bool) {
        assert!((minterm as usize) < (1usize << self.num_vars), "minterm out of range");
        let (w, b) = ((minterm / 64) as usize, 1u64 << (minterm % 64));
        if value {
            self.words[w] |= b;
        } else {
            self.words[w] &= !b;
        }
    }

    /// Number of satisfying minterms.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff the function is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` iff the function is constant true.
    pub fn is_one(&self) -> bool {
        self.count_ones() == 1usize << self.num_vars
    }

    /// Iterates over the indices of the satisfying minterms.
    pub fn minterms(&self) -> impl Iterator<Item = u32> + '_ {
        (0..1u32 << self.num_vars).filter(|&m| self.get(m))
    }

    /// Pointwise conjunction.
    ///
    /// # Panics
    ///
    /// Panics if the argument has a different number of variables.
    pub fn and(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & b)
    }

    /// Pointwise disjunction.
    ///
    /// # Panics
    ///
    /// Panics if the argument has a different number of variables.
    pub fn or(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a | b)
    }

    /// Pointwise exclusive or.
    ///
    /// # Panics
    ///
    /// Panics if the argument has a different number of variables.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a ^ b)
    }

    /// Pointwise difference `self · ¬other` (Boolean SHARP).
    ///
    /// # Panics
    ///
    /// Panics if the argument has a different number of variables.
    pub fn diff(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & !b)
    }

    /// Pointwise complement.
    pub fn complement(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// `true` iff `self ≤ other` pointwise (implication holds everywhere).
    pub fn implies(&self, other: &Self) -> bool {
        self.diff(other).is_zero()
    }

    /// `true` iff the two functions share no minterm.
    pub fn disjoint(&self, other: &Self) -> bool {
        self.and(other).is_zero()
    }

    /// Shannon cofactor w.r.t. `x_v = value`, keeping the same domain
    /// arity (the cofactor simply no longer depends on `x_v`).
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars`.
    pub fn cofactor(&self, v: usize, value: bool) -> Self {
        assert!(v < self.num_vars, "variable x{v} out of range");
        Self::from_fn(self.num_vars, |m| {
            let fixed = if value { m | (1 << v) } else { m & !(1 << v) };
            self.get(fixed)
        })
    }

    /// Existential quantification over the variables whose bits are set in
    /// `var_mask`.
    pub fn exists(&self, var_mask: u32) -> Self {
        self.quantify(var_mask, true)
    }

    /// Universal quantification over the variables whose bits are set in
    /// `var_mask`.
    pub fn forall(&self, var_mask: u32) -> Self {
        self.quantify(var_mask, false)
    }

    fn quantify(&self, var_mask: u32, existential: bool) -> Self {
        let mut out = self.clone();
        for v in 0..self.num_vars {
            if var_mask & (1 << v) != 0 {
                let c0 = out.cofactor(v, false);
                let c1 = out.cofactor(v, true);
                out = if existential { c0.or(&c1) } else { c0.and(&c1) };
            }
        }
        out
    }

    /// Functional composition: substitutes `g` for `x_v`, i.e.
    /// `f[x_v := g] = g·f|_{x_v=1} + ¬g·f|_{x_v=0}`.
    ///
    /// Serves as the enumeration oracle for `Bdd::compose` in the
    /// differential fuzz harness.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars` or the arities differ.
    pub fn compose(&self, v: usize, g: &Self) -> Self {
        assert!(v < self.num_vars, "variable x{v} out of range");
        let c1 = self.cofactor(v, true);
        let c0 = self.cofactor(v, false);
        g.and(&c1).or(&g.complement().and(&c0))
    }

    /// `true` iff the function does not depend on `x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars`.
    pub fn independent_of(&self, v: usize) -> bool {
        self.cofactor(v, false) == self.cofactor(v, true)
    }

    /// Bitmask of the variables the function semantically depends on.
    pub fn support_mask(&self) -> u32 {
        let mut mask = 0;
        for v in 0..self.num_vars {
            if !self.independent_of(v) {
                mask |= 1 << v;
            }
        }
        mask
    }

    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(
            self.num_vars, other.num_vars,
            "operands must have the same number of variables"
        );
        let words = self.words.iter().zip(&other.words).map(|(&a, &b)| f(a, b)).collect();
        let mut out = TruthTable { num_vars: self.num_vars, words };
        out.mask_tail();
        out
    }

    fn mask_tail(&mut self) {
        let bits = 1usize << self.num_vars;
        if !bits.is_multiple_of(64) {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << (bits % 64)) - 1;
        }
    }
}

impl Not for &TruthTable {
    type Output = TruthTable;

    fn not(self) -> TruthTable {
        self.complement()
    }
}

impl BitAnd for &TruthTable {
    type Output = TruthTable;

    fn bitand(self, rhs: Self) -> TruthTable {
        self.and(rhs)
    }
}

impl BitOr for &TruthTable {
    type Output = TruthTable;

    fn bitor(self, rhs: Self) -> TruthTable {
        self.or(rhs)
    }
}

impl BitXor for &TruthTable {
    type Output = TruthTable;

    fn bitxor(self, rhs: Self) -> TruthTable {
        self.xor(rhs)
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, {} ones)", self.num_vars, self.count_ones())
    }
}

impl fmt::Display for TruthTable {
    /// Prints the function as a binary string, minterm `0` first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in 0..1u32 << self.num_vars {
            write!(f, "{}", u8::from(self.get(m)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let z = TruthTable::zeros(3);
        let o = TruthTable::ones(3);
        assert!(z.is_zero() && !z.is_one());
        assert!(o.is_one() && !o.is_zero());
        assert_eq!(o.count_ones(), 8);
        assert_eq!(z.complement(), o);
    }

    #[test]
    fn ones_masks_tail_bits() {
        let o = TruthTable::ones(3);
        assert_eq!(o.count_ones(), 8, "only 8 of 64 word bits may be set");
        let o7 = TruthTable::ones(7);
        assert_eq!(o7.count_ones(), 128);
    }

    #[test]
    fn compose_substitutes_pointwise() {
        // Check f[x_v := g](m) == f(m with bit v replaced by g(m)) on
        // random functions.
        for seed in 0..10u64 {
            let n = 4;
            let f = TruthTable::random(n, 0.5, seed);
            let g = TruthTable::random(n, 0.4, seed ^ 0xabcd);
            for v in 0..n {
                let h = f.compose(v, &g);
                for m in 0..(1u32 << n) {
                    let bit = g.get(m);
                    let fixed = if bit { m | (1 << v) } else { m & !(1 << v) };
                    assert_eq!(h.get(m), f.get(fixed), "seed {seed} v {v} m {m}");
                }
            }
        }
    }

    #[test]
    fn compose_identity_and_constants() {
        let f = TruthTable::random(3, 0.5, 99);
        let x1 = TruthTable::var(3, 1);
        assert_eq!(f.compose(1, &x1), f, "substituting x_v for itself is identity");
        assert_eq!(f.compose(1, &TruthTable::ones(3)), f.cofactor(1, true));
        assert_eq!(f.compose(1, &TruthTable::zeros(3)), f.cofactor(1, false));
    }

    #[test]
    fn var_projection() {
        let x1 = TruthTable::var(3, 1);
        assert_eq!(x1.count_ones(), 4);
        assert!(x1.get(0b010));
        assert!(!x1.get(0b101));
    }

    #[test]
    fn operators_match_pointwise() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        for m in 0..8 {
            let (va, vb) = (m & 1 != 0, m & 2 != 0);
            assert_eq!((&a & &b).get(m), va && vb);
            assert_eq!((&a | &b).get(m), va || vb);
            assert_eq!((&a ^ &b).get(m), va ^ vb);
            assert_eq!((!&a).get(m), !va);
            assert_eq!(a.diff(&b).get(m), va && !vb);
        }
    }

    #[test]
    fn implication_and_disjointness() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let ab = a.and(&b);
        assert!(ab.implies(&a));
        assert!(!a.implies(&ab));
        assert!(a.disjoint(&a.complement()));
    }

    #[test]
    fn cofactor_and_independence() {
        let a = TruthTable::var(3, 0);
        let c = TruthTable::var(3, 2);
        let f = a.or(&c);
        let f_c1 = f.cofactor(2, true);
        assert!(f_c1.is_one());
        let f_c0 = f.cofactor(2, false);
        assert_eq!(f_c0, a);
        assert!(f_c0.independent_of(2));
        assert!(!f.independent_of(0));
        assert!(f.independent_of(1));
        assert_eq!(f.support_mask(), 0b101);
    }

    #[test]
    fn quantifiers() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let f = a.and(&b);
        assert_eq!(f.exists(0b001), b);
        assert!(f.forall(0b001).is_zero());
        assert!(f.exists(0b011).is_one());
        assert_eq!(f.exists(0), f);
    }

    #[test]
    fn random_is_reproducible_and_density_scales() {
        let f1 = TruthTable::random(10, 0.3, 42);
        let f2 = TruthTable::random(10, 0.3, 42);
        assert_eq!(f1, f2);
        let sparse = TruthTable::random(12, 0.05, 7).count_ones();
        let dense = TruthTable::random(12, 0.95, 7).count_ones();
        assert!(sparse < dense);
        assert!(TruthTable::random(8, 0.0, 1).is_zero());
        assert!(TruthTable::random(8, 1.0, 1).is_one());
    }

    #[test]
    fn display_binary_string() {
        let x0 = TruthTable::var(2, 0);
        assert_eq!(x0.to_string(), "0101");
    }

    #[test]
    #[should_panic(expected = "same number of variables")]
    fn arity_mismatch_panics() {
        let a = TruthTable::zeros(2);
        let b = TruthTable::zeros(3);
        let _ = a.and(&b);
    }

    #[test]
    fn minterm_iteration() {
        let f = TruthTable::from_fn(3, |m| m == 1 || m == 6);
        assert_eq!(f.minterms().collect::<Vec<_>>(), vec![1, 6]);
    }
}
