//! Conversions between truth tables and BDDs.

use bdd::{Bdd, Func};

use crate::TruthTable;

impl TruthTable {
    /// Builds the BDD of this function in `mgr`.
    ///
    /// Variable `x_k` of the table maps to manager variable `k`.
    ///
    /// # Panics
    ///
    /// Panics if the manager has fewer variables than the table.
    pub fn to_bdd(&self, mgr: &mut Bdd) -> Func {
        assert!(
            mgr.num_vars() >= self.num_vars(),
            "manager must have at least {} variables",
            self.num_vars()
        );
        self.to_bdd_range(mgr, 0, 0)
    }

    /// Recursive Shannon construction over variables `[var..num_vars)`;
    /// `base` holds the already fixed low-order input bits. `ite` tolerates
    /// any construction order, so we simply expand `x_var` at each step.
    /// Exponential in `num_vars` — intended for test-scale functions.
    fn to_bdd_range(&self, mgr: &mut Bdd, var: usize, base: u32) -> Func {
        if var == self.num_vars() {
            return mgr.constant(self.get(base));
        }
        let low = self.to_bdd_range(mgr, var + 1, base);
        let high = self.to_bdd_range(mgr, var + 1, base | (1 << var));
        let x = mgr.var(var as u32);
        mgr.ite(x, high, low)
    }

    /// Reads a BDD back into a dense table over the first
    /// `num_vars` manager variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 24` or if `f` depends on a variable
    /// `>= num_vars`.
    pub fn from_bdd(mgr: &Bdd, f: Func, num_vars: usize) -> Self {
        let support = mgr.support(f);
        if let Some(max) = support.iter().max() {
            assert!(
                (max as usize) < num_vars,
                "function depends on x{max}, beyond the requested {num_vars} variables"
            );
        }
        TruthTable::from_fn(num_vars, |m| {
            let assignment: Vec<bool> = (0..num_vars).map(|k| m & (1 << k) != 0).collect();
            mgr.eval(f, &assignment)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_bdd() {
        for seed in 0..6 {
            let f = TruthTable::random(6, 0.4, seed);
            let mut mgr = Bdd::new(6);
            let g = f.to_bdd(&mut mgr);
            let back = TruthTable::from_bdd(&mgr, g, 6);
            assert_eq!(back, f, "seed {seed}");
        }
    }

    #[test]
    fn operators_commute_with_conversion() {
        let a = TruthTable::random(5, 0.5, 1);
        let b = TruthTable::random(5, 0.5, 2);
        let mut mgr = Bdd::new(5);
        let fa = a.to_bdd(&mut mgr);
        let fb = b.to_bdd(&mut mgr);
        let cases: Vec<(TruthTable, Func)> = vec![
            (a.and(&b), mgr.and(fa, fb)),
            (a.or(&b), mgr.or(fa, fb)),
            (a.xor(&b), mgr.xor(fa, fb)),
            (a.complement(), mgr.not(fa)),
            (a.diff(&b), mgr.diff(fa, fb)),
        ];
        for (tt, f) in cases {
            assert_eq!(TruthTable::from_bdd(&mgr, f, 5), tt);
        }
    }

    #[test]
    fn quantifiers_commute_with_conversion() {
        let t = TruthTable::random(5, 0.5, 9);
        let mut mgr = Bdd::new(5);
        let f = t.to_bdd(&mut mgr);
        let mask = 0b01101u32;
        let vars: bdd::VarSet = (0..5u32).filter(|v| mask & (1 << v) != 0).collect();
        let ex = mgr.exists_set(f, &vars);
        let all = mgr.forall_set(f, &vars);
        assert_eq!(TruthTable::from_bdd(&mgr, ex, 5), t.exists(mask));
        assert_eq!(TruthTable::from_bdd(&mgr, all, 5), t.forall(mask));
    }

    #[test]
    fn constants_convert() {
        let mut mgr = Bdd::new(3);
        let z = TruthTable::zeros(3).to_bdd(&mut mgr);
        assert!(z.is_zero());
        let o = TruthTable::ones(3).to_bdd(&mut mgr);
        assert!(o.is_one());
    }

    #[test]
    #[should_panic(expected = "beyond the requested")]
    fn from_bdd_rejects_larger_support() {
        let mut mgr = Bdd::new(5);
        let f = mgr.var(4);
        let _ = TruthTable::from_bdd(&mgr, f, 3);
    }
}
