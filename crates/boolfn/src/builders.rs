//! Named function families used throughout the benchmarks and tests.

use crate::TruthTable;

/// Totally symmetric function: the output depends only on the number of
/// input bits set; `values[k]` is the output when exactly `k` inputs are 1.
///
/// # Panics
///
/// Panics if `values.len() != num_vars + 1` or `num_vars > 24`.
///
/// ```
/// // 3-input majority as a symmetric function.
/// let maj = boolfn::builders::symmetric(3, &[false, false, true, true]);
/// assert_eq!(maj.count_ones(), 4);
/// ```
pub fn symmetric(num_vars: usize, values: &[bool]) -> TruthTable {
    assert_eq!(
        values.len(),
        num_vars + 1,
        "need one output value per possible ones-count (0..={num_vars})"
    );
    TruthTable::from_fn(num_vars, |m| values[m.count_ones() as usize])
}

/// Symmetric function from a polarity string like `"0000111101111110"`,
/// character `k` giving the output for ones-count `k`.
///
/// This is the encoding the paper uses for **16Sym8**: "a 16-variable
/// totally symmetric function with polarity 0000111101111110". A 16-bit
/// string covers counts 0..=15; if the string is one short of
/// `num_vars + 1`, the final count defaults to `0`.
///
/// # Panics
///
/// Panics if the string contains characters other than `0`/`1` or has an
/// incompatible length.
pub fn symmetric_from_polarity(num_vars: usize, polarity: &str) -> TruthTable {
    let mut values: Vec<bool> = polarity
        .chars()
        .map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("polarity string must be binary, found {other:?}"),
        })
        .collect();
    if values.len() == num_vars {
        values.push(false);
    }
    symmetric(num_vars, &values)
}

/// The MCNC benchmark **9sym**: 9 inputs, output 1 iff between 3 and 6
/// inputs are 1. (Public definition; implemented exactly.)
pub fn sym9() -> TruthTable {
    symmetric(9, &[false, false, false, true, true, true, true, false, false, false])
}

/// The paper's **16Sym8** workload: 16 variables, polarity
/// `0000111101111110` over the ones-count.
pub fn sym16_8() -> TruthTable {
    symmetric_from_polarity(16, "0000111101111110")
}

/// Odd parity of `num_vars` inputs.
pub fn parity(num_vars: usize) -> TruthTable {
    TruthTable::from_fn(num_vars, |m| m.count_ones() % 2 == 1)
}

/// Majority of `num_vars` inputs (ties, for even arity, count as false).
pub fn majority(num_vars: usize) -> TruthTable {
    TruthTable::from_fn(num_vars, |m| m.count_ones() as usize * 2 > num_vars)
}

/// Threshold function: 1 iff at least `k` inputs are 1.
pub fn threshold(num_vars: usize, k: usize) -> TruthTable {
    TruthTable::from_fn(num_vars, |m| m.count_ones() as usize >= k)
}

/// The **rd73/rd84 family**: output bit `bit` of the binary count of ones
/// of `num_vars` inputs. rd73 = bits 0..3 of a 7-input count; rd84 = bits
/// 0..4 of an 8-input count. (Public definition; implemented exactly.)
pub fn rate_bit(num_vars: usize, bit: usize) -> TruthTable {
    TruthTable::from_fn(num_vars, |m| m.count_ones() & (1 << bit) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_is_symmetric() {
        let f = symmetric(4, &[true, false, true, false, true]);
        // Swapping any two inputs must not change the output.
        for m in 0..16u32 {
            let swapped = (m & !0b11) | ((m & 1) << 1) | ((m >> 1) & 1);
            assert_eq!(f.get(m), f.get(swapped));
        }
    }

    #[test]
    fn sym9_counts() {
        let f = sym9();
        assert_eq!(f.num_vars(), 9);
        // Number of minterms: sum of C(9,k) for k in 3..=6.
        let expected: usize = [3usize, 4, 5, 6]
            .iter()
            .map(|&k| (0..1u32 << 9).filter(|m| m.count_ones() as usize == k).count())
            .sum();
        assert_eq!(f.count_ones(), expected);
        assert_eq!(expected, 84 + 126 + 126 + 84);
    }

    #[test]
    fn sym16_polarity_matches() {
        let f = sym16_8();
        let polarity = "0000111101111110";
        for count in 0..=15u32 {
            let m = (1u32 << count) - 1; // `count` low bits set
            let expected = polarity.as_bytes()[count as usize] == b'1';
            assert_eq!(f.get(m), expected, "count {count}");
        }
        assert!(!f.get(u16::MAX as u32), "count 16 defaults to 0");
    }

    #[test]
    fn parity_and_majority() {
        assert_eq!(parity(3).count_ones(), 4);
        assert!(parity(3).get(0b111));
        assert!(!parity(3).get(0b110));
        let maj = majority(3);
        assert!(maj.get(0b011) && maj.get(0b111));
        assert!(!maj.get(0b001));
        assert_eq!(threshold(4, 0), TruthTable::ones(4));
        assert_eq!(threshold(4, 5), TruthTable::zeros(4));
    }

    #[test]
    fn rate_bits_encode_count() {
        for m in 0..(1u32 << 7) {
            let count = m.count_ones();
            for bit in 0..3 {
                assert_eq!(rate_bit(7, bit).get(m), count & (1 << bit) != 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one output value per possible ones-count")]
    fn symmetric_wrong_length_panics() {
        let _ = symmetric(3, &[true, false]);
    }

    #[test]
    #[should_panic(expected = "must be binary")]
    fn polarity_rejects_non_binary() {
        let _ = symmetric_from_polarity(4, "01x10");
    }
}
