//! Dense truth-table Boolean functions and brute-force oracles.
//!
//! This crate is the *independent referee* of the reproduction: it
//! implements Boolean functions the dumb, obviously-correct way (one bit
//! per minterm) so the BDD engine and all the decomposability theorems of
//! the paper can be cross-checked against enumeration semantics rather
//! than against themselves.
//!
//! ```
//! use boolfn::TruthTable;
//!
//! // f(a, b, c) = a·b + c, built by enumeration.
//! let f = TruthTable::from_fn(3, |bits| (bits & 0b011) == 0b011 || bits & 0b100 != 0);
//! assert_eq!(f.count_ones(), 5);
//! let g = f.cofactor(2, false);
//! assert_eq!(g.count_ones(), 2); // a·b over the remaining space
//! ```
//!
//! Contents:
//! * [`TruthTable`] — up to 24-variable dense functions with the full
//!   operator set, quantification and cofactors.
//! * [`builders`] — symmetric functions, parity, majority, and the other
//!   named function families used by the benchmarks.
//! * [`oracle`] — enumeration-based decomposability deciders for OR-, AND-
//!   and EXOR-bi-decomposition (Sections 3–4 of the paper), used by the
//!   test suites of the `bidecomp` crate.
//! * BDD interop: [`TruthTable::to_bdd`] and [`TruthTable::from_bdd`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
mod convert;
pub mod oracle;
mod table;

pub use table::TruthTable;
