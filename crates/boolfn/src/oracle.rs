//! Enumeration-based decomposability oracles.
//!
//! These deciders answer "is the ISF `(Q, R)` bi-decomposable with variable
//! sets `(X_A, X_B)`?" by working directly from the *definition*
//! (existence of component functions), not from the paper's quantified
//! formulas — which makes them a fair referee for the BDD implementations
//! in the `bidecomp` crate.
//!
//! Variable sets are bitmasks over the table's variables. An ISF is a pair
//! of disjoint truth tables: on-set `Q`, off-set `R` (minterms in neither
//! are don't-cares).

use crate::TruthTable;

/// Checks the bitmask preconditions shared by all deciders.
///
/// # Panics
///
/// Panics if `q` and `r` overlap, have different arities, or the variable
/// sets overlap.
fn validate(q: &TruthTable, r: &TruthTable, xa: u32, xb: u32) {
    assert_eq!(q.num_vars(), r.num_vars(), "Q and R must share a domain");
    assert!(q.disjoint(r), "on-set and off-set of an ISF must be disjoint");
    assert_eq!(xa & xb, 0, "X_A and X_B must be disjoint");
    let all = if q.num_vars() == 32 { u32::MAX } else { (1u32 << q.num_vars()) - 1 };
    assert_eq!(xa & !all, 0, "X_A mentions variables outside the domain");
    assert_eq!(xb & !all, 0, "X_B mentions variables outside the domain");
}

/// Is `(Q, R)` OR-bi-decomposable with sets `(X_A, X_B)` — i.e. does a
/// completion `F = A + B` exist with `A` independent of `X_B` and `B`
/// independent of `X_A`?
///
/// Decided via the maximal components: `A_max = ∀X_B ¬R` and
/// `B_max = ∀X_A ¬R` are the largest candidates not intersecting the
/// off-set, and a decomposition exists iff `Q ≤ A_max + B_max`.
///
/// # Panics
///
/// Panics on malformed inputs (see the crate docs): overlapping `Q`/`R`,
/// arity mismatch, overlapping variable sets.
pub fn or_bidecomposable(q: &TruthTable, r: &TruthTable, xa: u32, xb: u32) -> bool {
    validate(q, r, xa, xb);
    let a_max = r.exists(xb).complement();
    let b_max = r.exists(xa).complement();
    q.implies(&a_max.or(&b_max))
}

/// Is `(Q, R)` AND-bi-decomposable with sets `(X_A, X_B)`?
///
/// Dual of [`or_bidecomposable`] (swap on-set and off-set).
///
/// # Panics
///
/// As [`or_bidecomposable`].
pub fn and_bidecomposable(q: &TruthTable, r: &TruthTable, xa: u32, xb: u32) -> bool {
    or_bidecomposable(r, q, xa, xb)
}

/// Is `(Q, R)` EXOR-bi-decomposable with sets `(X_A, X_B)` — does a
/// completion `F = A ⊕ B` exist with `A` independent of `X_B` and `B`
/// independent of `X_A`?
///
/// Decided by two-colouring: for every assignment γ of the common
/// variables, the specified minterms connect `X_A`-assignments α and
/// `X_B`-assignments β with parity constraints `a(α,γ) ⊕ b(β,γ) = F(α,β,γ)`;
/// a decomposition exists iff no connected component carries an odd cycle.
///
/// # Panics
///
/// As [`or_bidecomposable`].
pub fn exor_bidecomposable(q: &TruthTable, r: &TruthTable, xa: u32, xb: u32) -> bool {
    validate(q, r, xa, xb);
    let n = q.num_vars();
    let all = (1u32 << n) - 1;
    let xc = all & !(xa | xb);
    let positions =
        |mask: u32| -> Vec<u32> { (0..n as u32).filter(|v| mask & (1 << v) != 0).collect() };
    let (pa, pb, pc) = (positions(xa), positions(xb), positions(xc));
    let spread = |bits: u32, pos: &[u32]| -> u32 {
        pos.iter().enumerate().fold(0, |acc, (k, &p)| acc | (((bits >> k) & 1) << p))
    };
    let na = 1usize << pa.len();
    let nb = 1usize << pb.len();
    for gamma in 0..1u32 << pc.len() {
        let gbits = spread(gamma, &pc);
        // colour[i]: 0 = unassigned, 1 = value false, 2 = value true.
        // Nodes 0..na are the α side, na..na+nb the β side.
        let mut colour = vec![0u8; na + nb];
        for start in 0..na {
            if colour[start] != 0 {
                continue;
            }
            // Does this component touch any constraint at all?
            colour[start] = 1;
            let mut queue = vec![start];
            while let Some(node) = queue.pop() {
                let my = colour[node];
                debug_assert_ne!(my, 0);
                if node < na {
                    let abit = spread(node as u32, &pa);
                    for beta in 0..nb {
                        let m = abit | spread(beta as u32, &pb) | gbits;
                        let parity = if q.get(m) {
                            true
                        } else if r.get(m) {
                            false
                        } else {
                            continue;
                        };
                        // a ⊕ b = parity  ⇒  b = a ⊕ parity.
                        let want = if (my == 2) ^ parity { 2 } else { 1 };
                        let other = na + beta;
                        if colour[other] == 0 {
                            colour[other] = want;
                            queue.push(other);
                        } else if colour[other] != want {
                            return false;
                        }
                    }
                } else {
                    let beta = node - na;
                    let bbit = spread(beta as u32, &pb);
                    #[allow(clippy::needless_range_loop)]
                    for alpha in 0..na {
                        let m = spread(alpha as u32, &pa) | bbit | gbits;
                        let parity = if q.get(m) {
                            true
                        } else if r.get(m) {
                            false
                        } else {
                            continue;
                        };
                        let want = if (my == 2) ^ parity { 2 } else { 1 };
                        if colour[alpha] == 0 {
                            colour[alpha] = want;
                            queue.push(alpha);
                        } else if colour[alpha] != want {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Is the *weak* OR-bi-decomposition with set `X_A` useful for `(Q, R)` —
/// does it strictly enlarge the don't-care set of component A?
///
/// Weak decomposition always *exists* (put `A = F`); it is useful iff
/// `Q · ∃X_A R ≠ Q`, i.e. some on-set minterm moves into A's don't-cares.
///
/// # Panics
///
/// As [`or_bidecomposable`] (with `X_B = ∅`).
pub fn weak_or_useful(q: &TruthTable, r: &TruthTable, xa: u32) -> bool {
    validate(q, r, xa, 0);
    &q.and(&r.exists(xa)) != q
}

/// Dual of [`weak_or_useful`] for weak AND-bi-decomposition.
///
/// # Panics
///
/// As [`or_bidecomposable`] (with `X_B = ∅`).
pub fn weak_and_useful(q: &TruthTable, r: &TruthTable, xa: u32) -> bool {
    weak_or_useful(r, q, xa)
}

/// Exhaustive referee for the referees: decides OR-bi-decomposability by
/// enumerating *every* pair of candidate components `(A, B)` and testing
/// the definition `Q ≤ A + B ≤ ¬R` directly. Doubly exponential; intended
/// for at most 3 variables outside each of `X_B` and `X_A`.
///
/// # Panics
///
/// Panics if either candidate space exceeds 2^8 functions, or on malformed
/// inputs as [`or_bidecomposable`].
pub fn or_bidecomposable_exhaustive(q: &TruthTable, r: &TruthTable, xa: u32, xb: u32) -> bool {
    validate(q, r, xa, xb);
    let n = q.num_vars();
    let free_a: Vec<u32> = (0..n as u32).filter(|v| xb & (1 << v) == 0).collect();
    let free_b: Vec<u32> = (0..n as u32).filter(|v| xa & (1 << v) == 0).collect();
    assert!(
        free_a.len() <= 3 && free_b.len() <= 3,
        "exhaustive oracle limited to |X_A ∪ X_C| ≤ 3 and |X_B ∪ X_C| ≤ 3"
    );
    let candidates = |free: &[u32]| -> Vec<TruthTable> {
        let slots = 1usize << free.len();
        (0..1u64 << slots)
            .map(|bits| {
                TruthTable::from_fn(n, |m| {
                    let idx = free
                        .iter()
                        .enumerate()
                        .fold(0usize, |acc, (k, &v)| acc | ((((m >> v) & 1) as usize) << k));
                    bits & (1 << idx) != 0
                })
            })
            .collect()
    };
    let not_r = r.complement();
    let bs = candidates(&free_b);
    for a in candidates(&free_a) {
        if !a.implies(&not_r) {
            continue;
        }
        for b in &bs {
            let f = a.or(b);
            if q.implies(&f) && f.implies(&not_r) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    /// The CSF of the paper's Fig. 3 (left): F = OR(a·b, c·d) with
    /// variables a,b (X_B) and c,d (X_A).
    fn fig3_left() -> (TruthTable, TruthTable) {
        let f = TruthTable::from_fn(4, |m| {
            let (a, b, c, d) = (m & 1 != 0, m & 2 != 0, m & 4 != 0, m & 8 != 0);
            (a && b) || (c && d)
        });
        let r = f.complement();
        (f, r)
    }

    #[test]
    fn fig3_or_decomposable() {
        let (q, r) = fig3_left();
        // X_A = {c, d} = bits 2,3; X_B = {a, b} = bits 0,1.
        assert!(or_bidecomposable(&q, &r, 0b1100, 0b0011));
        // The same function is not AND-decomposable with those sets.
        assert!(!and_bidecomposable(&q, &r, 0b1100, 0b0011));
        // Mixing the sets breaks OR-decomposability.
        assert!(!or_bidecomposable(&q, &r, 0b0101, 0b1010));
    }

    #[test]
    fn fig3_with_dont_cares_still_decomposable() {
        // Fig. 3 (right): remove some minterms from both sets; the ISF
        // remains OR-decomposable with the same grouping.
        let (q, r) = fig3_left();
        let mut q2 = q.clone();
        q2.set(0b0011, false); // make a·b=1,c·d=0 minterm a don't-care
        let mut r2 = r.clone();
        r2.set(0b0100, false);
        assert!(or_bidecomposable(&q2, &r2, 0b1100, 0b0011));
    }

    #[test]
    fn xor_is_exor_decomposable_not_or() {
        let q = builders::parity(4);
        let r = q.complement();
        assert!(exor_bidecomposable(&q, &r, 0b0011, 0b1100));
        assert!(exor_bidecomposable(&q, &r, 0b0001, 0b0010));
        assert!(!or_bidecomposable(&q, &r, 0b0011, 0b1100));
        assert!(!and_bidecomposable(&q, &r, 0b0011, 0b1100));
    }

    #[test]
    fn and_function_is_and_decomposable() {
        let q = TruthTable::from_fn(4, |m| m & 0b0011 == 0b0011 && m & 0b1100 != 0);
        let r = q.complement();
        // F = (a·b)·(c+d): AND-decomposable with X_A={a,b}, X_B={c,d}.
        assert!(and_bidecomposable(&q, &r, 0b0011, 0b1100));
        assert!(!or_bidecomposable(&q, &r, 0b0011, 0b1100));
    }

    #[test]
    fn majority_is_not_strongly_decomposable() {
        // maj(a,b,c) has no strong OR/AND/EXOR bi-decomposition for any
        // single-variable split.
        let q = builders::majority(3);
        let r = q.complement();
        for xa in [0b001u32, 0b010, 0b100] {
            for xb in [0b001u32, 0b010, 0b100] {
                if xa & xb != 0 {
                    continue;
                }
                assert!(!or_bidecomposable(&q, &r, xa, xb), "{xa:03b}/{xb:03b}");
                assert!(!and_bidecomposable(&q, &r, xa, xb));
                assert!(!exor_bidecomposable(&q, &r, xa, xb));
            }
        }
    }

    #[test]
    fn dont_cares_enable_decomposition() {
        // Fully specified majority is undecomposable (above), but freeing
        // enough minterms makes it OR-decomposable.
        let maj = builders::majority(3);
        let q = TruthTable::from_fn(3, |m| maj.get(m) && m != 0b011);
        let r = TruthTable::from_fn(3, |m| !maj.get(m) && m != 0b100 && m != 0b010);
        assert!(or_bidecomposable(&q, &r, 0b001, 0b110));
    }

    #[test]
    fn exhaustive_agrees_with_fast_oracle() {
        // Cross-validate on a sweep of small random ISFs.
        for seed in 0..40u64 {
            let f = TruthTable::random(4, 0.5, seed);
            let care = TruthTable::random(4, 0.8, seed.wrapping_add(1000));
            let q = f.and(&care);
            let r = f.complement().and(&care);
            for (xa, xb) in [(0b0011u32, 0b1100u32), (0b0101, 0b1010), (0b0001, 0b1110)] {
                assert_eq!(
                    or_bidecomposable(&q, &r, xa, xb),
                    or_bidecomposable_exhaustive(&q, &r, xa, xb),
                    "seed {seed}, sets {xa:04b}/{xb:04b}"
                );
            }
        }
    }

    #[test]
    fn weak_usefulness() {
        // For parity, quantifying any variable kills the whole care set:
        // ∃xa R = 1 so Q·∃xa R = Q — weak OR is useless.
        let q = builders::parity(3);
        let r = q.complement();
        assert!(!weak_or_useful(&q, &r, 0b001));
        // For a·b + c: choosing X_A = {c} is useful (rows with c=1 have
        // no off-set point).
        let f = TruthTable::from_fn(3, |m| m & 0b011 == 0b011 || m & 0b100 != 0);
        let fr = f.complement();
        assert!(weak_or_useful(&f, &fr, 0b100));
        assert!(weak_and_useful(&fr, &f, 0b100));
    }

    #[test]
    #[should_panic(expected = "must be disjoint")]
    fn overlapping_sets_panic() {
        let q = builders::parity(3);
        let r = q.complement();
        let _ = or_bidecomposable(&q, &r, 0b011, 0b010);
    }

    #[test]
    #[should_panic(expected = "on-set and off-set")]
    fn overlapping_isf_panics() {
        let q = builders::parity(3);
        let _ = or_bidecomposable(&q, &q, 0b001, 0b010);
    }
}
