//! Cubes: the rows of a PLA.

use std::fmt;

/// Value of one input position of a cube.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Trit {
    /// The input must be 0 (`0` in a PLA file).
    Zero,
    /// The input must be 1 (`1` in a PLA file).
    One,
    /// The input does not matter (`-` in a PLA file).
    Dc,
}

impl Trit {
    /// Does an input bit satisfy this position?
    pub fn matches(self, bit: bool) -> bool {
        match self {
            Trit::Zero => !bit,
            Trit::One => bit,
            Trit::Dc => true,
        }
    }

    /// The PLA file character for this value.
    pub fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::Dc => '-',
        }
    }
}

/// Value of one output position of a cube.
///
/// The meaning of `Zero` depends on the PLA type (see
/// [`PlaType`](crate::PlaType)): in `fr`/`fdr` it contributes to the
/// off-set; in `f`/`fd` it means "not in this cube".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OutputValue {
    /// `1`: the cube belongs to this output's on-set.
    One,
    /// `0`: off-set member (`fr`, `fdr`) or no effect (`f`, `fd`).
    Zero,
    /// `-` / `~`: the cube has no effect on this output.
    NotUsed,
    /// `d` / `2`: the cube belongs to this output's don't-care set.
    DontCare,
}

impl OutputValue {
    /// The PLA file character for this value.
    pub fn to_char(self) -> char {
        match self {
            OutputValue::One => '1',
            OutputValue::Zero => '0',
            OutputValue::NotUsed => '-',
            OutputValue::DontCare => 'd',
        }
    }
}

/// One row of a PLA: an input cube plus a value for every output.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    inputs: Vec<Trit>,
    outputs: Vec<OutputValue>,
}

impl Cube {
    /// Creates a cube from its input and output parts.
    pub fn new(inputs: Vec<Trit>, outputs: Vec<OutputValue>) -> Self {
        Cube { inputs, outputs }
    }

    /// Creates the all-don't-care input cube asserting output `out` among
    /// `num_outputs` outputs.
    pub fn tautology(num_inputs: usize, num_outputs: usize, out: usize) -> Self {
        let mut outputs = vec![OutputValue::NotUsed; num_outputs];
        outputs[out] = OutputValue::One;
        Cube { inputs: vec![Trit::Dc; num_inputs], outputs }
    }

    /// The input part.
    pub fn inputs(&self) -> &[Trit] {
        &self.inputs
    }

    /// The output part.
    pub fn outputs(&self) -> &[OutputValue] {
        &self.outputs
    }

    /// Number of non-don't-care input literals.
    pub fn literal_count(&self) -> usize {
        self.inputs.iter().filter(|&&t| t != Trit::Dc).count()
    }

    /// Does the input assignment (bit `k` = variable `k`) lie inside this
    /// cube's input part?
    pub fn covers(&self, assignment: u64) -> bool {
        self.inputs.iter().enumerate().all(|(k, t)| t.matches(assignment & (1 << k) != 0))
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.inputs {
            write!(f, "{}", t.to_char())?;
        }
        write!(f, " ")?;
        for o in &self.outputs {
            write!(f, "{}", o.to_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trit_matching() {
        assert!(Trit::One.matches(true));
        assert!(!Trit::One.matches(false));
        assert!(Trit::Zero.matches(false));
        assert!(Trit::Dc.matches(true) && Trit::Dc.matches(false));
    }

    #[test]
    fn cube_cover_and_literals() {
        let c = Cube::new(vec![Trit::One, Trit::Dc, Trit::Zero], vec![OutputValue::One]);
        assert!(c.covers(0b001));
        assert!(c.covers(0b011));
        assert!(!c.covers(0b101));
        assert!(!c.covers(0b000));
        assert_eq!(c.literal_count(), 2);
        assert_eq!(c.to_string(), "1-0 1");
    }

    #[test]
    fn tautology_cube() {
        let c = Cube::tautology(4, 2, 1);
        assert!(c.covers(0b1111) && c.covers(0));
        assert_eq!(c.outputs()[0], OutputValue::NotUsed);
        assert_eq!(c.outputs()[1], OutputValue::One);
        assert_eq!(c.literal_count(), 0);
    }
}
