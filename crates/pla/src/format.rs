//! The PLA container and the espresso file format.

use std::fmt;
use std::str::FromStr;

use crate::cube::{Cube, OutputValue, Trit};

/// PLA logical type: which sets the cubes describe (espresso `.type`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PlaType {
    /// `f`: cubes give the on-set only; everything else is off.
    F,
    /// `fd` (default): cubes give the on-set and don't-care set; the rest
    /// is off.
    #[default]
    Fd,
    /// `fr`: cubes give the on-set and off-set; the rest is don't-care.
    Fr,
    /// `fdr`: cubes give all three sets explicitly.
    Fdr,
}

impl PlaType {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "f" => Some(PlaType::F),
            "fd" => Some(PlaType::Fd),
            "fr" => Some(PlaType::Fr),
            "fdr" => Some(PlaType::Fdr),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            PlaType::F => "f",
            PlaType::Fd => "fd",
            PlaType::Fr => "fr",
            PlaType::Fdr => "fdr",
        }
    }

    /// Does a `0` output entry put the cube in the off-set?
    pub fn zero_is_offset(self) -> bool {
        matches!(self, PlaType::Fr | PlaType::Fdr)
    }

    /// Is the unspecified remainder of the space the off-set (`true`) or
    /// the don't-care set (`false`)?
    pub fn rest_is_offset(self) -> bool {
        matches!(self, PlaType::F | PlaType::Fd)
    }
}

/// A multi-output incompletely specified function as a list of cubes —
/// the in-memory form of a `.pla` file.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Pla {
    num_inputs: usize,
    num_outputs: usize,
    pla_type: PlaType,
    input_labels: Option<Vec<String>>,
    output_labels: Option<Vec<String>>,
    cubes: Vec<Cube>,
}

impl Pla {
    /// Creates an empty PLA with the given dimensions and default type
    /// (`fd`).
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        Pla { num_inputs, num_outputs, ..Default::default() }
    }

    /// Sets the PLA type (builder-style).
    pub fn with_type(mut self, pla_type: PlaType) -> Self {
        self.pla_type = pla_type;
        self
    }

    /// Sets the input labels (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the number of labels does not match `num_inputs`.
    pub fn with_input_labels(mut self, labels: Vec<String>) -> Self {
        assert_eq!(labels.len(), self.num_inputs, "one label per input required");
        self.input_labels = Some(labels);
        self
    }

    /// Sets the output labels (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the number of labels does not match `num_outputs`.
    pub fn with_output_labels(mut self, labels: Vec<String>) -> Self {
        assert_eq!(labels.len(), self.num_outputs, "one label per output required");
        self.output_labels = Some(labels);
        self
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The PLA type.
    pub fn pla_type(&self) -> PlaType {
        self.pla_type
    }

    /// Input labels, if any were declared.
    pub fn input_labels(&self) -> Option<&[String]> {
        self.input_labels.as_deref()
    }

    /// Output labels, if any were declared.
    pub fn output_labels(&self) -> Option<&[String]> {
        self.output_labels.as_deref()
    }

    /// The cube list.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Appends a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube's dimensions do not match the PLA's.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.inputs().len(), self.num_inputs, "cube input arity mismatch");
        assert_eq!(cube.outputs().len(), self.num_outputs, "cube output arity mismatch");
        self.cubes.push(cube);
    }

    /// Convenience: appends a cube given as PLA-file strings, e.g.
    /// `push_str("1-0", "1-")`.
    ///
    /// # Panics
    ///
    /// Panics on malformed characters or arity mismatch.
    pub fn push_str(&mut self, inputs: &str, outputs: &str) {
        let cube = parse_cube(inputs, outputs, 0).expect("malformed cube literal");
        self.push(cube);
    }

    /// Cubes contributing to the *on-set* of `output`.
    pub fn on_cubes(&self, output: usize) -> impl Iterator<Item = &Cube> {
        self.cubes.iter().filter(move |c| c.outputs()[output] == OutputValue::One)
    }

    /// Cubes contributing to the *don't-care set* of `output`.
    pub fn dc_cubes(&self, output: usize) -> impl Iterator<Item = &Cube> {
        self.cubes.iter().filter(move |c| c.outputs()[output] == OutputValue::DontCare)
    }

    /// Cubes contributing to the *off-set* of `output` (only meaningful for
    /// `fr`/`fdr` types; empty otherwise).
    pub fn off_cubes(&self, output: usize) -> impl Iterator<Item = &Cube> {
        let zero_is_off = self.pla_type.zero_is_offset();
        self.cubes.iter().filter(move |c| zero_is_off && c.outputs()[output] == OutputValue::Zero)
    }

    /// Evaluates output `output` on a complete input assignment, returning
    /// `Some(value)` if the point is in the on- or off-set and `None` if it
    /// is a don't-care.
    ///
    /// # Panics
    ///
    /// Panics if `output >= num_outputs`.
    pub fn eval(&self, output: usize, assignment: u64) -> Option<bool> {
        assert!(output < self.num_outputs, "output index out of range");
        let mut in_dc = false;
        let mut in_off = false;
        for cube in &self.cubes {
            if !cube.covers(assignment) {
                continue;
            }
            match cube.outputs()[output] {
                OutputValue::One => return Some(true),
                OutputValue::DontCare => in_dc = true,
                OutputValue::Zero if self.pla_type.zero_is_offset() => in_off = true,
                _ => {}
            }
        }
        if in_dc {
            None
        } else if in_off || self.pla_type.rest_is_offset() {
            Some(false)
        } else {
            None
        }
    }

    /// How often each input variable appears as a literal across all
    /// cubes — the classic static BDD-ordering weight.
    pub fn literal_frequencies(&self) -> Vec<f64> {
        let mut freq = vec![0f64; self.num_inputs];
        for cube in &self.cubes {
            for (k, &t) in cube.inputs().iter().enumerate() {
                if t != Trit::Dc {
                    freq[k] += 1.0;
                }
            }
        }
        freq
    }

    /// Total number of input literals over all cubes.
    pub fn total_literals(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }
}

impl fmt::Display for Pla {
    /// Writes the PLA in espresso file syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".i {}", self.num_inputs)?;
        writeln!(f, ".o {}", self.num_outputs)?;
        if let Some(labels) = &self.input_labels {
            writeln!(f, ".ilb {}", labels.join(" "))?;
        }
        if let Some(labels) = &self.output_labels {
            writeln!(f, ".ob {}", labels.join(" "))?;
        }
        writeln!(f, ".type {}", self.pla_type.as_str())?;
        writeln!(f, ".p {}", self.cubes.len())?;
        for cube in &self.cubes {
            writeln!(f, "{cube}")?;
        }
        writeln!(f, ".e")
    }
}

/// Error produced when parsing a PLA file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParsePlaError {
    line: usize,
    message: String,
}

impl ParsePlaError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParsePlaError { line, message: message.into() }
    }

    /// 1-based line number of the offending input line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParsePlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pla parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePlaError {}

fn parse_cube(inputs: &str, outputs: &str, line: usize) -> Result<Cube, ParsePlaError> {
    let mut ins = Vec::with_capacity(inputs.len());
    for c in inputs.chars() {
        ins.push(match c {
            '0' => Trit::Zero,
            '1' => Trit::One,
            '-' | '2' | 'x' | 'X' => Trit::Dc,
            other => {
                return Err(ParsePlaError::new(line, format!("bad input character {other:?}")))
            }
        });
    }
    let mut outs = Vec::with_capacity(outputs.len());
    for c in outputs.chars() {
        outs.push(match c {
            '1' | '4' => OutputValue::One,
            '0' => OutputValue::Zero,
            '-' | '~' | '3' => OutputValue::NotUsed,
            'd' | '2' => OutputValue::DontCare,
            other => {
                return Err(ParsePlaError::new(line, format!("bad output character {other:?}")))
            }
        });
    }
    Ok(Cube::new(ins, outs))
}

impl FromStr for Pla {
    type Err = ParsePlaError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut num_inputs: Option<usize> = None;
        let mut num_outputs: Option<usize> = None;
        let mut pla_type = PlaType::default();
        let mut input_labels = None;
        let mut output_labels = None;
        let mut cubes: Vec<Cube> = Vec::new();
        let mut declared_cubes: Option<usize> = None;
        let mut ended = false;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() || ended {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                let mut parts = rest.split_whitespace();
                let keyword = parts.next().unwrap_or("");
                match keyword {
                    "i" => {
                        num_inputs = Some(parse_num(parts.next(), lineno, ".i")?);
                    }
                    "o" => {
                        num_outputs = Some(parse_num(parts.next(), lineno, ".o")?);
                    }
                    "p" => {
                        declared_cubes = Some(parse_num(parts.next(), lineno, ".p")?);
                    }
                    "type" => {
                        let t = parts.next().unwrap_or("");
                        pla_type = PlaType::parse(t).ok_or_else(|| {
                            ParsePlaError::new(lineno, format!("unknown .type {t:?}"))
                        })?;
                    }
                    "ilb" => {
                        input_labels = Some(parts.map(str::to_owned).collect::<Vec<_>>());
                    }
                    "ob" => {
                        output_labels = Some(parts.map(str::to_owned).collect::<Vec<_>>());
                    }
                    "e" | "end" => {
                        ended = true;
                    }
                    // Harmless directives some MCNC files carry.
                    "phase" | "pair" | "symbolic" | "mv" | "kiss" | "label" => {}
                    other => {
                        return Err(ParsePlaError::new(
                            lineno,
                            format!("unsupported directive .{other}"),
                        ));
                    }
                }
                continue;
            }
            // A cube line: input part then output part, optionally separated
            // by whitespace (espresso also allows the parts to be split by a
            // single `|`, which we normalize away).
            let (ni, no) = match (num_inputs, num_outputs) {
                (Some(i), Some(o)) => (i, o),
                _ => {
                    return Err(ParsePlaError::new(lineno, "cube before .i/.o declarations"));
                }
            };
            let compact: String =
                line.chars().filter(|c| !c.is_whitespace() && *c != '|').collect();
            if compact.len() != ni + no {
                return Err(ParsePlaError::new(
                    lineno,
                    format!("cube has {} positions, expected {}", compact.len(), ni + no),
                ));
            }
            let cube = parse_cube(&compact[..ni], &compact[ni..], lineno)?;
            cubes.push(cube);
        }

        let num_inputs =
            num_inputs.ok_or_else(|| ParsePlaError::new(0, "missing .i declaration"))?;
        let num_outputs =
            num_outputs.ok_or_else(|| ParsePlaError::new(0, "missing .o declaration"))?;
        if let Some(declared) = declared_cubes {
            if declared != cubes.len() {
                return Err(ParsePlaError::new(
                    0,
                    format!(".p declares {declared} cubes but {} are present", cubes.len()),
                ));
            }
        }
        if let Some(labels) = &input_labels {
            if labels.len() != num_inputs {
                return Err(ParsePlaError::new(0, ".ilb label count mismatch"));
            }
        }
        if let Some(labels) = &output_labels {
            if labels.len() != num_outputs {
                return Err(ParsePlaError::new(0, ".ob label count mismatch"));
            }
        }
        Ok(Pla { num_inputs, num_outputs, pla_type, input_labels, output_labels, cubes })
    }
}

fn parse_num(token: Option<&str>, line: usize, what: &str) -> Result<usize, ParsePlaError> {
    token
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParsePlaError::new(line, format!("{what} needs a number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
.i 3
.o 2
.ilb a b c
.ob f g
.type fr
.p 3
11- 10
0-1 01
111 0-
.e
";

    #[test]
    fn parse_sample() {
        let pla: Pla = SAMPLE.parse().expect("valid");
        assert_eq!(pla.num_inputs(), 3);
        assert_eq!(pla.num_outputs(), 2);
        assert_eq!(pla.pla_type(), PlaType::Fr);
        assert_eq!(pla.cubes().len(), 3);
        assert_eq!(pla.input_labels().unwrap(), ["a", "b", "c"]);
        assert_eq!(pla.output_labels().unwrap(), ["f", "g"]);
        assert_eq!(pla.on_cubes(0).count(), 1);
        assert_eq!(pla.off_cubes(0).count(), 2);
        assert_eq!(pla.on_cubes(1).count(), 1);
    }

    #[test]
    fn roundtrip_display_parse() {
        let pla: Pla = SAMPLE.parse().expect("valid");
        let text = pla.to_string();
        let again: Pla = text.parse().expect("roundtrip");
        assert_eq!(pla, again);
    }

    #[test]
    fn eval_fd_semantics() {
        let text = ".i 2\n.o 1\n.type fd\n11 1\n0- d\n.e\n";
        let pla: Pla = text.parse().expect("valid");
        assert_eq!(pla.eval(0, 0b11), Some(true));
        assert_eq!(pla.eval(0, 0b00), None, "don't-care cube");
        assert_eq!(pla.eval(0, 0b01), Some(false), "fd: rest is off");
    }

    #[test]
    fn eval_fr_semantics() {
        let text = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n";
        let pla: Pla = text.parse().expect("valid");
        assert_eq!(pla.eval(0, 0b11), Some(true));
        assert_eq!(pla.eval(0, 0b00), Some(false));
        assert_eq!(pla.eval(0, 0b01), None, "fr: rest is don't-care");
    }

    #[test]
    fn cube_lines_with_embedded_spaces() {
        let text = ".i 4\n.o 1\n1 1 - 0 1\n.e\n";
        let pla: Pla = text.parse().expect("valid");
        assert_eq!(pla.cubes().len(), 1);
        assert_eq!(pla.cubes()[0].to_string(), "11-0 1");
    }

    #[test]
    fn error_reporting() {
        let err = ".i 2\n.o 1\n1x9 1\n".parse::<Pla>().unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("line 3"));

        let err = "11 1\n".parse::<Pla>().unwrap_err();
        assert!(err.to_string().contains("before .i/.o"));

        let err = ".i 2\n.o 1\n.p 5\n11 1\n.e\n".parse::<Pla>().unwrap_err();
        assert!(err.to_string().contains(".p declares"));

        let err = ".o 1\n.e\n".parse::<Pla>().unwrap_err();
        assert!(err.to_string().contains("missing .i"));

        let err = ".i 2\n.o 1\n111 1\n".parse::<Pla>().unwrap_err();
        assert!(err.to_string().contains("expected 3"));

        let err = ".i 2\n.o 1\n.bogus\n".parse::<Pla>().unwrap_err();
        assert!(err.to_string().contains("unsupported directive"));
    }

    #[test]
    fn frequencies_and_literals() {
        let pla: Pla = SAMPLE.parse().expect("valid");
        assert_eq!(pla.literal_frequencies(), vec![3.0, 2.0, 2.0]);
        assert_eq!(pla.total_literals(), 7);
    }

    #[test]
    fn push_validates_arity() {
        let mut pla = Pla::new(2, 1);
        pla.push_str("1-", "1");
        assert_eq!(pla.cubes().len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn push_wrong_arity_panics() {
        let mut pla = Pla::new(2, 1);
        pla.push_str("1-0", "1");
    }

    #[test]
    fn content_after_end_is_ignored() {
        let text = ".i 1\n.o 1\n1 1\n.e\ngarbage beyond end\n";
        let pla: Pla = text.parse().expect("valid");
        assert_eq!(pla.cubes().len(), 1);
    }
}
