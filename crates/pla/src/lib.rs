//! Espresso-format PLA files and cube-list representations.
//!
//! The paper's experimental flow reads MCNC benchmarks as PLA files ("Both
//! programs used the PLA input files", §8); this crate supplies that input
//! path: a faithful reader/writer for the espresso PLA dialect (`.i`,
//! `.o`, `.p`, `.ilb`, `.ob`, `.type f|fd|fr|fdr`) and the cube-list data
//! model the rest of the workspace consumes.
//!
//! ```
//! use pla::Pla;
//!
//! let text = "\
//! .i 3
//! .o 1
//! .type fd
//! 11- 1
//! --1 1
//! .e
//! ";
//! let pla: Pla = text.parse()?;
//! assert_eq!(pla.num_inputs(), 3);
//! assert_eq!(pla.cubes().len(), 2);
//! # Ok::<(), pla::ParsePlaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod format;

pub use cube::{Cube, OutputValue, Trit};
pub use format::{ParsePlaError, Pla, PlaType};
