//! Delta-debugging minimizer for failing PLA cases.
//!
//! Given a case and a "still fails" predicate, repeatedly applies
//! semantics-shrinking edits and keeps any candidate the predicate still
//! rejects:
//!
//! * **cube removal** — ddmin-style chunked removal, halving chunk sizes
//!   down to single cubes;
//! * **output projection** — restrict a multi-output case to one output;
//! * **variable projection** — delete an input column entirely;
//! * **literal widening** — promote specified input literals to `-`;
//! * **output relaxation** — demote output entries to `-` (and to `d`
//!   where the PLA type has a don't-care set).
//!
//! The predicate budget bounds total work; the shrinker is greedy and
//! deterministic, so equal inputs and budgets minimize identically.

use pla::{Cube, OutputValue, Pla, PlaType, Trit};

/// The result of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The smallest failing case found.
    pub pla: Pla,
    /// Predicate invocations consumed.
    pub checks_used: usize,
}

struct Shrinker<'a> {
    still_fails: &'a mut dyn FnMut(&Pla) -> bool,
    used: usize,
    budget: usize,
}

impl Shrinker<'_> {
    /// Runs the predicate under the budget; over-budget candidates are
    /// treated as "does not fail" so every pass terminates.
    fn fails(&mut self, candidate: &Pla) -> bool {
        if self.used >= self.budget {
            return false;
        }
        self.used += 1;
        (self.still_fails)(candidate)
    }
}

fn rebuild(template: &Pla, num_inputs: usize, num_outputs: usize, cubes: Vec<Cube>) -> Pla {
    let mut pla = Pla::new(num_inputs, num_outputs).with_type(template.pla_type());
    for cube in cubes {
        pla.push(cube);
    }
    pla
}

/// Chunked (ddmin-style) then single-cube removal.
fn shrink_cubes(best: &mut Pla, s: &mut Shrinker<'_>) -> bool {
    let mut improved = false;
    let mut chunk = best.cubes().len() / 2;
    while chunk >= 1 {
        let mut start = 0;
        while start < best.cubes().len() && best.cubes().len() > 1 {
            let end = (start + chunk).min(best.cubes().len());
            let mut cubes = best.cubes().to_vec();
            cubes.drain(start..end);
            if cubes.is_empty() {
                start += chunk;
                continue;
            }
            let candidate = rebuild(best, best.num_inputs(), best.num_outputs(), cubes);
            if s.fails(&candidate) {
                *best = candidate;
                improved = true;
                // Re-scan the same position: the next chunk slid into it.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    improved
}

/// Does this cube affect `output` at all (given the PLA type)?
fn output_used(cube: &Cube, output: usize, ty: PlaType) -> bool {
    match cube.outputs()[output] {
        OutputValue::One | OutputValue::DontCare => true,
        OutputValue::Zero => ty.zero_is_offset(),
        OutputValue::NotUsed => false,
    }
}

/// Try keeping a single output.
fn shrink_outputs(best: &mut Pla, s: &mut Shrinker<'_>) -> bool {
    if best.num_outputs() <= 1 {
        return false;
    }
    for o in 0..best.num_outputs() {
        let cubes: Vec<Cube> = best
            .cubes()
            .iter()
            .filter(|c| output_used(c, o, best.pla_type()))
            .map(|c| Cube::new(c.inputs().to_vec(), vec![c.outputs()[o]]))
            .collect();
        if cubes.is_empty() {
            continue;
        }
        let candidate = rebuild(best, best.num_inputs(), 1, cubes);
        if s.fails(&candidate) {
            *best = candidate;
            return true;
        }
    }
    false
}

/// Try deleting an input column.
fn shrink_inputs(best: &mut Pla, s: &mut Shrinker<'_>) -> bool {
    if best.num_inputs() <= 1 {
        return false;
    }
    for v in (0..best.num_inputs()).rev() {
        let cubes: Vec<Cube> = best
            .cubes()
            .iter()
            .map(|c| {
                let mut inputs = c.inputs().to_vec();
                inputs.remove(v);
                Cube::new(inputs, c.outputs().to_vec())
            })
            .collect();
        let candidate = rebuild(best, best.num_inputs() - 1, best.num_outputs(), cubes);
        if s.fails(&candidate) {
            *best = candidate;
            return true;
        }
    }
    false
}

/// Try widening individual literals to `-` and relaxing output entries.
fn shrink_entries(best: &mut Pla, s: &mut Shrinker<'_>) -> bool {
    let mut improved = false;
    let ty = best.pla_type();
    let mut i = 0;
    while i < best.cubes().len() {
        for pos in 0..best.num_inputs() {
            if best.cubes()[i].inputs()[pos] == Trit::Dc {
                continue;
            }
            let mut cubes = best.cubes().to_vec();
            let mut inputs = cubes[i].inputs().to_vec();
            inputs[pos] = Trit::Dc;
            cubes[i] = Cube::new(inputs, cubes[i].outputs().to_vec());
            let candidate = rebuild(best, best.num_inputs(), best.num_outputs(), cubes);
            if s.fails(&candidate) {
                *best = candidate;
                improved = true;
            }
        }
        for o in 0..best.num_outputs() {
            let current = best.cubes()[i].outputs()[o];
            let mut replacements: Vec<OutputValue> = Vec::new();
            if matches!(current, OutputValue::One | OutputValue::Zero) {
                if matches!(ty, PlaType::Fd | PlaType::Fdr) {
                    replacements.push(OutputValue::DontCare);
                }
                replacements.push(OutputValue::NotUsed);
            } else if current == OutputValue::DontCare {
                replacements.push(OutputValue::NotUsed);
            }
            for replacement in replacements {
                let mut cubes = best.cubes().to_vec();
                let mut outputs = cubes[i].outputs().to_vec();
                outputs[o] = replacement;
                cubes[i] = Cube::new(cubes[i].inputs().to_vec(), outputs);
                let candidate = rebuild(best, best.num_inputs(), best.num_outputs(), cubes);
                if s.fails(&candidate) {
                    *best = candidate;
                    improved = true;
                    break;
                }
            }
        }
        i += 1;
    }
    improved
}

/// Minimizes `original` under `still_fails`, spending at most
/// `max_checks` predicate invocations.
///
/// The returned case is guaranteed to fail (it is only replaced by
/// candidates the predicate rejected); if the budget is 0 the original
/// is returned unchanged.
pub fn shrink(
    original: &Pla,
    still_fails: &mut dyn FnMut(&Pla) -> bool,
    max_checks: usize,
) -> ShrinkOutcome {
    let mut best = original.clone();
    let mut s = Shrinker { still_fails, used: 0, budget: max_checks };
    loop {
        let mut improved = false;
        improved |= shrink_cubes(&mut best, &mut s);
        improved |= shrink_outputs(&mut best, &mut s);
        improved |= shrink_inputs(&mut best, &mut s);
        improved |= shrink_entries(&mut best, &mut s);
        if !improved || s.used >= s.budget {
            break;
        }
    }
    ShrinkOutcome { pla: best, checks_used: s.used }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchmarks::SplitMix64;

    /// A synthetic "bug": the case fails iff some cube asserts output 0
    /// with input 0 fixed to 1.
    fn has_poison(pla: &Pla) -> bool {
        pla.cubes()
            .iter()
            .any(|c| c.inputs().first() == Some(&Trit::One) && c.outputs()[0] == OutputValue::One)
    }

    fn noisy_case(seed: u64) -> Pla {
        let mut rng = SplitMix64::new(seed);
        let mut pla = Pla::new(5, 2);
        for _ in 0..12 {
            let inputs = (0..5)
                .map(|_| [Trit::Zero, Trit::One, Trit::Dc][rng.gen_range(3)])
                .collect::<Vec<_>>();
            let outputs = (0..2)
                .map(|_| {
                    [OutputValue::One, OutputValue::NotUsed, OutputValue::DontCare]
                        [rng.gen_range(3)]
                })
                .collect::<Vec<_>>();
            pla.push(Cube::new(inputs, outputs));
        }
        // Plant the poison cube.
        pla.push(Cube::new(
            vec![Trit::One, Trit::Zero, Trit::One, Trit::Zero, Trit::One],
            vec![OutputValue::One, OutputValue::One],
        ));
        pla
    }

    #[test]
    fn shrinks_to_the_poison_cube() {
        for seed in 0..5 {
            let original = noisy_case(seed);
            assert!(has_poison(&original));
            let mut oracle = |p: &Pla| has_poison(p);
            let outcome = shrink(&original, &mut oracle, 2_000);
            assert!(has_poison(&outcome.pla), "minimized case still fails");
            assert_eq!(outcome.pla.cubes().len(), 1, "one cube suffices (seed {seed})");
            assert_eq!(outcome.pla.num_outputs(), 1, "one output suffices");
            assert!(outcome.pla.num_inputs() <= 1, "only input 0 matters");
            assert!(outcome.checks_used <= 2_000);
        }
    }

    #[test]
    fn respects_the_budget() {
        let original = noisy_case(1);
        let mut calls = 0usize;
        let mut oracle = |p: &Pla| {
            calls += 1;
            has_poison(p)
        };
        let outcome = shrink(&original, &mut oracle, 7);
        assert_eq!(outcome.checks_used, 7, "budget is consumed exactly");
        assert_eq!(calls, 7);
        assert!(has_poison(&outcome.pla));
    }

    #[test]
    fn zero_budget_returns_the_original() {
        let original = noisy_case(2);
        let mut oracle = |_: &Pla| true;
        let outcome = shrink(&original, &mut oracle, 0);
        assert_eq!(outcome.pla, original);
        assert_eq!(outcome.checks_used, 0);
    }

    #[test]
    fn never_keeps_a_passing_candidate() {
        // A predicate that only fails the exact original: the shrinker
        // must return the original untouched.
        let original = noisy_case(3);
        let reference = original.clone();
        let mut oracle = |p: &Pla| *p == reference;
        let outcome = shrink(&original, &mut oracle, 500);
        assert_eq!(outcome.pla, original);
    }
}
