//! The differential fuzzing CLI.
//!
//! Usage: `fuzz [--seed N] [--iters N] [--time-budget SECS]
//! [--replay DIR] [--corpus-out DIR] [--mutate] [--report FILE]`
//!
//! * Default mode generates `--iters` seeded cases and checks each one
//!   against the `boolfn` oracles and the end-to-end pipeline. Any
//!   failure is shrunk to a minimal PLA; with `--corpus-out DIR` the
//!   minimized cases are written there (and the directory's existing
//!   cases seed the mutation generator).
//! * `--replay DIR` checks every `.pla` file in `DIR` instead of
//!   generating — the fast regression gate CI runs on the committed
//!   corpus.
//! * `--mutate` enables the deliberate Theorem 1 mutation in
//!   `bidecomp::check` — the harness self-check: a run with this flag
//!   must find counterexamples.
//! * `--report FILE` writes a machine-readable JSON summary. Reported
//!   runs also push every passing case through the decomposition doctor
//!   (`bidecomp::doctor`), so the summary carries a `doctor_findings`
//!   count of pathological-but-correct inputs.
//!
//! Exit codes: 0 clean, 1 failures found, 2 usage error.

use std::path::PathBuf;
use std::time::Duration;

use fuzz::{corpus, replay, run, FuzzConfig, FuzzReport};
use obs::json::Json;

struct Args {
    seed: u64,
    iters: u64,
    time_budget: Option<Duration>,
    replay_dir: Option<PathBuf>,
    corpus_out: Option<PathBuf>,
    mutate: bool,
    report: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed N] [--iters N] [--time-budget SECS] \
         [--replay DIR] [--corpus-out DIR] [--mutate] [--report FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        iters: 500,
        time_budget: None,
        replay_dir: None,
        corpus_out: None,
        mutate: false,
        report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--mutate" {
            args.mutate = true;
            continue;
        }
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value.parse().unwrap_or_else(|_| usage()),
            "--time-budget" => {
                let secs: f64 = value.parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs < 0.0 {
                    usage();
                }
                args.time_budget = Some(Duration::from_secs_f64(secs));
            }
            "--replay" => args.replay_dir = Some(PathBuf::from(value)),
            "--corpus-out" => args.corpus_out = Some(PathBuf::from(value)),
            "--report" => args.report = Some(PathBuf::from(value)),
            _ => usage(),
        }
    }
    args
}

fn print_failures(report: &FuzzReport) {
    for failure in &report.failures {
        eprintln!(
            "FAIL case {} ({}): [{}] {}",
            failure.case_index, failure.mode, failure.kind, failure.detail
        );
        eprintln!(
            "  minimized to {} cubes / {} inputs / {} outputs in {} shrink checks:",
            failure.minimized.cubes().len(),
            failure.minimized.num_inputs(),
            failure.minimized.num_outputs(),
            failure.shrink_checks
        );
        for line in failure.minimized.to_string().lines() {
            eprintln!("    {line}");
        }
    }
}

fn report_json(report: &FuzzReport, args: &Args, mode: &str) -> Json {
    let failures: Vec<Json> = report
        .failures
        .iter()
        .map(|f| {
            Json::obj()
                .field("case_index", f.case_index)
                .field("mode", f.mode.as_str())
                .field("kind", f.kind)
                .field("detail", f.detail.as_str())
                .field("minimized_cubes", f.minimized.cubes().len())
                .field("shrink_checks", f.shrink_checks)
        })
        .collect();
    Json::obj()
        .field("schema", "fuzz-report-v1")
        .field("mode", mode)
        .field("seed", args.seed)
        .field("mutate", args.mutate)
        .field("cases", report.cases)
        .field("operator_checks", report.operator_checks)
        .field("elapsed_ms", report.elapsed.as_secs_f64() * 1e3)
        .field(
            "doctor_findings",
            match report.doctor_findings {
                Some((info, warning, error)) => {
                    Json::obj().field("info", info).field("warning", warning).field("error", error)
                }
                None => Json::Null,
            },
        )
        .field("failures", failures)
}

fn main() {
    let args = parse_args();
    if args.mutate {
        // The self-check mode: prove the harness finds the planted bug.
        bidecomp::check::set_or_check_mutation(true);
        // The planted bug trips debug assertions inside the decomposer;
        // the harness treats panics as failures, so keep stderr quiet.
        std::panic::set_hook(Box::new(|_| {}));
    }

    let mut cfg = FuzzConfig {
        seed: args.seed,
        iters: args.iters,
        time_budget: args.time_budget,
        doctor: args.report.is_some(),
        ..FuzzConfig::default()
    };

    let (report, mode) = match &args.replay_dir {
        Some(dir) => {
            let cases = corpus::load_dir(dir)
                .unwrap_or_else(|e| panic!("cannot read corpus {}: {e}", dir.display()));
            println!("replaying {} corpus cases from {}", cases.len(), dir.display());
            (replay(&cases, &cfg), "replay")
        }
        None => {
            if let Some(dir) = &args.corpus_out {
                cfg.pool = corpus::load_dir(dir)
                    .unwrap_or_else(|e| panic!("cannot read corpus {}: {e}", dir.display()))
                    .into_iter()
                    .map(|(_, pla)| pla)
                    .collect();
            }
            (run(&cfg), "fuzz")
        }
    };
    if args.mutate {
        let _ = std::panic::take_hook();
        bidecomp::check::set_or_check_mutation(false);
    }

    print_failures(&report);
    if let Some(dir) = &args.corpus_out {
        for failure in &report.failures {
            match corpus::save_case(dir, failure.kind, &failure.minimized) {
                Ok(Some(path)) => eprintln!("saved {}", path.display()),
                Ok(None) => eprintln!("duplicate of an existing corpus case, not saved"),
                Err(e) => eprintln!("cannot save into {}: {e}", dir.display()),
            }
        }
    }
    println!(
        "{mode}: {} cases, {} oracle checks, {} failures (seed {}) in {:.2}s",
        report.cases,
        report.operator_checks,
        report.failures.len(),
        args.seed,
        report.elapsed.as_secs_f64()
    );
    if let Some((info, warning, error)) = report.doctor_findings {
        println!("doctor: {info} info, {warning} warning, {error} error finding(s)");
    }
    if let Some(path) = &args.report {
        let json = report_json(&report, &args, mode).render();
        std::fs::write(path, json + "\n")
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
    std::process::exit(if report.clean() { 0 } else { 1 });
}
