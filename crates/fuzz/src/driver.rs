//! The seeded fuzz loop and corpus replay.
//!
//! Each case runs the operator-level differentials ([`crate::oracle`])
//! and the end-to-end pipeline check ([`crate::e2e`]); any failure is
//! delta-debugged down to a minimal PLA ([`crate::shrink`]). Progress is
//! published through an optional [`obs::Recorder`] (`fuzz.cases`,
//! `fuzz.failures`, `fuzz.checks`, `fuzz.shrink.checks` counters under a
//! `fuzz.run` span), so fuzz runs appear in the same telemetry reports as
//! everything else.

use std::time::{Duration, Instant};

use benchmarks::SplitMix64;
use obs::Recorder;
use pla::Pla;

use crate::{e2e, gen, oracle, shrink, Failure};

/// How many recently passing cases feed the mutation generator.
const MUTATION_POOL_CAP: usize = 64;

/// Configuration of a fuzz run.
#[derive(Clone)]
pub struct FuzzConfig {
    /// Master seed; equal seeds reproduce the run exactly.
    pub seed: u64,
    /// Number of cases to generate (an exhausted time budget stops
    /// earlier).
    pub iters: u64,
    /// Optional wall-clock budget for the whole run.
    pub time_budget: Option<Duration>,
    /// Predicate-invocation budget per failure shrink.
    pub shrink_checks: usize,
    /// Skip the ATPG layer for netlists with more nodes than this (test
    /// generation is the expensive step).
    pub atpg_node_budget: usize,
    /// Stop after this many failures (each failure costs a shrink run).
    pub max_failures: usize,
    /// Pre-seeded mutation pool, typically the replay corpus.
    pub pool: Vec<Pla>,
    /// Telemetry sink for counters and spans.
    pub recorder: Option<Recorder>,
    /// Run every passing case past the decomposition doctor
    /// ([`bidecomp::doctor`]) and accumulate finding counts — fuzzing
    /// doubles as a hunt for pathological-but-correct inputs.
    pub doctor: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            iters: 500,
            time_budget: None,
            shrink_checks: 4_000,
            atpg_node_budget: 120,
            max_failures: 5,
            pool: Vec::new(),
            recorder: None,
            doctor: false,
        }
    }
}

/// A failing case, before and after minimization.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// Index of the case within the run (0-based).
    pub case_index: u64,
    /// Generator mode (or corpus file stem on replay).
    pub mode: String,
    /// Failure class from the first check that disagreed.
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
    /// The case as generated.
    pub original: Pla,
    /// The delta-debugged minimal case (equal to `original` on replay,
    /// where cases are already minimal).
    pub minimized: Pla,
    /// Shrink predicate invocations spent on this failure.
    pub shrink_checks: usize,
}

/// The outcome of a fuzz or replay run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Individual oracle comparisons performed.
    pub operator_checks: u64,
    /// Failures found (empty = clean run).
    pub failures: Vec<CaseFailure>,
    /// Doctor finding counts `(info, warning, error)` accumulated across
    /// passing cases; `None` when [`FuzzConfig::doctor`] was off.
    pub doctor_findings: Option<(u64, u64, u64)>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// Did every case pass?
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs every check on one case: operator differentials first, then the
/// end-to-end pipeline. Returns the number of oracle comparisons.
///
/// `case_seed` drives the auxiliary random choices inside the operator
/// sweep; equal `(pla, case_seed)` pairs are fully deterministic.
pub fn check_case(pla: &Pla, case_seed: u64, atpg_node_budget: usize) -> Result<u64, Failure> {
    let checks = oracle::check_operators(pla, case_seed)?;
    e2e::check_end_to_end(pla, atpg_node_budget)?;
    Ok(checks)
}

fn record_count(recorder: &Option<Recorder>, name: &str, delta: u64) {
    if let Some(rec) = recorder {
        rec.count(name, delta);
    }
}

/// Diagnoses one passing case and folds the finding counts into the
/// report (and the `fuzz.doctor.findings` counter).
fn note_doctor(cfg: &FuzzConfig, report: &mut FuzzReport, pla: &Pla) {
    use bidecomp::doctor::{diagnose_pla, DoctorConfig};
    let (_, doc) = diagnose_pla(pla, &bidecomp::Options::default(), &DoctorConfig::default());
    let (info, warning, error) = doc.counts();
    let counts = report.doctor_findings.get_or_insert((0, 0, 0));
    counts.0 += info as u64;
    counts.1 += warning as u64;
    counts.2 += error as u64;
    record_count(&cfg.recorder, "fuzz.doctor.findings", (info + warning + error) as u64);
}

/// Handles one failing case: shrink it (unless the config's shrink
/// budget is zero) and append the result.
fn handle_failure(
    cfg: &FuzzConfig,
    report: &mut FuzzReport,
    case_index: u64,
    mode: String,
    pla: &Pla,
    case_seed: u64,
    failure: Failure,
) {
    record_count(&cfg.recorder, "fuzz.failures", 1);
    let (minimized, used) = if cfg.shrink_checks > 0 {
        let _span = cfg.recorder.as_ref().map(|r| r.span("fuzz.shrink"));
        let mut still_fails =
            |candidate: &Pla| check_case(candidate, case_seed, cfg.atpg_node_budget).is_err();
        let outcome = shrink::shrink(pla, &mut still_fails, cfg.shrink_checks);
        (outcome.pla, outcome.checks_used)
    } else {
        (pla.clone(), 0)
    };
    record_count(&cfg.recorder, "fuzz.shrink.checks", used as u64);
    report.failures.push(CaseFailure {
        case_index,
        mode,
        kind: failure.kind,
        detail: failure.detail,
        original: pla.clone(),
        minimized,
        shrink_checks: used,
    });
}

/// Runs a seeded fuzz session.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let _span = cfg.recorder.as_ref().map(|r| r.span("fuzz.run"));
    let mut rng = SplitMix64::new(cfg.seed);
    let mut pool = cfg.pool.clone();
    pool.retain(|p| p.num_inputs() <= gen::MAX_INPUTS && !p.cubes().is_empty());
    let mut report = FuzzReport::default();
    if cfg.doctor {
        report.doctor_findings = Some((0, 0, 0));
    }

    for i in 0..cfg.iters {
        if cfg.time_budget.is_some_and(|budget| start.elapsed() >= budget) {
            break;
        }
        let case = gen::generate(&mut rng, &pool);
        let case_seed = rng.next_u64();
        report.cases += 1;
        record_count(&cfg.recorder, "fuzz.cases", 1);
        match check_case(&case.pla, case_seed, cfg.atpg_node_budget) {
            Ok(checks) => {
                report.operator_checks += checks;
                record_count(&cfg.recorder, "fuzz.checks", checks);
                if cfg.doctor {
                    note_doctor(cfg, &mut report, &case.pla);
                }
                // Passing cases feed the mutation generator.
                if pool.len() < MUTATION_POOL_CAP {
                    pool.push(case.pla);
                } else {
                    let slot = rng.gen_range(pool.len());
                    pool[slot] = case.pla;
                }
            }
            Err(failure) => {
                handle_failure(
                    cfg,
                    &mut report,
                    i,
                    case.mode.to_owned(),
                    &case.pla,
                    case_seed,
                    failure,
                );
                if report.failures.len() >= cfg.max_failures {
                    break;
                }
            }
        }
    }
    report.elapsed = start.elapsed();
    report
}

/// Replays a list of (already minimized) corpus cases. Failures are not
/// shrunk again; the auxiliary seed is fixed so replay is deterministic
/// regardless of corpus order.
pub fn replay(cases: &[(String, Pla)], cfg: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let _span = cfg.recorder.as_ref().map(|r| r.span("fuzz.replay"));
    // Corpus cases are already minimal: disable shrinking on replay.
    let cfg = FuzzConfig { shrink_checks: 0, ..cfg.clone() };
    let mut report = FuzzReport::default();
    if cfg.doctor {
        report.doctor_findings = Some((0, 0, 0));
    }
    for (i, (name, pla)) in cases.iter().enumerate() {
        report.cases += 1;
        record_count(&cfg.recorder, "fuzz.cases", 1);
        match check_case(pla, cfg.seed, cfg.atpg_node_budget) {
            Ok(checks) => {
                report.operator_checks += checks;
                record_count(&cfg.recorder, "fuzz.checks", checks);
                if cfg.doctor {
                    note_doctor(&cfg, &mut report, pla);
                }
            }
            Err(failure) => {
                handle_failure(&cfg, &mut report, i as u64, name.clone(), pla, cfg.seed, failure);
            }
        }
    }
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::MemorySink;

    #[test]
    fn clean_run_is_deterministic() {
        let cfg = FuzzConfig { iters: 40, ..FuzzConfig::default() };
        let a = run(&cfg);
        let b = run(&cfg);
        assert!(a.clean(), "HEAD must fuzz clean: {:?}", a.failures.first().map(|f| f.kind));
        assert_eq!(a.cases, 40);
        assert_eq!(a.operator_checks, b.operator_checks, "equal seeds, equal work");
    }

    #[test]
    fn counters_reach_the_recorder() {
        let rec = Recorder::new();
        rec.add_sink(Box::new(MemorySink::new()));
        let cfg = FuzzConfig { iters: 5, recorder: Some(rec.clone()), ..FuzzConfig::default() };
        let report = run(&cfg);
        assert_eq!(rec.counter("fuzz.cases"), report.cases);
        assert_eq!(rec.counter("fuzz.checks"), report.operator_checks);
    }

    #[test]
    fn doctor_counts_are_opt_in() {
        let cfg = FuzzConfig { iters: 5, ..FuzzConfig::default() };
        assert_eq!(run(&cfg).doctor_findings, None, "off by default");
        let rec = Recorder::new();
        rec.add_sink(Box::new(MemorySink::new()));
        let cfg = FuzzConfig { doctor: true, recorder: Some(rec.clone()), ..cfg };
        let report = run(&cfg);
        let (info, warning, error) = report.doctor_findings.expect("doctor was on");
        assert_eq!(error, 0, "tiny correct cases must not be pathological");
        assert_eq!(rec.counter("fuzz.doctor.findings"), info + warning + error);
    }

    #[test]
    fn time_budget_stops_the_run() {
        let cfg = FuzzConfig {
            iters: u64::MAX,
            time_budget: Some(Duration::from_millis(200)),
            ..FuzzConfig::default()
        };
        let report = run(&cfg);
        assert!(report.cases > 0, "at least one case runs");
        assert!(report.elapsed < Duration::from_secs(30), "the budget binds");
    }

    #[test]
    fn replay_of_generated_cases_is_clean() {
        let mut rng = SplitMix64::new(12);
        let cases: Vec<(String, Pla)> =
            (0..10).map(|i| (format!("case{i}"), gen::generate(&mut rng, &[]).pla)).collect();
        let report = replay(&cases, &FuzzConfig::default());
        assert!(report.clean());
        assert_eq!(report.cases, 10);
    }
}
