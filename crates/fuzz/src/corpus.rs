//! The regression corpus: minimized counterexamples as PLA files.
//!
//! Every saved case gets a deterministic, content-addressed filename
//! (`case-<kind>-<hash16>.pla`) so independent fuzz runs deduplicate
//! naturally, and every save is gated on a Display → parse round trip —
//! a file that cannot be replayed bit-exactly is never written.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pla::Pla;

/// 64-bit FNV-1a (the workspace is dependency-free; this only needs to
/// be stable, not cryptographic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content-addressed filename for a minimized case.
pub fn case_filename(kind: &str, pla: &Pla) -> String {
    let hash = fnv1a(format!("{kind}\n{pla}").as_bytes());
    format!("case-{kind}-{hash:016x}.pla")
}

/// Saves a minimized case into `dir` (created if missing). Returns the
/// path written, or `Ok(None)` if an identically named case already
/// exists (same kind and content — nothing new to record).
///
/// # Panics
///
/// Panics if the case does not survive a Display → parse round trip;
/// such a case could never be replayed, so writing it would poison the
/// corpus.
pub fn save_case(dir: &Path, kind: &str, pla: &Pla) -> io::Result<Option<PathBuf>> {
    let text = pla.to_string();
    let reparsed: Pla = text.parse().unwrap_or_else(|e| {
        panic!("minimized case does not round-trip through the PLA format: {e}\n{text}")
    });
    assert_eq!(reparsed, *pla, "minimized case must round-trip bit-exactly");
    fs::create_dir_all(dir)?;
    let path = dir.join(case_filename(kind, pla));
    if path.exists() {
        return Ok(None);
    }
    fs::write(&path, format!("# minimized fuzz counterexample ({kind})\n{text}"))?;
    Ok(Some(path))
}

/// Loads every `.pla` file in `dir`, sorted by filename for replay
/// determinism. Returns `(file stem, case)` pairs; a missing directory
/// is an empty corpus.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, Pla)>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "pla"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let pla: Pla = text
            .parse()
            .unwrap_or_else(|e| panic!("corpus file {} is malformed: {e}", path.display()));
        let stem = path.file_stem().map_or_else(String::new, |s| s.to_string_lossy().into_owned());
        cases.push((stem, pla));
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use benchmarks::SplitMix64;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fuzz-corpus-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut rng = SplitMix64::new(4);
        let mut saved = Vec::new();
        for _ in 0..10 {
            let case = gen::generate(&mut rng, &[]);
            if let Some(path) = save_case(&dir, "test", &case.pla).expect("save") {
                saved.push((path, case.pla));
            }
        }
        assert!(!saved.is_empty());
        let loaded = load_dir(&dir).expect("load");
        assert_eq!(loaded.len(), saved.len());
        for (path, pla) in &saved {
            let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
            let found = loaded.iter().find(|(s, _)| *s == stem).expect("saved case is loaded");
            assert_eq!(&found.1, pla, "replayed case equals the saved one");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_saves_are_skipped() {
        let dir = temp_dir("dedupe");
        let mut rng = SplitMix64::new(6);
        let case = gen::generate(&mut rng, &[]);
        assert!(save_case(&dir, "dup", &case.pla).expect("first save").is_some());
        assert!(save_case(&dir, "dup", &case.pla).expect("second save").is_none());
        assert_eq!(load_dir(&dir).expect("load").len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn filenames_are_content_addressed() {
        let mut rng = SplitMix64::new(7);
        let a = gen::generate(&mut rng, &[]).pla;
        let b = gen::generate(&mut rng, &[]).pla;
        assert_eq!(case_filename("k", &a), case_filename("k", &a));
        assert_ne!(case_filename("k", &a), case_filename("k", &b));
        assert_ne!(case_filename("k", &a), case_filename("other", &a));
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = temp_dir("missing");
        assert!(load_dir(&dir).expect("load").is_empty());
    }
}
