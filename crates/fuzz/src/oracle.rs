//! Operator-level differential checks: every BDD operation the
//! decomposer relies on, cross-checked against `boolfn` enumeration.
//!
//! The reference semantics of a case come straight from [`Pla::eval`]
//! (espresso resolution: on beats don't-care beats off), enumerated into
//! dense [`TruthTable`]s. Everything downstream — `isfs_from_pla`, the
//! `apply` family, ITE, quantification, cofactor, compose, `isop`, and
//! reordering — must agree with the table algebra exactly.

use bdd::{reorder, Bdd, BinOp, Func, VarId, VarSet};
use benchmarks::SplitMix64;
use bidecomp::isfs_from_pla;
use boolfn::TruthTable;
use pla::Pla;

use crate::Failure;

/// All eight binary connectives of [`BinOp`].
pub const ALL_OPS: [BinOp; 8] = [
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Nand,
    BinOp::Nor,
    BinOp::Xnor,
    BinOp::Diff,
    BinOp::Imp,
];

/// Per-output `(on, off)` reference tables of a PLA, by enumeration of
/// [`Pla::eval`] over all minterms. The tables are disjoint by
/// construction; their complement union is the don't-care set.
pub fn reference_tables(pla: &Pla) -> Vec<(TruthTable, TruthTable)> {
    let n = pla.num_inputs();
    (0..pla.num_outputs())
        .map(|o| {
            let on = TruthTable::from_fn(n, |m| pla.eval(o, m as u64) == Some(true));
            let off = TruthTable::from_fn(n, |m| pla.eval(o, m as u64) == Some(false));
            (on, off)
        })
        .collect()
}

/// The truth-table semantics of one [`BinOp`].
pub fn tt_apply(op: BinOp, a: &TruthTable, b: &TruthTable) -> TruthTable {
    match op {
        BinOp::And => a.and(b),
        BinOp::Or => a.or(b),
        BinOp::Xor => a.xor(b),
        BinOp::Nand => a.and(b).complement(),
        BinOp::Nor => a.or(b).complement(),
        BinOp::Xnor => a.xor(b).complement(),
        BinOp::Diff => a.diff(b),
        BinOp::Imp => a.diff(b).complement(),
    }
}

fn varset_mask(set: &VarSet) -> u32 {
    set.iter().fold(0u32, |m, v| m | (1 << v))
}

fn mask_varset(mask: u32, n: usize) -> VarSet {
    (0..n as u32).filter(|v| mask & (1 << v) != 0).collect()
}

/// Compares a BDD against its expected table; on mismatch reports the
/// first differing minterm.
fn expect_tt(
    mgr: &Bdd,
    f: Func,
    want: &TruthTable,
    kind: &'static str,
    what: &str,
) -> Result<(), Failure> {
    let got = TruthTable::from_bdd(mgr, f, want.num_vars());
    if got == *want {
        return Ok(());
    }
    let m = (0..1u32 << want.num_vars())
        .find(|&m| got.get(m) != want.get(m))
        .expect("tables differ somewhere");
    Err(Failure::new(
        kind,
        format!("{what}: minterm {m} is {} but oracle says {}", got.get(m), want.get(m)),
    ))
}

/// Runs every operator-level differential check on one case. Returns the
/// number of individual comparisons performed.
///
/// `seed` drives the auxiliary random choices (operand pairs, quantifier
/// masks, reorder permutations); equal `(pla, seed)` runs are identical.
pub fn check_operators(pla: &Pla, seed: u64) -> Result<u64, Failure> {
    let n = pla.num_inputs();
    let mut rng = SplitMix64::new(seed);
    let mut checks = 0u64;
    let refs = reference_tables(pla);

    // 1. ISF construction: `isfs_from_pla` must reproduce the espresso
    //    resolution order of `Pla::eval` exactly.
    let mut mgr = Bdd::new(n);
    let isfs = isfs_from_pla(&mut mgr, pla);
    if isfs.len() != refs.len() {
        return Err(Failure::new(
            "isf_build",
            format!("{} ISFs for {} outputs", isfs.len(), refs.len()),
        ));
    }
    for (k, (isf, (on, off))) in isfs.iter().zip(&refs).enumerate() {
        expect_tt(&mgr, isf.q, on, "isf_build", &format!("output {k} on-set"))?;
        expect_tt(&mgr, isf.r, off, "isf_build", &format!("output {k} off-set"))?;
        checks += 2;
    }

    // Operand pool: the first output's interval plus decorrelated random
    // functions — mixes structured and unstructured operands.
    let (on0, off0) = refs[0].clone();
    let dc0 = on0.or(&off0).complement();
    let rnd1 = TruthTable::random(n, 0.3 + 0.4 * (rng.gen_range(5) as f64 / 10.0), rng.next_u64());
    let rnd2 = TruthTable::random(n, 0.5, rng.next_u64());
    let pool: Vec<(TruthTable, Func)> = [on0, off0, dc0, rnd1, rnd2]
        .into_iter()
        .map(|tt| {
            let f = tt.to_bdd(&mut mgr);
            (tt, f)
        })
        .collect();

    // 2. The full `apply` family over a few operand pairs, plus NOT/ITE.
    for (ai, bi) in [(0, 1), (3, 4), (0, 3)] {
        let (ta, fa) = &pool[ai];
        let (tb, fb) = &pool[bi];
        let (ta, fa, tb, fb) = (ta.clone(), *fa, tb.clone(), *fb);
        for op in ALL_OPS {
            let f = mgr.apply(op, fa, fb);
            expect_tt(&mgr, f, &tt_apply(op, &ta, &tb), "apply", &format!("{op:?}"))?;
            checks += 1;
        }
        let f = mgr.not(fa);
        expect_tt(&mgr, f, &ta.complement(), "apply", "Not")?;
        let (tc, fc) = (pool[2].0.clone(), pool[2].1);
        let f = mgr.ite(fa, fb, fc);
        let want = ta.and(&tb).or(&ta.complement().and(&tc));
        expect_tt(&mgr, f, &want, "apply", "Ite")?;
        checks += 2;
    }

    // 3. Quantification over random non-empty variable subsets.
    for _ in 0..3 {
        let mask = 1 + rng.gen_range((1usize << n) - 1);
        let mask = mask as u32;
        let set = mask_varset(mask, n);
        let cube = mgr.cube(&set);
        let (ta, fa) = &pool[rng.gen_range(pool.len())];
        let (ta, fa) = (ta.clone(), *fa);
        let f = mgr.exists(fa, cube);
        expect_tt(&mgr, f, &ta.exists(mask), "quantify", &format!("exists {mask:b}"))?;
        let f = mgr.forall(fa, cube);
        expect_tt(&mgr, f, &ta.forall(mask), "quantify", &format!("forall {mask:b}"))?;
        let f = mgr.exists_set(fa, &set);
        expect_tt(&mgr, f, &ta.exists(mask), "quantify", &format!("exists_set {mask:b}"))?;
        checks += 3;
    }

    // 4. Cofactor and functional composition.
    for _ in 0..3 {
        let v = rng.gen_range(n);
        let value = rng.gen_bool(0.5);
        let (ta, fa) = &pool[rng.gen_range(pool.len())];
        let (tg, fg) = &pool[rng.gen_range(pool.len())];
        let (ta, fa, tg, fg) = (ta.clone(), *fa, tg.clone(), *fg);
        let f = mgr.cofactor(fa, v as VarId, value);
        expect_tt(&mgr, f, &ta.cofactor(v, value), "cofactor", &format!("x{v}={value}"))?;
        let f = mgr.compose(fa, v as VarId, fg);
        expect_tt(&mgr, f, &ta.compose(v, &tg), "compose", &format!("x{v} := g"))?;
        checks += 2;
    }

    // 5. `isop` on every output interval: the result must lie in
    //    `[Q, ¬R]` and equal the function of its own cube list.
    for (k, (isf, (on, off))) in isfs.iter().zip(&refs).enumerate() {
        let upper = mgr.not(isf.r);
        let (f, cubes) = mgr.isop(isf.q, upper);
        let ft = TruthTable::from_bdd(&mgr, f, n);
        if !on.implies(&ft) {
            return Err(Failure::new("isop", format!("output {k}: cover misses the on-set")));
        }
        if !ft.disjoint(off) {
            return Err(Failure::new("isop", format!("output {k}: cover touches the off-set")));
        }
        let g = mgr.cover_function(&cubes);
        if g != f {
            return Err(Failure::new(
                "isop",
                format!("output {k}: cube list denotes a different function"),
            ));
        }
        checks += 3;
    }

    // 6. Reorder invariance: rebuilding under a random order and sifting
    //    must preserve semantics, support and satisfy counts.
    {
        let (ta, _) = &pool[3];
        let ta = ta.clone();
        let mut mgr2 = Bdd::new(n);
        let f2 = ta.to_bdd(&mut mgr2);
        let mut perm: Vec<VarId> = (0..n as VarId).collect();
        rng.shuffle(&mut perm);
        let roots = mgr2.reorder(&perm, &[f2]);
        expect_tt(&mgr2, roots[0], &ta, "reorder", &format!("rebuild under {perm:?}"))?;
        if varset_mask(&mgr2.support(roots[0])) != ta.support_mask() {
            return Err(Failure::new("reorder", "support changed across reorder".to_string()));
        }
        if mgr2.sat_count(roots[0]) != ta.count_ones() as f64 {
            return Err(Failure::new("reorder", "sat_count changed across reorder".to_string()));
        }
        let roots = reorder::greedy_sift(&mut mgr2, &roots, 2);
        expect_tt(&mgr2, roots[0], &ta, "reorder", "greedy_sift")?;
        if mgr2.sat_count(roots[0]) != ta.count_ones() as f64 {
            return Err(Failure::new("reorder", "sat_count changed across sifting".to_string()));
        }
        checks += 5;
    }

    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn reference_tables_partition_the_space() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..30 {
            let case = gen::generate(&mut rng, &[]);
            for (on, off) in reference_tables(&case.pla) {
                assert!(on.disjoint(&off), "on- and off-set overlap");
            }
        }
    }

    #[test]
    fn tt_apply_matches_pointwise_definitions() {
        let a = TruthTable::random(4, 0.5, 1);
        let b = TruthTable::random(4, 0.5, 2);
        for op in ALL_OPS {
            let c = tt_apply(op, &a, &b);
            for m in 0..16u32 {
                let (x, y) = (a.get(m), b.get(m));
                let want = match op {
                    BinOp::And => x && y,
                    BinOp::Or => x || y,
                    BinOp::Xor => x ^ y,
                    BinOp::Nand => !(x && y),
                    BinOp::Nor => !(x || y),
                    BinOp::Xnor => !(x ^ y),
                    BinOp::Diff => x && !y,
                    BinOp::Imp => !x || y,
                };
                assert_eq!(c.get(m), want, "{op:?} at {m}");
            }
        }
    }

    #[test]
    fn operator_checks_pass_on_generated_cases() {
        let mut rng = SplitMix64::new(5);
        for i in 0..25 {
            let case = gen::generate(&mut rng, &[]);
            let checks = check_operators(&case.pla, 1000 + i)
                .unwrap_or_else(|f| panic!("case {i} ({}) failed: {f}\n{}", case.mode, case.pla));
            assert!(checks > 10, "sweep ran");
        }
    }
}
