//! End-to-end pipeline checks: decompose → netlist → bit-parallel
//! resimulation against the specification interval, plus Theorem 5
//! (100% single-stuck-at testability) via the ATPG crate.

use std::panic::{catch_unwind, AssertUnwindSafe};

use atpg::{collapse, detects, enumerate_faults, fault_coverage, generate_tests};
use bdd::Bdd;
use bidecomp::{decompose_pla, isfs_from_pla, verify, DecompOutcome, Options};
use pla::Pla;

use crate::oracle::reference_tables;
use crate::Failure;

/// What the end-to-end check observed on a passing case.
#[derive(Clone, Copy, Debug)]
pub struct E2eReport {
    /// Nodes in the decomposed netlist (inputs + gates).
    pub nodes: usize,
    /// Whether the ATPG testability check ran (skipped above the gate
    /// budget).
    pub atpg_ran: bool,
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs the full pipeline on one case.
///
/// Checks, in order:
///
/// 1. `decompose_pla` neither panics nor fails its own BDD verifier.
/// 2. Bit-parallel resimulation of the emitted netlist over all `2^n`
///    minterms satisfies `Q ⊆ net ⊆ ¬R` for every output (against the
///    [`Pla::eval`] enumeration oracle, independent of any BDD).
/// 3. An independent `verify::verify_netlist` run on a fresh manager
///    agrees.
/// 4. If the netlist has at most `atpg_node_budget` nodes: every
///    collapsed single-stuck-at fault is detected (`redundant == 0`,
///    Theorem 5), fault simulation of the generated tests reproduces the
///    ATPG coverage, and per-fault BDD-exact TPG agrees with fault
///    simulation.
pub fn check_end_to_end(pla: &Pla, atpg_node_budget: usize) -> Result<E2eReport, Failure> {
    let n = pla.num_inputs();
    let refs = reference_tables(pla);

    let outcome: DecompOutcome =
        match catch_unwind(AssertUnwindSafe(|| decompose_pla(pla, &Options::default()))) {
            Ok(outcome) => outcome,
            Err(payload) => return Err(Failure::new("panic", panic_message(payload))),
        };
    if !outcome.verified {
        return Err(Failure::new("verify", "decompose_pla's own verifier rejected the result"));
    }
    let nl = &outcome.netlist;
    if nl.inputs().len() != n {
        return Err(Failure::new(
            "netlist_arity",
            format!("netlist has {} inputs for a {n}-input PLA", nl.inputs().len()),
        ));
    }
    if nl.outputs().len() != pla.num_outputs() {
        return Err(Failure::new(
            "netlist_arity",
            format!("netlist has {} outputs for {}", nl.outputs().len(), pla.num_outputs()),
        ));
    }

    // Bit-parallel resimulation: 64 minterms per word.
    let total = 1u64 << n;
    let mut base = 0u64;
    while base < total {
        let lanes = (total - base).min(64) as u32;
        let patterns: Vec<u64> = (0..n)
            .map(|i| {
                let mut word = 0u64;
                for j in 0..lanes {
                    if (base + j as u64) >> i & 1 != 0 {
                        word |= 1 << j;
                    }
                }
                word
            })
            .collect();
        let values = nl.simulate(&patterns);
        for (o, (on, off)) in refs.iter().enumerate() {
            for j in 0..lanes {
                let m = base + j as u64;
                let bit = values[o] >> j & 1 != 0;
                if on.get(m as u32) && !bit {
                    return Err(Failure::new(
                        "resim",
                        format!("output {o}: minterm {m} is in Q but the netlist yields 0"),
                    ));
                }
                if off.get(m as u32) && bit {
                    return Err(Failure::new(
                        "resim",
                        format!("output {o}: minterm {m} is in R but the netlist yields 1"),
                    ));
                }
            }
        }
        base += 64;
    }

    // Independent BDD verification on a fresh manager must agree with the
    // resimulation verdict (which, having got here, is "pass").
    let mut mgr = Bdd::new(n);
    let isfs = isfs_from_pla(&mut mgr, pla);
    if !verify::verify_netlist(&mut mgr, nl, &isfs) {
        let failing = verify::failing_outputs(&mut mgr, nl, &isfs);
        return Err(Failure::new(
            "verify_mismatch",
            format!("resimulation passed but verify_netlist rejects outputs {failing:?}"),
        ));
    }

    let nodes = nl.nodes().len();
    if nodes > atpg_node_budget {
        return Ok(E2eReport { nodes, atpg_ran: false });
    }

    // Theorem 5: the emitted netlist is fully testable.
    let report = generate_tests(nl);
    if report.redundant != 0 {
        return Err(Failure::new(
            "atpg_redundant",
            format!(
                "{} of {} collapsed faults are redundant: {:?}",
                report.redundant, report.total_faults, report.redundant_faults
            ),
        ));
    }
    if report.detected != report.total_faults {
        return Err(Failure::new(
            "atpg_coverage",
            format!("{} of {} faults detected", report.detected, report.total_faults),
        ));
    }
    // The generated test set, fault-simulated from scratch, must
    // reproduce the ATPG's own coverage claim.
    let faults = collapse(nl, &enumerate_faults(nl));
    let sim_cov = fault_coverage(nl, &faults, &report.tests);
    if sim_cov != report.coverage() {
        return Err(Failure::new(
            "atpg_sim_mismatch",
            format!("fault simulation sees {sim_cov}, TPG claimed {}", report.coverage()),
        ));
    }
    // BDD-exact per-fault TPG must agree with fault simulation on the
    // detected/undetected partition.
    for &fault in &faults {
        match atpg::test_for_fault(nl, fault) {
            Some(test) => {
                let patterns: Vec<u64> = test.iter().map(|&v| if v { 1u64 } else { 0 }).collect();
                if !detects(nl, fault, &patterns) {
                    return Err(Failure::new(
                        "atpg_tpg_mismatch",
                        format!("TPG test for {fault:?} does not detect it in simulation"),
                    ));
                }
            }
            None => {
                return Err(Failure::new(
                    "atpg_tpg_mismatch",
                    format!("TPG calls {fault:?} redundant on a Theorem 5 netlist"),
                ));
            }
        }
    }

    Ok(E2eReport { nodes, atpg_ran: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use benchmarks::SplitMix64;

    #[test]
    fn generated_cases_pass_end_to_end() {
        let mut rng = SplitMix64::new(8);
        let mut atpg_runs = 0;
        for i in 0..15 {
            let case = gen::generate(&mut rng, &[]);
            let report = crate::e2e::check_end_to_end(&case.pla, 150)
                .unwrap_or_else(|f| panic!("case {i} ({}) failed: {f}\n{}", case.mode, case.pla));
            if report.atpg_ran {
                atpg_runs += 1;
            }
        }
        assert!(atpg_runs > 0, "the ATPG layer must run on small netlists");
    }

    #[test]
    fn known_benchmark_passes_end_to_end() {
        let suite = benchmarks::by_name("rd73").expect("rd73 exists");
        let report = check_end_to_end(&suite.pla, usize::MAX).expect("rd73 is clean");
        assert!(report.atpg_ran);
    }
}
