//! Seeded ISF case generators.
//!
//! Three modes, chosen pseudo-randomly per case:
//!
//! * **cube** — uniform random cube lists over all four espresso PLA
//!   types, sweeping input count, cube count, literal density and
//!   don't-care density. This is the widest net: it produces overlapping
//!   on/off/dc cubes whose conflicts exercise the espresso resolution
//!   order (on beats dc beats off).
//! * **structured** / **expression** — the realistic generators from the
//!   `benchmarks` crate (windowed sparse cubes, collapsed expression
//!   trees), reused with small parameter sweeps.
//! * **mutation** — a previously seen case with a few random edits (trit
//!   flips, output flips, cube insertion/removal/duplication), the
//!   classic coverage-feedback substitute for a deterministic harness.
//!
//! Cases are capped at [`MAX_INPUTS`] inputs so the `boolfn` enumeration
//! oracles stay trivially cheap (≤ 256 minterms).

use benchmarks::{expression_pla, structured_pla, ExprSpec, SplitMix64, SynthSpec};
use pla::{Cube, OutputValue, Pla, PlaType, Trit};

/// Largest input arity the generators produce; keeps every oracle an
/// enumeration over at most `2^MAX_INPUTS = 256` minterms.
pub const MAX_INPUTS: usize = 8;

/// A generated case plus the mode that produced it (for failure triage).
#[derive(Clone, Debug)]
pub struct GeneratedCase {
    /// The case itself.
    pub pla: Pla,
    /// Generator mode: `"cube"`, `"structured"`, `"expression"` or
    /// `"mutation"`.
    pub mode: &'static str,
}

/// Generates the next case from the stream. `pool` feeds the mutation
/// mode (typically recently generated cases plus the replay corpus); when
/// it is empty the mutation mode falls back to fresh cube lists.
pub fn generate(rng: &mut SplitMix64, pool: &[Pla]) -> GeneratedCase {
    match rng.gen_range(4) {
        0 => GeneratedCase { pla: cube_case(rng), mode: "cube" },
        1 => GeneratedCase { pla: structured_case(rng), mode: "structured" },
        2 => GeneratedCase { pla: expression_case(rng), mode: "expression" },
        _ => match mutation_case(rng, pool) {
            Some(pla) => GeneratedCase { pla, mode: "mutation" },
            None => GeneratedCase { pla: cube_case(rng), mode: "cube" },
        },
    }
}

/// A uniform value in `[0, 1)` (53 bits of the stream).
fn unit(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

fn random_type(rng: &mut SplitMix64) -> PlaType {
    [PlaType::F, PlaType::Fd, PlaType::Fr, PlaType::Fdr][rng.gen_range(4)]
}

/// Output values a cube may carry in a PLA of the given type.
fn output_palette(ty: PlaType) -> &'static [OutputValue] {
    match ty {
        PlaType::F => &[OutputValue::One, OutputValue::NotUsed],
        PlaType::Fd => &[OutputValue::One, OutputValue::NotUsed, OutputValue::DontCare],
        PlaType::Fr => &[OutputValue::One, OutputValue::NotUsed, OutputValue::Zero],
        PlaType::Fdr => {
            &[OutputValue::One, OutputValue::NotUsed, OutputValue::Zero, OutputValue::DontCare]
        }
    }
}

fn random_cube(
    rng: &mut SplitMix64,
    num_inputs: usize,
    num_outputs: usize,
    ty: PlaType,
    dc_literal_prob: f64,
) -> Cube {
    let inputs = (0..num_inputs)
        .map(|_| {
            if rng.gen_bool(dc_literal_prob) {
                Trit::Dc
            } else if rng.gen_bool(0.5) {
                Trit::One
            } else {
                Trit::Zero
            }
        })
        .collect();
    let palette = output_palette(ty);
    let outputs = (0..num_outputs).map(|_| palette[rng.gen_range(palette.len())]).collect();
    Cube::new(inputs, outputs)
}

/// Uniform random cube lists over every PLA type.
fn cube_case(rng: &mut SplitMix64) -> Pla {
    let n = 3 + rng.gen_range(MAX_INPUTS - 2); // 3..=MAX_INPUTS
    let outs = 1 + rng.gen_range(3); // 1..=3
    let ty = random_type(rng);
    let dc_literal_prob = 0.2 + 0.6 * unit(rng);
    let num_cubes = 1 + rng.gen_range(3 * n);
    let mut pla = Pla::new(n, outs).with_type(ty);
    for _ in 0..num_cubes {
        pla.push(random_cube(rng, n, outs, ty, dc_literal_prob));
    }
    pla
}

/// Windowed sparse cube lists via `benchmarks::structured_pla`.
fn structured_case(rng: &mut SplitMix64) -> Pla {
    let n = 4 + rng.gen_range(MAX_INPUTS - 3); // 4..=MAX_INPUTS
    let window = 2 + rng.gen_range(n - 1); // 2..=n
    structured_pla(&SynthSpec {
        num_inputs: n,
        num_outputs: 1 + rng.gen_range(2),
        cubes_per_output: 2 + rng.gen_range(5),
        window,
        literals: 1 + rng.gen_range(window),
        dc_cubes_per_output: rng.gen_range(3),
        seed: rng.next_u64(),
    })
}

/// Collapsed expression trees via `benchmarks::expression_pla`.
fn expression_case(rng: &mut SplitMix64) -> Pla {
    let n = 3 + rng.gen_range(MAX_INPUTS - 2);
    expression_pla(&ExprSpec {
        num_inputs: n,
        num_outputs: 1 + rng.gen_range(2),
        window: 2 + rng.gen_range(n - 1),
        depth: 2 + rng.gen_range(2),
        xor_weight: 0.5 * unit(rng),
        dc_fraction: 0.5 * unit(rng),
        seed: rng.next_u64(),
    })
}

/// A previously seen case with 1–4 random edits. Returns `None` when the
/// pool has no usable base (empty, or the base exceeds [`MAX_INPUTS`]).
fn mutation_case(rng: &mut SplitMix64, pool: &[Pla]) -> Option<Pla> {
    if pool.is_empty() {
        return None;
    }
    let base = &pool[rng.gen_range(pool.len())];
    if base.num_inputs() > MAX_INPUTS || base.cubes().is_empty() {
        return None;
    }
    let (n, outs, ty) = (base.num_inputs(), base.num_outputs(), base.pla_type());
    let mut cubes: Vec<Cube> = base.cubes().to_vec();
    let edits = 1 + rng.gen_range(4);
    for _ in 0..edits {
        match rng.gen_range(5) {
            // Re-roll one input trit.
            0 => {
                let c = rng.gen_range(cubes.len());
                let pos = rng.gen_range(n);
                let mut inputs = cubes[c].inputs().to_vec();
                inputs[pos] = [Trit::Zero, Trit::One, Trit::Dc][rng.gen_range(3)];
                cubes[c] = Cube::new(inputs, cubes[c].outputs().to_vec());
            }
            // Re-roll one output value (within the type's palette).
            1 => {
                let c = rng.gen_range(cubes.len());
                let o = rng.gen_range(outs);
                let palette = output_palette(ty);
                let mut outputs = cubes[c].outputs().to_vec();
                outputs[o] = palette[rng.gen_range(palette.len())];
                cubes[c] = Cube::new(cubes[c].inputs().to_vec(), outputs);
            }
            // Drop a cube.
            2 if cubes.len() > 1 => {
                let c = rng.gen_range(cubes.len());
                cubes.remove(c);
            }
            // Duplicate a cube with one trit changed.
            3 => {
                let c = rng.gen_range(cubes.len());
                let pos = rng.gen_range(n);
                let mut inputs = cubes[c].inputs().to_vec();
                inputs[pos] = [Trit::Zero, Trit::One, Trit::Dc][rng.gen_range(3)];
                let dup = Cube::new(inputs, cubes[c].outputs().to_vec());
                cubes.push(dup);
            }
            // Insert a fresh random cube.
            _ => cubes.push(random_cube(rng, n, outs, ty, 0.5)),
        }
    }
    let mut pla = Pla::new(n, outs).with_type(ty);
    for cube in cubes {
        pla.push(cube);
    }
    Some(pla)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(11);
        let mut b = SplitMix64::new(11);
        let mut pool = Vec::new();
        for _ in 0..50 {
            let ca = generate(&mut a, &pool);
            let cb = generate(&mut b, &pool);
            assert_eq!(ca.pla, cb.pla, "equal seeds generate identical cases");
            assert_eq!(ca.mode, cb.mode);
            assert!(ca.pla.num_inputs() <= MAX_INPUTS);
            assert!(ca.pla.num_inputs() >= 3);
            assert!(ca.pla.num_outputs() >= 1);
            assert!(!ca.pla.cubes().is_empty());
            pool.push(ca.pla);
        }
    }

    #[test]
    fn all_modes_appear() {
        let mut rng = SplitMix64::new(3);
        let mut pool = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let case = generate(&mut rng, &pool);
            seen.insert(case.mode);
            pool.push(case.pla);
        }
        for mode in ["cube", "structured", "expression", "mutation"] {
            assert!(seen.contains(mode), "mode {mode} never produced");
        }
    }

    #[test]
    fn cube_outputs_respect_the_pla_type() {
        let mut rng = SplitMix64::new(17);
        for _ in 0..100 {
            let pla = cube_case(&mut rng);
            let palette = output_palette(pla.pla_type());
            for cube in pla.cubes() {
                for value in cube.outputs() {
                    assert!(palette.contains(value), "{value:?} invalid for {:?}", pla.pla_type());
                }
            }
        }
    }

    #[test]
    fn generated_cases_round_trip_through_the_pla_format() {
        let mut rng = SplitMix64::new(23);
        let pool = Vec::new();
        for _ in 0..50 {
            let case = generate(&mut rng, &pool);
            let text = case.pla.to_string();
            let back: Pla = text.parse().expect("generated PLA must parse");
            assert_eq!(back, case.pla, "Display/FromStr round trip");
        }
    }
}
