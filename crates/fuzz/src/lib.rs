//! Differential fuzzing of the bi-decomposition pipeline.
//!
//! The paper's guarantees are mechanically checkable: every BDD operator
//! has a brute-force [`boolfn::TruthTable`] counterpart, and every
//! decomposed netlist must implement a completion of its specification
//! interval `[Q, ¬R]` (Theorems 1–4) while being 100% single-stuck-at
//! testable (Theorem 5). This crate generates seeded incompletely
//! specified functions as PLAs, cross-checks the operator layer and the
//! end-to-end pipeline against enumeration, and delta-debugs any failing
//! case down to a minimal PLA that is saved into a replayable corpus.
//!
//! Layers:
//!
//! * [`gen`] — seeded case generators (cube lists, expression trees,
//!   mutation of corpus cases) sweeping arity, cube density and
//!   don't-care density.
//! * [`oracle`] — operator-level differential checks: `apply`/ITE,
//!   quantification, cofactor, compose, `isop`, reorder invariance.
//! * [`e2e`] — decompose → netlist → bit-parallel resimulation for
//!   interval containment, plus ATPG full-testability.
//! * [`shrink`] — delta-debugging minimizer (cube removal, output and
//!   variable projection, literal widening, don't-care promotion).
//! * [`corpus`] — hashed PLA filenames, round-trip-checked save/load.
//! * [`driver`] — the seeded fuzz loop and corpus replay, with
//!   obs-integrated counters and spans.
//!
//! The harness proves it can catch real bugs via the deliberate Theorem 1
//! mutation in `bidecomp::check` (see
//! [`bidecomp::check::set_or_check_mutation`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod corpus;
pub mod driver;
pub mod e2e;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use driver::{check_case, replay, run, CaseFailure, FuzzConfig, FuzzReport};

/// One detected disagreement between the system under test and an oracle.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Stable machine-readable failure class (e.g. `"apply"`, `"resim"`,
    /// `"panic"`, `"atpg_redundant"`).
    pub kind: &'static str,
    /// Human-readable specifics: which operator, output, or minterm.
    pub detail: String,
}

impl Failure {
    /// Convenience constructor.
    pub fn new(kind: &'static str, detail: impl Into<String>) -> Self {
        Failure { kind, detail: detail.into() }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}
