//! Harness self-check: with the deliberate Theorem 1 mutation enabled
//! (`bidecomp::check::set_or_check_mutation`), the fuzz loop must find a
//! counterexample and shrink it to a handful of cubes — proof that the
//! differential harness can catch a real logic bug, not just pass on
//! correct code.
//!
//! The mutation switch is process-global, so everything that touches it
//! lives in this one integration test (its own process) and runs
//! sequentially inside a single `#[test]`.

use fuzz::{check_case, run, FuzzConfig};

/// Restores the pristine pipeline even if an assertion fails mid-test.
struct MutationGuard;

impl Drop for MutationGuard {
    fn drop(&mut self) {
        bidecomp::check::set_or_check_mutation(false);
    }
}

#[test]
fn injected_theorem1_bug_is_found_and_minimized() {
    let _guard = MutationGuard;
    let cfg = FuzzConfig { seed: 1, iters: 500, shrink_checks: 2_000, ..FuzzConfig::default() };

    // Sanity: the same budget fuzzes clean on the pristine pipeline.
    assert!(!bidecomp::check::or_check_mutation_enabled());
    let before = run(&FuzzConfig { iters: 30, ..cfg.clone() });
    assert!(before.clean(), "HEAD must fuzz clean before the mutation: {:?}", before.failures);

    // The planted bug makes the OR-decomposability check accept groupings
    // it must reject; in this (debug) build that trips the decomposer's
    // compatibility assertions, which the harness catches as panics.
    bidecomp::check::set_or_check_mutation(true);
    assert!(bidecomp::check::or_check_mutation_enabled());
    // Thousands of caught panics are expected while shrinking; keep the
    // (captured) stderr readable. This file holds exactly one test, so
    // the global hook swap cannot race another test.
    std::panic::set_hook(Box::new(|_| {}));
    let report = run(&cfg);
    let _ = std::panic::take_hook();
    assert!(!report.clean(), "the harness must catch the planted Theorem 1 bug");
    let failure = &report.failures[0];
    assert!(
        failure.minimized.cubes().len() <= 4,
        "minimized counterexample must be ≤ 4 cubes, got {}:\n{}",
        failure.minimized.cubes().len(),
        failure.minimized
    );
    assert!(
        failure.shrink_checks <= cfg.shrink_checks,
        "shrinking must respect its iteration bound"
    );
    // The minimized case still reproduces under the mutation...
    assert!(
        check_case(&failure.minimized, cfg.seed, cfg.atpg_node_budget).is_err(),
        "minimized case must still fail under the mutation"
    );

    // ...and passes once the pipeline is pristine again, making it a
    // corpus-quality regression case for the Theorem 1 check.
    bidecomp::check::set_or_check_mutation(false);
    for failure in &report.failures {
        assert!(
            check_case(&failure.minimized, cfg.seed, cfg.atpg_node_budget).is_ok(),
            "minimized case must pass on the pristine pipeline:\n{}",
            failure.minimized
        );
    }
}
