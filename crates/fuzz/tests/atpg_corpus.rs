//! Corpus-driven ATPG coverage: every decomposed netlist — from the
//! committed regression corpus and from freshly generated cases — must
//! be 100% single-stuck-at testable (Theorem 5), and the BDD-exact test
//! generator must agree with fault simulation on the detected/undetected
//! partition.

use std::path::Path;

use atpg::{collapse, detects, enumerate_faults, fault_coverage, generate_tests, test_for_fault};
use benchmarks::SplitMix64;
use bidecomp::{decompose_pla, Options};
use fuzz::{corpus, gen};
use pla::Pla;

/// Keep the per-fault BDD-exact TPG affordable.
const MAX_NODES: usize = 150;

fn committed_corpus() -> Vec<(String, Pla)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/corpus");
    corpus::load_dir(&dir).expect("corpus directory is readable")
}

fn assert_fully_testable(name: &str, pla: &Pla) {
    let outcome = decompose_pla(pla, &Options::default());
    assert!(outcome.verified, "{name}: decomposition must verify");
    let nl = &outcome.netlist;
    if nl.nodes().len() > MAX_NODES {
        return;
    }

    // Theorem 5: no redundant faults, all detected.
    let report = generate_tests(nl);
    assert_eq!(
        report.redundant, 0,
        "{name}: decomposed netlist has redundant faults {:?}",
        report.redundant_faults
    );
    assert_eq!(report.detected, report.total_faults, "{name}: not all faults detected");
    assert_eq!(report.coverage(), 1.0, "{name}: coverage below 100%");

    // Fault simulation of the generated tests must reproduce the claim.
    let faults = collapse(nl, &enumerate_faults(nl));
    assert_eq!(
        fault_coverage(nl, &faults, &report.tests),
        report.coverage(),
        "{name}: fault simulation disagrees with the TPG coverage"
    );

    // Per-fault BDD-exact TPG vs. simulation, fault by fault.
    for &fault in &faults {
        let test = test_for_fault(nl, fault)
            .unwrap_or_else(|| panic!("{name}: TPG calls {fault:?} redundant"));
        let patterns: Vec<u64> = test.iter().map(|&v| if v { 1u64 } else { 0 }).collect();
        assert!(
            detects(nl, fault, &patterns),
            "{name}: the TPG test for {fault:?} fails in simulation"
        );
    }
}

#[test]
fn committed_corpus_netlists_are_fully_testable() {
    let cases = committed_corpus();
    assert!(!cases.is_empty(), "the committed corpus must not be empty");
    for (name, pla) in &cases {
        assert_fully_testable(name, pla);
    }
}

#[test]
fn generated_netlists_are_fully_testable() {
    let mut rng = SplitMix64::new(29);
    for i in 0..12 {
        let case = gen::generate(&mut rng, &[]);
        assert_fully_testable(&format!("generated case {i} ({})", case.mode), &case.pla);
    }
}
