//! Seeded property tests for the kernel-grade BDD manager and the
//! parallel driver.
//!
//! Three guarantees the kernel rework must not bend:
//!
//! * **Canonicity** — the intrusive unique table keeps the manager
//!   canonical (one node per distinct cofactor triple) across any
//!   interleaving of `mk`-heavy operator calls, mark-and-sweep GC (which
//!   freelists slots and rebuilds the bucket array) and rebuild-based
//!   reorders. Checked by re-deriving every live root from its truth
//!   table: a canonical manager must hand back the identical handle.
//! * **Lossy-cache transparency** — the direct-mapped computed cache only
//!   memoizes; evictions change speed, never results. The same operator
//!   script replayed under a size-1 cache, the default cache and the
//!   unbounded shim must produce bit-identical handles at every step.
//! * **Thread-count transparency** — `Options::threads` partitions
//!   outputs across workers but the merged netlist is byte-identical to
//!   the serial one, over the whole committed fuzz corpus.
//!
//! These live in the fuzz crate because `bdd` cannot depend on `boolfn`
//! or the corpus (the oracle layers depend on `bdd`).

use std::path::Path;

use bdd::{Bdd, BinOp, Func, VarId};
use benchmarks::SplitMix64;
use bidecomp::Options;
use boolfn::TruthTable;
use fuzz::oracle::tt_apply;
use pla::Pla;

const OPS: [BinOp; 8] = [
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Nand,
    BinOp::Nor,
    BinOp::Xnor,
    BinOp::Diff,
    BinOp::Imp,
];

fn random_table(rng: &mut SplitMix64, n: usize) -> TruthTable {
    TruthTable::random(n, 0.2 + 0.6 * (rng.gen_range(7) as f64 / 10.0), rng.next_u64())
}

/// A canonical manager must return the *same handle* when a live function
/// is rebuilt from scratch — `to_bdd` bottoms out in `mk`, so any
/// duplicate or stale unique-table entry shows up as a second handle.
fn assert_canonical(mgr: &mut Bdd, pool: &[(Func, TruthTable)], what: &str) {
    for (k, (f, tt)) in pool.iter().enumerate() {
        let rebuilt = tt.to_bdd(mgr);
        assert_eq!(rebuilt, *f, "{what}: root {k} rebuilt to a different handle (canonicity lost)");
    }
}

#[test]
fn unique_table_stays_canonical_under_interleaved_mk_gc_reorder() {
    let mut rng = SplitMix64::new(0x5eed_cafe);
    for case in 0..12 {
        let n = 4 + rng.gen_range(4); // 4..=7
        let mut mgr = Bdd::new(n);
        let mut pool: Vec<(Func, TruthTable)> = (0..3)
            .map(|_| {
                let tt = random_table(&mut rng, n);
                let f = tt.to_bdd(&mut mgr);
                mgr.protect(f);
                (f, tt)
            })
            .collect();
        for step in 0..40 {
            match rng.gen_range(8) {
                // GC: freelists dead slots, compacts the bucket array.
                6 => {
                    mgr.gc();
                    assert_canonical(&mut mgr, &pool, &format!("case {case} step {step} post-gc"));
                }
                // Reorder: rebuild under a random order (drops every
                // protection, so re-protect the remapped roots).
                7 => {
                    let mut perm: Vec<VarId> = (0..n as VarId).collect();
                    rng.shuffle(&mut perm);
                    let roots: Vec<Func> = pool.iter().map(|&(f, _)| f).collect();
                    let remapped = mgr.reorder(&perm, &roots);
                    for (entry, &f) in pool.iter_mut().zip(&remapped) {
                        entry.0 = f;
                        mgr.protect(f);
                    }
                    assert_canonical(
                        &mut mgr,
                        &pool,
                        &format!("case {case} step {step} post-reorder"),
                    );
                }
                // mk-heavy path: a random binary operator over the pool,
                // cross-checked against the enumeration oracle.
                _ => {
                    let op = OPS[rng.gen_range(OPS.len())];
                    let i = rng.gen_range(pool.len());
                    let j = rng.gen_range(pool.len());
                    let f = mgr.apply(op, pool[i].0, pool[j].0);
                    let tt = tt_apply(op, &pool[i].1, &pool[j].1);
                    assert_eq!(
                        TruthTable::from_bdd(&mgr, f, n),
                        tt,
                        "case {case} step {step}: {op:?} disagrees with the oracle"
                    );
                    mgr.protect(f);
                    pool.push((f, tt));
                }
            }
        }
        assert_canonical(&mut mgr, &pool, &format!("case {case} final"));
    }
}

/// Replays one seeded operator script on managers that differ only in
/// computed-cache configuration and asserts bit-identical handles.
///
/// Handle identity (not just semantic equality) is the strong form: a
/// cache that influenced *allocation order* would renumber nodes even if
/// every function stayed correct.
#[test]
fn computed_cache_size_never_changes_results() {
    let mut rng = SplitMix64::new(0xd1ff_5eed);
    for case in 0..10 {
        let n = 4 + rng.gen_range(4); // 4..=7
        let mut tiny = Bdd::new(n);
        tiny.set_cache_capacity(1); // every insert collides
        let mut default = Bdd::new(n);
        let mut unbounded = Bdd::new(n);
        unbounded.set_unbounded_cache(); // never evicts
        let mut managers = [&mut tiny, &mut default, &mut unbounded];

        let mut pool: Vec<Func> = Vec::new();
        for _ in 0..3 {
            let tt = random_table(&mut rng, n);
            let handles: Vec<Func> = managers.iter_mut().map(|m| tt.to_bdd(m)).collect();
            assert!(handles.windows(2).all(|w| w[0] == w[1]), "case {case}: seeds diverge");
            pool.push(handles[0]);
        }
        for step in 0..60 {
            let handles: Vec<Func> = if rng.gen_range(4) == 0 {
                let (i, j, k) = (
                    rng.gen_range(pool.len()),
                    rng.gen_range(pool.len()),
                    rng.gen_range(pool.len()),
                );
                managers.iter_mut().map(|m| m.ite(pool[i], pool[j], pool[k])).collect()
            } else {
                let op = OPS[rng.gen_range(OPS.len())];
                let (i, j) = (rng.gen_range(pool.len()), rng.gen_range(pool.len()));
                managers.iter_mut().map(|m| m.apply(op, pool[i], pool[j])).collect()
            };
            assert!(
                handles.windows(2).all(|w| w[0] == w[1]),
                "case {case} step {step}: cache size changed a result handle \
                 (tiny={:?} default={:?} unbounded={:?})",
                handles[0],
                handles[1],
                handles[2]
            );
            pool.push(handles[0]);
        }
        // Same script, same allocations: the node stores must agree too.
        let nodes: Vec<usize> = managers.iter().map(|m| m.total_nodes()).collect();
        assert!(
            nodes.windows(2).all(|w| w[0] == w[1]),
            "case {case}: node counts diverge across cache sizes: {nodes:?}"
        );
        // The size-1 cache must actually have been under pressure, or
        // this test proves nothing.
        assert!(tiny.op_stats().cache_evictions > 0, "case {case}: the size-1 cache never evicted");
    }
}

fn committed_corpus() -> Vec<(String, Pla)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/corpus");
    fuzz::corpus::load_dir(&dir).expect("corpus directory is readable")
}

/// The whole committed corpus (plus the small benchmark suite) must
/// produce byte-identical BLIF at `--threads 1` and `--threads 4`.
#[test]
fn corpus_netlists_are_byte_identical_across_thread_counts() {
    let mut suite: Vec<(String, Pla)> = committed_corpus();
    assert!(!suite.is_empty(), "the committed corpus must not be empty");
    suite.extend(benchmarks::small().into_iter().map(|b| (b.name.to_owned(), b.pla)));

    let serial = Options { threads: 1, ..Options::default() };
    let parallel = Options { threads: 4, ..Options::default() };
    for (name, pla) in &suite {
        let one = bidecomp::decompose_pla(pla, &serial);
        let four = bidecomp::decompose_pla(pla, &parallel);
        assert!(one.verified, "{name}: serial netlist failed verification");
        assert!(four.verified, "{name}: parallel netlist failed verification");
        assert_eq!(
            one.netlist.to_blif(name),
            four.netlist.to_blif(name),
            "{name}: netlist differs between --threads 1 and --threads 4"
        );
    }
}
