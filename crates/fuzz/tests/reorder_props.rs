//! Seeded property tests for `bdd::reorder`, cross-checked via `boolfn`:
//! rebuilding under any variable order and greedy sifting must preserve
//! function semantics, `support`, and `sat_count`.
//!
//! These live in the fuzz crate because `bdd` cannot depend on `boolfn`
//! (the oracle crate depends on `bdd` for conversions).

use bdd::{reorder, Bdd, VarId, VarSet};
use benchmarks::SplitMix64;
use boolfn::TruthTable;

fn varset_mask(set: &VarSet) -> u32 {
    set.iter().fold(0u32, |m, v| m | (1 << v))
}

/// Semantics, support and satisfy-count of every root must survive a
/// reorder; `level2var` lists which variable sits at each level.
fn assert_invariants(mgr: &Bdd, roots: &[bdd::Func], tables: &[TruthTable], what: &str) {
    let n = tables[0].num_vars();
    for (k, (&f, tt)) in roots.iter().zip(tables).enumerate() {
        assert_eq!(TruthTable::from_bdd(mgr, f, n), *tt, "{what}: root {k} changed semantics");
        assert_eq!(
            varset_mask(&mgr.support(f)),
            tt.support_mask(),
            "{what}: root {k} changed support"
        );
        let count = mgr.sat_count(f);
        assert_eq!(count, tt.count_ones() as f64, "{what}: root {k} changed sat_count");
    }
}

#[test]
fn random_orders_preserve_semantics_support_and_satcount() {
    let mut rng = SplitMix64::new(41);
    for case in 0..30 {
        let n = 4 + rng.gen_range(4); // 4..=7
        let tables: Vec<TruthTable> = (0..2)
            .map(|_| {
                TruthTable::random(n, 0.2 + 0.6 * (rng.gen_range(7) as f64 / 10.0), rng.next_u64())
            })
            .collect();
        let mut mgr = Bdd::new(n);
        let mut roots: Vec<bdd::Func> = tables.iter().map(|t| t.to_bdd(&mut mgr)).collect();
        // A few successive random orders: invariants must hold after each.
        for round in 0..3 {
            let mut perm: Vec<VarId> = (0..n as VarId).collect();
            rng.shuffle(&mut perm);
            roots = mgr.reorder(&perm, &roots);
            assert_invariants(
                &mgr,
                &roots,
                &tables,
                &format!("case {case} round {round} {perm:?}"),
            );
        }
    }
}

#[test]
fn greedy_sifting_preserves_semantics_and_does_not_grow_the_dag() {
    let mut rng = SplitMix64::new(43);
    for case in 0..20 {
        let n = 5 + rng.gen_range(3); // 5..=7
        let tables: Vec<TruthTable> =
            (0..2).map(|_| TruthTable::random(n, 0.5, rng.next_u64())).collect();
        let mut mgr = Bdd::new(n);
        let roots: Vec<bdd::Func> = tables.iter().map(|t| t.to_bdd(&mut mgr)).collect();
        let before = mgr.node_count_all(&roots);
        let roots = reorder::greedy_sift(&mut mgr, &roots, 3);
        assert_invariants(&mgr, &roots, &tables, &format!("case {case} sift"));
        let after = mgr.node_count_all(&roots);
        assert!(after <= before, "case {case}: sifting grew the DAG ({before} -> {after})");
    }
}

#[test]
fn frequency_order_is_a_permutation_and_reorder_accepts_it() {
    let mut rng = SplitMix64::new(47);
    let n = 6;
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(100) as f64).collect();
    let order = reorder::order_by_frequency(&weights);
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..n as VarId).collect::<Vec<_>>(), "result is a permutation");

    let tt = TruthTable::random(n, 0.5, 7);
    let mut mgr = Bdd::new(n);
    let f = tt.to_bdd(&mut mgr);
    let roots = mgr.reorder(&order, &[f]);
    assert_eq!(TruthTable::from_bdd(&mgr, roots[0], n), tt);
}

#[test]
fn structured_functions_survive_adversarial_orders() {
    // Parity and blockwise-AND functions have strongly order-sensitive
    // BDD sizes; semantics must nevertheless be order-free.
    let n = 6;
    let parity = TruthTable::from_fn(n, |m| m.count_ones() % 2 == 1);
    let blocks = TruthTable::from_fn(n, |m| {
        (m & 0b11 == 0b11) || (m >> 2 & 0b11 == 0b11) || (m >> 4 & 0b11 == 0b11)
    });
    for tt in [parity, blocks] {
        let mut mgr = Bdd::new(n);
        let f = tt.to_bdd(&mut mgr);
        let reversed: Vec<VarId> = (0..n as VarId).rev().collect();
        let roots = mgr.reorder(&reversed, &[f]);
        assert_invariants(&mgr, &roots, std::slice::from_ref(&tt), "reversed order");
        let interleaved: Vec<VarId> = [0, 2, 4, 1, 3, 5].to_vec();
        let roots = mgr.reorder(&interleaved, &roots);
        assert_invariants(&mgr, &roots, std::slice::from_ref(&tt), "interleaved order");
    }
}
