//! Seeded structured cube-list generator for the large MCNC circuits whose
//! exact contents are not publicly defined.
//!
//! Real PLA benchmarks have two structural properties that matter for
//! decomposition behaviour: each output depends on a limited *window* of
//! the inputs, and cubes are sparse (few literals relative to the input
//! count). The generator reproduces both, deterministically from a seed.

use pla::{Cube, OutputValue, Pla, Trit};

use crate::rng::SplitMix64;

/// Parameters of a synthetic cube-list benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SynthSpec {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// On-set cubes generated per output.
    pub cubes_per_output: usize,
    /// Width of the input window each output draws its literals from.
    pub window: usize,
    /// Literals per cube (positions within the window).
    pub literals: usize,
    /// Don't-care cubes generated per output (espresso `d` rows).
    pub dc_cubes_per_output: usize,
    /// RNG seed; equal specs with equal seeds generate identical PLAs.
    pub seed: u64,
}

/// Generates a structured synthetic PLA from the spec.
///
/// Output `o`'s window starts at a pseudo-random offset, so neighbouring
/// outputs overlap in support (enabling component sharing) without every
/// output depending on every input.
///
/// # Panics
///
/// Panics if `window > num_inputs` or `literals > window`.
pub fn structured_pla(spec: &SynthSpec) -> Pla {
    assert!(spec.window <= spec.num_inputs, "window must fit the inputs");
    assert!(spec.literals <= spec.window, "cube literals must fit the window");
    let mut rng = SplitMix64::new(spec.seed);
    let mut pla = Pla::new(spec.num_inputs, spec.num_outputs);
    for out in 0..spec.num_outputs {
        let window_start = rng.gen_range(spec.num_inputs);
        let emit = |rng: &mut SplitMix64, pla: &mut Pla, value: OutputValue| {
            let mut inputs = vec![Trit::Dc; spec.num_inputs];
            // Choose distinct positions within the (wrapping) window.
            let mut chosen = Vec::with_capacity(spec.literals);
            while chosen.len() < spec.literals {
                let pos = (window_start + rng.gen_range(spec.window)) % spec.num_inputs;
                if !chosen.contains(&pos) {
                    chosen.push(pos);
                }
            }
            for &pos in &chosen {
                inputs[pos] = if rng.gen_bool(0.5) { Trit::One } else { Trit::Zero };
            }
            let mut outputs = vec![OutputValue::NotUsed; spec.num_outputs];
            outputs[out] = value;
            pla.push(Cube::new(inputs, outputs));
        };
        for _ in 0..spec.cubes_per_output {
            emit(&mut rng, &mut pla, OutputValue::One);
        }
        for _ in 0..spec.dc_cubes_per_output {
            emit(&mut rng, &mut pla, OutputValue::DontCare);
        }
    }
    pla
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec {
            num_inputs: 22,
            num_outputs: 5,
            cubes_per_output: 6,
            window: 9,
            literals: 4,
            dc_cubes_per_output: 1,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = structured_pla(&spec());
        let b = structured_pla(&spec());
        assert_eq!(a, b);
        let c = structured_pla(&SynthSpec { seed: 8, ..spec() });
        assert_ne!(a, c);
    }

    #[test]
    fn dimensions_and_cube_counts() {
        let pla = structured_pla(&spec());
        assert_eq!(pla.num_inputs(), 22);
        assert_eq!(pla.num_outputs(), 5);
        assert_eq!(pla.cubes().len(), 5 * 7);
        assert_eq!(pla.on_cubes(0).count(), 6);
        assert_eq!(pla.dc_cubes(0).count(), 1);
    }

    #[test]
    fn cubes_respect_literal_budget() {
        let pla = structured_pla(&spec());
        for cube in pla.cubes() {
            assert_eq!(cube.literal_count(), 4);
        }
    }

    #[test]
    fn windows_limit_per_output_support() {
        let pla = structured_pla(&spec());
        // Every output's cubes touch at most `window` distinct inputs.
        for out in 0..pla.num_outputs() {
            let mut touched = std::collections::HashSet::new();
            for cube in pla.on_cubes(out).chain(pla.dc_cubes(out)) {
                for (k, &t) in cube.inputs().iter().enumerate() {
                    if t != Trit::Dc {
                        touched.insert(k);
                    }
                }
            }
            assert!(touched.len() <= 9, "output {out} support {}", touched.len());
        }
    }

    #[test]
    #[should_panic(expected = "window must fit")]
    fn oversized_window_panics() {
        let _ = structured_pla(&SynthSpec { window: 23, ..spec() });
    }
}
