//! MCNC-style benchmark workloads for the BI-DECOMP evaluation.
//!
//! The paper evaluates on MCNC PLA benchmarks. This crate regenerates the
//! workloads as PLA values (consumed through the same `pla` reader a file
//! on disk would use):
//!
//! * Functions with **public definitions** are implemented exactly:
//!   `9sym`, `16Sym8` (the paper's polarity vector), `rd73`/`rd84`
//!   (ones-count), the arithmetic `5xp1`.
//! * The remaining MCNC circuits (`alu2`, `alu4`, `cps`, `duke2`, `e64`,
//!   `misex3`, `pdc`, `spla`, `vg2`, `cordic`, `t481`) are **structurally
//!   faithful synthetics**: identical input/output counts as the
//!   originals and the same functional character (ALU arithmetic, sparse
//!   windowed cube logic, priority chains, EXOR-rich trees), generated
//!   deterministically from fixed seeds. See DESIGN.md §3 for the
//!   substitution rationale.
//!
//! ```
//! let b = benchmarks::by_name("9sym").expect("known benchmark");
//! assert_eq!(b.pla.num_inputs(), 9);
//! assert_eq!(b.pla.num_outputs(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube_gen;
mod exact;
mod expr_gen;
pub mod rng;
mod suite;

pub use cube_gen::{structured_pla, SynthSpec};
pub use exact::{alu, pla_from_fn, rate_pla, symmetric_pla};
pub use expr_gen::{expression_pla, ExprSpec};
pub use rng::SplitMix64;
pub use suite::{all, by_name, small, table2, table3, Benchmark, Provenance};
