//! A tiny deterministic PRNG (splitmix64).
//!
//! The synthetic benchmark generators need reproducible pseudo-randomness
//! but the workspace is dependency-free, so this replaces the external
//! `rand` crate. The stream matches the splitmix64 reference constants
//! (same mixer `boolfn::TruthTable::random` uses); it is emphatically not
//! cryptographic — it only has to be stable across platforms and PRs,
//! because benchmark *identity* (and hence every measured table) depends
//! on it.

/// A splitmix64 generator.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator; equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (multiply-shift range reduction; the bias
    /// for the small `n` used here is ≤ 2⁻⁵³ — irrelevant for workload
    /// generation).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        // 53 bits of the stream against the scaled threshold.
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// A pseudo-random `u64` seed derived from this stream (for spawning
    /// decorrelated child generators).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// In-place Fisher–Yates shuffle driven by this stream (used by the
    /// fuzz harness for variable permutations and shrink chunk orders).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn matches_splitmix64_reference() {
        // Reference values for seed 0 (Vigna's splitmix64.c).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 appear");
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = SplitMix64::new(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "got {heads}");
    }

    #[test]
    fn forked_generators_decorrelate() {
        let mut parent = SplitMix64::new(9);
        let mut a = parent.fork();
        let mut b = parent.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_range_panics() {
        let _ = SplitMix64::new(0).gen_range(0);
    }

    #[test]
    fn shuffle_permutes_and_is_deterministic() {
        let mut a: Vec<usize> = (0..16).collect();
        let mut b = a.clone();
        SplitMix64::new(5).shuffle(&mut a);
        SplitMix64::new(5).shuffle(&mut b);
        assert_eq!(a, b, "equal seeds shuffle identically");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "still a permutation");
        assert_ne!(a, sorted, "16 elements virtually never stay sorted");
        // Degenerate slices must not panic.
        SplitMix64::new(1).shuffle::<usize>(&mut []);
        SplitMix64::new(1).shuffle(&mut [1]);
    }
}
