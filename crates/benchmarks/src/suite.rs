//! The named benchmark suite of Tables 2 and 3.

use pla::Pla;

use crate::cube_gen::{structured_pla, SynthSpec};
use crate::exact::{alu, pla_from_fn, rate_pla, symmetric_pla};
use crate::expr_gen::{expression_pla, ExprSpec};

/// Where a workload's definition comes from (see DESIGN.md §3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Public definition, implemented exactly.
    Exact,
    /// Structurally faithful synthetic with the original's I/O shape.
    Synthetic,
}

/// A named benchmark workload.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The MCNC-style benchmark name (e.g. `"9sym"`).
    pub name: &'static str,
    /// The workload as a PLA.
    pub pla: Pla,
    /// Exact or synthetic (see DESIGN.md §3).
    pub provenance: Provenance,
}

fn bench(name: &'static str, provenance: Provenance, pla: Pla) -> Benchmark {
    Benchmark { name, pla, provenance }
}

/// Builds a benchmark by its MCNC name. Returns `None` for unknown names.
///
/// Supported: `9sym`, `16sym8`, `alu2`, `alu4`, `rd73`, `rd84`, `5xp1`,
/// `t481`, `cps`, `duke2`, `e64`, `misex1`, `misex3`, `pdc`, `spla`,
/// `vg2`, `cordic`, `con1`.
pub fn by_name(name: &str) -> Option<Benchmark> {
    use Provenance::{Exact, Synthetic};
    Some(match name {
        // ---- exact public definitions -------------------------------
        // 9sym: 1 iff between 3 and 6 of the 9 inputs are 1.
        "9sym" => bench(
            "9sym",
            Exact,
            symmetric_pla(9, &[false, false, false, true, true, true, true, false, false, false]),
        ),
        // 16Sym8: the paper's 16-variable totally symmetric function with
        // polarity 0000111101111110 over the ones-count.
        "16sym8" => {
            let polarity = "0000111101111110";
            let values: Vec<bool> = polarity.bytes().map(|b| b == b'1').collect();
            bench("16sym8", Exact, symmetric_pla(16, &values))
        }
        // rd73/rd84: binary ones-count.
        "rd73" => bench("rd73", Exact, rate_pla(7, 3)),
        "rd84" => bench("rd84", Exact, rate_pla(8, 4)),
        // 5xp1: the arithmetic function 5·x + 1 of a 7-bit operand,
        // 10 output bits (the classical reading of the benchmark's name).
        "5xp1" => bench("5xp1", Exact, pla_from_fn(7, 10, |m| (5 * m as u64 + 1) & 0x3ff)),
        // ---- structurally faithful synthetics ----------------------
        // alu2 (10/6) and alu4 (14/8): compact ALUs with the original
        // benchmarks' I/O shapes.
        "alu2" => bench("alu2", Synthetic, alu(3, 4)),
        "alu4" => bench("alu4", Synthetic, alu(5, 4)),
        // t481 (16/1): an EXOR-rich two-level tree — the character that
        // makes the real t481 collapse under bi-decomposition.
        "t481" => bench(
            "t481",
            Synthetic,
            pla_from_fn(16, 1, |m| {
                let g = |base: u32| {
                    let x = |k: u32| m >> (base + k) & 1 != 0;
                    ((x(0) == x(1)) && (x(2) == x(3))) || ((x(4) ^ x(5)) && (x(6) ^ x(7)))
                };
                u64::from(g(0) ^ g(8))
            }),
        ),
        // cordic (23/2): deep mostly-AND/OR trees with an EXOR sprinkle
        // (quadrant/sign logic character).
        "cordic" => bench(
            "cordic",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 23,
                num_outputs: 2,
                window: 10,
                depth: 5,
                xor_weight: 0.2,
                dc_fraction: 0.0,
                seed: 0xC04D1C,
            }),
        ),
        // cps (24/109): wide control logic — many outputs over narrow,
        // overlapping windows, multi-level structure.
        "cps" => bench(
            "cps",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 24,
                num_outputs: 109,
                window: 8,
                depth: 4,
                xor_weight: 0.15,
                dc_fraction: 0.0,
                seed: 0x0C75,
            }),
        ),
        // duke2 (22/29).
        "duke2" => bench(
            "duke2",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 22,
                num_outputs: 29,
                window: 9,
                depth: 4,
                xor_weight: 0.15,
                dc_fraction: 0.0,
                seed: 0xD0BE2,
            }),
        ),
        // e64 (65/65): one wide cube per output — the original is a
        // 65-term PLA of similar simplicity.
        "e64" => bench(
            "e64",
            Synthetic,
            structured_pla(&SynthSpec {
                num_inputs: 65,
                num_outputs: 65,
                cubes_per_output: 1,
                window: 8,
                literals: 5,
                dc_cubes_per_output: 0,
                seed: 0xE64,
            }),
        ),
        // misex3 (14/14).
        "misex3" => bench(
            "misex3",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 14,
                num_outputs: 14,
                window: 8,
                depth: 4,
                xor_weight: 0.2,
                dc_fraction: 0.0,
                seed: 0x3153,
            }),
        ),
        // pdc (16/40): the don't-care-rich one.
        "pdc" => bench(
            "pdc",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 16,
                num_outputs: 40,
                window: 8,
                depth: 4,
                xor_weight: 0.15,
                dc_fraction: 0.3,
                seed: 0x9DC,
            }),
        ),
        // spla (16/46).
        "spla" => bench(
            "spla",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 16,
                num_outputs: 46,
                window: 8,
                depth: 4,
                xor_weight: 0.2,
                dc_fraction: 0.1,
                seed: 0x59,
            }),
        ),
        // misex1 (8/7): small control logic, shared windows.
        "misex1" => bench(
            "misex1",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 8,
                num_outputs: 7,
                window: 6,
                depth: 3,
                xor_weight: 0.1,
                dc_fraction: 0.0,
                seed: 0x3151,
            }),
        ),
        // con1 (7/2): tiny control logic.
        "con1" => bench(
            "con1",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 7,
                num_outputs: 2,
                window: 5,
                depth: 3,
                xor_weight: 0.1,
                dc_fraction: 0.0,
                seed: 0xC0,
            }),
        ),
        // vg2 (25/8).
        "vg2" => bench(
            "vg2",
            Synthetic,
            expression_pla(&ExprSpec {
                num_inputs: 25,
                num_outputs: 8,
                window: 10,
                depth: 5,
                xor_weight: 0.2,
                dc_fraction: 0.0,
                seed: 0x62,
            }),
        ),
        _ => return None,
    })
}

/// The Table 2 suite (BI-DECOMP vs. SIS), in the paper's row order.
pub fn table2() -> Vec<Benchmark> {
    ["9sym", "alu2", "cps", "duke2", "e64", "misex3", "pdc", "spla", "vg2", "16sym8"]
        .iter()
        .map(|n| by_name(n).expect("table2 names are known"))
        .collect()
}

/// The Table 3 suite (BI-DECOMP vs. BDS), in the paper's row order.
pub fn table3() -> Vec<Benchmark> {
    ["5xp1", "9sym", "alu2", "alu4", "cordic", "rd84", "t481"]
        .iter()
        .map(|n| by_name(n).expect("table3 names are known"))
        .collect()
}

/// Every named benchmark, deduplicated.
pub fn all() -> Vec<Benchmark> {
    let mut names: Vec<&str> = Vec::new();
    for b in table2().iter().chain(table3().iter()) {
        if !names.contains(&b.name) {
            names.push(b.name);
        }
    }
    for extra in ["rd73", "misex1", "con1"] {
        names.push(extra);
    }
    names.iter().map(|n| by_name(n).expect("known")).collect()
}

/// The quick subset: members that decompose in well under a second each,
/// for CI perf gates and smoke tests where running [`all`] is too slow.
pub fn small() -> Vec<Benchmark> {
    ["con1", "misex1", "rd73", "rd84", "9sym", "alu2", "5xp1"]
        .iter()
        .map(|n| by_name(n).expect("small names are known"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_is_a_subset_of_all() {
        let all_names: Vec<&str> = all().iter().map(|b| b.name).collect();
        let small = small();
        assert!(!small.is_empty());
        for b in &small {
            assert!(all_names.contains(&b.name), "{} must be a suite member", b.name);
            assert!(b.pla.num_inputs() <= 10, "{} is not small", b.name);
        }
    }

    #[test]
    fn table2_shapes_match_the_paper() {
        let expected: [(&str, usize, usize); 10] = [
            ("9sym", 9, 1),
            ("alu2", 10, 6),
            ("cps", 24, 109),
            ("duke2", 22, 29),
            ("e64", 65, 65),
            ("misex3", 14, 14),
            ("pdc", 16, 40),
            ("spla", 16, 46),
            ("vg2", 25, 8),
            ("16sym8", 16, 1),
        ];
        let suite = table2();
        assert_eq!(suite.len(), expected.len());
        for (b, (name, ins, outs)) in suite.iter().zip(expected) {
            assert_eq!(b.name, name);
            assert_eq!(b.pla.num_inputs(), ins, "{name} inputs");
            assert_eq!(b.pla.num_outputs(), outs, "{name} outputs");
        }
    }

    #[test]
    fn table3_shapes_match_the_paper() {
        let expected: [(&str, usize, usize); 7] = [
            ("5xp1", 7, 10),
            ("9sym", 9, 1),
            ("alu2", 10, 6),
            ("alu4", 14, 8),
            ("cordic", 23, 2),
            ("rd84", 8, 4),
            ("t481", 16, 1),
        ];
        let suite = table3();
        for (b, (name, ins, outs)) in suite.iter().zip(expected) {
            assert_eq!(b.name, name);
            assert_eq!(b.pla.num_inputs(), ins, "{name} inputs");
            assert_eq!(b.pla.num_outputs(), outs, "{name} outputs");
        }
    }

    #[test]
    fn nine_sym_on_set_size() {
        let b = by_name("9sym").expect("known");
        assert_eq!(b.provenance, Provenance::Exact);
        assert_eq!(b.pla.cubes().len(), 84 + 126 + 126 + 84);
    }

    #[test]
    fn five_xp1_is_affine_arithmetic() {
        let b = by_name("5xp1").expect("known");
        for v in [0u64, 1, 63, 127] {
            let expected = 5 * v + 1;
            for bit in 0..10 {
                assert_eq!(b.pla.eval(bit, v), Some(expected & (1 << bit) != 0), "v={v} bit={bit}");
            }
        }
    }

    #[test]
    fn t481_is_exor_of_halves() {
        let b = by_name("t481").expect("known");
        // Flipping the polarity of one half flips the output when the half
        // functions differ — spot-check a few points.
        assert_eq!(b.pla.num_inputs(), 16);
        // m = 0: g(0)=((0==0)&&(0==0))||... = true for both halves → false.
        assert_eq!(b.pla.eval(0, 0), Some(false));
        // Make low half false: x0≠x1, x2≠x3, x4=x5, x6=x7 → g0 = false.
        let m = 0b0000_0000_0000_0101u64;
        assert_eq!(b.pla.eval(0, m), Some(true));
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn all_is_deduplicated() {
        let names: Vec<&str> = all().iter().map(|b| b.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "no duplicates in all()");
        assert!(names.contains(&"rd73"));
        assert!(names.contains(&"misex1"));
        assert!(names.contains(&"con1"));
    }
}
