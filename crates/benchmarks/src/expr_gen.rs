//! Expression-tree synthetic benchmarks.
//!
//! The sparse cube generator (`cube_gen`) produces functions that are
//! already near-minimal two-level covers — unrealistically friendly to
//! SOP-based flows. Real MCNC control circuits have *multi-level*
//! structure whose two-level covers are large. This generator reproduces
//! that: each output is a random AND/OR/XOR expression tree over a window
//! of inputs, emitted as the window's on-set minterms (exactly how a
//! collapsed PLA represents multi-level logic).

use pla::{Cube, OutputValue, Pla, Trit};

use crate::rng::SplitMix64;

/// Parameters of an expression-tree benchmark.
#[derive(Clone, Copy, Debug)]
pub struct ExprSpec {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Window of inputs each output's tree draws from (≤ 12).
    pub window: usize,
    /// Depth of the expression trees.
    pub depth: usize,
    /// Probability that an internal node is an XOR (vs. AND/OR).
    pub xor_weight: f64,
    /// Fraction of each output's off-set minterms converted to
    /// don't-cares (`d` rows).
    pub dc_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

#[derive(Debug)]
enum Expr {
    Leaf(usize, bool),
    Node(Op, Box<Expr>, Box<Expr>),
}

#[derive(Clone, Copy, Debug)]
enum Op {
    And,
    Or,
    Xor,
}

fn random_expr(rng: &mut SplitMix64, window: usize, depth: usize, xor_weight: f64) -> Expr {
    if depth == 0 {
        return Expr::Leaf(rng.gen_range(window), rng.gen_bool(0.5));
    }
    let op = if rng.gen_bool(xor_weight) {
        Op::Xor
    } else if rng.gen_bool(0.5) {
        Op::And
    } else {
        Op::Or
    };
    Expr::Node(
        op,
        Box::new(random_expr(rng, window, depth - 1, xor_weight)),
        Box::new(random_expr(rng, window, depth - 1, xor_weight)),
    )
}

fn eval(expr: &Expr, bits: u32) -> bool {
    match expr {
        Expr::Leaf(v, pos) => (bits >> v & 1 != 0) == *pos,
        Expr::Node(op, a, b) => {
            let (va, vb) = (eval(a, bits), eval(b, bits));
            match op {
                Op::And => va && vb,
                Op::Or => va || vb,
                Op::Xor => va ^ vb,
            }
        }
    }
}

/// Generates a multi-level-structured synthetic PLA from the spec.
///
/// Each output's window starts at a pseudo-random offset (wrapping), so
/// neighbouring outputs overlap in support. Constant trees are re-rolled.
///
/// # Panics
///
/// Panics if `window > min(num_inputs, 12)` or the fractions are outside
/// `[0, 1]`.
pub fn expression_pla(spec: &ExprSpec) -> Pla {
    assert!(spec.window <= spec.num_inputs && spec.window <= 12, "window must be ≤ 12");
    assert!((0.0..=1.0).contains(&spec.xor_weight), "xor_weight in [0,1]");
    assert!((0.0..=1.0).contains(&spec.dc_fraction), "dc_fraction in [0,1]");
    let mut rng = SplitMix64::new(spec.seed);
    let mut pla = Pla::new(spec.num_inputs, spec.num_outputs);
    for out in 0..spec.num_outputs {
        let window_start = rng.gen_range(spec.num_inputs);
        let positions: Vec<usize> =
            (0..spec.window).map(|k| (window_start + k) % spec.num_inputs).collect();
        // Re-roll until the tree is non-constant over its window.
        let (expr, table) = loop {
            let expr = random_expr(&mut rng, spec.window, spec.depth, spec.xor_weight);
            let table: Vec<bool> = (0..1u32 << spec.window).map(|bits| eval(&expr, bits)).collect();
            let ones = table.iter().filter(|&&v| v).count();
            if ones != 0 && ones != table.len() {
                break (expr, table);
            }
        };
        let _ = expr;
        for (bits, &on) in table.iter().enumerate() {
            let value = if on {
                OutputValue::One
            } else if spec.dc_fraction > 0.0 && rng.gen_bool(spec.dc_fraction) {
                OutputValue::DontCare
            } else {
                continue;
            };
            let mut inputs = vec![Trit::Dc; spec.num_inputs];
            for (k, &pos) in positions.iter().enumerate() {
                inputs[pos] = if bits & (1 << k) != 0 { Trit::One } else { Trit::Zero };
            }
            let mut outputs = vec![OutputValue::NotUsed; spec.num_outputs];
            outputs[out] = value;
            pla.push(Cube::new(inputs, outputs));
        }
    }
    pla
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExprSpec {
        ExprSpec {
            num_inputs: 20,
            num_outputs: 4,
            window: 7,
            depth: 4,
            xor_weight: 0.25,
            dc_fraction: 0.0,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_and_shaped() {
        let a = expression_pla(&spec());
        let b = expression_pla(&spec());
        assert_eq!(a, b);
        assert_eq!(a.num_inputs(), 20);
        assert_eq!(a.num_outputs(), 4);
        assert!(!a.cubes().is_empty());
    }

    #[test]
    fn outputs_are_non_constant() {
        let pla = expression_pla(&spec());
        for out in 0..pla.num_outputs() {
            let ones = pla.on_cubes(out).count();
            assert!(ones > 0, "output {out} must have an on-set");
            assert!(ones < 128, "output {out} must not be a tautology");
        }
    }

    #[test]
    fn cubes_are_window_minterms() {
        let pla = expression_pla(&spec());
        for cube in pla.cubes() {
            assert_eq!(cube.literal_count(), 7, "all window positions specified");
        }
    }

    #[test]
    fn dc_fraction_emits_dont_care_rows() {
        let with_dc = expression_pla(&ExprSpec { dc_fraction: 0.4, ..spec() });
        let total_dc: usize = (0..with_dc.num_outputs()).map(|o| with_dc.dc_cubes(o).count()).sum();
        assert!(total_dc > 0, "dc rows must appear");
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn oversized_window_panics() {
        let _ = expression_pla(&ExprSpec { window: 13, num_inputs: 20, ..spec() });
    }
}
