//! Exactly defined workloads: symmetric functions, ones-counters, and a
//! compact ALU.

use pla::{Cube, OutputValue, Pla, Trit};

/// Builds a minterm-level PLA from an evaluator: `f(m)` returns the packed
/// output word for input minterm `m`. Rows whose outputs are all zero are
/// omitted (the `fd` remainder is the off-set).
///
/// Exponential in `num_inputs`; intended for `num_inputs ≤ 16`.
///
/// # Panics
///
/// Panics if `num_inputs > 16` or `num_outputs > 64`.
pub fn pla_from_fn(num_inputs: usize, num_outputs: usize, mut f: impl FnMut(u32) -> u64) -> Pla {
    assert!(num_inputs <= 16, "minterm enumeration limited to 16 inputs");
    assert!(num_outputs <= 64, "outputs are packed into a u64");
    let mut pla = Pla::new(num_inputs, num_outputs);
    for m in 0..1u32 << num_inputs {
        let out = f(m);
        if out == 0 {
            continue;
        }
        let inputs: Vec<Trit> = (0..num_inputs)
            .map(|k| if m & (1 << k) != 0 { Trit::One } else { Trit::Zero })
            .collect();
        let outputs: Vec<OutputValue> = (0..num_outputs)
            .map(|k| if out & (1 << k) != 0 { OutputValue::One } else { OutputValue::NotUsed })
            .collect();
        pla.push(Cube::new(inputs, outputs));
    }
    pla
}

/// Totally symmetric single-output function: `values[k]` is the output
/// when exactly `k` inputs are 1 (missing trailing entries default to 0).
///
/// # Panics
///
/// As [`pla_from_fn`].
pub fn symmetric_pla(num_inputs: usize, values: &[bool]) -> Pla {
    pla_from_fn(num_inputs, 1, |m| {
        let k = m.count_ones() as usize;
        u64::from(values.get(k).copied().unwrap_or(false))
    })
}

/// The rd-family ones-counter: `num_outputs` bits of the binary count of
/// ones of `num_inputs` inputs (rd73 = 7/3, rd84 = 8/4).
///
/// # Panics
///
/// As [`pla_from_fn`].
pub fn rate_pla(num_inputs: usize, num_outputs: usize) -> Pla {
    pla_from_fn(num_inputs, num_outputs, |m| u64::from(m.count_ones()) & ((1 << num_outputs) - 1))
}

/// A compact ALU in the spirit of the MCNC `alu2`/`alu4` benchmarks:
/// two `width`-bit operands plus control bits select among
/// add / subtract / AND / OR / XOR / NOR / shift / pass, producing the
/// result bits plus carry and zero flags.
///
/// `alu(2)` has 10 inputs and 6 outputs like alu2; `alu(5)` would exceed
/// the enumeration limit, so alu4's 14/8 shape uses `width = 5` operands
/// with a 4-bit opcode — see [`crate::by_name`].
///
/// # Panics
///
/// As [`pla_from_fn`].
pub fn alu(width: usize, opcode_bits: usize) -> Pla {
    let num_inputs = 2 * width + opcode_bits;
    let num_outputs = width + 3; // result, carry, zero, parity
    pla_from_fn(num_inputs, num_outputs, move |m| {
        let a = (m as u64) & ((1 << width) - 1);
        let b = ((m as u64) >> width) & ((1 << width) - 1);
        let op = ((m as u64) >> (2 * width)) & ((1 << opcode_bits) - 1);
        let mask = (1u64 << width) - 1;
        let (result, carry) = match op % 8 {
            0 => {
                let sum = a + b;
                (sum & mask, sum >> width & 1 != 0)
            }
            1 => {
                let diff = a.wrapping_sub(b);
                (diff & mask, a < b)
            }
            2 => (a & b, false),
            3 => (a | b, false),
            4 => (a ^ b, false),
            5 => (!(a | b) & mask, false),
            6 => ((a << 1) & mask, a >> (width - 1) & 1 != 0),
            _ => (a, false),
        };
        let zero = result == 0;
        let parity = result.count_ones() % 2 == 1;
        result
            | (u64::from(carry) << width)
            | (u64::from(zero) << (width + 1))
            | (u64::from(parity) << (width + 2))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_pla_matches_definition() {
        // 3-input majority.
        let pla = symmetric_pla(3, &[false, false, true, true]);
        assert_eq!(pla.eval(0, 0b110), Some(true));
        assert_eq!(pla.eval(0, 0b100), Some(false));
        assert_eq!(pla.eval(0, 0b111), Some(true));
        assert_eq!(pla.cubes().len(), 4, "minterm PLA of majority-3");
    }

    #[test]
    fn rate_pla_counts_ones() {
        let pla = rate_pla(7, 3);
        assert_eq!(pla.num_inputs(), 7);
        assert_eq!(pla.num_outputs(), 3);
        for m in [0u64, 0b1, 0b1010101, 0b1111111] {
            let count = (m.count_ones() & 0b111) as usize;
            for bit in 0..3 {
                let expected = count & (1 << bit) != 0;
                assert_eq!(pla.eval(bit, m), Some(expected), "m={m:b} bit={bit}");
            }
        }
    }

    #[test]
    fn alu_add_and_flags() {
        let width = 2;
        let pla = alu(width, 2); // 6 inputs, 5 outputs
        assert_eq!(pla.num_inputs(), 6);
        assert_eq!(pla.num_outputs(), 5);
        // op=0 (add): a=3, b=1 → result 0 with carry, zero flag set.
        let m = 3 | (1 << width); // op bits zero
        assert_eq!(pla.eval(0, m as u64), Some(false), "result bit 0");
        assert_eq!(pla.eval(1, m as u64), Some(false), "result bit 1");
        assert_eq!(pla.eval(2, m as u64), Some(true), "carry");
        assert_eq!(pla.eval(3, m as u64), Some(true), "zero");
        // op=4 (xor): a=2, b=1 → 3.
        let m = 2 | (1 << width) | (4 % 4) << (2 * width); // opcode 0 under 2 bits → add
        let _ = m;
        let m = 2 | (1 << width) | (0b10 << (2 * width)); // opcode 2 = AND → 0
        assert_eq!(pla.eval(3, m as u64), Some(true), "2 AND 1 = 0 → zero flag");
    }

    #[test]
    fn pla_from_fn_skips_zero_rows() {
        let pla = pla_from_fn(3, 2, |m| u64::from(m == 5) | (u64::from(m == 5) << 1));
        assert_eq!(pla.cubes().len(), 1);
        assert_eq!(pla.eval(0, 5), Some(true));
        assert_eq!(pla.eval(1, 5), Some(true));
        assert_eq!(pla.eval(0, 4), Some(false));
    }

    #[test]
    #[should_panic(expected = "limited to 16 inputs")]
    fn enumeration_limit_enforced() {
        let _ = pla_from_fn(17, 1, |_| 0);
    }
}
