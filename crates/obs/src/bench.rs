//! A dependency-free micro-benchmark harness.
//!
//! Replaces the external `criterion` dependency for the workspace's
//! `benches/` targets: warm-up, repeated timed samples, and a compact
//! median/mean/min report per benchmark. Not statistically fancy — the
//! perf *trajectory* lives in the machine-readable `BENCH_*.json` run
//! reports; this harness exists for quick relative comparisons.

use std::time::{Duration, Instant};

/// Collected timing samples of one benchmark.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Benchmark name.
    pub name: String,
    /// Per-sample wall-clock times, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Summary {
    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.samples.first().copied().unwrap_or(Duration::ZERO)
    }

    /// Median sample.
    pub fn median(&self) -> Duration {
        self.samples.get(self.samples.len() / 2).copied().unwrap_or(Duration::ZERO)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// The harness: construct, run [`bench`](Harness::bench) per workload,
/// results print as they complete.
///
/// ```
/// let mut h = obs::bench::Harness::new("demo").samples(5).warmup(0);
/// let s = h.bench("sum", || (0..1000u64).sum::<u64>());
/// assert_eq!(s.samples.len(), 5);
/// ```
pub struct Harness {
    group: String,
    samples: usize,
    warmup_iters: usize,
    quiet: bool,
}

impl Harness {
    /// Creates a harness; `group` prefixes every printed line.
    pub fn new(group: impl Into<String>) -> Self {
        Harness { group: group.into(), samples: 15, warmup_iters: 3, quiet: false }
    }

    /// Sets the number of timed samples (default 15).
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Sets the number of untimed warm-up iterations (default 3).
    pub fn warmup(mut self, iters: usize) -> Self {
        self.warmup_iters = iters;
        self
    }

    /// Suppresses printing (used by the harness's own tests).
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Runs one benchmark: `f` is executed `warmup + samples` times and
    /// each post-warmup execution is timed individually.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> Summary {
        for _ in 0..self.warmup_iters {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort();
        let summary = Summary { name: format!("{}/{name}", self.group), samples };
        if !self.quiet {
            println!(
                "{:40} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}  ({} samples)",
                summary.name,
                summary.min(),
                summary.median(),
                summary.mean(),
                summary.samples.len()
            );
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_collected_and_sorted() {
        let mut h = Harness::new("t").samples(4).warmup(1).quiet();
        let s = h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(s.samples.len(), 4);
        assert!(s.samples.windows(2).all(|w| w[0] <= w[1]));
        assert!(s.min() <= s.median());
        assert!(s.mean() > Duration::ZERO);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary { name: "x".into(), samples: Vec::new() };
        assert_eq!(s.min(), Duration::ZERO);
        assert_eq!(s.median(), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
    }
}
