//! Profile export: span trees → Chrome `trace_event` JSON and
//! collapsed-stack flamegraph text.
//!
//! The recorder's event stream is ordered but timeless; [`ProfileSink`]
//! stamps every event with the wall-clock offset since the sink was
//! created, and [`Profile::from_events`] folds the stamped stream back
//! into the span tree. Two exporters consume the tree:
//!
//! * [`Profile::chrome_trace`] — an array of complete (`"ph": "X"`)
//!   `trace_event` objects loadable in `chrome://tracing` or Perfetto,
//!   with [`Event::Point`]s as instant (`"ph": "i"`) markers.
//! * [`Profile::collapsed_stacks`] — `root;child;leaf self_us` lines in
//!   the format `flamegraph.pl` and speedscope accept (values are
//!   *self*-time in microseconds, so stack totals reconstruct exactly).
//!
//! ```
//! use obs::{profile::Profile, profile::ProfileSink, Recorder};
//!
//! let rec = Recorder::new();
//! let sink = ProfileSink::new();
//! rec.add_sink(Box::new(sink.clone()));
//! {
//!     let _outer = rec.span("run");
//!     let _inner = rec.span("run.phase");
//! }
//! let profile = Profile::from_events(&sink.events());
//! assert_eq!(profile.roots.len(), 1);
//! assert_eq!(profile.roots[0].children[0].name, "run.phase");
//! let trace = profile.chrome_trace();
//! assert_eq!(trace.as_arr().unwrap().len(), 2);
//! assert!(profile.collapsed_stacks().contains("run;run.phase "));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::sink::{Event, Sink};

/// An [`Event`] stamped with the wall-clock offset since the capturing
/// [`ProfileSink`] was created.
#[derive(Clone, Debug)]
pub struct TimedEvent {
    /// Offset from the sink's creation instant.
    pub at: Duration,
    /// The recorded event.
    pub event: Event,
}

/// A sink that timestamps events for later profile export.
///
/// Clones share the captured buffer, so tests and exporters can keep a
/// handle while the recorder owns the boxed sink.
#[derive(Clone)]
pub struct ProfileSink {
    events: Rc<RefCell<Vec<TimedEvent>>>,
    origin: Instant,
}

impl Default for ProfileSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileSink {
    /// Creates an empty sink; timestamps are relative to this call.
    pub fn new() -> Self {
        ProfileSink { events: Rc::new(RefCell::new(Vec::new())), origin: Instant::now() }
    }

    /// A snapshot of the captured, timestamped events.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events.borrow().clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Sink for ProfileSink {
    fn accept(&mut self, event: &Event) {
        self.events
            .borrow_mut()
            .push(TimedEvent { at: self.origin.elapsed(), event: event.clone() });
    }
}

/// One node of the reconstructed span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Start offset (from the sink's origin).
    pub start: Duration,
    /// Wall-clock duration (from the `SpanEnd` event).
    pub duration: Duration,
    /// Nested spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time spent in this span but not in any child (saturating).
    pub fn self_time(&self) -> Duration {
        let nested: Duration = self.children.iter().map(|c| c.duration).sum();
        self.duration.saturating_sub(nested)
    }

    /// This node plus all descendants.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }
}

/// A reconstructed profile: the span forest plus instant markers.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Top-level spans in start order.
    pub roots: Vec<SpanNode>,
    /// `(offset, name)` of every [`Event::Point`] in the stream.
    pub instants: Vec<(Duration, String)>,
}

impl Profile {
    /// Folds a timestamped event stream back into the span tree.
    ///
    /// Span starts and ends pair up by nesting order (the recorder emits
    /// them strictly nested). A stream with unclosed spans — e.g. a
    /// process that exited mid-run — still produces a tree: open spans
    /// are closed at their deepest captured timestamp.
    pub fn from_events(events: &[TimedEvent]) -> Profile {
        struct Open {
            node: SpanNode,
        }
        let mut stack: Vec<Open> = Vec::new();
        let mut profile = Profile::default();
        let mut last_at = Duration::ZERO;
        let attach =
            |stack: &mut Vec<Open>, profile: &mut Profile, node: SpanNode| match stack.last_mut() {
                Some(parent) => parent.node.children.push(node),
                None => profile.roots.push(node),
            };
        for te in events {
            last_at = last_at.max(te.at);
            match &te.event {
                Event::SpanStart { name, .. } => stack.push(Open {
                    node: SpanNode {
                        name: name.clone(),
                        start: te.at,
                        duration: Duration::ZERO,
                        children: Vec::new(),
                    },
                }),
                Event::SpanEnd { duration, .. } => {
                    if let Some(mut open) = stack.pop() {
                        open.node.duration = *duration;
                        attach(&mut stack, &mut profile, open.node);
                    }
                }
                Event::Point { name, .. } => profile.instants.push((te.at, name.clone())),
                Event::Counter { .. } | Event::Gauge { .. } => {}
            }
        }
        // Close any spans left open (truncated stream): give them the span
        // from their start to the last event seen.
        while let Some(mut open) = stack.pop() {
            open.node.duration = last_at.saturating_sub(open.node.start);
            match stack.last_mut() {
                Some(parent) => parent.node.children.push(open.node),
                None => profile.roots.push(open.node),
            }
        }
        profile
    }

    /// Total spans in the forest.
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(SpanNode::span_count).sum()
    }

    /// The profile as a Chrome `trace_event` JSON array: one complete
    /// (`"ph": "X"`) event per span with microsecond `ts`/`dur`, plus one
    /// instant (`"ph": "i"`) event per point marker. The array form is
    /// accepted directly by `chrome://tracing` and Perfetto.
    pub fn chrome_trace(&self) -> Json {
        fn us(d: Duration) -> f64 {
            d.as_secs_f64() * 1e6
        }
        fn emit(node: &SpanNode, out: &mut Vec<Json>) {
            out.push(
                Json::obj()
                    .field("name", node.name.as_str())
                    .field("cat", "span")
                    .field("ph", "X")
                    .field("ts", us(node.start))
                    .field("dur", us(node.duration))
                    .field("pid", 1u64)
                    .field("tid", 1u64),
            );
            for child in &node.children {
                emit(child, out);
            }
        }
        let mut events = Vec::new();
        for root in &self.roots {
            emit(root, &mut events);
        }
        for (at, name) in &self.instants {
            events.push(
                Json::obj()
                    .field("name", name.as_str())
                    .field("cat", "point")
                    .field("ph", "i")
                    .field("ts", us(*at))
                    .field("s", "t")
                    .field("pid", 1u64)
                    .field("tid", 1u64),
            );
        }
        Json::Arr(events)
    }

    /// The profile as collapsed flamegraph stacks: one
    /// `root;child;leaf value` line per distinct stack, where `value` is
    /// the stack's *self*-time in microseconds summed over all its
    /// occurrences. Lines are sorted, so output is deterministic.
    pub fn collapsed_stacks(&self) -> String {
        fn walk(node: &SpanNode, prefix: &str, agg: &mut BTreeMap<String, u128>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            *agg.entry(path.clone()).or_insert(0) += node.self_time().as_micros();
            for child in &node.children {
                walk(child, &path, agg);
            }
        }
        let mut agg = BTreeMap::new();
        for root in &self.roots {
            walk(root, "", &mut agg);
        }
        let mut out = String::new();
        for (stack, us) in agg {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&us.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_profile() -> (Profile, ProfileSink) {
        let rec = Recorder::new();
        let sink = ProfileSink::new();
        rec.add_sink(Box::new(sink.clone()));
        {
            let _run = rec.span("run");
            {
                let _a = rec.span("build");
                std::thread::sleep(Duration::from_millis(1));
            }
            rec.point("gc", Json::obj().field("freed", 3u64));
            {
                let _b = rec.span("decompose");
                let _c = rec.span("output.y0");
            }
        }
        (Profile::from_events(&sink.events()), sink)
    }

    #[test]
    fn tree_matches_nesting() {
        let (profile, sink) = sample_profile();
        assert!(!sink.is_empty());
        assert_eq!(sink.len(), 9, "4 starts, 4 ends, 1 point");
        assert_eq!(profile.roots.len(), 1);
        let run = &profile.roots[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.children.len(), 2);
        assert_eq!(run.children[0].name, "build");
        assert_eq!(run.children[1].children[0].name, "output.y0");
        assert_eq!(profile.span_count(), 4);
        assert_eq!(profile.instants.len(), 1);
        assert!(run.duration >= run.children[0].duration);
        assert!(run.children[0].duration >= Duration::from_millis(1));
        // Children start within the parent span.
        assert!(run.children[0].start >= run.start);
        assert!(run.self_time() <= run.duration);
    }

    #[test]
    fn chrome_trace_is_schema_valid() {
        let (profile, _) = sample_profile();
        let trace = profile.chrome_trace();
        // Round-trip through the serializer: what we write must parse.
        let parsed = Json::parse(&trace.render()).expect("trace JSON parses");
        let events = parsed.as_arr().expect("top level is an array");
        assert_eq!(events.len(), 4 + 1, "4 spans + 1 instant");
        let mut saw_instant = false;
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).expect("ph");
            assert!(e.get("name").and_then(Json::as_str).is_some());
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            assert!(ts >= 0.0);
            match ph {
                "X" => {
                    assert!(e.get("dur").and_then(Json::as_f64).expect("dur") >= 0.0);
                }
                "i" => {
                    saw_instant = true;
                    assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
                }
                other => panic!("unexpected phase {other}"),
            }
            assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
        }
        assert!(saw_instant);
    }

    #[test]
    fn chrome_trace_nesting_is_consistent() {
        let (profile, _) = sample_profile();
        let trace = profile.chrome_trace();
        let events = trace.as_arr().unwrap();
        // The first event is the root and spans every other X event.
        let root_ts = events[0].get("ts").and_then(Json::as_f64).unwrap();
        let root_end = root_ts + events[0].get("dur").and_then(Json::as_f64).unwrap();
        for e in &events[1..] {
            if e.get("ph").and_then(Json::as_str) == Some("X") {
                let ts = e.get("ts").and_then(Json::as_f64).unwrap();
                let dur = e.get("dur").and_then(Json::as_f64).unwrap();
                assert!(ts >= root_ts);
                // Timestamps are stamped by the sink while durations are
                // measured inside the span; allow scheduling slack.
                assert!(ts + dur <= root_end + 500.0, "child escapes the root span");
            }
        }
    }

    #[test]
    fn collapsed_stacks_sum_self_times() {
        let (profile, _) = sample_profile();
        let text = profile.collapsed_stacks();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "one line per distinct stack");
        assert!(lines.iter().any(|l| l.starts_with("run ")));
        assert!(lines.iter().any(|l| l.starts_with("run;build ")));
        assert!(lines.iter().any(|l| l.starts_with("run;decompose;output.y0 ")));
        // Every line ends in a non-negative integer value.
        let mut total: u128 = 0;
        for line in &lines {
            let value: u128 = line.rsplit(' ').next().unwrap().parse().expect("integer value");
            total += value;
        }
        // Self times sum back to (at most) the root's duration in µs.
        let root_us = profile.roots[0].duration.as_micros();
        assert!(total <= root_us + 1);
    }

    #[test]
    fn truncated_streams_still_build_a_tree() {
        let rec = Recorder::new();
        let sink = ProfileSink::new();
        rec.add_sink(Box::new(sink.clone()));
        let outer = rec.span("outer");
        let inner = rec.span("inner");
        // Simulate a crash: take the events while both spans are open.
        let events = sink.events();
        let profile = Profile::from_events(&events);
        drop(inner);
        drop(outer);
        assert_eq!(profile.roots.len(), 1);
        assert_eq!(profile.roots[0].name, "outer");
        assert_eq!(profile.roots[0].children[0].name, "inner");
    }

    #[test]
    fn empty_profile_exports_cleanly() {
        let profile = Profile::from_events(&[]);
        assert_eq!(profile.span_count(), 0);
        assert_eq!(profile.chrome_trace(), Json::Arr(vec![]));
        assert_eq!(profile.collapsed_stacks(), "");
    }
}
