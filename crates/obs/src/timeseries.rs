//! A lightweight resource time-series sampler.
//!
//! [`TimeSeries`] is a bounded ring buffer of labelled resource
//! [`Sample`]s (live node count, table/cache/slab bytes, operation rate).
//! Producers push samples at the hooks they already have — after each
//! output, after every GC, at the end of a run — and the whole series
//! serializes into the run report (schema v3), so a memory cliff or an
//! op-rate collapse is visible from the artifact alone.
//!
//! The sampler does no timing of its own: callers pass the run-relative
//! timestamp, and the per-sample operation rate is derived from the delta
//! of the cumulative operation count between consecutive samples. When
//! the buffer is full the *oldest* samples are dropped (and counted), on
//! the theory that the end of a run is where anomalies usually live.

use std::collections::VecDeque;

use crate::json::Json;

/// One resource sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Run-relative timestamp, seconds.
    pub t_s: f64,
    /// Which hook produced the sample (`"output"`, `"gc"`, `"end"`, …).
    pub label: &'static str,
    /// Live BDD nodes.
    pub live_nodes: u64,
    /// Unique-table bytes (capacity-based estimate).
    pub table_bytes: u64,
    /// Computed-cache bytes.
    pub cache_bytes: u64,
    /// Node-slab bytes.
    pub slab_bytes: u64,
    /// Operations per second since the previous sample (0 for the first
    /// sample or a zero-width interval).
    pub ops_per_s: f64,
}

impl Sample {
    /// Total bytes across the three tracked allocations.
    pub fn total_bytes(&self) -> u64 {
        self.table_bytes + self.cache_bytes + self.slab_bytes
    }

    /// The sample as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("t_s", self.t_s)
            .field("label", self.label)
            .field("live_nodes", self.live_nodes)
            .field("table_bytes", self.table_bytes)
            .field("cache_bytes", self.cache_bytes)
            .field("slab_bytes", self.slab_bytes)
            .field("total_bytes", self.total_bytes())
            .field("ops_per_s", self.ops_per_s)
    }
}

/// Bounded ring buffer of resource samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    capacity: usize,
    samples: VecDeque<Sample>,
    dropped: u64,
    /// `(t_s, cumulative_ops)` of the most recent sample, for op-rate
    /// deltas.
    last: Option<(f64, u64)>,
}

/// Default ring capacity: plenty for a per-output + per-GC cadence on the
/// MCNC suite while keeping the serialized section small.
pub const DEFAULT_CAPACITY: usize = 512;

impl TimeSeries {
    /// Creates an empty series retaining at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a time series needs room for at least one sample");
        TimeSeries { capacity, ..TimeSeries::default() }
    }

    /// Records one sample. `cumulative_ops` is a monotonic operation
    /// counter (e.g. total apply steps); the per-sample rate is derived
    /// from its delta against the previous sample.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        t_s: f64,
        label: &'static str,
        live_nodes: u64,
        table_bytes: u64,
        cache_bytes: u64,
        slab_bytes: u64,
        cumulative_ops: u64,
    ) {
        let ops_per_s = match self.last {
            Some((prev_t, prev_ops)) if t_s > prev_t => {
                cumulative_ops.saturating_sub(prev_ops) as f64 / (t_s - prev_t)
            }
            _ => 0.0,
        };
        self.last = Some((t_s, cumulative_ops));
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(Sample {
            t_s,
            label,
            live_nodes,
            table_bytes,
            cache_bytes,
            slab_bytes,
            ops_per_s,
        });
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum retained samples (0 only for `TimeSeries::default()`,
    /// which never records).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The series as a JSON object (the `timeseries` section of run
    /// reports).
    pub fn to_json(&self) -> Json {
        let samples: Vec<Json> = self.samples.iter().map(Sample::to_json).collect();
        Json::obj()
            .field("capacity", self.capacity)
            .field("dropped", self.dropped)
            .field("samples", samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(ts: &mut TimeSeries, t_s: f64, ops: u64) {
        ts.record(t_s, "output", 10, 100, 200, 300, ops);
    }

    #[test]
    fn first_sample_has_zero_rate_then_deltas() {
        let mut ts = TimeSeries::new(8);
        assert!(ts.is_empty());
        push(&mut ts, 1.0, 1000);
        push(&mut ts, 2.0, 3000);
        push(&mut ts, 2.5, 4000);
        let rates: Vec<f64> = ts.samples().map(|s| s.ops_per_s).collect();
        assert_eq!(rates, vec![0.0, 2000.0, 2000.0]);
        assert_eq!(ts.latest().unwrap().t_s, 2.5);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ts = TimeSeries::new(3);
        for i in 0..5 {
            push(&mut ts, i as f64, i * 100);
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.dropped(), 2);
        let times: Vec<f64> = ts.samples().map(|s| s.t_s).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0], "oldest samples go first");
        // Rates still use the *true* previous sample, not the retained one.
        assert!(ts.samples().skip(1).all(|s| s.ops_per_s == 100.0));
    }

    #[test]
    fn zero_width_interval_does_not_divide_by_zero() {
        let mut ts = TimeSeries::new(4);
        push(&mut ts, 1.0, 100);
        push(&mut ts, 1.0, 900);
        assert_eq!(ts.latest().unwrap().ops_per_s, 0.0);
        // A counter that resets (reorder rebuild) must not underflow.
        push(&mut ts, 2.0, 50);
        assert_eq!(ts.latest().unwrap().ops_per_s, 0.0);
    }

    #[test]
    fn json_round_trips() {
        let mut ts = TimeSeries::new(4);
        ts.record(0.5, "gc", 42, 1024, 2048, 512, 7_000);
        let json = ts.to_json();
        let parsed = Json::parse(&json.render()).expect("valid JSON");
        assert_eq!(parsed.get("capacity").and_then(Json::as_f64), Some(4.0));
        let samples = parsed.get("samples").and_then(Json::as_arr).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].get("label").and_then(Json::as_str), Some("gc"));
        assert_eq!(samples[0].get("total_bytes").and_then(Json::as_f64), Some(3584.0));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_capacity_is_rejected() {
        let _ = TimeSeries::new(0);
    }
}
