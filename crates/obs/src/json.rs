//! A hand-rolled JSON value: builder, writer and parser.
//!
//! The run reports (`BENCH_bidecomp.json`) and the JSONL event sink need
//! machine-readable output with a schema stable enough to diff across
//! PRs, but the workspace is deliberately dependency-free. This module
//! implements the JSON subset the telemetry layer needs: objects keep
//! insertion order (stable schemas diff cleanly), numbers are `f64` or
//! `u64`/`i64`, and the parser accepts anything the writer emits (plus
//! ordinary interchange JSON).

use std::collections::BTreeMap;
use std::fmt::{self, Write as _};

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as `f64` (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_owned(), value));
                }
                self
            }
            _ => panic!("Json::field on a non-object"),
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object keys in insertion order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Serializes to a compact single-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseJsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 9e15 {
            let _ = write!(out, "{}", x as i64);
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional substitute.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl From<&BTreeMap<String, u64>> for Json {
    fn from(map: &BTreeMap<String, u64>) -> Json {
        Json::Obj(map.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Error from [`Json::parse`] with a byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseJsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseJsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseJsonError {
        ParseJsonError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseJsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar (input came from a &str, so
                    // the byte stream is valid UTF-8).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated utf-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}
