//! Shared report formatting: the one place rates and percentages are
//! turned into text (previously copy-pasted between `core::Stats`'s
//! `Display` and the `stats` bench binary).

/// Formats a rate in `[0, 1]` as a percentage with one decimal, e.g.
/// `0.25` → `"25.0%"`.
pub fn pct(rate: f64) -> String {
    format!("{:.1}%", 100.0 * rate)
}

/// Formats a rate in `[0, 1]` as a percentage with two decimals, e.g.
/// `0.0123` → `"1.23%"` (used for the paper's "<1%" inessential rate).
pub fn pct2(rate: f64) -> String {
    format!("{:.2}%", 100.0 * rate)
}

/// The ratio `num / den`, or `0.0` when the denominator is zero.
pub fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Events-per-second throughput, or `0.0` for an instantaneous interval.
///
/// Guaranteed finite: a sub-nanosecond `elapsed` (or one small enough for
/// the division to overflow `f64`) returns `0.0` instead of `inf`/`NaN`,
/// so the value is always safe to embed in JSON reports.
pub fn per_second(events: usize, elapsed: std::time::Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    let rate = events as f64 / secs;
    if rate.is_finite() {
        rate
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.25), "25.0%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct2(0.0123), "1.23%");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(3, 0), 0.0);
        assert_eq!(ratio(1, 4), 0.25);
    }

    #[test]
    fn throughput_handles_zero_interval() {
        assert_eq!(per_second(100, std::time::Duration::ZERO), 0.0);
        let r = per_second(100, std::time::Duration::from_secs(2));
        assert!((r - 50.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_always_finite_and_json_safe() {
        // A 1 ns interval is the smallest representable non-zero duration;
        // the rate is huge but finite.
        let r = per_second(usize::MAX, std::time::Duration::from_nanos(1));
        assert!(r.is_finite());
        // Whatever per_second returns must serialize as a JSON number,
        // never the bare tokens `inf`/`NaN`.
        for r in [r, per_second(0, std::time::Duration::ZERO)] {
            let doc = crate::json::Json::obj().field("rate", r).render();
            assert!(crate::json::Json::parse(&doc).is_ok(), "unparseable rate doc: {doc}");
            assert!(!doc.contains("inf") && !doc.contains("NaN"));
        }
    }
}
