//! **obs** — zero-dependency telemetry for the BI-DECOMP workspace.
//!
//! Every layer of the system (BDD manager, decomposer, netlist passes,
//! ATPG, bench harness) reports into this crate:
//!
//! * [`Recorder`] — a cheap-to-clone handle aggregating named counters
//!   and gauges, with RAII hierarchical timing [`Span`]s.
//! * [`Sink`] — where events go: [`TextSink`] renders an indented
//!   human-readable log, [`JsonlSink`] writes one JSON object per line,
//!   [`MemorySink`] captures events for tests.
//! * [`json`] — a hand-rolled JSON value (writer *and* parser) used for
//!   the machine-readable `BENCH_*.json` run reports.
//! * [`Histogram`] — a log-bucketed latency histogram (`record_ns`,
//!   p50/p90/p99/max) embedded in run reports.
//! * [`profile`] — span-tree exporters: Chrome `trace_event` JSON and
//!   collapsed-stack flamegraph text.
//! * [`TimeSeries`] — a bounded ring buffer of resource samples (nodes,
//!   table/cache/slab bytes, op rate) serialized into run reports.
//! * [`report`] — the shared rate/percentage formatting helpers.
//! * [`bench`] — a small micro-benchmark harness (criterion substitute).
//!
//! Telemetry is strictly opt-in: a layer holding `Option<Recorder>` pays
//! one branch per event when disabled and allocates nothing.
//!
//! ```
//! use obs::{JsonlSink, Recorder, SharedBuf};
//!
//! let rec = Recorder::new();
//! let buf = SharedBuf::new();
//! rec.add_sink(Box::new(JsonlSink::new(buf.clone())));
//! {
//!     let _outer = rec.span("decompose");
//!     let _inner = rec.span("decompose.output");
//!     rec.count("calls", 17);
//! }
//! let lines: Vec<String> = buf.contents().lines().map(String::from).collect();
//! assert_eq!(lines.len(), 5); // 2 starts, 1 counter, 2 ends
//! let first = obs::json::Json::parse(&lines[0]).unwrap();
//! assert_eq!(first.get("type").unwrap().as_str(), Some("span_start"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod hist;
pub mod json;
pub mod profile;
mod recorder;
pub mod report;
mod sink;
pub mod timeseries;

pub use hist::Histogram;
pub use recorder::{Recorder, Span};
pub use sink::{Event, JsonlSink, MemorySink, SharedBuf, Sink, TextSink, WriteErrors};
pub use timeseries::TimeSeries;

#[cfg(test)]
mod tests {
    use super::*;
    use json::Json;

    #[test]
    fn counters_and_gauges_aggregate() {
        let rec = Recorder::new();
        rec.count("a", 2);
        rec.count("a", 3);
        rec.gauge("load", 0.5);
        assert_eq!(rec.counter("a"), 5);
        assert_eq!(rec.counter("missing"), 0);
        assert_eq!(rec.gauge_value("load"), Some(0.5));
        assert_eq!(rec.counters().len(), 1);
        assert_eq!(rec.gauges().len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let other = rec.clone();
        other.count("shared", 1);
        assert_eq!(rec.counter("shared"), 1);
    }

    #[test]
    fn spans_nest_and_unwind() {
        let rec = Recorder::new();
        let sink = MemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        {
            let _a = rec.span("a");
            let _b = rec.span("b");
        }
        let _c = rec.span("c");
        drop(_c);
        let depths: Vec<(String, usize)> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, depth } => Some((name, depth)),
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![("a".into(), 0), ("b".into(), 1), ("c".into(), 0)]);
    }

    #[test]
    fn span_end_carries_duration() {
        let rec = Recorder::new();
        let sink = MemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        {
            let span = rec.span("timed");
            assert!(span.elapsed() >= std::time::Duration::ZERO);
            span.close();
        }
        let ends: Vec<Event> =
            sink.events().into_iter().filter(|e| matches!(e, Event::SpanEnd { .. })).collect();
        assert_eq!(ends.len(), 1);
        match &ends[0] {
            Event::SpanEnd { name, depth, .. } => {
                assert_eq!(name, "timed");
                assert_eq!(*depth, 0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn jsonl_sink_emits_parseable_records_in_order() {
        let rec = Recorder::new();
        let buf = SharedBuf::new();
        rec.add_sink(Box::new(JsonlSink::new(buf.clone())));
        {
            let _outer = rec.span("outer");
            rec.count("n", 1);
            let _inner = rec.span("inner");
        }
        let text = buf.contents();
        let records: Vec<Json> =
            text.lines().map(|l| Json::parse(l).expect("valid jsonl")).collect();
        assert_eq!(records.len(), 5);
        let kinds: Vec<&str> =
            records.iter().map(|r| r.get("type").unwrap().as_str().unwrap()).collect();
        // Inner spans close before outer ones (RAII order).
        assert_eq!(kinds, ["span_start", "counter", "span_start", "span_end", "span_end"]);
        assert_eq!(records[2].get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(records[3].get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(records[4].get("name").unwrap().as_str(), Some("outer"));
        assert!(records[4].get("elapsed_s").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn jsonl_sink_escapes_hostile_names() {
        let rec = Recorder::new();
        let buf = SharedBuf::new();
        rec.add_sink(Box::new(JsonlSink::new(buf.clone())));
        let hostile = "bench \"quoted\"\\path\nwith\tcontrol\u{1}chars";
        rec.count(hostile, 7);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "escaping must keep one record per line");
        let parsed = Json::parse(lines[0]).expect("escaped record parses");
        assert_eq!(parsed.get("name").unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn sinks_flush_buffered_output_on_drop() {
        use std::io::BufWriter;
        let buf = SharedBuf::new();
        {
            let rec = Recorder::new();
            let writer = BufWriter::with_capacity(1 << 16, buf.clone());
            rec.add_sink(Box::new(JsonlSink::new(writer)));
            rec.count("n", 1);
            // The record is still sitting in the BufWriter.
            assert_eq!(buf.contents(), "");
            // `rec` (and with it the sink) drops here without an explicit
            // flush — as a process exiting mid-run would.
        }
        let text = buf.contents();
        assert!(text.contains("counter"), "JsonlSink must flush on drop, got {text:?}");
        assert!(json::Json::parse(text.lines().next().unwrap()).is_ok());

        let buf = SharedBuf::new();
        {
            let rec = Recorder::new();
            rec.add_sink(Box::new(TextSink::new(BufWriter::with_capacity(1 << 16, buf.clone()))));
            rec.count("n", 2);
        }
        assert!(buf.contents().contains("n += 2"), "TextSink must flush on drop");
    }

    #[test]
    fn jsonl_sink_counts_failed_writes() {
        use std::io::{self, Write};

        /// A writer whose disk is always full.
        struct BrokenWriter;
        impl Write for BrokenWriter {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let rec = Recorder::new();
        let sink = JsonlSink::new(BrokenWriter);
        let errors = sink.write_errors();
        rec.add_sink(Box::new(sink));
        assert_eq!(errors.get(), 0);
        rec.count("a", 1);
        rec.count("b", 1);
        rec.count("c", 1);
        // Every line fails and is counted — the handle outlives our
        // access to the sink itself.
        assert_eq!(errors.get(), 3, "failed lines must be counted, not swallowed");

        // A healthy sink stays at zero.
        let healthy = JsonlSink::new(SharedBuf::new());
        let clean = healthy.write_errors();
        let rec2 = Recorder::new();
        rec2.add_sink(Box::new(healthy));
        rec2.count("ok", 1);
        assert_eq!(clean.get(), 0);
    }

    #[test]
    fn text_sink_indents_by_depth() {
        let rec = Recorder::new();
        let buf = SharedBuf::new();
        rec.add_sink(Box::new(TextSink::new(buf.clone())));
        {
            let _a = rec.span("outer");
            let _b = rec.span("inner");
        }
        rec.flush();
        let text = buf.contents();
        assert!(text.contains("▸ outer"));
        assert!(text.contains("  ▸ inner"));
        assert!(text.contains("◂ outer"));
    }

    #[test]
    fn json_roundtrip() {
        let doc = Json::obj()
            .field("name", "9sym")
            .field("gates", 42u64)
            .field("rate", 0.257)
            .field("ok", true)
            .field("tags", Json::Arr(vec![Json::from("a"), Json::Null]))
            .field("nested", Json::obj().field("k", "v\nwith \"escapes\""));
        let text = doc.render();
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(back, doc);
        assert_eq!(back.keys(), vec!["name", "gates", "rate", "ok", "tags", "nested"]);
        assert_eq!(back.get("gates").unwrap().as_f64(), Some(42.0));
        assert_eq!(back.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("tags").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("nope").is_err());
        let err = Json::parse("").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn json_parses_interchange_extras() {
        let doc = Json::parse(" { \"a\" : [ 1 , -2.5e1 , \"\\u0041\\u00e9\" ] } ").unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("Aé"));
    }
}
