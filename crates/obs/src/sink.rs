//! Event sinks: where telemetry events go.
//!
//! The [`Recorder`](crate::Recorder) aggregates counters in memory and
//! forwards every [`Event`] to any number of sinks. Two sinks ship with
//! the crate: a human-readable indented text sink and a JSON-lines sink
//! for machine consumption; [`MemorySink`] captures events for tests.

use std::cell::{Cell, RefCell};
use std::io::Write;
use std::rc::Rc;
use std::time::Duration;

use crate::json::Json;

/// A shared handle on a sink's write-error count.
///
/// Sinks swallow I/O failures by design — observability must never turn
/// into control flow — but swallowing them *silently* hides a truncated
/// trace file. [`JsonlSink`] counts every failed line here instead; keep
/// a clone of the handle (see [`JsonlSink::write_errors`]) and surface
/// the count in the run report or an `obs.sink.write_errors` counter.
#[derive(Clone, Default, Debug)]
pub struct WriteErrors {
    errors: Rc<Cell<u64>>,
}

impl WriteErrors {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lines that failed to write so far.
    pub fn get(&self) -> u64 {
        self.errors.get()
    }

    /// Counts one failed write.
    pub(crate) fn bump(&self) {
        self.errors.set(self.errors.get() + 1);
    }
}

/// One telemetry event.
#[derive(Clone, PartialEq, Debug)]
pub enum Event {
    /// A hierarchical span opened (`depth` 0 = top level).
    SpanStart {
        /// Span name, dot-separated by convention (`decompose.output`).
        name: String,
        /// Nesting depth at the moment the span opened.
        depth: usize,
    },
    /// A span closed.
    SpanEnd {
        /// Span name (matches the corresponding `SpanStart`).
        name: String,
        /// Nesting depth the span had while open.
        depth: usize,
        /// Wall-clock duration of the span.
        duration: Duration,
    },
    /// A named counter was incremented.
    Counter {
        /// Counter name.
        name: String,
        /// Increment applied (the recorder keeps the running total).
        delta: u64,
    },
    /// A named gauge was set.
    Gauge {
        /// Gauge name.
        name: String,
        /// New value.
        value: f64,
    },
    /// A free-form structured event (e.g. one GC run).
    Point {
        /// Event name.
        name: String,
        /// Structured payload.
        fields: Json,
    },
}

impl Event {
    /// The event as a single JSON object (the JSONL record shape).
    pub fn to_json(&self) -> Json {
        match self {
            Event::SpanStart { name, depth } => Json::obj()
                .field("type", "span_start")
                .field("name", name.as_str())
                .field("depth", *depth),
            Event::SpanEnd { name, depth, duration } => Json::obj()
                .field("type", "span_end")
                .field("name", name.as_str())
                .field("depth", *depth)
                .field("elapsed_s", duration.as_secs_f64()),
            Event::Counter { name, delta } => Json::obj()
                .field("type", "counter")
                .field("name", name.as_str())
                .field("delta", *delta),
            Event::Gauge { name, value } => Json::obj()
                .field("type", "gauge")
                .field("name", name.as_str())
                .field("value", *value),
            Event::Point { name, fields } => Json::obj()
                .field("type", "point")
                .field("name", name.as_str())
                .field("fields", fields.clone()),
        }
    }
}

/// A destination for telemetry events.
pub trait Sink {
    /// Receives one event. Sinks must not panic on I/O failure; they are
    /// observability, not control flow.
    fn accept(&mut self, event: &Event);

    /// Flushes any buffered output (called by [`Recorder::flush`]).
    ///
    /// [`Recorder::flush`]: crate::Recorder::flush
    fn flush(&mut self) {}
}

/// Human-readable sink: one indented line per event.
///
/// Flushes its writer when dropped, so buffered output survives a process
/// that never calls [`Recorder::flush`](crate::Recorder::flush).
pub struct TextSink<W: Write> {
    out: W,
}

impl<W: Write> TextSink<W> {
    /// Creates a text sink writing to `out`.
    pub fn new(out: W) -> Self {
        TextSink { out }
    }
}

impl<W: Write> Drop for TextSink<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

impl<W: Write> Sink for TextSink<W> {
    fn accept(&mut self, event: &Event) {
        let line = match event {
            Event::SpanStart { name, depth } => {
                format!("{:indent$}▸ {name}", "", indent = depth * 2)
            }
            Event::SpanEnd { name, depth, duration } => {
                format!(
                    "{:indent$}◂ {name} {:.3}ms",
                    "",
                    duration.as_secs_f64() * 1e3,
                    indent = depth * 2
                )
            }
            Event::Counter { name, delta } => format!("  + {name} += {delta}"),
            Event::Gauge { name, value } => format!("  = {name} = {value}"),
            Event::Point { name, fields } => format!("  • {name} {}", fields.render()),
        };
        let _ = writeln!(self.out, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Machine-readable sink: one compact JSON object per line (JSONL).
///
/// Flushes its writer when dropped, so a `--trace-out` file behind a
/// `BufWriter` is complete even when the process exits without an
/// explicit flush.
pub struct JsonlSink<W: Write> {
    // `None` only after `into_inner` moved the writer out (the drop-flush
    // and `Drop` forbid a plain field move).
    out: Option<W>,
    errors: WriteErrors,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a JSONL sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out: Some(out), errors: WriteErrors::new() }
    }

    /// A shared handle on the count of lines that failed to write.
    ///
    /// Clone it before handing the sink to a recorder; the handle keeps
    /// reporting after the sink is gone.
    pub fn write_errors(&self) -> WriteErrors {
        self.errors.clone()
    }

    /// Consumes the sink, returning the writer (so callers can flush it
    /// fallibly or hand it back).
    pub fn into_inner(mut self) -> W {
        self.out.take().expect("writer is present until into_inner")
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn accept(&mut self, event: &Event) {
        if let Some(out) = &mut self.out {
            if writeln!(out, "{}", event.to_json().render()).is_err() {
                self.errors.bump();
            }
        }
    }

    fn flush(&mut self) {
        if let Some(out) = &mut self.out {
            let _ = out.flush();
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(out) = &mut self.out {
            let _ = out.flush();
        }
    }
}

/// Captures events in memory (for tests and post-run inspection).
#[derive(Clone, Default)]
pub struct MemorySink {
    events: Rc<RefCell<Vec<Event>>>,
}

impl MemorySink {
    /// Creates an empty memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every event received so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Number of events received.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether no events were received.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Sink for MemorySink {
    fn accept(&mut self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

/// A shareable in-memory byte buffer implementing [`Write`] — lets tests
/// keep a handle on the bytes a [`JsonlSink`] or [`TextSink`] produces.
#[derive(Clone, Default)]
pub struct SharedBuf {
    bytes: Rc<RefCell<Vec<u8>>>,
}

impl SharedBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered bytes, decoded as UTF-8.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds invalid UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8(self.bytes.borrow().clone()).expect("sinks write utf-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}
