//! A log-bucketed latency histogram.
//!
//! The benchmark claims of the paper are about *runtime*, so the run
//! reports need latency distributions, not just totals: a per-output
//! decomposition that is fast on average but has a 100× tail reads very
//! differently from a uniform one. [`Histogram`] records nanosecond
//! samples into logarithmic buckets (16 exact buckets below 16 ns, then
//! four linear sub-buckets per power of two), which bounds the relative
//! quantile error at 12.5% while keeping the struct a flat 2 KiB — cheap
//! enough to embed one per manager and one per run.

use std::time::Duration;

use crate::json::Json;

/// Exact buckets for values `0..16`, then 4 sub-buckets per octave for
/// exponents 4..=63.
const EXACT: usize = 16;
const SUBBUCKETS: usize = 4;
const NBUCKETS: usize = EXACT + (64 - 4) * SUBBUCKETS;

/// A log-bucketed histogram of nanosecond latencies.
///
/// ```
/// use obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 1_000_000] {
///     h.record_ns(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max_ns(), 1_000_000);
/// // The median of five samples is the third (300), within bucket error.
/// assert!(h.p50_ns() >= 263 && h.p50_ns() <= 338);
/// // p99 of five samples is the largest one, up to bucket resolution.
/// assert!(h.p99_ns() >= 875_000 && h.p99_ns() <= h.max_ns());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    counts: [u64; NBUCKETS],
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (exp - 2)) & 0b11) as usize;
    EXACT + (exp - 4) * SUBBUCKETS + sub
}

/// Midpoint of the value range covered by bucket `idx` (its exact value
/// for the sub-16 exact buckets).
fn bucket_midpoint(idx: usize) -> u64 {
    if idx < EXACT {
        return idx as u64;
    }
    let exp = 4 + (idx - EXACT) / SUBBUCKETS;
    let sub = ((idx - EXACT) % SUBBUCKETS) as u64;
    let quarter = 1u64 << (exp - 2);
    let lo = (1u64 << exp) + sub * quarter;
    lo + quarter / 2
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: [0; NBUCKETS], count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.total_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one sample from a [`Duration`] (saturating at `u64::MAX` ns,
    /// ≈ 584 years).
    pub fn record(&mut self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Arithmetic mean of the recorded samples (exact, from the running
    /// sum; 0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated from the buckets, with
    /// at most 12.5% relative error; clamped to the exact observed
    /// min/max. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the wanted sample, 1-based, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_midpoint(idx).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median estimate.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The summary as a JSON object — the `percentiles` entry shape of the
    /// run reports: `count`, `mean_ns`, `p50_ns`, `p90_ns`, `p99_ns`,
    /// `max_ns`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("count", self.count)
            .field("mean_ns", self.mean_ns())
            .field("p50_ns", self.p50_ns())
            .field("p90_ns", self.p90_ns())
            .field("p99_ns", self.p99_ns())
            .field("max_ns", self.max_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_f64), Some(0.0));
        assert_eq!(j.get("max_ns").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record_ns(v);
        }
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 15);
        // Exact buckets: the 0.5-quantile of 0..=15 lands on 7.
        assert_eq!(h.quantile_ns(0.5), 7);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        // A seeded multiplicative walk over five decades.
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 50 + x % 5_000_000;
            samples.push(v);
            h.record_ns(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize - 1).min(9999)];
            let est = h.quantile_ns(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.125 + 1e-9, "q={q}: est {est} vs exact {exact} (err {err:.3})");
        }
        assert_eq!(h.count(), 10_000);
        assert!(h.mean_ns() > 0.0);
    }

    #[test]
    fn max_is_exact_and_bounds_p99() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record_ns(1_000);
        }
        h.record_ns(123_456_789);
        assert_eq!(h.max_ns(), 123_456_789);
        assert_eq!(h.p99_ns(), h.quantile_ns(0.99));
        assert!(h.p99_ns() <= h.max_ns());
        assert!(h.p50_ns() >= 875 && h.p50_ns() <= 1_125, "p50 {} near 1000", h.p50_ns());
    }

    #[test]
    fn durations_and_merge() {
        let mut a = Histogram::new();
        a.record(Duration::from_micros(5));
        let mut b = Histogram::new();
        b.record(Duration::from_micros(50));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ns(), 5_000);
        assert_eq!(a.max_ns(), 50_000);
    }

    #[test]
    fn bucket_boundaries_are_monotonic() {
        let mut last = 0;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1_000, 1_000_000, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must not decrease (v={v})");
            assert!(idx < NBUCKETS);
            last = idx;
        }
        // A value always lands in a bucket whose midpoint is within 12.5%.
        for v in [100u64, 10_000, 12_345_678] {
            let mid = bucket_midpoint(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.125, "v={v} midpoint {mid}");
        }
    }
}
