//! The recorder: shared aggregation point for counters, gauges and spans.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

use crate::json::Json;
use crate::sink::{Event, Sink};

struct Inner {
    depth: usize,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    sinks: Vec<Box<dyn Sink>>,
}

/// A cheap-to-clone handle to one telemetry session.
///
/// All clones share the same counters and sinks; layers hold a `Recorder`
/// (or an `Option<Recorder>`) and emit into it. Counters and gauges are
/// aggregated in memory *and* forwarded to every attached sink, so a run
/// can be inspected both as a stream (JSONL) and as totals.
///
/// ```
/// use obs::{MemorySink, Recorder};
///
/// let rec = Recorder::new();
/// let sink = MemorySink::new();
/// rec.add_sink(Box::new(sink.clone()));
/// {
///     let _span = rec.span("phase.work");
///     rec.count("items", 3);
/// }
/// assert_eq!(rec.counter("items"), 3);
/// assert_eq!(sink.len(), 3); // span start, counter, span end
/// ```
#[derive(Clone)]
pub struct Recorder {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a recorder with no sinks (counters still aggregate).
    pub fn new() -> Self {
        Recorder {
            inner: Rc::new(RefCell::new(Inner {
                depth: 0,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                sinks: Vec::new(),
            })),
        }
    }

    /// Attaches a sink; every subsequent event is forwarded to it.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.borrow_mut().sinks.push(sink);
    }

    fn emit(&self, event: Event) {
        let mut inner = self.inner.borrow_mut();
        for sink in &mut inner.sinks {
            sink.accept(&event);
        }
    }

    /// Opens a RAII span; the span closes (and emits its duration) on drop.
    pub fn span(&self, name: impl Into<String>) -> Span {
        let name = name.into();
        let depth = {
            let mut inner = self.inner.borrow_mut();
            let depth = inner.depth;
            inner.depth += 1;
            depth
        };
        self.emit(Event::SpanStart { name: name.clone(), depth });
        Span { recorder: self.clone(), name, depth, start: Instant::now() }
    }

    /// Adds `delta` to the named counter.
    pub fn count(&self, name: &str, delta: u64) {
        {
            let mut inner = self.inner.borrow_mut();
            *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
        }
        self.emit(Event::Counter { name: name.to_owned(), delta });
    }

    /// Sets the named gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.gauges.insert(name.to_owned(), value);
        }
        self.emit(Event::Gauge { name: name.to_owned(), value });
    }

    /// Emits a free-form structured event.
    pub fn point(&self, name: &str, fields: Json) {
        self.emit(Event::Point { name: name.to_owned(), fields });
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.borrow().counters.clone()
    }

    /// Snapshot of all gauges.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.inner.borrow().gauges.clone()
    }

    /// Flushes every attached sink.
    pub fn flush(&self) {
        let mut inner = self.inner.borrow_mut();
        for sink in &mut inner.sinks {
            sink.flush();
        }
    }
}

/// An open hierarchical timing span (see [`Recorder::span`]).
///
/// Dropping the span emits a [`Event::SpanEnd`] carrying the wall-clock
/// duration and restores the nesting depth.
pub struct Span {
    recorder: Recorder,
    name: String,
    depth: usize,
    start: Instant,
}

impl Span {
    /// Wall-clock time since the span opened.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        {
            let mut inner = self.recorder.inner.borrow_mut();
            inner.depth = inner.depth.saturating_sub(1);
        }
        self.recorder.emit(Event::SpanEnd {
            name: std::mem::take(&mut self.name),
            depth: self.depth,
            duration,
        });
    }
}
