//! Seeded proptest-style round-trip tests for `obs::json` string
//! escaping. The Chrome trace export and the JSONL sinks both lean on
//! `write_escaped`, so every representable string — quotes, backslashes,
//! control characters, non-ASCII — must survive `render` → `parse`
//! unchanged, and every rendered document must stay one physical line.

use obs::json::Json;

/// SplitMix64 — the workspace's standard seeded generator (no external
/// rand crate).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Draws a char biased towards the hostile regions: escapes, control
/// characters, multi-byte UTF-8, and the edges of the BMP.
fn hostile_char(rng: &mut SplitMix64) -> char {
    match rng.below(10) {
        0 => '"',
        1 => '\\',
        2 => ['\n', '\r', '\t'][rng.below(3) as usize],
        3 => char::from_u32(rng.below(0x20) as u32).unwrap(), // C0 controls
        4 => ['/', '\u{8}', '\u{c}', '\u{7f}'][rng.below(4) as usize],
        5 => ['é', 'ß', 'λ', 'ж'][rng.below(4) as usize], // 2-byte UTF-8
        6 => ['∀', '⊕', '‾', '\u{fffd}'][rng.below(4) as usize], // 3-byte
        7 => ['𝔽', '🦀', '𐍈'][rng.below(3) as usize],     // 4-byte (surrogate pairs in UTF-16)
        8 => char::from_u32(0xD7FF).unwrap(),             // last scalar before the surrogate gap
        _ => char::from_u32((b'a' + rng.below(26) as u8) as u32).unwrap(),
    }
}

fn hostile_string(rng: &mut SplitMix64, max_len: u64) -> String {
    (0..rng.below(max_len + 1)).map(|_| hostile_char(rng)).collect()
}

#[test]
fn hostile_strings_roundtrip() {
    let mut rng = SplitMix64(0x0b5e_c0de);
    for case in 0..2000 {
        let s = hostile_string(&mut rng, 40);
        let doc = Json::Str(s.clone());
        let text = doc.render();
        assert!(!text.contains('\n') && !text.contains('\r'), "case {case}: multi-line render");
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: {e} while parsing {text:?} from {s:?}"));
        assert_eq!(back.as_str(), Some(s.as_str()), "case {case} mutated through the round-trip");
    }
}

#[test]
fn hostile_object_keys_and_nested_values_roundtrip() {
    let mut rng = SplitMix64(0xfeed_beef);
    for case in 0..500 {
        let key_a = hostile_string(&mut rng, 12);
        let mut key_b = hostile_string(&mut rng, 12);
        if key_b == key_a {
            key_b.push('x'); // Json::field replaces duplicate keys
        }
        let doc = Json::obj()
            .field(&key_a, Json::Str(hostile_string(&mut rng, 20)))
            .field(&key_b, Json::Arr(vec![Json::Str(hostile_string(&mut rng, 20)), Json::Null]))
            .field("n", (rng.below(1 << 50)) as f64 / 1024.0);
        let text = doc.render();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e} in {text:?}"));
        assert_eq!(back, doc, "case {case}");
    }
}

#[test]
fn fixed_corpus_of_known_nasties() {
    for s in [
        "",
        "\"",
        "\\",
        "\\\"",
        "\\\\\"\\",
        "\u{0}",
        "\u{1}\u{2}\u{3}",
        "line\nbreak\rreturn\ttab",
        "back\u{8}space form\u{c}feed",
        "per-cent % and ; semicolons (flamegraph separators)",
        "bench \"quoted\"\\path",
        "ünïcödé κόσμε 🦀🦀",
        "\u{d7ff}\u{e000}\u{fffd}",
        "ends with backslash \\",
        "ends with quote \"",
    ] {
        let text = Json::Str(s.to_owned()).render();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("{e} for {s:?} → {text:?}"));
        assert_eq!(back.as_str(), Some(s), "round-trip mutated {s:?}");
        // And inside an event-shaped object, as the JSONL sink writes it.
        let record = Json::obj().field("type", "counter").field("name", s).field("delta", 1u64);
        let back = Json::parse(&record.render()).expect("record parses");
        assert_eq!(back.get("name").and_then(Json::as_str), Some(s));
    }
}
