//! Comparing two `BENCH_bidecomp.json` documents: the perf-regression
//! gate.
//!
//! [`diff_reports`] pairs the records of a baseline and a current report
//! by benchmark name and computes per-benchmark deltas of the columns that
//! matter for the paper's claims: wall-clock time, gate count, logic
//! levels, peak BDD nodes, and peak manager bytes. A configurable
//! [`Thresholds`] decides which deltas count as regressions; the `diff`
//! binary renders the table and exits non-zero when any survive, which is
//! what CI gates on.

use obs::json::Json;

/// Regression thresholds for [`diff_reports`].
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Allowed fractional time increase (0.10 = 10%). Times are noisy:
    /// CI passes a much larger value than the local default.
    pub max_time_regress: f64,
    /// Allowed fractional gate-count increase (0.0 = any growth fails).
    /// Gate counts are deterministic, so the default is strict.
    pub max_gates_regress: f64,
    /// Allowed fractional increase of `bdd.nodes_allocated` (fresh
    /// unique-table insertions — the memory-churn dimension of the kernel).
    /// Deterministic single-threaded, but parallel runs rebuild
    /// specifications per worker, so CI passes a generous budget on the
    /// multi-thread gate. Skipped when the baseline reports 0 allocations
    /// (pre-v4 baselines lack the counter).
    pub max_nodes_regress: f64,
    /// Benchmarks faster than this (in *both* reports) skip the time
    /// check: sub-threshold runs are dominated by clock noise.
    pub min_time_s: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_time_regress: 0.10,
            max_gates_regress: 0.0,
            max_nodes_regress: 0.10,
            min_time_s: 0.01,
        }
    }
}

/// One benchmark's columns from both reports, plus the verdict.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Benchmark name (the pairing key).
    pub name: String,
    /// Wall-clock seconds in the baseline / current report.
    pub time: (f64, f64),
    /// Two-input gates.
    pub gates: (f64, f64),
    /// Logic levels (cascades).
    pub levels: (f64, f64),
    /// Peak live BDD nodes.
    pub peak_nodes: (f64, f64),
    /// Fresh unique-table insertions (`bdd.nodes_allocated`; 0 when a
    /// report predates the v4 schema).
    pub nodes_allocated: (f64, f64),
    /// Peak sampled manager bytes (0 when a report predates the `mem`
    /// section).
    pub peak_bytes: (f64, f64),
    /// Human-readable reasons this row regressed (empty = clean).
    pub regressions: Vec<String>,
}

/// The full comparison of two report documents.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Paired records, in baseline order.
    pub rows: Vec<DiffRow>,
    /// Benchmarks present only in the baseline (treated as regressions:
    /// coverage must not silently shrink).
    pub only_in_baseline: Vec<String>,
    /// Benchmarks present only in the current report (informational).
    pub only_in_current: Vec<String>,
    /// Non-fatal observations: schema-version mismatches and record
    /// sections unknown to one side. The gate still runs on the columns
    /// both reports share, so a v3 report diffs cleanly against a v2
    /// baseline — with a warning, not a failure.
    pub warnings: Vec<String>,
}

impl DiffReport {
    /// Does anything fail the thresholds?
    pub fn has_regressions(&self) -> bool {
        !self.only_in_baseline.is_empty() || self.rows.iter().any(|r| !r.regressions.is_empty())
    }

    /// All regression messages, one line each.
    pub fn regressions(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .only_in_baseline
            .iter()
            .map(|n| format!("{n}: present in the baseline but missing from the current report"))
            .collect();
        for row in &self.rows {
            for reason in &row.regressions {
                out.push(format!("{}: {}", row.name, reason));
            }
        }
        out
    }

    /// Renders the delta table (baseline → current, one benchmark per
    /// line, a `!` marker on regressed rows).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:10} {:>8} {:>8} {:>7} | {:>6} {:>6} | {:>4} {:>4} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}\n",
            "name",
            "time_a,s",
            "time_b,s",
            "Δtime",
            "gates",
            "gates",
            "lvl",
            "lvl",
            "nodes",
            "nodes",
            "alloc",
            "alloc",
            "bytes",
            "bytes",
        ));
        for row in &self.rows {
            let (ta, tb) = row.time;
            let dt = if ta > 0.0 { format!("{:+.0}%", (tb - ta) / ta * 100.0) } else { "-".into() };
            let mark = if row.regressions.is_empty() { ' ' } else { '!' };
            out.push_str(&format!(
                "{:10} {:>8.3} {:>8.3} {:>7} | {:>6} {:>6} | {:>4} {:>4} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} {}\n",
                row.name,
                ta,
                tb,
                dt,
                row.gates.0,
                row.gates.1,
                row.levels.0,
                row.levels.1,
                row.peak_nodes.0 as u64,
                row.peak_nodes.1 as u64,
                row.nodes_allocated.0 as u64,
                row.nodes_allocated.1 as u64,
                row.peak_bytes.0 as u64,
                row.peak_bytes.1 as u64,
                mark,
            ));
        }
        for name in &self.only_in_baseline {
            out.push_str(&format!("{name:10} missing from the current report !\n"));
        }
        for name in &self.only_in_current {
            out.push_str(&format!("{name:10} new in the current report\n"));
        }
        for warning in &self.warnings {
            out.push_str(&format!("warning: {warning}\n"));
        }
        out
    }
}

/// The comparison columns of one record.
struct Cols {
    time: f64,
    gates: f64,
    levels: f64,
    peak_nodes: f64,
    nodes_allocated: f64,
    peak_bytes: f64,
}

fn num(record: &Json, section: Option<&str>, key: &str) -> f64 {
    let holder = match section {
        Some(s) => match record.get(s) {
            Some(h) => h,
            None => return 0.0,
        },
        None => record,
    };
    holder.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn cols(record: &Json) -> Cols {
    Cols {
        time: num(record, None, "time_s"),
        gates: num(record, Some("netlist"), "gates"),
        levels: num(record, Some("netlist"), "cascades"),
        peak_nodes: num(record, Some("bdd"), "peak_nodes"),
        nodes_allocated: num(record, Some("bdd"), "nodes_allocated"),
        peak_bytes: num(record, Some("mem"), "peak_bytes"),
    }
}

fn records(doc: &Json) -> Result<Vec<(String, &Json)>, String> {
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("document has no records array (not a bench report?)")?;
    records
        .iter()
        .map(|r| {
            let name = r
                .get("name")
                .and_then(Json::as_str)
                .ok_or("record without a name field")?
                .to_owned();
            Ok((name, r))
        })
        .collect()
}

/// Pairs the records of `baseline` and `current` by name and applies the
/// thresholds.
///
/// # Errors
///
/// Returns a message when either document is not a bench report (no
/// `records` array, or records without names). Schema *versions* are not
/// required to match: columns a report lacks compare as 0 and only the
/// thresholded columns can fail the gate.
pub fn diff_reports(
    baseline: &Json,
    current: &Json,
    thresholds: &Thresholds,
) -> Result<DiffReport, String> {
    let base = records(baseline)?;
    let cur = records(current)?;
    let mut report = DiffReport::default();
    let schema_of =
        |doc: &Json| doc.get("schema").and_then(Json::as_str).unwrap_or("(untagged)").to_owned();
    let (base_schema, cur_schema) = (schema_of(baseline), schema_of(current));
    if base_schema != cur_schema {
        report.warnings.push(format!(
            "schema mismatch: baseline is {base_schema}, current is {cur_schema} — \
             sections unknown to either side are ignored by the gate"
        ));
    }
    let mut only_base_keys: Vec<&str> = Vec::new();
    let mut only_cur_keys: Vec<&str> = Vec::new();
    for (name, b_rec) in &base {
        let Some((_, c_rec)) = cur.iter().find(|(n, _)| n == name) else {
            report.only_in_baseline.push(name.clone());
            continue;
        };
        for key in b_rec.keys() {
            if c_rec.get(key).is_none() && !only_base_keys.contains(&key) {
                only_base_keys.push(key);
            }
        }
        for key in c_rec.keys() {
            if b_rec.get(key).is_none() && !only_cur_keys.contains(&key) {
                only_cur_keys.push(key);
            }
        }
        let a = cols(b_rec);
        let b = cols(c_rec);
        let mut regressions = Vec::new();
        if (a.time >= thresholds.min_time_s || b.time >= thresholds.min_time_s)
            && b.time > a.time * (1.0 + thresholds.max_time_regress)
        {
            regressions.push(format!(
                "time {:.3}s → {:.3}s exceeds the +{:.0}% budget",
                a.time,
                b.time,
                thresholds.max_time_regress * 100.0
            ));
        }
        if b.gates > a.gates * (1.0 + thresholds.max_gates_regress) {
            regressions.push(format!(
                "gates {} → {} exceeds the +{:.0}% budget",
                a.gates,
                b.gates,
                thresholds.max_gates_regress * 100.0
            ));
        }
        // Baseline 0 = the counter predates the v4 schema; nothing to
        // compare against.
        if a.nodes_allocated > 0.0
            && b.nodes_allocated > a.nodes_allocated * (1.0 + thresholds.max_nodes_regress)
        {
            regressions.push(format!(
                "nodes_allocated {} → {} exceeds the +{:.0}% budget",
                a.nodes_allocated,
                b.nodes_allocated,
                thresholds.max_nodes_regress * 100.0
            ));
        }
        report.rows.push(DiffRow {
            name: name.clone(),
            time: (a.time, b.time),
            gates: (a.gates, b.gates),
            levels: (a.levels, b.levels),
            peak_nodes: (a.peak_nodes, b.peak_nodes),
            nodes_allocated: (a.nodes_allocated, b.nodes_allocated),
            peak_bytes: (a.peak_bytes, b.peak_bytes),
            regressions,
        });
    }
    for (name, _) in &cur {
        if !base.iter().any(|(n, _)| n == name) {
            report.only_in_current.push(name.clone());
        }
    }
    for key in only_base_keys {
        report.warnings.push(format!(
            "record section `{key}` appears only in the baseline — ignored by the gate"
        ));
    }
    for key in only_cur_keys {
        report.warnings.push(format!(
            "record section `{key}` appears only in the current report — ignored by the gate"
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, time: f64, gates: u64) -> Json {
        record_with_nodes(name, time, gates, 5000)
    }

    fn record_with_nodes(name: &str, time: f64, gates: u64, nodes_allocated: u64) -> Json {
        Json::obj()
            .field("name", name)
            .field("time_s", time)
            .field("netlist", Json::obj().field("gates", gates).field("cascades", 3u64))
            .field(
                "bdd",
                Json::obj().field("peak_nodes", 100u64).field("nodes_allocated", nodes_allocated),
            )
            .field("mem", Json::obj().field("peak_bytes", 4096u64))
    }

    fn doc(records: Vec<Json>) -> Json {
        Json::obj().field("schema", "bidecomp-bench/v2").field("records", Json::Arr(records))
    }

    #[test]
    fn identical_reports_are_clean() {
        let a = doc(vec![record("rd73", 0.5, 40), record("alu2", 1.0, 120)]);
        let diff = diff_reports(&a, &a, &Thresholds::default()).expect("valid docs");
        assert!(!diff.has_regressions());
        assert_eq!(diff.rows.len(), 2);
        assert!(diff.regressions().is_empty());
        let table = diff.render();
        assert!(table.contains("rd73") && table.contains("alu2"));
        assert!(!table.contains('!'), "no regression markers on clean diffs");
    }

    #[test]
    fn time_inflation_past_threshold_regresses() {
        let a = doc(vec![record("rd73", 0.5, 40)]);
        let b = doc(vec![record("rd73", 0.6, 40)]);
        let diff = diff_reports(&a, &b, &Thresholds::default()).expect("valid");
        assert!(diff.has_regressions(), "+20% time against a 10% budget");
        assert!(diff.regressions()[0].contains("time"));
        // A looser budget accepts the same delta.
        let loose = Thresholds { max_time_regress: 0.5, ..Thresholds::default() };
        assert!(!diff_reports(&a, &b, &loose).expect("valid").has_regressions());
    }

    #[test]
    fn sub_floor_times_are_ignored() {
        let a = doc(vec![record("tiny", 0.001, 5)]);
        let b = doc(vec![record("tiny", 0.004, 5)]);
        // 4× slower, but both under the 10 ms floor: noise, not signal.
        assert!(!diff_reports(&a, &b, &Thresholds::default()).expect("valid").has_regressions());
        // Crossing the floor re-arms the check.
        let b = doc(vec![record("tiny", 0.1, 5)]);
        assert!(diff_reports(&a, &b, &Thresholds::default()).expect("valid").has_regressions());
    }

    #[test]
    fn gate_growth_is_strict_by_default() {
        let a = doc(vec![record("rd73", 0.5, 40)]);
        let b = doc(vec![record("rd73", 0.5, 41)]);
        let diff = diff_reports(&a, &b, &Thresholds::default()).expect("valid");
        assert!(diff.has_regressions(), "one extra gate fails the 0% budget");
        assert!(diff.regressions()[0].contains("gates"));
        // Gate *improvements* never fail.
        let b = doc(vec![record("rd73", 0.5, 39)]);
        assert!(!diff_reports(&a, &b, &Thresholds::default()).expect("valid").has_regressions());
    }

    #[test]
    fn node_allocation_growth_past_threshold_regresses() {
        let a = doc(vec![record_with_nodes("rd73", 0.5, 40, 5000)]);
        let b = doc(vec![record_with_nodes("rd73", 0.5, 40, 6000)]);
        let diff = diff_reports(&a, &b, &Thresholds::default()).expect("valid");
        assert!(diff.has_regressions(), "+20% allocations against a 10% budget");
        assert!(diff.regressions()[0].contains("nodes_allocated"));
        assert_eq!(diff.rows[0].nodes_allocated, (5000.0, 6000.0));
        // A generous budget (the CI multi-thread gate) accepts the delta…
        let loose = Thresholds { max_nodes_regress: 5.0, ..Thresholds::default() };
        assert!(!diff_reports(&a, &b, &loose).expect("valid").has_regressions());
        // …improvements never fail…
        let better = doc(vec![record_with_nodes("rd73", 0.5, 40, 4000)]);
        assert!(!diff_reports(&a, &better, &Thresholds::default())
            .expect("valid")
            .has_regressions());
        // …and a pre-v4 baseline (counter absent or 0) skips the check.
        let zero = doc(vec![record_with_nodes("rd73", 0.5, 40, 0)]);
        assert!(!diff_reports(&zero, &b, &Thresholds::default()).expect("valid").has_regressions());
    }

    #[test]
    fn missing_benchmarks_fail_new_ones_do_not() {
        let a = doc(vec![record("rd73", 0.5, 40), record("alu2", 1.0, 120)]);
        let b = doc(vec![record("rd73", 0.5, 40), record("t481", 2.0, 30)]);
        let diff = diff_reports(&a, &b, &Thresholds::default()).expect("valid");
        assert_eq!(diff.only_in_baseline, vec!["alu2"]);
        assert_eq!(diff.only_in_current, vec!["t481"]);
        assert!(diff.has_regressions(), "lost coverage is a regression");
        assert!(diff.render().contains("missing from the current report"));
    }

    #[test]
    fn v1_reports_without_mem_compare_as_zero() {
        let strip = |mut r: Json| {
            if let Json::Obj(fields) = &mut r {
                fields.retain(|(k, _)| k != "mem");
            }
            r
        };
        let a = doc(vec![strip(record("rd73", 0.5, 40))]);
        let b = doc(vec![record("rd73", 0.5, 40)]);
        let diff = diff_reports(&a, &b, &Thresholds::default()).expect("v1 docs still diff");
        assert!(!diff.has_regressions());
        assert_eq!(diff.rows[0].peak_bytes.0, 0.0);
        assert!(diff.rows[0].peak_bytes.1 > 0.0);
    }

    #[test]
    fn newer_schemas_warn_but_still_gate() {
        // A v3 current report (extra analytics/timeseries sections)
        // against a committed v2 baseline: the unknown sections are
        // warned about, the shared columns still gate.
        let a = doc(vec![record("rd73", 0.5, 40)]);
        let mut b = Json::obj()
            .field("schema", "bidecomp-bench/v3")
            .field("obs", Json::obj().field("sink_write_errors", 0u64));
        let extended = record("rd73", 0.5, 40)
            .field("analytics", Json::obj().field("reorders", 0u64))
            .field("timeseries", Json::obj().field("samples", Json::Arr(Vec::new())));
        b = b.field("records", Json::Arr(vec![extended]));
        let diff = diff_reports(&a, &b, &Thresholds::default()).expect("valid docs");
        assert!(!diff.has_regressions(), "unknown sections must not fail the gate");
        assert!(diff.warnings.iter().any(|w| w.contains("schema mismatch")));
        assert!(diff.warnings.iter().any(|w| w.contains("`analytics`")));
        assert!(diff.warnings.iter().any(|w| w.contains("`timeseries`")));
        assert!(diff.render().contains("warning: schema mismatch"));
        // The reverse direction (old current vs new baseline) warns too.
        let diff = diff_reports(&b, &a, &Thresholds::default()).expect("valid docs");
        assert!(!diff.has_regressions());
        assert!(diff.warnings.iter().any(|w| w.contains("only in the baseline")));
        // But a real regression hiding behind the schema skew still fails.
        let b2 = doc(vec![record("rd73", 0.5, 50)]);
        let diff = diff_reports(&a, &b2, &Thresholds::default()).expect("valid docs");
        assert!(diff.has_regressions(), "gate must still fire across schema versions");
    }

    #[test]
    fn non_reports_are_rejected() {
        let junk = Json::obj().field("hello", "world");
        assert!(diff_reports(&junk, &junk, &Thresholds::default()).is_err());
    }
}
