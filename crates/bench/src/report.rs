//! Machine-readable run reports: `BENCH_bidecomp.json`.
//!
//! The `report` binary runs the benchmark suite and writes one JSON
//! document with a record per benchmark — the Table 2 columns plus the
//! telemetry the text tables do not show: per-phase wall-clock times, BDD
//! operation and GC counters, and the §7 rates (weak decomposition,
//! component reuse, inessential variables). The schema is versioned
//! ([`REPORT_SCHEMA`]) and covered by a golden test so downstream tooling
//! can diff reports across revisions.

use std::io::{self, Write};

use bidecomp::{DecompOutcome, Options};
use obs::json::Json;
use pla::Pla;

/// Schema identifier stamped on every report document.
///
/// v2 added the `percentiles` (per-output / per-BDD-op latency) and `mem`
/// (manager heap footprint) sections between `bdd` and `decomp`. v3 adds
/// per-record `analytics` (unique-table probe distribution, per-op
/// computed-cache hit rates, GC efficacy, reorder count, component-cache
/// reuse) and `timeseries` (the background resource sampler) sections,
/// plus a top-level `obs` section with the trace-sink write-error count.
/// v4 adds the per-record `threads` field (worker threads the run used)
/// and the `bdd.nodes_allocated` / `bdd.cache_evictions` counters of the
/// kernel-grade manager.
pub const REPORT_SCHEMA: &str = "bidecomp-bench/v4";

/// Runs BI-DECOMP on one benchmark (with telemetry on, so the
/// recursion-depth histogram is populated) and builds its report record.
pub fn bench_record(name: &str, pla: &Pla, options: &Options) -> Json {
    let options = Options { telemetry: true, ..*options };
    let outcome = bidecomp::decompose_pla(pla, &options);
    record_from_outcome(name, &outcome)
}

/// Builds the report record of an already-computed outcome.
pub fn record_from_outcome(name: &str, outcome: &DecompOutcome) -> Json {
    let op = outcome.op_stats;
    let d = &outcome.stats;
    let histogram: Vec<Json> = outcome.depth_histogram.iter().map(|&n| Json::from(n)).collect();
    Json::obj()
        .field("name", name)
        .field("verified", outcome.verified)
        .field("time_s", outcome.elapsed.as_secs_f64())
        .field("threads", outcome.threads)
        .field("netlist", outcome.netlist.stats().to_json())
        .field("phases", outcome.phases.to_json())
        .field(
            "bdd",
            Json::obj()
                .field("peak_nodes", outcome.bdd_nodes)
                .field("mk_calls", op.mk_calls)
                .field("unique_hits", op.unique_hits)
                .field("nodes_allocated", op.nodes_allocated())
                .field("apply_steps", op.apply_steps)
                .field("cache_lookups", op.cache_lookups)
                .field("cache_hits", op.cache_hits)
                .field("cache_hit_rate", op.cache_hit_rate())
                .field("cache_evictions", op.cache_evictions)
                .field("gc_runs", op.gc_runs)
                .field("gc_nodes_reclaimed", op.gc_nodes_reclaimed)
                .field("gc_time_s", op.gc_time.as_secs_f64()),
        )
        .field(
            "percentiles",
            Json::obj().field("output_latency", outcome.output_latency.to_json()).field(
                "op_latency",
                match &outcome.op_latency {
                    Some(h) => h.to_json(),
                    None => Json::Null,
                },
            ),
        )
        .field("mem", outcome.mem.to_json())
        .field(
            "analytics",
            match &outcome.analytics {
                Some(a) => a.to_json().field("component_cache", outcome.component_cache.to_json()),
                None => Json::Null,
            },
        )
        .field("timeseries", outcome.timeseries.to_json())
        .field(
            "decomp",
            Json::obj()
                .field("calls", d.calls)
                .field("cache_hits", d.cache_hits + d.cache_hits_complement)
                .field("terminal_cases", d.terminal_cases)
                .field("strong_or", d.strong_or)
                .field("strong_and", d.strong_and)
                .field("strong_exor", d.strong_exor)
                .field("weak", d.weak)
                .field("shannon", d.shannon)
                .field("weak_rate", d.weak_rate())
                .field("cache_hit_rate", d.cache_hit_rate())
                .field("inessential_rate", d.inessential_rate())
                .field("max_depth", outcome.depth_histogram.len())
                .field("depth_histogram", histogram),
        )
}

/// Wraps records into the versioned report document. The observability
/// health section reports zero sink write errors (no trace sink ran);
/// use [`report_document_with_obs`] to surface a real count.
pub fn report_document(records: Vec<Json>) -> Json {
    report_document_with_obs(records, 0)
}

/// Wraps records into the versioned report document, surfacing the
/// `obs.sink.write_errors` counter (dropped trace/event lines) in the
/// top-level `obs` section.
pub fn report_document_with_obs(records: Vec<Json>, sink_write_errors: u64) -> Json {
    Json::obj()
        .field("schema", REPORT_SCHEMA)
        .field("obs", Json::obj().field("sink_write_errors", sink_write_errors))
        .field("records", records)
}

/// Writes the report document as pretty-enough JSON (one record per line,
/// diff-friendly) and flushes the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_report<W: Write>(document: &Json, mut out: W) -> io::Result<()> {
    let records = document
        .get("records")
        .and_then(Json::as_arr)
        .expect("report documents carry a records array");
    let schema =
        document.get("schema").and_then(Json::as_str).expect("report documents carry a schema tag");
    writeln!(out, "{{\"schema\": {},", Json::from(schema).render())?;
    if let Some(obs) = document.get("obs") {
        writeln!(out, " \"obs\": {},", obs.render())?;
    }
    writeln!(out, " \"records\": [")?;
    for (k, record) in records.iter().enumerate() {
        let comma = if k + 1 == records.len() { "" } else { "," };
        writeln!(out, "  {}{}", record.render(), comma)?;
    }
    writeln!(out, " ]}}")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_carry_the_full_shape() {
        let pla: Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
        let record = bench_record("fig3", &pla, &Options::default());
        assert_eq!(record.get("name").and_then(Json::as_str), Some("fig3"));
        assert_eq!(record.get("verified").and_then(Json::as_bool), Some(true));
        let netlist = record.get("netlist").expect("netlist stats");
        assert_eq!(netlist.get("gates").and_then(Json::as_f64), Some(3.0));
        let bdd = record.get("bdd").expect("bdd counters");
        assert!(bdd.get("mk_calls").and_then(Json::as_f64).unwrap() > 0.0);
        // v4: thread count and the kernel counters.
        assert_eq!(record.get("threads").and_then(Json::as_f64), Some(1.0));
        let allocated = bdd.get("nodes_allocated").and_then(Json::as_f64).unwrap();
        assert!(
            allocated > 0.0 && allocated <= bdd.get("mk_calls").and_then(Json::as_f64).unwrap()
        );
        assert!(bdd.get("cache_evictions").and_then(Json::as_f64).is_some());
        let decomp = record.get("decomp").expect("decomp stats");
        assert!(decomp.get("calls").and_then(Json::as_f64).unwrap() >= 1.0);
        let histogram = decomp.get("depth_histogram").and_then(Json::as_arr).expect("histogram");
        assert!(!histogram.is_empty(), "telemetry is forced on for records");
        let pct = record.get("percentiles").expect("percentiles section");
        let out_lat = pct.get("output_latency").expect("output latency summary");
        assert_eq!(out_lat.get("count").and_then(Json::as_f64), Some(1.0), "one output");
        let op_lat = pct.get("op_latency").expect("op latency summary");
        assert!(
            op_lat.get("count").and_then(Json::as_f64).unwrap() > 0.0,
            "telemetry forces op timing on"
        );
        let mem = record.get("mem").expect("mem section");
        assert!(mem.get("peak_bytes").and_then(Json::as_f64).unwrap() > 0.0);
        // v3: analytics and timeseries ride along (telemetry is forced on
        // for records, so both are populated).
        let analytics = record.get("analytics").expect("analytics section");
        assert!(
            analytics.get("unique_table").and_then(|t| t.get("entries")).is_some(),
            "probe stats present"
        );
        assert!(analytics.get("component_cache").is_some());
        let ts = record.get("timeseries").expect("timeseries section");
        assert!(!ts.get("samples").and_then(Json::as_arr).expect("samples").is_empty());
    }

    #[test]
    fn documents_carry_the_obs_health_section() {
        let doc = report_document_with_obs(Vec::new(), 7);
        assert_eq!(
            doc.get("obs").and_then(|o| o.get("sink_write_errors")).and_then(Json::as_f64),
            Some(7.0)
        );
        let clean = report_document(Vec::new());
        assert_eq!(
            clean.get("obs").and_then(|o| o.get("sink_write_errors")).and_then(Json::as_f64),
            Some(0.0)
        );
        let mut bytes = Vec::new();
        write_report(&doc, &mut bytes).expect("in-memory write");
        let parsed = Json::parse(&String::from_utf8(bytes).expect("utf-8")).expect("parses");
        assert_eq!(
            parsed.get("obs").and_then(|o| o.get("sink_write_errors")).and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn written_documents_parse_back() {
        let pla: Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
        let doc = report_document(vec![bench_record("fig3", &pla, &Options::default())]);
        let mut bytes = Vec::new();
        write_report(&doc, &mut bytes).expect("in-memory write");
        let text = String::from_utf8(bytes).expect("utf-8");
        let parsed = Json::parse(&text).expect("writer output must parse");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(REPORT_SCHEMA));
        assert_eq!(parsed.get("records").and_then(Json::as_arr).unwrap().len(), 1);
    }
}
