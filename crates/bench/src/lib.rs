//! Shared harness for regenerating the paper's evaluation tables.
//!
//! Each binary prints one artifact:
//! * `table2` — BI-DECOMP vs. the SIS-substitute on the Table 2 suite
//!   (ins/outs/gates/exors/area/cascades/delay/time columns).
//! * `table3` — BI-DECOMP vs. the BDS-substitute on the Table 3 suite
//!   (gates/exors/time columns).
//! * `stats` — the §7 instrumentation (weak-decomposition rate, component
//!   reuse rate, inessential-variable rate) over the whole suite.
//! * `report` — the whole suite as one machine-readable JSON document
//!   (`BENCH_bidecomp.json`, see [`report`]).
//! * `diff` — compares two report documents and exits non-zero on
//!   regression (see [`diff`]): the CI perf gate.
//!
//! The benches under `benches/` time the same computations with the
//! dependency-free [`obs::bench`] harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod report;

use std::time::Instant;

use bidecomp::{DecompOutcome, Options};
use netlist::Netlist;
use pla::Pla;

/// One row of a comparison table: the §8 measurement columns.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Primary inputs.
    pub ins: usize,
    /// Primary outputs.
    pub outs: usize,
    /// Two-input gates.
    pub gates: usize,
    /// EXOR-family gates among them.
    pub exors: usize,
    /// Logic levels ("cascades").
    pub cascades: usize,
    /// Area under the paper's cost model.
    pub area: f64,
    /// Critical-path delay under the paper's cost model.
    pub delay: f64,
    /// Wall-clock seconds.
    pub time_s: f64,
    /// Did the BDD verifier accept (always true for baselines, which are
    /// correct by construction and cross-checked in their unit tests)?
    pub verified: bool,
}

impl Row {
    fn from_netlist(name: &str, nl: &Netlist, time_s: f64, verified: bool) -> Row {
        let s = nl.stats();
        Row {
            name: name.to_owned(),
            ins: s.inputs,
            outs: s.outputs,
            gates: s.gates,
            exors: s.exors,
            cascades: s.cascades,
            area: s.area,
            delay: s.delay,
            time_s,
            verified,
        }
    }
}

/// Runs BI-DECOMP on a PLA and measures the Table 2 columns.
pub fn run_bidecomp(name: &str, pla: &Pla, options: &Options) -> (Row, DecompOutcome) {
    let outcome = bidecomp::decompose_pla(pla, options);
    // Forensics must be strictly opt-in: a timed run without the flags
    // pays nothing — no trace events, no per-call costs, no analytics,
    // no resource samples.
    if !options.trace {
        assert!(outcome.trace.is_empty(), "tracing disabled but trace events were recorded");
    }
    if !options.telemetry {
        assert!(
            outcome.trace.iter().all(|e| e.cost.is_none()),
            "telemetry disabled but per-call costs were attributed"
        );
        assert!(
            outcome.analytics.is_none() && outcome.timeseries.is_empty(),
            "telemetry disabled but analytics/timeseries were collected"
        );
    }
    let row =
        Row::from_netlist(name, &outcome.netlist, outcome.elapsed.as_secs_f64(), outcome.verified);
    (row, outcome)
}

/// Runs the SIS-substitute baseline.
pub fn run_sis(name: &str, pla: &Pla) -> Row {
    let start = Instant::now();
    let nl = baseline::sis_like(pla);
    Row::from_netlist(name, &nl, start.elapsed().as_secs_f64(), true)
}

/// Runs the BDS-substitute baseline.
pub fn run_bds(name: &str, pla: &Pla) -> Row {
    let start = Instant::now();
    let nl = baseline::bds_like(pla);
    Row::from_netlist(name, &nl, start.elapsed().as_secs_f64(), true)
}

/// Formats the Table 2 header (two systems side by side).
pub fn table2_header() -> String {
    format!(
        "{:8} {:>4} {:>4} | {:>6} {:>6} {:>8} {:>5} {:>7} {:>8} | {:>6} {:>6} {:>8} {:>5} {:>7} {:>8}",
        "name", "ins", "outs", "gates", "exors", "area", "casc", "delay", "time,s",
        "gates", "exors", "area", "casc", "delay", "time,s"
    )
}

/// Formats one Table 2 row: the SIS-substitute columns, then BI-DECOMP's.
pub fn table2_row(sis: &Row, bi: &Row) -> String {
    format!(
        "{:8} {:>4} {:>4} | {:>6} {:>6} {:>8.0} {:>5} {:>7.1} {:>8.3} | {:>6} {:>6} {:>8.0} {:>5} {:>7.1} {:>8.3}",
        bi.name, bi.ins, bi.outs,
        sis.gates, sis.exors, sis.area, sis.cascades, sis.delay, sis.time_s,
        bi.gates, bi.exors, bi.area, bi.cascades, bi.delay, bi.time_s
    )
}

/// Formats the Table 3 header.
pub fn table3_header() -> String {
    format!(
        "{:8} | {:>6} {:>6} {:>8} | {:>6} {:>6} {:>8}",
        "name", "gates", "exors", "time,s", "gates", "exors", "time,s"
    )
}

/// Formats one Table 3 row: BDS-substitute columns, then BI-DECOMP's.
pub fn table3_row(bds: &Row, bi: &Row) -> String {
    format!(
        "{:8} | {:>6} {:>6} {:>8.3} | {:>6} {:>6} {:>8.3}",
        bi.name, bds.gates, bds.exors, bds.time_s, bi.gates, bi.exors, bi.time_s
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_capture_netlist_stats() {
        let b = benchmarks::by_name("rd73").expect("known");
        let (row, outcome) = run_bidecomp("rd73", &b.pla, &Options::default());
        assert!(outcome.verified && row.verified);
        assert_eq!(row.ins, 7);
        assert_eq!(row.outs, 3);
        assert!(row.gates > 0);
        assert!(row.time_s >= 0.0);
    }

    #[test]
    fn baselines_produce_rows() {
        let pla: Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
        let sis = run_sis("t", &pla);
        let bds = run_bds("t", &pla);
        assert_eq!(sis.gates, 3);
        assert_eq!(sis.exors, 0);
        assert!(bds.gates >= 3);
    }

    #[test]
    fn formatting_is_stable() {
        let pla: Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
        let sis = run_sis("t", &pla);
        let (bi, _) = run_bidecomp("t", &pla, &Options::default());
        let line = table2_row(&sis, &bi);
        assert!(line.contains('|'));
        let bds = run_bds("t", &pla);
        assert!(table3_row(&bds, &bi).starts_with('t'));
        assert!(table3_header().contains("exors"));
        assert!(table2_header().contains("casc"));
    }
}
