//! Regenerates the paper's Table 3: BI-DECOMP vs. the BDS-substitute
//! (gates / exors / time columns).

use bidecomp::Options;

fn main() {
    println!("Table 3: comparison with the BDS-substitute (left: BDS-like, right: BI-DECOMP)");
    println!("{}", bench::table3_header());
    let mut wins = 0;
    let suite = benchmarks::table3();
    for b in &suite {
        let bds = bench::run_bds(b.name, &b.pla);
        let (bi, outcome) = bench::run_bidecomp(b.name, &b.pla, &Options::default());
        assert!(outcome.verified, "{}: verification failed", b.name);
        println!("{}", bench::table3_row(&bds, &bi));
        if bi.gates <= bds.gates {
            wins += 1;
        }
    }
    println!();
    println!(
        "BI-DECOMP matches or beats the weak-only baseline in gate count on {wins}/{} benchmarks",
        suite.len()
    );
}
