//! Writes the reproduction artifacts to disk: every benchmark's PLA, its
//! decomposed BLIF netlist, a Graphviz rendering, and the generated test
//! patterns — the §8 output flow ("write the results into a BLIF file")
//! plus the §9 ATPG integration.
//!
//! Usage: `cargo run --release -p bench --bin emit -- [out_dir]`
//! (default `artifacts/`). Heavyweights get netlists but no ATPG.

use std::fs;
use std::path::PathBuf;

use bidecomp::Options;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = std::env::args().nth(1).unwrap_or_else(|| "artifacts".to_owned()).into();
    fs::create_dir_all(&dir)?;
    for b in benchmarks::all() {
        let outcome = bidecomp::decompose_pla(&b.pla, &Options::default());
        assert!(outcome.verified, "{}: verification failed", b.name);
        fs::write(dir.join(format!("{}.pla", b.name)), b.pla.to_string())?;
        fs::write(dir.join(format!("{}.blif", b.name)), outcome.netlist.to_blif(b.name))?;
        fs::write(dir.join(format!("{}.dot", b.name)), outcome.netlist.to_dot(b.name))?;
        let gates = outcome.netlist.stats().gates;
        // ATPG for the small-to-medium circuits only (exact engine).
        let tests_note = if gates <= 150 {
            let report = atpg::generate_tests(&outcome.netlist);
            let mut text = String::new();
            for t in &report.tests {
                for &bit in t {
                    text.push(if bit { '1' } else { '0' });
                }
                text.push('\n');
            }
            fs::write(dir.join(format!("{}.tests", b.name)), text)?;
            format!("{} tests, {} redundant", report.tests.len(), report.redundant)
        } else {
            "atpg skipped (large)".to_owned()
        };
        println!("{:8} -> pla/blif/dot ({} gates; {})", b.name, gates, tests_note);
    }
    println!("artifacts written to {}", dir.display());
    Ok(())
}
