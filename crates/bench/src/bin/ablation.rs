//! Quality ablation of the design decisions §5–§6 call out: what each
//! mechanism buys in gates, EXORs, levels and area.
//!
//! Rows: benchmark × configuration. The `default` row is the paper's
//! configuration; each other row disables exactly one mechanism.

use bidecomp::Options;

fn variants() -> Vec<(&'static str, Options)> {
    vec![
        ("default", Options::default()),
        ("no_exor", Options { use_exor: false, ..Options::default() }),
        ("no_cache", Options { use_cache: false, ..Options::default() }),
        ("weak_only", Options::weak_only()),
        ("no_freq_order", Options { order_by_frequency: false, ..Options::default() }),
        ("no_inessential", Options { remove_inessential: false, ..Options::default() }),
    ]
}

fn main() {
    println!(
        "{:8} {:14} {:>6} {:>6} {:>5} {:>8} {:>7} {:>8} {:>8}",
        "bench", "variant", "gates", "exors", "casc", "area", "calls", "cache%", "time,s"
    );
    for name in ["9sym", "rd84", "alu2", "t481", "5xp1", "misex3"] {
        let b = benchmarks::by_name(name).expect("known benchmark");
        for (variant, options) in variants() {
            let (row, outcome) = bench::run_bidecomp(name, &b.pla, &options);
            assert!(outcome.verified, "{name}/{variant}");
            println!(
                "{:8} {:14} {:>6} {:>6} {:>5} {:>8.0} {:>7} {:>7.1}% {:>8.3}",
                name,
                variant,
                row.gates,
                row.exors,
                row.cascades,
                row.area,
                outcome.stats.calls,
                100.0 * outcome.stats.cache_hit_rate(),
                row.time_s
            );
        }
        println!();
    }
}
