//! Runs the benchmark suite and writes `BENCH_bidecomp.json`: one record
//! per benchmark with the Table 2 columns, per-phase times, BDD op/GC
//! counters, latency percentiles, memory footprint and the §7 rates.
//!
//! Usage: `report [--small] [OUTPUT]` (default `BENCH_bidecomp.json`).
//! `--small` runs the quick subset (`benchmarks::small()`) — the set the
//! CI perf gate regenerates on every push.

use std::fs::File;
use std::io::BufWriter;

use bench::report::{bench_record, report_document, write_report};
use bidecomp::Options;
use obs::json::Json;

fn main() {
    let mut small = false;
    let mut path = "BENCH_bidecomp.json".to_owned();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--small" => small = true,
            other if !other.starts_with('-') => path = other.to_owned(),
            _ => {
                eprintln!("usage: report [--small] [OUTPUT]");
                std::process::exit(2);
            }
        }
    }
    let suite = if small { benchmarks::small() } else { benchmarks::all() };
    let options = Options::default();
    let mut records = Vec::new();
    for b in suite {
        let record = bench_record(b.name, &b.pla, &options);
        let gates = record
            .get("netlist")
            .and_then(|n| n.get("gates"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let time = record.get("time_s").and_then(Json::as_f64).unwrap_or(0.0);
        println!("{:8} {:>6} gates {:>8.3}s", b.name, gates as u64, time);
        records.push(record);
    }
    let document = report_document(records);
    let file = File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    write_report(&document, BufWriter::new(file))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
