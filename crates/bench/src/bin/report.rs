//! Runs the benchmark suite and writes `BENCH_bidecomp.json`: one record
//! per benchmark with the Table 2 columns, per-phase times, BDD op/GC
//! counters, latency percentiles, memory footprint, cache/GC analytics,
//! the resource time series and the §7 rates. Each benchmark is also run
//! past the doctor; findings are echoed to stderr so a slow report run
//! explains itself.
//!
//! Usage: `report [--small] [--threads N] [OUTPUT]` (default
//! `BENCH_bidecomp.json`). `--small` runs the quick subset
//! (`benchmarks::small()`) — the set the CI perf gate regenerates on every
//! push. `--threads N` decomposes outputs on `N` worker threads (the
//! netlist is byte-identical at any thread count; the `threads` field of
//! each record says what ran).

use std::fs::File;
use std::io::BufWriter;

use bench::report::{record_from_outcome, report_document, write_report};
use bidecomp::doctor::{diagnose, DoctorConfig};
use bidecomp::Options;
use obs::json::Json;

fn main() {
    let mut small = false;
    let mut threads = 1usize;
    let mut path = "BENCH_bidecomp.json".to_owned();
    let usage = || -> ! {
        eprintln!("usage: report [--small] [--threads N] [OUTPUT]");
        std::process::exit(2);
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--threads" => match it.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) if n >= 1 => threads = n,
                _ => usage(),
            },
            other if !other.starts_with('-') => path = other.to_owned(),
            _ => usage(),
        }
    }
    let suite = if small { benchmarks::small() } else { benchmarks::all() };
    let options = Options { threads, ..Options::default() };
    let doctor_cfg = DoctorConfig::default();
    let mut records = Vec::new();
    for b in suite {
        // Telemetry on, as bench_record does: records carry the depth
        // histogram, analytics and time series.
        let telemetry_options = Options { telemetry: true, ..options };
        let outcome = bidecomp::decompose_pla(&b.pla, &telemetry_options);
        let record = record_from_outcome(b.name, &outcome);
        for finding in &diagnose(&outcome, &doctor_cfg).findings {
            eprintln!(
                "{}: [{}] {}: {}",
                b.name,
                finding.severity.name(),
                finding.kind,
                finding.message
            );
        }
        let gates = record
            .get("netlist")
            .and_then(|n| n.get("gates"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let time = record.get("time_s").and_then(Json::as_f64).unwrap_or(0.0);
        println!("{:8} {:>6} gates {:>8.3}s", b.name, gates as u64, time);
        records.push(record);
    }
    let document = report_document(records);
    let file = File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    write_report(&document, BufWriter::new(file))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
