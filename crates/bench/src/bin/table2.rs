//! Regenerates the paper's Table 2: BI-DECOMP vs. the SIS-substitute over
//! the MCNC suite, with the paper's measurement columns.

use bidecomp::Options;

fn main() {
    println!("Table 2: comparison with the SIS-substitute (left: SIS-like, right: BI-DECOMP)");
    println!("{}", bench::table2_header());
    let mut sis_area_total = 0.0;
    let mut bi_area_total = 0.0;
    let mut sis_delay_total = 0.0;
    let mut bi_delay_total = 0.0;
    let mut wins_area = 0;
    let mut wins_delay = 0;
    let suite = benchmarks::table2();
    for b in &suite {
        let sis = bench::run_sis(b.name, &b.pla);
        let (bi, outcome) = bench::run_bidecomp(b.name, &b.pla, &Options::default());
        assert!(outcome.verified, "{}: verification failed", b.name);
        println!("{}", bench::table2_row(&sis, &bi));
        sis_area_total += sis.area;
        bi_area_total += bi.area;
        sis_delay_total += sis.delay;
        bi_delay_total += bi.delay;
        if bi.area <= sis.area {
            wins_area += 1;
        }
        if bi.delay <= sis.delay {
            wins_delay += 1;
        }
    }
    println!();
    println!(
        "totals: area {:.0} (SIS-like) vs {:.0} (BI-DECOMP), ratio {:.2}x",
        sis_area_total,
        bi_area_total,
        sis_area_total / bi_area_total
    );
    println!(
        "        delay {:.1} vs {:.1}, ratio {:.2}x; BI-DECOMP wins area on {}/{} and delay on {}/{}",
        sis_delay_total,
        bi_delay_total,
        sis_delay_total / bi_delay_total,
        wins_area,
        suite.len(),
        wins_delay,
        suite.len()
    );
}
