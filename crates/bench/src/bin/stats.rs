//! Reproduces the §7 instrumentation claims: the rates of weak
//! decompositions, component reuse (cache hits) and inessential variables
//! across the benchmark suite.
//!
//! Usage: `stats [--trace-out FILE]` — with `--trace-out`, every
//! benchmark's decomposition trace is streamed to `FILE` as JSONL (one
//! `benchmark` marker point per benchmark, then one `trace` point per
//! recursive call).

use std::fs::File;
use std::io::{BufWriter, Write as _};

use bidecomp::{Options, Stats};
use obs::json::Json;
use obs::report::{pct, pct2};
use obs::{Event, JsonlSink, Sink as _};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--trace-out" => Some(path.clone()),
        _ => {
            eprintln!("usage: stats [--trace-out FILE]");
            std::process::exit(2);
        }
    };
    let mut trace_sink = trace_out.as_ref().map(|path| {
        let file = File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        JsonlSink::new(BufWriter::new(file))
    });
    let options = Options { trace: trace_out.is_some(), ..Options::default() };

    println!("Per-benchmark decomposition statistics (paper §7):");
    println!(
        "{:8} {:>7} {:>9} {:>9} {:>11} {:>12}",
        "name", "calls", "weak%", "cache%", "inessent.%", "shannon"
    );
    let mut merged = Stats::default();
    for b in benchmarks::all() {
        let (_, outcome) = bench::run_bidecomp(b.name, &b.pla, &options);
        let s = outcome.stats;
        println!(
            "{:8} {:>7} {:>9} {:>9} {:>11} {:>12}",
            b.name,
            s.calls,
            pct(s.weak_rate()),
            pct(s.cache_hit_rate()),
            pct2(s.inessential_rate()),
            s.shannon
        );
        merged.merge(&s);
        if let Some(sink) = &mut trace_sink {
            sink.accept(&Event::Point {
                name: "benchmark".to_owned(),
                fields: Json::obj().field("name", b.name),
            });
            for event in &outcome.trace {
                sink.accept(&event.to_point());
            }
        }
    }
    if let Some(sink) = trace_sink {
        let path = trace_out.expect("set together with the sink");
        sink.into_inner().flush().unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("trace written to {path}");
    }
    println!();
    println!("Suite totals:\n{merged}");
    println!();
    println!("Paper's claims: weak in 20-30% of calls; up to 20% component reuse;");
    println!("inessential variables in <1% of calls.");
}
