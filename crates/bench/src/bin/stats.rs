//! Reproduces the §7 instrumentation claims: the rates of weak
//! decompositions, component reuse (cache hits) and inessential variables
//! across the benchmark suite.

use bidecomp::{Options, Stats};

fn main() {
    println!("Per-benchmark decomposition statistics (paper §7):");
    println!(
        "{:8} {:>7} {:>9} {:>9} {:>11} {:>12}",
        "name", "calls", "weak%", "cache%", "inessent.%", "shannon"
    );
    let mut merged = Stats::default();
    for b in benchmarks::all() {
        let (_, outcome) = bench::run_bidecomp(b.name, &b.pla, &Options::default());
        let s = outcome.stats;
        println!(
            "{:8} {:>7} {:>8.1}% {:>8.1}% {:>10.2}% {:>12}",
            b.name,
            s.calls,
            100.0 * s.weak_rate(),
            100.0 * s.cache_hit_rate(),
            100.0 * s.inessential_rate(),
            s.shannon
        );
        merged.merge(&s);
    }
    println!();
    println!("Suite totals:\n{merged}");
    println!();
    println!("Paper's claims: weak in 20-30% of calls; up to 20% component reuse;");
    println!("inessential variables in <1% of calls.");
}
