//! Reproduces the §7 instrumentation claims: the rates of weak
//! decompositions, component reuse (cache hits) and inessential variables
//! across the benchmark suite.
//!
//! Usage: `stats [--trace-out FILE] [--chrome-trace FILE] [--flame FILE]
//! [--doctor FILE] [--tree-dot FILE] [--timeseries-out FILE] [--small]
//! [--threads N] [--pla FILE]`
//!
//! * `--trace-out` streams every benchmark's decomposition trace to
//!   `FILE` as JSONL (one `benchmark` marker point per benchmark, then
//!   one `trace` point per recursive call).
//! * `--chrome-trace` writes the run's span tree as Chrome `trace_event`
//!   JSON — load it in `chrome://tracing` or Perfetto.
//! * `--flame` writes the span tree as collapsed stacks for
//!   `flamegraph.pl` / speedscope.
//! * `--doctor` runs the anomaly detectors over every benchmark and
//!   writes one `bidecomp-doctor/v1` findings document; the process
//!   exits 1 when any finding has `error` severity (the CI gate).
//! * `--tree-dot` writes every benchmark's cost-annotated decomposition
//!   tree as Graphviz DOT (one cluster per benchmark).
//! * `--timeseries-out` writes the background resource sampler's series
//!   (nodes, table/cache/slab bytes, op rate) as JSON.
//! * `--small` runs the quick subset (`benchmarks::small()`).
//! * `--threads` decomposes outputs on `N` worker threads (netlists are
//!   byte-identical at any thread count).
//! * `--pla` runs a single PLA file instead of the built-in suite.

use std::fs::File;
use std::io::{BufWriter, Write as _};

use bidecomp::doctor::{diagnose, DoctorConfig, DOCTOR_SCHEMA};
use bidecomp::trace::tree::{render_dot_clusters, DecompTree};
use bidecomp::{Options, Stats};
use obs::json::Json;
use obs::profile::{Profile, ProfileSink};
use obs::report::{pct, pct2};
use obs::{Event, JsonlSink, Recorder, Sink as _};
use pla::Pla;

#[derive(Default)]
struct Args {
    trace_out: Option<String>,
    chrome_trace: Option<String>,
    flame: Option<String>,
    doctor: Option<String>,
    tree_dot: Option<String>,
    timeseries_out: Option<String>,
    small: bool,
    threads: usize,
    pla: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: stats [--trace-out FILE] [--chrome-trace FILE] [--flame FILE] \
         [--doctor FILE] [--tree-dot FILE] [--timeseries-out FILE] [--small] \
         [--threads N] [--pla FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args { threads: 1, ..Args::default() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let slot = match flag.as_str() {
            "--trace-out" => &mut args.trace_out,
            "--chrome-trace" => &mut args.chrome_trace,
            "--flame" => &mut args.flame,
            "--doctor" => &mut args.doctor,
            "--tree-dot" => &mut args.tree_dot,
            "--timeseries-out" => &mut args.timeseries_out,
            "--small" => {
                args.small = true;
                continue;
            }
            "--threads" => {
                match it.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => args.threads = n,
                    _ => usage(),
                }
                continue;
            }
            "--pla" => &mut args.pla,
            _ => usage(),
        };
        match it.next() {
            Some(value) => *slot = Some(value),
            None => usage(),
        }
    }
    args
}

fn write_file(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn main() {
    let args = parse_args();
    let mut trace_sink = args.trace_out.as_ref().map(|path| {
        let file = File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        JsonlSink::new(BufWriter::new(file))
    });
    let sink_errors = trace_sink.as_ref().map(|sink| sink.write_errors());
    // The forensics outputs need the trace (tree, doctor's grouping
    // detector) and telemetry (costs, analytics, the resource sampler).
    let forensics =
        args.doctor.is_some() || args.tree_dot.is_some() || args.timeseries_out.is_some();
    let options = Options {
        trace: args.trace_out.is_some() || forensics,
        telemetry: forensics,
        threads: args.threads,
        ..Options::default()
    };

    // The profile exporters share one recorder: each benchmark contributes
    // one `decompose_pla` root to the span forest.
    let profiling = args.chrome_trace.is_some() || args.flame.is_some();
    let profile_sink = profiling.then(ProfileSink::new);
    let recorder = profile_sink.as_ref().map(|sink| {
        let rec = Recorder::new();
        rec.add_sink(Box::new(sink.clone()));
        rec
    });

    let suite: Vec<(String, Pla)> = match &args.pla {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let pla: Pla = text.parse().unwrap_or_else(|e| panic!("{path}: {e}"));
            let name = std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
            vec![(name, pla)]
        }
        None if args.small => {
            benchmarks::small().into_iter().map(|b| (b.name.to_owned(), b.pla)).collect()
        }
        None => benchmarks::all().into_iter().map(|b| (b.name.to_owned(), b.pla)).collect(),
    };

    println!("Per-benchmark decomposition statistics (paper §7):");
    println!(
        "{:8} {:>7} {:>9} {:>9} {:>11} {:>12}",
        "name", "calls", "weak%", "cache%", "inessent.%", "shannon"
    );
    let mut merged = Stats::default();
    let doctor_cfg = DoctorConfig::default();
    let mut doctor_records: Vec<Json> = Vec::new();
    let mut doctor_errors = 0usize;
    let mut trees: Vec<(String, DecompTree)> = Vec::new();
    let mut series: Vec<Json> = Vec::new();
    for (name, pla) in &suite {
        let outcome = bidecomp::decompose_pla_with_recorder(pla, &options, recorder.clone());
        let s = outcome.stats;
        println!(
            "{:8} {:>7} {:>9} {:>9} {:>11} {:>12}",
            name,
            s.calls,
            pct(s.weak_rate()),
            pct(s.cache_hit_rate()),
            pct2(s.inessential_rate()),
            s.shannon
        );
        merged.merge(&s);
        if let Some(sink) = &mut trace_sink {
            sink.accept(&Event::Point {
                name: "benchmark".to_owned(),
                fields: Json::obj().field("name", name.as_str()),
            });
            for event in &outcome.trace {
                sink.accept(&event.to_point());
            }
        }
        if args.doctor.is_some() {
            let report = diagnose(&outcome, &doctor_cfg);
            for finding in &report.findings {
                eprintln!(
                    "{name}: [{}] {}: {}",
                    finding.severity.name(),
                    finding.kind,
                    finding.message
                );
            }
            doctor_errors += report.counts().2;
            doctor_records
                .push(Json::obj().field("name", name.as_str()).field("report", report.to_json()));
        }
        if args.tree_dot.is_some() {
            trees.push((name.clone(), DecompTree::from_trace(&outcome.trace)));
        }
        if args.timeseries_out.is_some() {
            series.push(
                Json::obj()
                    .field("name", name.as_str())
                    .field("timeseries", outcome.timeseries.to_json()),
            );
        }
    }
    if let Some(sink) = trace_sink {
        let path = args.trace_out.expect("set together with the sink");
        sink.into_inner().flush().unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        let errors = sink_errors.map_or(0, |e| e.get());
        if errors > 0 {
            eprintln!("warning: {errors} trace line(s) were lost to sink write errors ({path})");
        }
        eprintln!("trace written to {path}");
    }
    if let Some(sink) = &profile_sink {
        let profile = Profile::from_events(&sink.events());
        if let Some(path) = &args.chrome_trace {
            write_file(path, &profile.chrome_trace().render());
        }
        if let Some(path) = &args.flame {
            write_file(path, &profile.collapsed_stacks());
        }
    }
    if let Some(path) = &args.doctor {
        let document = Json::obj()
            .field("schema", DOCTOR_SCHEMA)
            .field("benchmarks", Json::Arr(doctor_records));
        write_file(path, &document.render());
    }
    if let Some(path) = &args.tree_dot {
        write_file(path, &render_dot_clusters(&trees, true));
    }
    if let Some(path) = &args.timeseries_out {
        let document = Json::obj()
            .field("schema", "bidecomp-timeseries/v1")
            .field("benchmarks", Json::Arr(series));
        write_file(path, &document.render());
    }
    println!();
    println!("Suite totals:\n{merged}");
    println!();
    println!("Paper's claims: weak in 20-30% of calls; up to 20% component reuse;");
    println!("inessential variables in <1% of calls.");
    if doctor_errors > 0 {
        eprintln!("doctor: {doctor_errors} error-severity finding(s) — failing");
        std::process::exit(1);
    }
}
