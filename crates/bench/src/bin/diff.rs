//! Compares two `BENCH_bidecomp.json` reports and exits non-zero on
//! regression — the CI perf gate.
//!
//! Usage: `diff BASELINE CURRENT [--max-time-regress PCT]
//! [--max-gates-regress PCT] [--max-nodes-regress PCT] [--min-time-ms MS]`
//!
//! Thresholds are percentages (`--max-time-regress 10` allows +10%
//! time). Benchmarks faster than `--min-time-ms` in both reports skip the
//! time check (clock noise). Defaults: 10% time, 0% gates, 10% node
//! allocations, 10 ms floor.
//!
//! Exit codes: 0 clean, 1 regression, 2 usage or unreadable input.

use bench::diff::{diff_reports, Thresholds};
use obs::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: diff BASELINE CURRENT [--max-time-regress PCT] \
         [--max-gates-regress PCT] [--max-nodes-regress PCT] [--min-time-ms MS]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut thresholds = Thresholds::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let parse_pct = |it: &mut dyn Iterator<Item = String>| -> f64 {
            match it.next().as_deref().map(str::parse::<f64>) {
                Some(Ok(v)) if v >= 0.0 => v,
                _ => usage(),
            }
        };
        match arg.as_str() {
            "--max-time-regress" => thresholds.max_time_regress = parse_pct(&mut it) / 100.0,
            "--max-gates-regress" => thresholds.max_gates_regress = parse_pct(&mut it) / 100.0,
            "--max-nodes-regress" => thresholds.max_nodes_regress = parse_pct(&mut it) / 100.0,
            "--min-time-ms" => thresholds.min_time_s = parse_pct(&mut it) / 1000.0,
            other if !other.starts_with('-') => positional.push(other.to_owned()),
            _ => usage(),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else { usage() };

    let baseline = load(baseline_path);
    let current = load(current_path);
    let diff = diff_reports(&baseline, &current, &thresholds).unwrap_or_else(|e| {
        eprintln!("cannot diff: {e}");
        std::process::exit(2);
    });
    println!("{baseline_path} → {current_path}");
    print!("{}", diff.render());
    for warning in &diff.warnings {
        eprintln!("warning: {warning}");
    }
    if diff.has_regressions() {
        eprintln!();
        for line in diff.regressions() {
            eprintln!("REGRESSION {line}");
        }
        std::process::exit(1);
    }
    println!("no regressions");
}
