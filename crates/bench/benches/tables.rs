//! Regenerates the measurements behind Tables 2 and 3 under Criterion
//! timing: one benchmark id per (table, circuit, system) triple.

use bidecomp::Options;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    // The quick half of the suite; the heavyweights (16sym8, cps) are
    // covered by the `table2` binary, which runs them once.
    for name in ["9sym", "alu2", "duke2", "e64", "misex3", "pdc", "spla", "vg2"] {
        let b = benchmarks::by_name(name).expect("known");
        group.bench_with_input(BenchmarkId::new("bidecomp", name), &b.pla, |bch, pla| {
            bch.iter(|| black_box(bidecomp::decompose_pla(pla, &Options::default()).netlist.stats().area))
        });
        group.bench_with_input(BenchmarkId::new("sis_like", name), &b.pla, |bch, pla| {
            bch.iter(|| black_box(baseline::sis_like(pla).stats().area))
        });
    }
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for name in ["5xp1", "9sym", "alu2", "cordic", "rd84", "t481"] {
        let b = benchmarks::by_name(name).expect("known");
        group.bench_with_input(BenchmarkId::new("bidecomp", name), &b.pla, |bch, pla| {
            bch.iter(|| black_box(bidecomp::decompose_pla(pla, &Options::default()).netlist.stats().gates))
        });
        group.bench_with_input(BenchmarkId::new("bds_like", name), &b.pla, |bch, pla| {
            bch.iter(|| black_box(baseline::bds_like(pla).stats().gates))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_table2, bench_table3
}
criterion_main!(benches);
