//! Regenerates the measurements behind Tables 2 and 3 under harness
//! timing: one benchmark id per (table, circuit, system) triple.

use bidecomp::Options;
use obs::bench::Harness;
use std::hint::black_box;

fn bench_table2() {
    let mut h = Harness::new("table2").samples(10).warmup(1);
    // The quick half of the suite; the heavyweights (16sym8, cps) are
    // covered by the `table2` binary, which runs them once.
    for name in ["9sym", "alu2", "duke2", "e64", "misex3", "pdc", "spla", "vg2"] {
        let b = benchmarks::by_name(name).expect("known");
        h.bench(&format!("bidecomp/{name}"), || {
            black_box(bidecomp::decompose_pla(&b.pla, &Options::default()).netlist.stats().area)
        });
        h.bench(&format!("sis_like/{name}"), || black_box(baseline::sis_like(&b.pla).stats().area));
    }
}

fn bench_table3() {
    let mut h = Harness::new("table3").samples(10).warmup(1);
    for name in ["5xp1", "9sym", "alu2", "cordic", "rd84", "t481"] {
        let b = benchmarks::by_name(name).expect("known");
        h.bench(&format!("bidecomp/{name}"), || {
            black_box(bidecomp::decompose_pla(&b.pla, &Options::default()).netlist.stats().gates)
        });
        h.bench(&format!("bds_like/{name}"), || {
            black_box(baseline::bds_like(&b.pla).stats().gates)
        });
    }
}

fn main() {
    bench_table2();
    bench_table3();
}
