//! End-to-end decomposition benchmarks on representative workloads.

use bidecomp::Options;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    group.sample_size(10);
    for name in ["9sym", "rd84", "alu2", "t481", "5xp1"] {
        let b = benchmarks::by_name(name).expect("known benchmark");
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let outcome = bidecomp::decompose_pla(black_box(&b.pla), &Options::default());
                assert!(outcome.verified);
                black_box(outcome.netlist.stats().gates)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_decompose
}
criterion_main!(benches);
