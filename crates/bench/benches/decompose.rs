//! End-to-end decomposition benchmarks on representative workloads.

use bidecomp::Options;
use obs::bench::Harness;
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("decompose").samples(10).warmup(1);
    for name in ["9sym", "rd84", "alu2", "t481", "5xp1"] {
        let b = benchmarks::by_name(name).expect("known benchmark");
        h.bench(name, || {
            let outcome = bidecomp::decompose_pla(black_box(&b.pla), &Options::default());
            assert!(outcome.verified);
            black_box(outcome.netlist.stats().gates)
        });
    }
}
