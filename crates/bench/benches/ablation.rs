//! Ablation of the design choices the paper calls out: EXOR gates (§3.2),
//! the component-reuse cache (§6), strong vs. weak-only decomposition
//! (§8's BDS analysis), and the static variable-ordering heuristic.

use bidecomp::Options;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn variants() -> Vec<(&'static str, Options)> {
    vec![
        ("default", Options::default()),
        ("no_exor", Options { use_exor: false, ..Options::default() }),
        ("no_cache", Options { use_cache: false, ..Options::default() }),
        ("weak_only", Options::weak_only()),
        ("no_freq_order", Options { order_by_frequency: false, ..Options::default() }),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for name in ["9sym", "rd84", "alu2"] {
        let b = benchmarks::by_name(name).expect("known");
        for (variant, options) in variants() {
            group.bench_with_input(
                BenchmarkId::new(variant, name),
                &(b.pla.clone(), options),
                |bch, (pla, options)| {
                    bch.iter(|| {
                        let outcome = bidecomp::decompose_pla(pla, options);
                        assert!(outcome.verified);
                        black_box((outcome.netlist.stats().gates, outcome.stats.calls))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ablation
}
criterion_main!(benches);
