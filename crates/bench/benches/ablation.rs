//! Ablation of the design choices the paper calls out: EXOR gates (§3.2),
//! the component-reuse cache (§6), strong vs. weak-only decomposition
//! (§8's BDS analysis), and the static variable-ordering heuristic.

use bidecomp::Options;
use obs::bench::Harness;
use std::hint::black_box;

fn variants() -> Vec<(&'static str, Options)> {
    vec![
        ("default", Options::default()),
        ("no_exor", Options { use_exor: false, ..Options::default() }),
        ("no_cache", Options { use_cache: false, ..Options::default() }),
        ("weak_only", Options::weak_only()),
        ("no_freq_order", Options { order_by_frequency: false, ..Options::default() }),
    ]
}

fn main() {
    let mut h = Harness::new("ablation").samples(10).warmup(1);
    for name in ["9sym", "rd84", "alu2"] {
        let b = benchmarks::by_name(name).expect("known");
        for (variant, options) in variants() {
            h.bench(&format!("{variant}/{name}"), || {
                let outcome = bidecomp::decompose_pla(&b.pla, &options);
                assert!(outcome.verified);
                black_box((outcome.netlist.stats().gates, outcome.stats.calls))
            });
        }
    }
}
