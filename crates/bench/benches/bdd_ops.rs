//! Microbenchmarks of the BDD substrate: the operators the decomposition
//! formulas lean on (apply, quantification, derivation of component ISFs).

use bdd::{Bdd, Func, VarSet};
use obs::bench::Harness;
use std::hint::black_box;

fn sym9_bdd(mgr: &mut Bdd) -> Func {
    // 9sym built arithmetically: ones-count in 3..=6 via a chain of adders
    // is overkill; build from minterms of the symmetric structure instead.
    let mut f = Func::ZERO;
    for m in 0..1u32 << 9 {
        let c = m.count_ones();
        if (3..=6).contains(&c) {
            let mut cube = Func::ONE;
            for v in 0..9 {
                let lit = mgr.literal(v, m & (1 << v) != 0);
                cube = mgr.and(cube, lit);
            }
            f = mgr.or(f, cube);
        }
    }
    f
}

fn main() {
    let mut h = Harness::new("bdd").samples(20).warmup(3);

    {
        let mut mgr = Bdd::new(9);
        let f = sym9_bdd(&mut mgr);
        let g = mgr.not(f);
        h.bench("and_or_xor_sym9", || {
            mgr.clear_computed_cache();
            let x = mgr.and(black_box(f), black_box(g));
            let y = mgr.or(f, g);
            let z = mgr.xor(f, g);
            black_box((x, y, z))
        });
    }

    {
        let mut mgr = Bdd::new(9);
        let f = sym9_bdd(&mut mgr);
        let cube = mgr.cube(&VarSet::from_iter([0u32, 2, 4, 6]));
        h.bench("exists_forall_sym9", || {
            mgr.clear_computed_cache();
            let e = mgr.exists(black_box(f), cube);
            let a = mgr.forall(f, cube);
            black_box((e, a))
        });
    }

    {
        // The Theorem 1 check on a decomposable structure.
        let mut mgr = Bdd::new(16);
        let mut f = Func::ZERO;
        for i in 0..4 {
            let mut t = Func::ONE;
            for v in 4 * i..4 * i + 4 {
                let x = mgr.var(v);
                t = mgr.and(t, x);
            }
            f = mgr.or(f, t);
        }
        let r = mgr.not(f);
        let ca = mgr.cube(&VarSet::from_iter(0u32..8));
        let cb = mgr.cube(&VarSet::from_iter(8u32..16));
        h.bench("theorem1_check", || {
            mgr.clear_computed_cache();
            let ra = mgr.exists(black_box(r), ca);
            let rb = mgr.exists(r, cb);
            let t = mgr.and(ra, rb);
            black_box(mgr.disjoint(f, t))
        });
    }
}
