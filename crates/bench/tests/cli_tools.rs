//! Integration tests driving the compiled `stats` and `diff` binaries —
//! the acceptance checks for the profiling exporters and the perf gate.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use obs::json::Json;

/// A scratch directory unique to this test process, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("bidecomp-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const SAMPLE_PLA: &str = "\
.i 4
.o 2
.ob f g
11-- 11
--11 10
---1 01
.e
";

#[test]
fn stats_chrome_trace_and_flame_match_the_span_tree() {
    let scratch = Scratch::new("stats");
    let pla_path = scratch.path("sample.pla");
    fs::write(&pla_path, SAMPLE_PLA).expect("write pla");
    let trace_path = scratch.path("out.trace.json");
    let flame_path = scratch.path("out.folded");

    let output = Command::new(env!("CARGO_BIN_EXE_stats"))
        .arg("--pla")
        .arg(&pla_path)
        .arg("--chrome-trace")
        .arg(&trace_path)
        .arg("--flame")
        .arg(&flame_path)
        .output()
        .expect("stats runs");
    assert!(output.status.success(), "stats failed: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("sample"), "the PLA's file stem names the run: {stdout}");

    // The Chrome trace must be a valid trace_event array mirroring the
    // driver's span tree.
    let text = fs::read_to_string(&trace_path).expect("trace written");
    let trace = Json::parse(&text).expect("trace is valid JSON");
    let events = trace.as_arr().expect("trace_event array form");
    assert!(!events.is_empty());
    let mut names = Vec::new();
    for e in events {
        let name = e.get("name").and_then(Json::as_str).expect("name");
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(matches!(ph, "X" | "i"), "only complete and instant events, got {ph}");
        assert!(e.get("ts").and_then(Json::as_f64).expect("ts") >= 0.0);
        if ph == "X" {
            assert!(e.get("dur").and_then(Json::as_f64).expect("dur") >= 0.0);
            names.push(name.to_owned());
        }
        assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(e.get("tid").and_then(Json::as_f64), Some(1.0));
    }
    for expected in
        ["decompose_pla", "order", "bdd_build", "decompose", "output.f", "output.g", "verify"]
    {
        assert!(names.contains(&expected.to_owned()), "span {expected} missing from {names:?}");
    }
    // The root span comes first and spans the whole array's time range.
    assert_eq!(events[0].get("name").and_then(Json::as_str), Some("decompose_pla"));

    // The collapsed stacks mirror the same tree, rooted at decompose_pla.
    let folded = fs::read_to_string(&flame_path).expect("flame written");
    assert!(folded.lines().count() >= 5, "one line per distinct stack: {folded}");
    for line in folded.lines() {
        assert!(line.starts_with("decompose_pla"), "all stacks share the root: {line}");
        let value = line.rsplit(' ').next().expect("value");
        let _: u128 = value.parse().expect("integer self-time in µs");
    }
    assert!(folded.contains("decompose_pla;decompose;output.f "));
}

#[test]
fn stats_rejects_bad_flags() {
    let output =
        Command::new(env!("CARGO_BIN_EXE_stats")).arg("--nonsense").output().expect("stats runs");
    assert_eq!(output.status.code(), Some(2));
}

/// Builds a minimal report document with one record.
fn report(name: &str, time_s: f64, gates: u64) -> String {
    Json::obj()
        .field("schema", "bidecomp-bench/v2")
        .field(
            "records",
            Json::Arr(vec![Json::obj()
                .field("name", name)
                .field("time_s", time_s)
                .field("netlist", Json::obj().field("gates", gates).field("cascades", 4u64))
                .field("bdd", Json::obj().field("peak_nodes", 321u64))
                .field("mem", Json::obj().field("peak_bytes", 65536u64))]),
        )
        .render()
}

#[test]
fn diff_exits_zero_on_identical_reports() {
    let scratch = Scratch::new("diff-same");
    let a = scratch.path("a.json");
    fs::write(&a, report("rd73", 0.5, 40)).expect("write");
    let output =
        Command::new(env!("CARGO_BIN_EXE_diff")).arg(&a).arg(&a).output().expect("diff runs");
    assert!(output.status.success(), "identical reports must pass");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("no regressions"), "got: {stdout}");
    assert!(stdout.contains("rd73"));
}

#[test]
fn diff_fails_on_time_inflation_and_respects_thresholds() {
    let scratch = Scratch::new("diff-time");
    let a = scratch.path("a.json");
    let b = scratch.path("b.json");
    fs::write(&a, report("rd73", 0.5, 40)).expect("write");
    fs::write(&b, report("rd73", 1.0, 40)).expect("write");

    // 2× slower against the default 10% budget: exit 1 and name the cause.
    let output =
        Command::new(env!("CARGO_BIN_EXE_diff")).arg(&a).arg(&b).output().expect("diff runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("REGRESSION") && stderr.contains("time"), "got: {stderr}");

    // The same delta passes a 150% budget.
    let output = Command::new(env!("CARGO_BIN_EXE_diff"))
        .args([a.to_str().unwrap(), b.to_str().unwrap(), "--max-time-regress", "150"])
        .output()
        .expect("diff runs");
    assert!(output.status.success(), "loose budget must accept +100% time");
}

#[test]
fn diff_fails_on_gate_growth() {
    let scratch = Scratch::new("diff-gates");
    let a = scratch.path("a.json");
    let b = scratch.path("b.json");
    fs::write(&a, report("alu2", 0.5, 40)).expect("write");
    fs::write(&b, report("alu2", 0.5, 41)).expect("write");
    let output =
        Command::new(env!("CARGO_BIN_EXE_diff")).arg(&a).arg(&b).output().expect("diff runs");
    assert_eq!(output.status.code(), Some(1), "one extra gate fails the 0% default");
    assert!(String::from_utf8_lossy(&output.stderr).contains("gates"));
}

#[test]
fn diff_usage_and_unreadable_inputs_exit_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_diff")).output().expect("diff runs");
    assert_eq!(output.status.code(), Some(2), "missing positionals is a usage error");
    let output = Command::new(env!("CARGO_BIN_EXE_diff"))
        .args(["/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .expect("diff runs");
    assert_eq!(output.status.code(), Some(2), "unreadable input is not a regression");
}
