//! Golden test for the `BENCH_bidecomp.json` schema: the document the
//! `report` binary writes must parse with the workspace JSON parser and
//! keep the `bidecomp-bench/v4` record shape stable.

use bench::report::{bench_record, report_document, write_report, REPORT_SCHEMA};
use bidecomp::Options;
use obs::json::Json;

/// The top-level keys of one record, in schema order.
const RECORD_KEYS: [&str; 11] = [
    "name",
    "verified",
    "time_s",
    "threads",
    "netlist",
    "phases",
    "bdd",
    "percentiles",
    "mem",
    "analytics",
    "timeseries",
];
const NETLIST_KEYS: [&str; 8] =
    ["inputs", "outputs", "gates", "exors", "inverters", "cascades", "area", "delay"];
const PHASE_KEYS: [&str; 4] = ["ordering_s", "bdd_build_s", "decompose_s", "verify_s"];
const BDD_KEYS: [&str; 12] = [
    "peak_nodes",
    "mk_calls",
    "unique_hits",
    "nodes_allocated",
    "apply_steps",
    "cache_lookups",
    "cache_hits",
    "cache_hit_rate",
    "cache_evictions",
    "gc_runs",
    "gc_nodes_reclaimed",
    "gc_time_s",
];
const PERCENTILE_KEYS: [&str; 2] = ["output_latency", "op_latency"];
const LATENCY_KEYS: [&str; 6] = ["count", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"];
const MEM_KEYS: [&str; 5] =
    ["unique_table_bytes", "computed_cache_bytes", "node_slab_bytes", "total_bytes", "peak_bytes"];
const ANALYTICS_KEYS: [&str; 5] =
    ["unique_table", "computed_cache_by_op", "gc", "reorders", "component_cache"];
const TIMESERIES_KEYS: [&str; 3] = ["capacity", "dropped", "samples"];
const DECOMP_KEYS: [&str; 13] = [
    "calls",
    "cache_hits",
    "terminal_cases",
    "strong_or",
    "strong_and",
    "strong_exor",
    "weak",
    "shannon",
    "weak_rate",
    "cache_hit_rate",
    "inessential_rate",
    "max_depth",
    "depth_histogram",
];

fn suite_document() -> Json {
    // Two small suite members keep the test fast while exercising the
    // exact record builder the `report` binary uses.
    let mut records = Vec::new();
    for name in ["rd73", "alu2"] {
        let b = benchmarks::by_name(name).expect("suite member");
        records.push(bench_record(b.name, &b.pla, &Options::default()));
    }
    report_document(records)
}

#[test]
fn report_document_matches_the_v4_schema() {
    let document = suite_document();
    let mut bytes = Vec::new();
    write_report(&document, &mut bytes).expect("in-memory write");
    let text = String::from_utf8(bytes).expect("utf-8");
    let parsed = Json::parse(&text).expect("document must parse with the workspace parser");

    assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(REPORT_SCHEMA));
    // v3: the top-level obs health section survives the hand-rolled
    // writer.
    assert_eq!(
        parsed.get("obs").and_then(|o| o.get("sink_write_errors")).and_then(Json::as_f64),
        Some(0.0),
        "no trace sink runs during report generation"
    );
    let records = parsed.get("records").and_then(Json::as_arr).expect("records array");
    assert_eq!(records.len(), 2);
    for record in records {
        let keys = record.keys();
        for want in RECORD_KEYS {
            assert!(keys.contains(&want), "record key {want} missing from {keys:?}");
        }
        assert_eq!(record.keys().last(), Some(&"decomp"), "decomp closes the record");
        for (section, wanted) in [
            ("netlist", &NETLIST_KEYS[..]),
            ("phases", &PHASE_KEYS[..]),
            ("bdd", &BDD_KEYS[..]),
            ("percentiles", &PERCENTILE_KEYS[..]),
            ("mem", &MEM_KEYS[..]),
            ("analytics", &ANALYTICS_KEYS[..]),
            ("timeseries", &TIMESERIES_KEYS[..]),
            ("decomp", &DECOMP_KEYS[..]),
        ] {
            let obj = record.get(section).unwrap_or_else(|| panic!("{section} section"));
            assert_eq!(obj.keys(), wanted, "{section} keys drifted");
        }
        // v2: both latency summaries carry the histogram shape, with
        // internally consistent percentiles.
        let pct = record.get("percentiles").expect("percentiles");
        for kind in PERCENTILE_KEYS {
            let summary = pct.get(kind).unwrap_or_else(|| panic!("{kind} summary"));
            assert_eq!(summary.keys(), LATENCY_KEYS, "{kind} histogram keys drifted");
            let get = |k: &str| summary.get(k).and_then(Json::as_f64).expect("numeric");
            assert!(get("count") > 0.0, "{kind} must have samples (telemetry is on)");
            assert!(get("p50_ns") <= get("p90_ns"));
            assert!(get("p90_ns") <= get("p99_ns"));
            assert!(get("p99_ns") <= get("max_ns"));
        }
        let out_count =
            pct.get("output_latency").and_then(|s| s.get("count")).and_then(Json::as_f64);
        let outputs = record.get("netlist").and_then(|n| n.get("outputs")).and_then(Json::as_f64);
        assert_eq!(out_count, outputs, "per-output latency has one sample per PLA output");
        // v2: the mem section adds up and the peak bounds the total.
        let mem = record.get("mem").expect("mem");
        let get = |k: &str| mem.get(k).and_then(Json::as_f64).expect("numeric");
        assert_eq!(
            get("total_bytes"),
            get("unique_table_bytes") + get("computed_cache_bytes") + get("node_slab_bytes"),
            "mem components must sum to the total"
        );
        assert!(get("peak_bytes") >= get("total_bytes"));
        // v3: analytics and the time series carry real measurements.
        let analytics = record.get("analytics").expect("analytics");
        let entries = analytics
            .get("unique_table")
            .and_then(|t| t.get("entries"))
            .and_then(Json::as_f64)
            .expect("probe entries");
        assert!(entries > 0.0, "live nodes populate the unique table");
        let ops = analytics.get("computed_cache_by_op").and_then(Json::as_arr).expect("per-op");
        assert!(
            ops.iter().any(|o| o.get("lookups").and_then(Json::as_f64).unwrap_or(0.0) > 0.0),
            "computed cache saw traffic"
        );
        let samples =
            record.get("timeseries").and_then(|t| t.get("samples")).and_then(Json::as_arr);
        assert!(!samples.expect("samples array").is_empty(), "sampler fired during the run");
        // Spot-check semantics, not just shape.
        assert_eq!(record.get("verified").and_then(Json::as_bool), Some(true));
        let decomp = record.get("decomp").expect("decomp");
        let calls = decomp.get("calls").and_then(Json::as_f64).expect("calls");
        let histogram = decomp.get("depth_histogram").and_then(Json::as_arr).expect("histogram");
        let total: f64 = histogram.iter().map(|n| n.as_f64().expect("numeric bucket")).sum();
        assert_eq!(total, calls, "histogram buckets sum to the recursive call count");
        assert_eq!(decomp.get("max_depth").and_then(Json::as_f64), Some(histogram.len() as f64));
        // v4: thread count and the kernel counters are consistent.
        assert_eq!(record.get("threads").and_then(Json::as_f64), Some(1.0));
        let bdd = record.get("bdd").expect("bdd");
        let b = |k: &str| bdd.get(k).and_then(Json::as_f64).expect("numeric");
        assert_eq!(
            b("nodes_allocated"),
            b("mk_calls") - b("unique_hits"),
            "allocations are mk calls minus unique-table hits"
        );
        assert!(b("cache_evictions") <= b("cache_lookups"));
    }
}

#[test]
fn benchmark_names_with_escapes_render_safely() {
    // The schema must survive names needing JSON escaping.
    let b = benchmarks::by_name("rd73").expect("suite member");
    let record = bench_record("odd \"name\"\\path", &b.pla, &Options::default());
    let document = report_document(vec![record]);
    let mut bytes = Vec::new();
    write_report(&document, &mut bytes).expect("in-memory write");
    let text = String::from_utf8(bytes).expect("utf-8");
    let parsed = Json::parse(&text).expect("escaped names must round-trip");
    let records = parsed.get("records").and_then(Json::as_arr).expect("records");
    assert_eq!(records[0].get("name").and_then(Json::as_str), Some("odd \"name\"\\path"));
}
