//! Property tests for the multi-valued generalization.

use mv::{decompose_with_options, MvIsf, MvOptions, MvTable};
use proptest::prelude::*;

/// A random MV interval over a fixed small signature.
fn interval_strategy() -> impl Strategy<Value = MvIsf> {
    let domains = [3usize, 2, 3];
    let size: usize = domains.iter().product();
    (
        proptest::collection::vec(0usize..4, size),
        proptest::collection::vec(0usize..4, size),
    )
        .prop_map(move |(a, b)| {
            let ta = MvTable::from_fn(&domains, 4, |p| {
                a[index(&domains, p)]
            });
            let tb = MvTable::from_fn(&domains, 4, |p| {
                b[index(&domains, p)]
            });
            MvIsf::new(ta.min(&tb), ta.max(&tb))
        })
}

fn index(domains: &[usize], point: &[usize]) -> usize {
    let mut idx = 0;
    for (&v, &d) in point.iter().zip(domains).rev() {
        idx = idx * d + v;
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decomposition_stays_in_interval(isf in interval_strategy()) {
        let (nl, root, _) = decompose_with_options(&isf, &MvOptions::default());
        for p in isf.lo().points() {
            let got = nl.eval(root, &p);
            prop_assert!(isf.lo().get(&p) <= got && got <= isf.hi().get(&p),
                "point {p:?}: {got} outside [{}, {}]",
                isf.lo().get(&p), isf.hi().get(&p));
        }
    }

    #[test]
    fn check_is_sound_and_complete_for_derivation(isf in interval_strategy()) {
        // Whenever the MIN check passes, the derived components recompose
        // into the interval for the extreme completions; whenever it
        // fails, the canonical floors violate the upper bound.
        for (xa, xb) in [(0b001u32, 0b010u32), (0b010, 0b100), (0b001, 0b110)] {
            let a_floor = isf.lo().max_over(xb);
            let b_floor = isf.lo().max_over(xa);
            let canonical = a_floor.min(&b_floor);
            prop_assert_eq!(
                isf.min_decomposable(xa, xb),
                canonical.le(isf.hi()),
                "check must coincide with the canonical recomposition"
            );
            if isf.min_decomposable(xa, xb) {
                let a = isf.min_component_a(xa, xb);
                let fa = a.lo().clone();
                let b = isf.min_component_b(&fa, xa);
                let f = fa.min(b.lo());
                prop_assert!(isf.contains(&f));
            }
        }
    }

    #[test]
    fn shannon_only_configuration_is_still_sound(isf in interval_strategy()) {
        let (nl, root, stats) = decompose_with_options(
            &isf,
            &MvOptions { use_min: false, use_max: false },
        );
        for p in isf.lo().points() {
            let got = nl.eval(root, &p);
            prop_assert!(isf.lo().get(&p) <= got && got <= isf.hi().get(&p));
        }
        prop_assert_eq!(stats.strong_min + stats.strong_max, 0);
    }

    #[test]
    fn inessential_removal_preserves_compatibility(isf in interval_strategy()) {
        let (reduced, _) = isf.remove_inessential();
        // Any completion of the reduced interval fits the original.
        prop_assert!(isf.contains(reduced.lo()));
        prop_assert!(isf.contains(reduced.hi()));
    }
}
