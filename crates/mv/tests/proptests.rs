//! Property tests for the multi-valued generalization, driven by a seeded
//! splitmix64 stream (the workspace carries no external property-testing
//! dependency) — each case reproduces from its seed alone.

use benchmarks::SplitMix64;
use mv::{decompose_with_options, MvIsf, MvOptions, MvTable};

/// Seeded random cases per property (mirrors the old proptest case count).
const CASES: u64 = 48;

/// A random MV interval over a fixed small signature.
fn random_interval(seed: u64) -> MvIsf {
    let mut rng = SplitMix64::new(seed);
    let domains = [3usize, 2, 3];
    let size: usize = domains.iter().product();
    let a: Vec<usize> = (0..size).map(|_| rng.gen_range(4)).collect();
    let b: Vec<usize> = (0..size).map(|_| rng.gen_range(4)).collect();
    let ta = MvTable::from_fn(&domains, 4, |p| a[index(&domains, p)]);
    let tb = MvTable::from_fn(&domains, 4, |p| b[index(&domains, p)]);
    MvIsf::new(ta.min(&tb), ta.max(&tb))
}

fn index(domains: &[usize], point: &[usize]) -> usize {
    let mut idx = 0;
    for (&v, &d) in point.iter().zip(domains).rev() {
        idx = idx * d + v;
    }
    idx
}

#[test]
fn decomposition_stays_in_interval() {
    for seed in 0..CASES {
        let isf = random_interval(seed);
        let (nl, root, _) = decompose_with_options(&isf, &MvOptions::default());
        for p in isf.lo().points() {
            let got = nl.eval(root, &p);
            assert!(
                isf.lo().get(&p) <= got && got <= isf.hi().get(&p),
                "seed {seed}, point {p:?}: {got} outside [{}, {}]",
                isf.lo().get(&p),
                isf.hi().get(&p)
            );
        }
    }
}

#[test]
fn check_is_sound_and_complete_for_derivation() {
    for seed in 0..CASES {
        let isf = random_interval(seed);
        // Whenever the MIN check passes, the derived components recompose
        // into the interval for the extreme completions; whenever it
        // fails, the canonical floors violate the upper bound.
        for (xa, xb) in [(0b001u32, 0b010u32), (0b010, 0b100), (0b001, 0b110)] {
            let a_floor = isf.lo().max_over(xb);
            let b_floor = isf.lo().max_over(xa);
            let canonical = a_floor.min(&b_floor);
            assert_eq!(
                isf.min_decomposable(xa, xb),
                canonical.le(isf.hi()),
                "seed {seed}: check must coincide with the canonical recomposition"
            );
            if isf.min_decomposable(xa, xb) {
                let a = isf.min_component_a(xa, xb);
                let fa = a.lo().clone();
                let b = isf.min_component_b(&fa, xa);
                let f = fa.min(b.lo());
                assert!(isf.contains(&f), "seed {seed}");
            }
        }
    }
}

#[test]
fn shannon_only_configuration_is_still_sound() {
    for seed in 0..CASES {
        let isf = random_interval(seed);
        let (nl, root, stats) =
            decompose_with_options(&isf, &MvOptions { use_min: false, use_max: false });
        for p in isf.lo().points() {
            let got = nl.eval(root, &p);
            assert!(isf.lo().get(&p) <= got && got <= isf.hi().get(&p), "seed {seed}, point {p:?}");
        }
        assert_eq!(stats.strong_min + stats.strong_max, 0, "seed {seed}");
    }
}

#[test]
fn inessential_removal_preserves_compatibility() {
    for seed in 0..CASES {
        let isf = random_interval(seed);
        let (reduced, _) = isf.remove_inessential();
        // Any completion of the reduced interval fits the original.
        assert!(isf.contains(reduced.lo()), "seed {seed}");
        assert!(isf.contains(reduced.hi()), "seed {seed}");
    }
}
