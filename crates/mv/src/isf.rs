//! Incompletely specified multi-valued functions as pointwise intervals.

use crate::MvTable;

/// An incompletely specified MV function: at every input point the value
/// may be anything in `[lo(x), hi(x)]`.
///
/// This is the MV generalization of the paper's on-set/off-set pair: for
/// `k = 2`, `lo = Q` (points forced to 1) and `hi = ¬R` (complement of
/// the points forced to 0).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MvIsf {
    lo: MvTable,
    hi: MvTable,
}

impl MvIsf {
    /// Creates an interval from its bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds have different signatures or `lo ≰ hi`
    /// somewhere (empty interval).
    pub fn new(lo: MvTable, hi: MvTable) -> Self {
        assert!(lo.le(&hi), "interval must satisfy lo ≤ hi pointwise");
        MvIsf { lo, hi }
    }

    /// The interval containing exactly one function.
    pub fn from_table(f: &MvTable) -> Self {
        MvIsf { lo: f.clone(), hi: f.clone() }
    }

    /// The lower bound.
    pub fn lo(&self) -> &MvTable {
        &self.lo
    }

    /// The upper bound.
    pub fn hi(&self) -> &MvTable {
        &self.hi
    }

    /// Is `f` compatible with the interval (`lo ≤ f ≤ hi`)?
    pub fn contains(&self, f: &MvTable) -> bool {
        self.lo.le(f) && f.le(&self.hi)
    }

    /// Variables at least one bound depends on.
    pub fn support_mask(&self) -> u32 {
        self.lo.support_mask() | self.hi.support_mask()
    }

    /// Cofactor of the interval.
    ///
    /// # Panics
    ///
    /// Panics if `var`/`value` are out of range.
    pub fn cofactor(&self, var: usize, value: usize) -> MvIsf {
        MvIsf { lo: self.lo.cofactor(var, value), hi: self.hi.cofactor(var, value) }
    }

    /// Is `var` inessential — does the interval contain a completion
    /// independent of it? True iff `max_var lo ≤ min_var hi` (the MV
    /// generalization of the paper's `∃v Q · ∃v R = 0`).
    pub fn is_inessential(&self, var: usize) -> bool {
        let mask = 1u32 << var;
        self.lo.max_over(mask).le(&self.hi.min_over(mask))
    }

    /// The paper's `RemoveInessentialVariables`, transplanted: greedily
    /// quantifies inessential variables out of both bounds. Returns the
    /// reduced interval and how many variables went.
    pub fn remove_inessential(&self) -> (MvIsf, usize) {
        let mut isf = self.clone();
        let mut removed = 0;
        for var in 0..self.lo.num_vars() {
            if isf.support_mask() & (1 << var) != 0 && isf.is_inessential(var) {
                let mask = 1u32 << var;
                isf = MvIsf { lo: isf.lo.max_over(mask), hi: isf.hi.min_over(mask) };
                removed += 1;
            }
        }
        (isf, removed)
    }

    /// **MIN-bi-decomposability** with dedicated sets `(X_A, X_B)` (bit
    /// masks): does a completion `F = MIN(A, B)` exist with `A`
    /// independent of `X_B` and `B` independent of `X_A`?
    ///
    /// Generalizes the paper's AND case of Theorem 1. Any valid `A` must
    /// dominate `max_{X_B} lo` (the smallest `X_B`-independent function
    /// above the lower bound) and similarly for `B`, so the decomposition
    /// exists iff `min(max_{X_B} lo, max_{X_A} lo) ≤ hi`.
    pub fn min_decomposable(&self, xa: u32, xb: u32) -> bool {
        assert_eq!(xa & xb, 0, "X_A and X_B must be disjoint");
        let a_floor = self.lo.max_over(xb);
        let b_floor = self.lo.max_over(xa);
        a_floor.min(&b_floor).le(&self.hi)
    }

    /// **MAX-bi-decomposability** — the dual of
    /// [`min_decomposable`](MvIsf::min_decomposable): exists
    /// `F = MAX(A, B)` iff `lo ≤ max(min_{X_B} hi, min_{X_A} hi)`.
    pub fn max_decomposable(&self, xa: u32, xb: u32) -> bool {
        assert_eq!(xa & xb, 0, "X_A and X_B must be disjoint");
        let a_ceil = self.hi.min_over(xb);
        let b_ceil = self.hi.min_over(xa);
        self.lo.le(&a_ceil.max(&b_ceil))
    }

    /// Component A of a MIN decomposition: the interval
    /// `[max_{X_B} lo, hi_A]`, where `hi_A` caps A at `hi` on the points
    /// the canonical B (`max_{X_A} lo`) cannot pull down.
    ///
    /// # Panics
    ///
    /// Panics if the sets overlap or the ISF is not MIN-decomposable with
    /// them.
    pub fn min_component_a(&self, xa: u32, xb: u32) -> MvIsf {
        assert!(self.min_decomposable(xa, xb), "ISF is not MIN-decomposable with these sets");
        let a_floor = self.lo.max_over(xb);
        let b_canonical = self.lo.max_over(xa);
        let top = (self.hi.output_arity() - 1) as u8;
        // Where B's floor already exceeds hi, A must come down to hi;
        // elsewhere A is unconstrained above. The cap must be
        // X_B-independent, so take the min over X_B of the pointwise cap.
        let cap = pointwise(
            &self.hi,
            |idx, hi| {
                if b_canonical.get_idx(idx) > hi {
                    hi as u8
                } else {
                    top
                }
            },
        );
        let hi_a = cap.min_over(xb);
        MvIsf::new(a_floor, hi_a)
    }

    /// Component B of a MIN decomposition, given the chosen completion
    /// `f_a` of component A (the analogue of Theorem 4: B absorbs the
    /// freedom A left unused).
    ///
    /// # Panics
    ///
    /// Panics if `f_a` is not compatible with
    /// [`min_component_a`](MvIsf::min_component_a)'s interval.
    pub fn min_component_b(&self, f_a: &MvTable, xa: u32) -> MvIsf {
        let b_floor = self.lo.max_over(xa);
        let top = (self.hi.output_arity() - 1) as u8;
        let cap = pointwise(&self.hi, |idx, hi| if f_a.get_idx(idx) > hi { hi as u8 } else { top });
        let hi_b = cap.min_over(xa);
        MvIsf::new(b_floor, hi_b)
    }

    /// Component A of a MAX decomposition (dual of
    /// [`min_component_a`](MvIsf::min_component_a)).
    ///
    /// # Panics
    ///
    /// Panics if the sets overlap or the ISF is not MAX-decomposable with
    /// them.
    pub fn max_component_a(&self, xa: u32, xb: u32) -> MvIsf {
        assert!(self.max_decomposable(xa, xb), "ISF is not MAX-decomposable with these sets");
        let a_ceil = self.hi.min_over(xb);
        let b_canonical = self.hi.min_over(xa);
        let floor =
            pointwise(&self.lo, |idx, lo| if b_canonical.get_idx(idx) < lo { lo as u8 } else { 0 });
        let lo_a = floor.max_over(xb);
        MvIsf::new(lo_a, a_ceil)
    }

    /// Component B of a MAX decomposition given `f_a`.
    ///
    /// # Panics
    ///
    /// Panics if `f_a` is not compatible with component A's interval.
    pub fn max_component_b(&self, f_a: &MvTable, xa: u32) -> MvIsf {
        let b_ceil = self.hi.min_over(xa);
        let floor = pointwise(&self.lo, |idx, lo| if f_a.get_idx(idx) < lo { lo as u8 } else { 0 });
        let lo_b = floor.max_over(xa);
        MvIsf::new(lo_b, b_ceil)
    }
}

/// Builds a table with the same signature as `like`, computing each point
/// from its linear index and `like`'s value there.
fn pointwise(like: &MvTable, f: impl Fn(usize, usize) -> u8) -> MvTable {
    let mut out = like.clone();
    let mut point = vec![0usize; like.num_vars()];
    for idx in 0..like.len() {
        MvTable::decode_into(like.domains(), idx, &mut point);
        let v = f(idx, like.get_idx(idx));
        out.set(&point, v as usize);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_of_vars_is_min_decomposable() {
        let f = MvTable::from_fn(&[3, 3], 3, |p| p[0].min(p[1]));
        let isf = MvIsf::from_table(&f);
        assert!(isf.min_decomposable(0b01, 0b10));
        assert!(!isf.max_decomposable(0b01, 0b10));
        let a = isf.min_component_a(0b01, 0b10);
        // A is forced to be exactly x0.
        let x0 = MvTable::from_fn(&[3, 3], 3, |p| p[0]);
        assert!(a.contains(&x0));
        let b = isf.min_component_b(&x0, 0b01);
        let x1 = MvTable::from_fn(&[3, 3], 3, |p| p[1]);
        assert!(b.contains(&x1));
        let recomposed = x0.min(&x1);
        assert!(isf.contains(&recomposed));
    }

    #[test]
    fn max_of_vars_is_max_decomposable() {
        let f = MvTable::from_fn(&[4, 2], 4, |p| p[0].max(3 * p[1]));
        let isf = MvIsf::from_table(&f);
        assert!(isf.max_decomposable(0b01, 0b10));
        let a = isf.max_component_a(0b01, 0b10);
        let fa = a.lo().clone(); // minimal completion
        let b = isf.max_component_b(&fa, 0b01);
        let fb = b.lo().clone();
        assert!(isf.contains(&fa.max(&fb)));
        assert!(!fa.depends_on(1));
        assert!(!fb.depends_on(0));
    }

    #[test]
    fn undecomposable_mixed_function() {
        // f = (x0 + x1) mod 3 is neither MIN- nor MAX-decomposable with
        // disjoint singletons (it is the MV parity analogue).
        let f = MvTable::from_fn(&[3, 3], 3, |p| (p[0] + p[1]) % 3);
        let isf = MvIsf::from_table(&f);
        assert!(!isf.min_decomposable(0b01, 0b10));
        assert!(!isf.max_decomposable(0b01, 0b10));
    }

    #[test]
    fn intervals_enable_decomposition() {
        // The modular sum becomes MIN-decomposable once enough slack is
        // allowed: widen to the full range everywhere except two anchor
        // points.
        let f = MvTable::from_fn(&[3, 3], 3, |p| (p[0] + p[1]) % 3);
        let lo = MvTable::from_fn(&[3, 3], 3, |p| if p == [0, 0] { f.get(p) } else { 0 });
        let hi = MvTable::from_fn(&[3, 3], 3, |p| if p == [2, 2] { f.get(p) } else { 2 });
        let isf = MvIsf::new(lo, hi);
        assert!(isf.min_decomposable(0b01, 0b10));
        let a = isf.min_component_a(0b01, 0b10);
        let fa = a.lo().clone();
        let b = isf.min_component_b(&fa, 0b01);
        let fb = b.lo().clone();
        assert!(isf.contains(&fa.min(&fb)));
    }

    #[test]
    fn boolean_case_matches_boolfn_oracles() {
        use boolfn::{oracle, TruthTable};
        // Random 4-variable Boolean ISFs: MIN ↔ AND, MAX ↔ OR.
        for seed in 0..40u64 {
            let f = TruthTable::random(4, 0.5, seed);
            let care = TruthTable::random(4, 0.6, seed ^ 0xc0de);
            let q = f.and(&care);
            let r = f.complement().and(&care);
            let domains = [2usize, 2, 2, 2];
            let lo = MvTable::from_fn(&domains, 2, |p| {
                let m = p.iter().enumerate().fold(0u32, |acc, (i, &v)| acc | ((v as u32) << i));
                usize::from(q.get(m))
            });
            let hi = MvTable::from_fn(&domains, 2, |p| {
                let m = p.iter().enumerate().fold(0u32, |acc, (i, &v)| acc | ((v as u32) << i));
                usize::from(!r.get(m))
            });
            let isf = MvIsf::new(lo, hi);
            for (xa, xb) in [(0b0011u32, 0b1100u32), (0b0001, 0b0010), (0b0101, 0b1010)] {
                assert_eq!(
                    isf.min_decomposable(xa, xb),
                    oracle::and_bidecomposable(&q, &r, xa, xb),
                    "MIN/AND seed {seed} sets {xa:b}/{xb:b}"
                );
                assert_eq!(
                    isf.max_decomposable(xa, xb),
                    oracle::or_bidecomposable(&q, &r, xa, xb),
                    "MAX/OR seed {seed} sets {xa:b}/{xb:b}"
                );
            }
        }
    }

    #[test]
    fn component_soundness_random_sweep() {
        // For random ternary ISFs: whenever the check passes, deriving A,
        // completing it arbitrarily (lo and hi), deriving B and
        // recomposing stays inside the interval.
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (lcg >> 33) as usize
        };
        let mut decomposable_seen = 0;
        for _ in 0..60 {
            let base = MvTable::from_fn(&[3, 3, 2], 3, |_| next() % 3);
            let slack = MvTable::from_fn(&[3, 3, 2], 3, |_| next() % 3);
            let lo = base.min(&slack);
            let hi = base.max(&slack);
            let isf = MvIsf::new(lo, hi);
            for (xa, xb) in [(0b001u32, 0b010u32), (0b001, 0b110), (0b010, 0b101)] {
                if !isf.min_decomposable(xa, xb) {
                    continue;
                }
                decomposable_seen += 1;
                let a = isf.min_component_a(xa, xb);
                for fa in [a.lo().clone(), a.hi().clone()] {
                    assert!(a.contains(&fa));
                    let b = isf.min_component_b(&fa, xa);
                    for fb in [b.lo().clone(), b.hi().clone()] {
                        let f = fa.min(&fb);
                        assert!(isf.contains(&f), "recomposition must fit");
                    }
                }
            }
        }
        assert!(decomposable_seen > 5, "sweep must hit decomposable cases");
    }

    #[test]
    fn inessential_removal() {
        // lo = const 0, hi almost const 2: everything is inessential.
        let lo = MvTable::constant(&[3, 3], 3, 0);
        let mut hi = MvTable::constant(&[3, 3], 3, 2);
        hi.set(&[0, 0], 1);
        let isf = MvIsf::new(lo, hi);
        assert!(isf.is_inessential(0));
        assert!(isf.is_inessential(1));
        let (reduced, removed) = isf.remove_inessential();
        assert_eq!(removed, 2);
        assert_eq!(reduced.support_mask(), 0);
        // Every completion of the reduced interval fits the original.
        assert!(isf.contains(reduced.lo()));
        // A pinned function keeps its support.
        let f = MvTable::from_fn(&[3, 3], 3, |p| p[0]);
        let pinned = MvIsf::from_table(&f);
        let (same, zero) = pinned.remove_inessential();
        assert_eq!(zero, 0);
        assert_eq!(same, pinned);
    }

    #[test]
    #[should_panic(expected = "lo ≤ hi")]
    fn empty_interval_panics() {
        let lo = MvTable::constant(&[2], 3, 2);
        let hi = MvTable::constant(&[2], 3, 0);
        let _ = MvIsf::new(lo, hi);
    }
}
