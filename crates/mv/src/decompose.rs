//! The recursive MV bi-decomposition — the Fig. 7 recursion transplanted
//! to MIN/MAX gates over multi-valued variables.

use crate::netlist::{MvNetlist, MvNodeId};
use crate::{MvIsf, MvTable};

/// Tuning knobs of the MV decomposer (for ablations, like the Boolean
/// [`Options`](https://docs.rs/bidecomp)).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MvOptions {
    /// Search for MIN-bi-decompositions.
    pub use_min: bool,
    /// Search for MAX-bi-decompositions.
    pub use_max: bool,
}

impl Default for MvOptions {
    fn default() -> Self {
        MvOptions { use_min: true, use_max: true }
    }
}

/// Counters of one MV decomposition run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MvStats {
    /// Recursive calls.
    pub calls: usize,
    /// Strong MIN decompositions performed.
    pub strong_min: usize,
    /// Strong MAX decompositions performed.
    pub strong_max: usize,
    /// Terminal cases (≤ 1 support variable → unary literal or constant).
    pub terminal: usize,
    /// MV Shannon expansions (no strong grouping found).
    pub shannon: usize,
    /// Inessential variables removed across all calls.
    pub inessential_removed: usize,
}

/// Decomposes an MV interval into a MIN/MAX/unary network with default
/// options; returns the network and its root node.
///
/// The realized function is guaranteed compatible with the interval; see
/// the [crate-level example](crate).
pub fn decompose(isf: &MvIsf) -> (MvNetlist, MvNodeId) {
    let (nl, root, _) = decompose_with_options(isf, &MvOptions::default());
    (nl, root)
}

/// [`decompose`] with explicit options, also returning statistics.
pub fn decompose_with_options(isf: &MvIsf, options: &MvOptions) -> (MvNetlist, MvNodeId, MvStats) {
    let mut dec =
        MvDecomposer { netlist: MvNetlist::new(), stats: MvStats::default(), options: *options };
    let (root, realized) = dec.recurse(isf);
    debug_assert!(isf.contains(&realized), "MV decomposition must stay in the interval");
    (dec.netlist, root, dec.stats)
}

struct MvDecomposer {
    netlist: MvNetlist,
    stats: MvStats,
    options: MvOptions,
}

impl MvDecomposer {
    /// Returns the root node and the (completely specified) table it
    /// realizes.
    fn recurse(&mut self, isf_in: &MvIsf) -> (MvNodeId, MvTable) {
        self.stats.calls += 1;
        let (isf, removed) = isf_in.remove_inessential();
        self.stats.inessential_removed += removed;
        let isf = &isf;
        let support = isf.support_mask();
        let vars: Vec<usize> =
            (0..isf.lo().num_vars()).filter(|v| support & (1 << v) != 0).collect();
        // Terminal: constant or one unary literal.
        if vars.len() <= 1 {
            self.stats.terminal += 1;
            return self.terminal(isf, vars.first().copied());
        }
        if let Some((is_min, xa, xb)) = self.best_grouping(isf, &vars) {
            return self.strong(isf, is_min, xa, xb);
        }
        // MV Shannon expansion on the first support variable.
        self.stats.shannon += 1;
        self.shannon(isf, vars[0])
    }

    fn terminal(&mut self, isf: &MvIsf, var: Option<usize>) -> (MvNodeId, MvTable) {
        let lo = isf.lo();
        match var {
            None => {
                let value = lo.get_idx(0);
                let node = self.netlist.constant(value as u8);
                let table = MvTable::constant(lo.domains(), lo.output_arity(), value);
                (node, table)
            }
            Some(v) => {
                // Minimal compatible unary literal: per domain value, the
                // lower bound (constant over the other variables).
                let lut: Vec<u8> = (0..lo.domains()[v])
                    .map(|value| lo.cofactor(v, value).get_idx(0) as u8)
                    .collect();
                let input = self.netlist.input(v);
                let node = self.netlist.unary(input, lut.clone());
                let table =
                    MvTable::from_fn(lo.domains(), lo.output_arity(), |p| lut[p[v]] as usize);
                debug_assert!(isf.contains(&table));
                (node, table)
            }
        }
    }

    /// Figs. 5–6 transplanted: seed with a decomposable singleton pair,
    /// grow greedily (smaller set first), best candidate by total then
    /// balance; MIN wins ties.
    fn best_grouping(&mut self, isf: &MvIsf, vars: &[usize]) -> Option<(bool, u32, u32)> {
        let mut best: Option<(bool, u32, u32)> = None;
        let score = |xa: u32, xb: u32| {
            let (na, nb) = (xa.count_ones(), xb.count_ones());
            (na + nb, std::cmp::Reverse(na.abs_diff(nb)))
        };
        for is_min in [true, false] {
            if (is_min && !self.options.use_min) || (!is_min && !self.options.use_max) {
                continue;
            }
            let check = |isf: &MvIsf, xa: u32, xb: u32| {
                if is_min {
                    isf.min_decomposable(xa, xb)
                } else {
                    isf.max_decomposable(xa, xb)
                }
            };
            let mut found: Option<(u32, u32)> = None;
            'seed: for (i, &x) in vars.iter().enumerate() {
                for &y in &vars[i + 1..] {
                    if check(isf, 1 << x, 1 << y) {
                        found = Some((1 << x, 1 << y));
                        break 'seed;
                    }
                }
            }
            let Some((mut xa, mut xb)) = found else { continue };
            for &z in vars {
                let zbit = 1u32 << z;
                if (xa | xb) & zbit != 0 {
                    continue;
                }
                let order = if xa.count_ones() <= xb.count_ones() {
                    [(xa | zbit, xb), (xa, xb | zbit)]
                } else {
                    [(xa, xb | zbit), (xa | zbit, xb)]
                };
                for (na, nb) in order {
                    if check(isf, na, nb) {
                        xa = na;
                        xb = nb;
                        break;
                    }
                }
            }
            let better = match best {
                None => true,
                Some((_, ba, bb)) => score(xa, xb) > score(ba, bb),
            };
            if better {
                best = Some((is_min, xa, xb));
            }
        }
        best
    }

    fn strong(&mut self, isf: &MvIsf, is_min: bool, xa: u32, xb: u32) -> (MvNodeId, MvTable) {
        if is_min {
            self.stats.strong_min += 1;
            let isf_a = isf.min_component_a(xa, xb);
            let (node_a, fa) = self.recurse(&isf_a);
            let isf_b = isf.min_component_b(&fa, xa);
            let (node_b, fb) = self.recurse(&isf_b);
            let node = self.netlist.min(node_a, node_b);
            (node, fa.min(&fb))
        } else {
            self.stats.strong_max += 1;
            let isf_a = isf.max_component_a(xa, xb);
            let (node_a, fa) = self.recurse(&isf_a);
            let isf_b = isf.max_component_b(&fa, xa);
            let (node_b, fb) = self.recurse(&isf_b);
            let node = self.netlist.max(node_a, node_b);
            (node, fa.max(&fb))
        }
    }

    /// MV Shannon expansion:
    /// `F = MAX_v MIN(χ_{x=v}, F|_{x=v})`, with `χ_{x=v}` the unary
    /// indicator literal taking the top value at `v` and 0 elsewhere.
    fn shannon(&mut self, isf: &MvIsf, var: usize) -> (MvNodeId, MvTable) {
        let domains = isf.lo().domains().to_vec();
        let k = isf.lo().output_arity();
        let top = (k - 1) as u8;
        let input = self.netlist.input(var);
        let mut acc: Option<(MvNodeId, MvTable)> = None;
        for value in 0..domains[var] {
            let branch_isf = isf.cofactor(var, value);
            let (branch_node, branch_table) = self.recurse(&branch_isf);
            let mut lut = vec![0u8; domains[var]];
            lut[value] = top;
            let indicator = self.netlist.unary(input, lut);
            let indicator_table =
                MvTable::from_fn(&domains, k, |p| if p[var] == value { top as usize } else { 0 });
            let guarded = self.netlist.min(indicator, branch_node);
            let guarded_table = indicator_table.min(&branch_table);
            acc = Some(match acc {
                None => (guarded, guarded_table),
                Some((node, table)) => (self.netlist.max(node, guarded), table.max(&guarded_table)),
            });
        }
        acc.expect("domains are ≥ 2, so at least one branch exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_check(isf: &MvIsf, nl: &MvNetlist, root: MvNodeId) {
        for p in isf.lo().points() {
            let got = nl.eval(root, &p);
            assert!(
                isf.lo().get(&p) <= got && got <= isf.hi().get(&p),
                "point {p:?}: {got} outside [{}, {}]",
                isf.lo().get(&p),
                isf.hi().get(&p)
            );
        }
    }

    #[test]
    fn min_of_literals() {
        let f = MvTable::from_fn(&[3, 3], 3, |p| p[0].min(p[1]));
        let isf = MvIsf::from_table(&f);
        let (nl, root, stats) = decompose_with_options(&isf, &MvOptions::default());
        exhaustive_check(&isf, &nl, root);
        assert_eq!(stats.strong_min, 1);
        assert_eq!(nl.min_max_gates(), 1);
    }

    #[test]
    fn nested_min_max_tree() {
        // f = max(min(x0, x1), min(x2, x3)) over ternary variables.
        let f = MvTable::from_fn(&[3, 3, 3, 3], 3, |p| (p[0].min(p[1])).max(p[2].min(p[3])));
        let isf = MvIsf::from_table(&f);
        let (nl, root, stats) = decompose_with_options(&isf, &MvOptions::default());
        exhaustive_check(&isf, &nl, root);
        assert_eq!(nl.min_max_gates(), 3, "optimal MIN/MIN/MAX tree");
        assert_eq!(stats.shannon, 0);
    }

    #[test]
    fn modular_sum_needs_shannon() {
        let f = MvTable::from_fn(&[3, 3], 3, |p| (p[0] + p[1]) % 3);
        let isf = MvIsf::from_table(&f);
        let (nl, root, stats) = decompose_with_options(&isf, &MvOptions::default());
        exhaustive_check(&isf, &nl, root);
        assert!(stats.shannon > 0, "the MV parity analogue has no MIN/MAX split");
    }

    #[test]
    fn mixed_domains_and_unary_terminals() {
        // f(x0 ∈ 4, x1 ∈ 2) = max(reverse(x0), 3·x1) with k = 4.
        let f = MvTable::from_fn(&[4, 2], 4, |p| (3 - p[0]).max(3 * p[1]));
        let isf = MvIsf::from_table(&f);
        let (nl, root, stats) = decompose_with_options(&isf, &MvOptions::default());
        exhaustive_check(&isf, &nl, root);
        assert_eq!(stats.strong_max, 1);
        assert!(nl.unary_count() >= 1, "the reversed literal needs a unary LUT");
    }

    #[test]
    fn intervals_shrink_the_network() {
        // A nearly-free interval collapses to a constant.
        let lo = MvTable::constant(&[3, 3], 3, 0);
        let mut hi = MvTable::constant(&[3, 3], 3, 2);
        hi.set(&[0, 0], 1);
        let isf = MvIsf::new(lo, hi);
        let (nl, root, stats) = decompose_with_options(&isf, &MvOptions::default());
        exhaustive_check(&isf, &nl, root);
        assert_eq!(nl.min_max_gates(), 0, "constant 0 fits the interval");
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn randomized_soundness_sweep() {
        let mut lcg = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (lcg >> 33) as usize
        };
        for _ in 0..30 {
            let base = MvTable::from_fn(&[3, 2, 3], 4, |_| next() % 4);
            let slack = MvTable::from_fn(&[3, 2, 3], 4, |_| next() % 4);
            let isf = MvIsf::new(base.min(&slack), base.max(&slack));
            let (nl, root, _) = decompose_with_options(&isf, &MvOptions::default());
            exhaustive_check(&isf, &nl, root);
        }
    }

    #[test]
    fn boolean_case_agrees_with_and_or_structure() {
        // Over Boolean domains the decomposer is an AND/OR decomposer:
        // f = (x0 ∧ x1) ∨ x2 yields 2 gates.
        let f = MvTable::from_fn(&[2, 2, 2], 2, |p| ((p[0] & p[1]) | p[2]).min(1));
        let isf = MvIsf::from_table(&f);
        let (nl, root, _) = decompose_with_options(&isf, &MvOptions::default());
        exhaustive_check(&isf, &nl, root);
        assert_eq!(nl.min_max_gates(), 2);
    }

    #[test]
    fn options_disable_gates() {
        let f = MvTable::from_fn(&[3, 3], 3, |p| p[0].min(p[1]));
        let isf = MvIsf::from_table(&f);
        let (nl, root, stats) =
            decompose_with_options(&isf, &MvOptions { use_min: false, use_max: true });
        exhaustive_check(&isf, &nl, root);
        assert_eq!(stats.strong_min, 0);
        assert!(stats.shannon > 0 || stats.strong_max > 0);
    }
}
