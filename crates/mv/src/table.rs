//! Dense multi-valued function tables.

use std::fmt;

/// A completely specified multi-valued function: each input variable `i`
/// ranges over `{0, .., domains[i]-1}`, the output over `{0, .., k-1}`.
///
/// Stored densely, one `u8` per point of the mixed-radix input space
/// (intended for the small arities of MV decomposition research: total
/// space ≤ 2²⁰ points, values ≤ 255).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MvTable {
    domains: Vec<usize>,
    k: usize,
    values: Vec<u8>,
}

/// Maximum number of points an [`MvTable`] may hold.
pub const MAX_MV_POINTS: usize = 1 << 20;

impl MvTable {
    /// Builds a table by evaluating `f` on every point (the slice passed
    /// to `f` holds one value per variable).
    ///
    /// # Panics
    ///
    /// Panics if the input space exceeds 2²⁰ points, `k` is not in
    /// `2..=256`, any domain is smaller than 2, or `f` returns a value
    /// `≥ k`.
    pub fn from_fn(domains: &[usize], k: usize, mut f: impl FnMut(&[usize]) -> usize) -> Self {
        assert!((2..=256).contains(&k), "output arity k must be in 2..=256");
        assert!(domains.iter().all(|&d| d >= 2), "variable domains must be ≥ 2");
        let size: usize = domains.iter().product();
        assert!(size <= MAX_MV_POINTS, "input space too large ({size} points)");
        let mut point = vec![0usize; domains.len()];
        let mut values = Vec::with_capacity(size);
        for idx in 0..size {
            Self::decode_into(domains, idx, &mut point);
            let v = f(&point);
            assert!(v < k, "function value {v} out of range 0..{k}");
            values.push(v as u8);
        }
        MvTable { domains: domains.to_vec(), k, values }
    }

    /// The constant function `value`.
    ///
    /// # Panics
    ///
    /// As [`MvTable::from_fn`].
    pub fn constant(domains: &[usize], k: usize, value: usize) -> Self {
        Self::from_fn(domains, k, |_| value)
    }

    /// The domain sizes of the input variables.
    pub fn domains(&self) -> &[usize] {
        &self.domains
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// The output arity `k`.
    pub fn output_arity(&self) -> usize {
        self.k
    }

    /// Number of points of the input space.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff the input space is empty (no variables means one point,
    /// so this is never true for valid tables).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at a point given as one value per variable.
    ///
    /// # Panics
    ///
    /// Panics if the point is malformed.
    pub fn get(&self, point: &[usize]) -> usize {
        self.values[self.encode(point)] as usize
    }

    /// The value at a linear (mixed-radix) index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get_idx(&self, idx: usize) -> usize {
        self.values[idx] as usize
    }

    /// Sets the value at a point.
    ///
    /// # Panics
    ///
    /// Panics if the point is malformed or `value >= k`.
    pub fn set(&mut self, point: &[usize], value: usize) {
        assert!(value < self.k, "value {value} out of range");
        let idx = self.encode(point);
        self.values[idx] = value as u8;
    }

    /// Pointwise minimum of two tables over the same signature.
    ///
    /// # Panics
    ///
    /// Panics on signature mismatch.
    pub fn min(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a.min(b))
    }

    /// Pointwise maximum of two tables over the same signature.
    ///
    /// # Panics
    ///
    /// Panics on signature mismatch.
    pub fn max(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a.max(b))
    }

    /// Pointwise `self ≤ other`.
    ///
    /// # Panics
    ///
    /// Panics on signature mismatch.
    pub fn le(&self, other: &Self) -> bool {
        self.check_signature(other);
        self.values.iter().zip(&other.values).all(|(a, b)| a <= b)
    }

    /// Maximum of the function over all values of the variables in
    /// `var_mask` (bit `i` = variable `i`) — the MV analogue of `∃`.
    pub fn max_over(&self, var_mask: u32) -> Self {
        self.fold_over(var_mask, |a, b| a.max(b))
    }

    /// Minimum of the function over all values of the variables in
    /// `var_mask` — the MV analogue of `∀`.
    pub fn min_over(&self, var_mask: u32) -> Self {
        self.fold_over(var_mask, |a, b| a.min(b))
    }

    /// Cofactor: fixes variable `var` to `value` (the table keeps its
    /// arity; it simply no longer depends on `var`).
    ///
    /// # Panics
    ///
    /// Panics if `var` or `value` is out of range.
    pub fn cofactor(&self, var: usize, value: usize) -> Self {
        assert!(var < self.num_vars(), "variable out of range");
        assert!(value < self.domains[var], "domain value out of range");
        let domains = self.domains.clone();
        let mut point = vec![0usize; domains.len()];
        let mut values = Vec::with_capacity(self.values.len());
        for idx in 0..self.values.len() {
            Self::decode_into(&domains, idx, &mut point);
            point[var] = value;
            values.push(self.values[self.encode(&point)]);
        }
        MvTable { domains, k: self.k, values }
    }

    /// Does the function semantically depend on `var`?
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn depends_on(&self, var: usize) -> bool {
        (1..self.domains[var]).any(|v| self.cofactor(var, v) != self.cofactor(var, 0))
    }

    /// Bitmask of the variables the function depends on.
    pub fn support_mask(&self) -> u32 {
        (0..self.num_vars()).filter(|&v| self.depends_on(v)).fold(0, |m, v| m | (1 << v))
    }

    /// Iterates over all points of the input space as value vectors.
    pub fn points(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.values.len()).map(|idx| {
            let mut point = vec![0usize; self.domains.len()];
            Self::decode_into(&self.domains, idx, &mut point);
            point
        })
    }

    fn fold_over(&self, var_mask: u32, f: impl Fn(u8, u8) -> u8 + Copy) -> Self {
        let mut out = self.clone();
        for var in 0..self.num_vars() {
            if var_mask & (1 << var) == 0 {
                continue;
            }
            let mut acc = out.cofactor(var, 0);
            for v in 1..self.domains[var] {
                let c = out.cofactor(var, v);
                acc = acc.zip(&c, f);
            }
            out = acc;
        }
        out
    }

    fn zip(&self, other: &Self, f: impl Fn(u8, u8) -> u8) -> Self {
        self.check_signature(other);
        let values = self.values.iter().zip(&other.values).map(|(&a, &b)| f(a, b)).collect();
        MvTable { domains: self.domains.clone(), k: self.k, values }
    }

    fn check_signature(&self, other: &Self) {
        assert_eq!(self.domains, other.domains, "tables must share variable domains");
        assert_eq!(self.k, other.k, "tables must share output arity");
    }

    pub(crate) fn encode(&self, point: &[usize]) -> usize {
        assert_eq!(point.len(), self.domains.len(), "point arity mismatch");
        let mut idx = 0;
        for (i, (&v, &d)) in point.iter().zip(&self.domains).enumerate().rev() {
            assert!(v < d, "value {v} out of domain {d} for variable {i}");
            idx = idx * d + v;
        }
        idx
    }

    pub(crate) fn decode_into(domains: &[usize], mut idx: usize, point: &mut [usize]) {
        for (slot, &d) in point.iter_mut().zip(domains) {
            *slot = idx % d;
            idx /= d;
        }
    }
}

impl fmt::Debug for MvTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MvTable(domains {:?}, k={}, {} points)", self.domains, self.k, self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let t = MvTable::from_fn(&[3, 2, 4], 5, |p| (p[0] + p[1] + p[2]) % 5);
        assert_eq!(t.len(), 24);
        for (idx, point) in t.points().enumerate() {
            assert_eq!(t.encode(&point), idx);
            assert_eq!(t.get(&point), t.get_idx(idx));
            assert_eq!(t.get(&point), (point[0] + point[1] + point[2]) % 5);
        }
    }

    #[test]
    fn min_max_and_order() {
        let a = MvTable::from_fn(&[3, 3], 4, |p| p[0]);
        let b = MvTable::from_fn(&[3, 3], 4, |p| p[1]);
        let lo = a.min(&b);
        let hi = a.max(&b);
        assert!(lo.le(&a) && lo.le(&b));
        assert!(a.le(&hi) && b.le(&hi));
        assert!(lo.le(&hi));
        for p in lo.points() {
            assert_eq!(lo.get(&p), p[0].min(p[1]));
            assert_eq!(hi.get(&p), p[0].max(p[1]));
        }
    }

    #[test]
    fn quantifier_analogues() {
        let t = MvTable::from_fn(&[3, 2], 4, |p| p[0] + p[1]); // values 0..=3
        let mx = t.max_over(0b01);
        let mn = t.min_over(0b01);
        for p in t.points() {
            assert_eq!(mx.get(&p), 2 + p[1], "max over x0 of x0+x1");
            assert_eq!(mn.get(&p), p[1]);
        }
        // Quantifying both variables gives constants.
        assert_eq!(t.max_over(0b11), MvTable::constant(&[3, 2], 4, 3));
        assert_eq!(t.min_over(0b11), MvTable::constant(&[3, 2], 4, 0));
    }

    #[test]
    fn cofactor_and_support() {
        let t = MvTable::from_fn(&[3, 3, 2], 3, |p| p[0].min(2));
        assert!(t.depends_on(0));
        assert!(!t.depends_on(1));
        assert!(!t.depends_on(2));
        assert_eq!(t.support_mask(), 0b001);
        let c = t.cofactor(0, 2);
        assert_eq!(c, MvTable::constant(&[3, 3, 2], 3, 2));
    }

    #[test]
    fn boolean_case_is_and_or() {
        // domains = [2,2], k = 2: MIN = AND, MAX = OR.
        let a = MvTable::from_fn(&[2, 2], 2, |p| p[0]);
        let b = MvTable::from_fn(&[2, 2], 2, |p| p[1]);
        let and = a.min(&b);
        let or = a.max(&b);
        for p in a.points() {
            assert_eq!(and.get(&p) == 1, p[0] == 1 && p[1] == 1);
            assert_eq!(or.get(&p) == 1, p[0] == 1 || p[1] == 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn value_range_checked() {
        let _ = MvTable::from_fn(&[2], 2, |_| 2);
    }

    #[test]
    #[should_panic(expected = "share variable domains")]
    fn signature_mismatch_panics() {
        let a = MvTable::constant(&[2, 2], 2, 0);
        let b = MvTable::constant(&[2, 3], 2, 0);
        let _ = a.min(&b);
    }
}
