//! Networks of two-input MIN/MAX gates over unary literals — the MV
//! analogue of the two-input Boolean netlist.

use std::collections::HashMap;

/// Index of a node in an [`MvNetlist`].
pub type MvNodeId = u32;

/// A node of an MV network.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MvGate {
    /// Primary input variable `var` (value passed through unchanged).
    Input {
        /// The variable index.
        var: usize,
    },
    /// Constant output value.
    Const(u8),
    /// Unary literal: a per-value lookup applied to a fanin
    /// (`out = lut[value(fanin)]`) — the MV generalization of a
    /// literal/inverter.
    Unary {
        /// The fanin node.
        input: MvNodeId,
        /// Output value per fanin value.
        lut: Vec<u8>,
    },
    /// Two-input minimum (the MV AND).
    Min(MvNodeId, MvNodeId),
    /// Two-input maximum (the MV OR).
    Max(MvNodeId, MvNodeId),
}

/// A DAG of MV gates with structural hashing.
#[derive(Clone, Debug, Default)]
pub struct MvNetlist {
    nodes: Vec<MvGate>,
    strash: HashMap<MvGate, MvNodeId>,
}

impl MvNetlist {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// All nodes in creation (topological) order.
    pub fn nodes(&self) -> &[MvGate] {
        &self.nodes
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: MvNodeId) -> &MvGate {
        &self.nodes[id as usize]
    }

    /// Adds (or reuses) a primary input node for variable `var`.
    pub fn input(&mut self, var: usize) -> MvNodeId {
        self.intern(MvGate::Input { var })
    }

    /// Adds (or reuses) a constant node.
    pub fn constant(&mut self, value: u8) -> MvNodeId {
        self.intern(MvGate::Const(value))
    }

    /// Adds (or reuses) a unary literal; an identity LUT collapses to its
    /// fanin, a constant LUT to a constant.
    pub fn unary(&mut self, input: MvNodeId, lut: Vec<u8>) -> MvNodeId {
        if lut.windows(2).all(|w| w[0] == w[1]) && !lut.is_empty() {
            return self.constant(lut[0]);
        }
        if lut.iter().enumerate().all(|(i, &v)| v as usize == i) {
            return input;
        }
        // Unary of unary composes.
        if let MvGate::Unary { input: inner, lut: inner_lut } = self.gate(input).clone() {
            let composed: Vec<u8> = inner_lut.iter().map(|&v| lut[v as usize]).collect();
            return self.unary(inner, composed);
        }
        if let MvGate::Const(v) = *self.gate(input) {
            return self.constant(lut[v as usize]);
        }
        self.intern(MvGate::Unary { input, lut })
    }

    /// Adds (or reuses) a MIN gate (idempotence and operand order
    /// normalized).
    pub fn min(&mut self, a: MvNodeId, b: MvNodeId) -> MvNodeId {
        if a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(MvGate::Min(a, b))
    }

    /// Adds (or reuses) a MAX gate.
    pub fn max(&mut self, a: MvNodeId, b: MvNodeId) -> MvNodeId {
        if a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(MvGate::Max(a, b))
    }

    fn intern(&mut self, gate: MvGate) -> MvNodeId {
        if let Some(&id) = self.strash.get(&gate) {
            return id;
        }
        let id = self.nodes.len() as MvNodeId;
        self.nodes.push(gate.clone());
        self.strash.insert(gate, id);
        id
    }

    /// Evaluates node `root` on an input assignment (one value per
    /// variable).
    ///
    /// # Panics
    ///
    /// Panics if an input variable index exceeds the assignment length.
    pub fn eval(&self, root: MvNodeId, assignment: &[usize]) -> usize {
        let mut values = vec![0u8; self.nodes.len()];
        for (idx, gate) in self.nodes.iter().enumerate() {
            values[idx] = match gate {
                MvGate::Input { var } => assignment[*var] as u8,
                MvGate::Const(v) => *v,
                MvGate::Unary { input, lut } => lut[values[*input as usize] as usize],
                MvGate::Min(a, b) => values[*a as usize].min(values[*b as usize]),
                MvGate::Max(a, b) => values[*a as usize].max(values[*b as usize]),
            };
        }
        values[root as usize] as usize
    }

    /// Number of two-input MIN/MAX gates.
    pub fn min_max_gates(&self) -> usize {
        self.nodes.iter().filter(|g| matches!(g, MvGate::Min(..) | MvGate::Max(..))).count()
    }

    /// Number of unary literal nodes.
    pub fn unary_count(&self) -> usize {
        self.nodes.iter().filter(|g| matches!(g, MvGate::Unary { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_hashing_and_identities() {
        let mut nl = MvNetlist::new();
        let x = nl.input(0);
        let y = nl.input(1);
        assert_eq!(nl.min(x, y), nl.min(y, x));
        assert_eq!(nl.min(x, x), x);
        assert_eq!(nl.max(y, y), y);
        assert_eq!(nl.input(0), x, "inputs are shared");
        // Identity LUT collapses.
        assert_eq!(nl.unary(x, vec![0, 1, 2]), x);
        // Constant LUT collapses.
        let c = nl.unary(x, vec![1, 1, 1]);
        assert!(matches!(nl.gate(c), MvGate::Const(1)));
    }

    #[test]
    fn unary_composition() {
        let mut nl = MvNetlist::new();
        let x = nl.input(0);
        let u1 = nl.unary(x, vec![2, 1, 0]); // reverse a ternary value
        let u2 = nl.unary(u1, vec![2, 1, 0]); // reverse again = identity
        assert_eq!(u2, x);
        let u3 = nl.unary(u1, vec![0, 0, 2]);
        for v in 0..3usize {
            let expected = [0usize, 0, 2][2 - v];
            assert_eq!(nl.eval(u3, &[v]), expected);
        }
    }

    #[test]
    fn evaluation() {
        let mut nl = MvNetlist::new();
        let x = nl.input(0);
        let y = nl.input(1);
        let m = nl.min(x, y);
        let t = nl.constant(1);
        let f = nl.max(m, t);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(nl.eval(f, &[a, b]), a.min(b).max(1));
            }
        }
        assert_eq!(nl.min_max_gates(), 2);
        assert_eq!(nl.unary_count(), 0);
    }
}
