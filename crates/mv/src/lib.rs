//! Multi-valued bi-decomposition — the §9 future-work generalization.
//!
//! The DAC 2001 paper closes with: "The future work includes …
//! generalization of the algorithm for multi-valued logic with potential
//! applications in datamining [16]". This crate implements that
//! generalization in the direction of reference [16]
//! (Steinbach–Perkowski–Lang, *Bi-Decomposition of Multi-Valued Functions
//! for Circuit Design and Data Mining Applications*, ISMVL 1999):
//!
//! * multi-valued variables with independent domain sizes, functions with
//!   values in `{0, .., k-1}` ([`MvTable`]);
//! * incompletely specified MV functions as pointwise *intervals*
//!   `[lo, hi]` ([`MvIsf`]) — the MV analogue of the on-set/off-set pair;
//! * **MIN-** and **MAX-bi-decomposability** checks with dedicated
//!   variable sets (the exact generalizations of the paper's AND/OR
//!   Theorem 1), component derivation, and a recursive decomposer into a
//!   network of two-input MIN/MAX gates and unary literals
//!   ([`decompose`], [`MvNetlist`]);
//! * an MV Shannon expansion fallback, keeping the algorithm total.
//!
//! For Boolean domains (every domain = 2, `k = 2`), MIN is AND and MAX is
//! OR, and the checks coincide with the paper's Theorems — the test suite
//! cross-validates against the `boolfn` oracles on exactly that case.
//!
//! ```
//! use mv::{decompose, MvIsf, MvTable};
//!
//! // A ternary function of two ternary variables: f = min(x0, x1).
//! let f = MvTable::from_fn(&[3, 3], 3, |point| point[0].min(point[1]));
//! let isf = MvIsf::from_table(&f);
//! let (netlist, root) = decompose(&isf);
//! assert_eq!(netlist.eval(root, &[2, 1]), 1);
//! assert!(netlist.min_max_gates() <= 1, "a single MIN gate suffices");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod isf;
mod netlist;
mod table;

pub use decompose::{decompose, decompose_with_options, MvOptions, MvStats};
pub use isf::MvIsf;
pub use netlist::{MvGate, MvNetlist, MvNodeId};
pub use table::MvTable;
