//! Property-based tests: random expression trees are built both as BDDs and
//! as dense truth tables; every operator and structural query must agree.
//!
//! The random cases are driven by a seeded splitmix64 stream (the workspace
//! carries no external property-testing dependency), so every run explores
//! exactly the same expressions — a failure reproduces from its seed alone.

use bdd::{Bdd, Func, VarSet};
use benchmarks::SplitMix64;

const NUM_VARS: usize = 6;

/// Seeded random cases per property (mirrors the old proptest case count).
const CASES: u64 = 64;

/// A random Boolean expression over `NUM_VARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

/// Draws a random expression tree of depth ≤ `depth`, biased toward
/// internal nodes so the trees exercise sharing and reduction.
fn random_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.2) {
        return if rng.gen_bool(0.15) {
            Expr::Const(rng.gen_bool(0.5))
        } else {
            Expr::Var(rng.gen_range(NUM_VARS) as u32)
        };
    }
    match rng.gen_range(4) {
        0 => Expr::Not(Box::new(random_expr(rng, depth - 1))),
        1 => {
            Expr::And(Box::new(random_expr(rng, depth - 1)), Box::new(random_expr(rng, depth - 1)))
        }
        2 => Expr::Or(Box::new(random_expr(rng, depth - 1)), Box::new(random_expr(rng, depth - 1))),
        _ => {
            Expr::Xor(Box::new(random_expr(rng, depth - 1)), Box::new(random_expr(rng, depth - 1)))
        }
    }
}

fn expr_for_seed(seed: u64) -> Expr {
    random_expr(&mut SplitMix64::new(seed), 5)
}

fn build(mgr: &mut Bdd, e: &Expr) -> Func {
    match e {
        Expr::Var(v) => mgr.var(*v),
        Expr::Const(b) => mgr.constant(*b),
        Expr::Not(a) => {
            let fa = build(mgr, a);
            mgr.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build(mgr, a);
            let fb = build(mgr, b);
            mgr.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build(mgr, a);
            let fb = build(mgr, b);
            mgr.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build(mgr, a);
            let fb = build(mgr, b);
            mgr.xor(fa, fb)
        }
    }
}

fn eval_expr(e: &Expr, vals: &[bool]) -> bool {
    match e {
        Expr::Var(v) => vals[*v as usize],
        Expr::Const(b) => *b,
        Expr::Not(a) => !eval_expr(a, vals),
        Expr::And(a, b) => eval_expr(a, vals) && eval_expr(b, vals),
        Expr::Or(a, b) => eval_expr(a, vals) || eval_expr(b, vals),
        Expr::Xor(a, b) => eval_expr(a, vals) ^ eval_expr(b, vals),
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NUM_VARS).map(|bits| (0..NUM_VARS).map(|k| bits & (1 << k) != 0).collect())
}

#[test]
fn bdd_matches_expression_semantics() {
    for seed in 0..CASES {
        let e = expr_for_seed(seed);
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        for vals in assignments() {
            assert_eq!(mgr.eval(f, &vals), eval_expr(&e, &vals), "seed {seed}");
        }
    }
}

#[test]
fn canonicity_equal_semantics_equal_handles() {
    for seed in 0..CASES {
        let a = expr_for_seed(2 * seed);
        let b = expr_for_seed(2 * seed + 1);
        let mut mgr = Bdd::new(NUM_VARS);
        let fa = build(&mut mgr, &a);
        let fb = build(&mut mgr, &b);
        let semantically_equal =
            assignments().all(|vals| eval_expr(&a, &vals) == eval_expr(&b, &vals));
        assert_eq!(fa == fb, semantically_equal, "seed {seed}");
    }
}

#[test]
fn sat_count_matches_enumeration() {
    for seed in 0..CASES {
        let e = expr_for_seed(seed);
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        let expected = assignments().filter(|vals| eval_expr(&e, vals)).count();
        assert_eq!(mgr.sat_count(f) as usize, expected, "seed {seed}");
    }
}

#[test]
fn quantifiers_match_enumeration() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let e = random_expr(&mut rng, 5);
        let mask = rng.gen_range(1 << NUM_VARS) as u32;
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        let vars: VarSet = (0..NUM_VARS as u32).filter(|v| mask & (1 << v) != 0).collect();
        let ex = mgr.exists_set(f, &vars);
        let all = mgr.forall_set(f, &vars);
        for vals in assignments() {
            // Enumerate all reassignments of the quantified variables.
            let mut any = false;
            let mut every = true;
            let quantified: Vec<usize> = vars.iter().map(|v| v as usize).collect();
            for sub in 0..1u32 << quantified.len() {
                let mut vals2 = vals.clone();
                for (k, &q) in quantified.iter().enumerate() {
                    vals2[q] = sub & (1 << k) != 0;
                }
                let r = eval_expr(&e, &vals2);
                any |= r;
                every &= r;
            }
            assert_eq!(mgr.eval(ex, &vals), any, "seed {seed}");
            assert_eq!(mgr.eval(all, &vals), every, "seed {seed}");
        }
    }
}

#[test]
fn and_exists_matches_sequential() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let a = random_expr(&mut rng, 5);
        let b = random_expr(&mut rng, 5);
        let mask = rng.gen_range(1 << NUM_VARS) as u32;
        let mut mgr = Bdd::new(NUM_VARS);
        let fa = build(&mut mgr, &a);
        let fb = build(&mut mgr, &b);
        let vars: VarSet = (0..NUM_VARS as u32).filter(|v| mask & (1 << v) != 0).collect();
        let cube = mgr.cube(&vars);
        let fused = mgr.and_exists(fa, fb, cube);
        let conj = mgr.and(fa, fb);
        let seq = mgr.exists(conj, cube);
        assert_eq!(fused, seq, "seed {seed}");
    }
}

#[test]
fn restrict_agrees_on_care() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let f = random_expr(&mut rng, 5);
        let care = random_expr(&mut rng, 5);
        let mut mgr = Bdd::new(NUM_VARS);
        let ff = build(&mut mgr, &f);
        let cc = build(&mut mgr, &care);
        let g = mgr.restrict(ff, cc);
        let lhs = mgr.and(g, cc);
        let rhs = mgr.and(ff, cc);
        assert_eq!(lhs, rhs, "seed {seed}");
    }
}

#[test]
fn support_is_semantic_dependence() {
    for seed in 0..CASES {
        let e = expr_for_seed(seed);
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        let support = mgr.support(f);
        for v in 0..NUM_VARS as u32 {
            let c0 = mgr.cofactor(f, v, false);
            let c1 = mgr.cofactor(f, v, true);
            assert_eq!(support.contains(v), c0 != c1, "seed {seed}, x{v}");
        }
    }
}

#[test]
fn pick_cube_lies_inside_f() {
    for seed in 0..CASES {
        let e = expr_for_seed(seed);
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        match mgr.pick_cube(f) {
            None => assert!(f.is_zero(), "seed {seed}"),
            Some(cube) => {
                assert!(mgr.is_cube(cube), "seed {seed}");
                assert!(mgr.implies(cube, f), "seed {seed}");
            }
        }
    }
}

#[test]
fn reorder_preserves_semantics_random_order() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let e = random_expr(&mut rng, 5);
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        // A random permutation by Fisher–Yates over the same stream.
        let mut order: Vec<u32> = (0..NUM_VARS as u32).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(i + 1);
            order.swap(i, j);
        }
        let roots = mgr.reorder(&order, &[f]);
        for vals in assignments() {
            assert_eq!(mgr.eval(roots[0], &vals), eval_expr(&e, &vals), "seed {seed}");
        }
    }
}

#[test]
fn isop_covers_are_sound_and_inside() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let lo = random_expr(&mut rng, 5);
        let extra = random_expr(&mut rng, 5);
        let mut mgr = Bdd::new(NUM_VARS);
        let flo_raw = build(&mut mgr, &lo);
        let fextra = build(&mut mgr, &extra);
        let fhi = mgr.or(flo_raw, fextra); // guarantees lower ≤ upper
        let (f, cubes) = mgr.isop(flo_raw, fhi);
        let built = mgr.cover_function(&cubes);
        assert_eq!(built, f, "seed {seed}");
        assert!(mgr.implies(flo_raw, f), "seed {seed}");
        assert!(mgr.implies(f, fhi), "seed {seed}");
        // Irredundancy: dropping any cube loses part of the lower bound.
        for skip in 0..cubes.len() {
            let reduced: Vec<_> = cubes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| c.clone())
                .collect();
            let g = mgr.cover_function(&reduced);
            assert!(!mgr.implies(flo_raw, g), "seed {seed}: cube {skip} redundant");
        }
    }
}

#[test]
fn gc_preserves_protected_functions() {
    for seed in 0..CASES {
        let e = expr_for_seed(seed);
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        mgr.protect(f);
        mgr.gc();
        for vals in assignments() {
            assert_eq!(mgr.eval(f, &vals), eval_expr(&e, &vals), "seed {seed}");
        }
        // After GC the manager must still be fully usable.
        let g = build(&mut mgr, &e);
        assert_eq!(g, f, "seed {seed}");
        mgr.unprotect(f);
    }
}
