//! Property-based tests: random expression trees are built both as BDDs and
//! as dense truth tables; every operator and structural query must agree.

use bdd::{Bdd, Func, VarSet};
use proptest::prelude::*;

const NUM_VARS: usize = 6;

/// A random Boolean expression over `NUM_VARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u32..NUM_VARS as u32).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(mgr: &mut Bdd, e: &Expr) -> Func {
    match e {
        Expr::Var(v) => mgr.var(*v),
        Expr::Const(b) => mgr.constant(*b),
        Expr::Not(a) => {
            let fa = build(mgr, a);
            mgr.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build(mgr, a);
            let fb = build(mgr, b);
            mgr.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build(mgr, a);
            let fb = build(mgr, b);
            mgr.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build(mgr, a);
            let fb = build(mgr, b);
            mgr.xor(fa, fb)
        }
    }
}

fn eval_expr(e: &Expr, vals: &[bool]) -> bool {
    match e {
        Expr::Var(v) => vals[*v as usize],
        Expr::Const(b) => *b,
        Expr::Not(a) => !eval_expr(a, vals),
        Expr::And(a, b) => eval_expr(a, vals) && eval_expr(b, vals),
        Expr::Or(a, b) => eval_expr(a, vals) || eval_expr(b, vals),
        Expr::Xor(a, b) => eval_expr(a, vals) ^ eval_expr(b, vals),
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NUM_VARS).map(|bits| (0..NUM_VARS).map(|k| bits & (1 << k) != 0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bdd_matches_expression_semantics(e in expr_strategy()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        for vals in assignments() {
            prop_assert_eq!(mgr.eval(f, &vals), eval_expr(&e, &vals));
        }
    }

    #[test]
    fn canonicity_equal_semantics_equal_handles(a in expr_strategy(), b in expr_strategy()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let fa = build(&mut mgr, &a);
        let fb = build(&mut mgr, &b);
        let semantically_equal =
            assignments().all(|vals| eval_expr(&a, &vals) == eval_expr(&b, &vals));
        prop_assert_eq!(fa == fb, semantically_equal);
    }

    #[test]
    fn sat_count_matches_enumeration(e in expr_strategy()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        let expected = assignments().filter(|vals| eval_expr(&e, vals)).count();
        prop_assert_eq!(mgr.sat_count(f) as usize, expected);
    }

    #[test]
    fn quantifiers_match_enumeration(e in expr_strategy(), mask in 0u32..(1 << NUM_VARS)) {
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        let vars: VarSet = (0..NUM_VARS as u32).filter(|v| mask & (1 << v) != 0).collect();
        let ex = mgr.exists_set(f, &vars);
        let all = mgr.forall_set(f, &vars);
        for vals in assignments() {
            // Enumerate all reassignments of the quantified variables.
            let mut any = false;
            let mut every = true;
            let quantified: Vec<usize> = vars.iter().map(|v| v as usize).collect();
            for sub in 0..1u32 << quantified.len() {
                let mut vals2 = vals.clone();
                for (k, &q) in quantified.iter().enumerate() {
                    vals2[q] = sub & (1 << k) != 0;
                }
                let r = eval_expr(&e, &vals2);
                any |= r;
                every &= r;
            }
            prop_assert_eq!(mgr.eval(ex, &vals), any);
            prop_assert_eq!(mgr.eval(all, &vals), every);
        }
    }

    #[test]
    fn and_exists_matches_sequential(a in expr_strategy(), b in expr_strategy(),
                                     mask in 0u32..(1 << NUM_VARS)) {
        let mut mgr = Bdd::new(NUM_VARS);
        let fa = build(&mut mgr, &a);
        let fb = build(&mut mgr, &b);
        let vars: VarSet = (0..NUM_VARS as u32).filter(|v| mask & (1 << v) != 0).collect();
        let cube = mgr.cube(&vars);
        let fused = mgr.and_exists(fa, fb, cube);
        let conj = mgr.and(fa, fb);
        let seq = mgr.exists(conj, cube);
        prop_assert_eq!(fused, seq);
    }

    #[test]
    fn restrict_agrees_on_care(f in expr_strategy(), care in expr_strategy()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let ff = build(&mut mgr, &f);
        let cc = build(&mut mgr, &care);
        let g = mgr.restrict(ff, cc);
        let lhs = mgr.and(g, cc);
        let rhs = mgr.and(ff, cc);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn support_is_semantic_dependence(e in expr_strategy()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        let support = mgr.support(f);
        for v in 0..NUM_VARS as u32 {
            let c0 = mgr.cofactor(f, v, false);
            let c1 = mgr.cofactor(f, v, true);
            prop_assert_eq!(support.contains(v), c0 != c1);
        }
    }

    #[test]
    fn pick_cube_lies_inside_f(e in expr_strategy()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        match mgr.pick_cube(f) {
            None => prop_assert!(f.is_zero()),
            Some(cube) => {
                prop_assert!(mgr.is_cube(cube));
                prop_assert!(mgr.implies(cube, f));
            }
        }
    }

    #[test]
    fn reorder_preserves_semantics_random_order(e in expr_strategy(), seed in any::<u64>()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        // Derive a permutation from the seed (Fisher–Yates with an LCG).
        let mut order: Vec<u32> = (0..NUM_VARS as u32).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let roots = mgr.reorder(&order, &[f]);
        for vals in assignments() {
            prop_assert_eq!(mgr.eval(roots[0], &vals), eval_expr(&e, &vals));
        }
    }

    #[test]
    fn isop_covers_are_sound_and_inside(lo in expr_strategy(), extra in expr_strategy()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let flo_raw = build(&mut mgr, &lo);
        let fextra = build(&mut mgr, &extra);
        let fhi = mgr.or(flo_raw, fextra); // guarantees lower ≤ upper
        let (f, cubes) = mgr.isop(flo_raw, fhi);
        let built = mgr.cover_function(&cubes);
        prop_assert_eq!(built, f);
        prop_assert!(mgr.implies(flo_raw, f));
        prop_assert!(mgr.implies(f, fhi));
        // Irredundancy: dropping any cube loses part of the lower bound.
        for skip in 0..cubes.len() {
            let reduced: Vec<_> = cubes
                .iter()
                .enumerate()
                .filter_map(|(i, c)| (i != skip).then(|| c.clone()))
                .collect();
            let g = mgr.cover_function(&reduced);
            prop_assert!(!mgr.implies(flo_raw, g), "cube {} redundant", skip);
        }
    }

    #[test]
    fn gc_preserves_protected_functions(e in expr_strategy()) {
        let mut mgr = Bdd::new(NUM_VARS);
        let f = build(&mut mgr, &e);
        mgr.protect(f);
        mgr.gc();
        for vals in assignments() {
            prop_assert_eq!(mgr.eval(f, &vals), eval_expr(&e, &vals));
        }
        // After GC the manager must still be fully usable.
        let g = build(&mut mgr, &e);
        prop_assert_eq!(g, f);
        mgr.unprotect(f);
    }
}
