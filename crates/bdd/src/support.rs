//! Structural queries: support and node counts.

use std::collections::HashSet;

use crate::hash::FxBuildHasher;
use crate::manager::{Bdd, Func};
use crate::varset::VarSet;

impl Bdd {
    /// The support of `f`: the set of variables `f` structurally depends on.
    ///
    /// For a reduced BDD, structural dependence coincides with semantic
    /// dependence.
    pub fn support(&self, f: Func) -> VarSet {
        let mut vars = VarSet::new();
        let mut seen: HashSet<u32, FxBuildHasher> = HashSet::default();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_const() || !seen.insert(g.0) {
                continue;
            }
            let n = self.node(g);
            vars.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        vars
    }

    /// The union of the supports of several functions.
    pub fn support_all(&self, fs: &[Func]) -> VarSet {
        let mut vars = VarSet::new();
        for &f in fs {
            vars = vars.union(&self.support(f));
        }
        vars
    }

    /// Number of BDD nodes in the (shared) DAG rooted at `f`, excluding the
    /// terminals. This is the standard "BDD size" measure.
    pub fn node_count(&self, f: Func) -> usize {
        let mut seen: HashSet<u32, FxBuildHasher> = HashSet::default();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(g) = stack.pop() {
            if g.is_const() || !seen.insert(g.0) {
                continue;
            }
            count += 1;
            let n = self.node(g);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Number of nodes in the shared DAG of several roots, excluding
    /// terminals (nodes shared between roots are counted once).
    pub fn node_count_all(&self, fs: &[Func]) -> usize {
        let mut seen: HashSet<u32, FxBuildHasher> = HashSet::default();
        let mut stack: Vec<Func> = fs.to_vec();
        let mut count = 0;
        while let Some(g) = stack.pop() {
            if g.is_const() || !seen.insert(g.0) {
                continue;
            }
            count += 1;
            let n = self.node(g);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_of_combinations() {
        let mut mgr = Bdd::new(5);
        let a = mgr.var(0);
        let c = mgr.var(2);
        let e = mgr.var(4);
        let ac = mgr.and(a, c);
        let f = mgr.xor(ac, e);
        assert_eq!(mgr.support(f), VarSet::from_iter([0u32, 2, 4]));
        assert!(mgr.support(Func::ONE).is_empty());
        assert_eq!(mgr.support(a), VarSet::singleton(0));
    }

    #[test]
    fn support_shrinks_under_quantification() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let ex = mgr.exists_set(f, &VarSet::singleton(0));
        assert_eq!(mgr.support(ex), VarSet::singleton(1));
    }

    #[test]
    fn node_counts() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        assert_eq!(mgr.node_count(a), 1);
        assert_eq!(mgr.node_count(Func::ZERO), 0);
        let ab = mgr.and(a, b);
        assert_eq!(mgr.node_count(ab), 2);
        let f = mgr.xor(a, b);
        assert_eq!(mgr.node_count(f), 3, "xor of two vars has 3 nodes");
        let g = mgr.and(ab, c);
        // Shared count: f and g share nothing except possibly var nodes.
        let shared = mgr.node_count_all(&[ab, g]);
        assert!(shared <= mgr.node_count(ab) + mgr.node_count(g));
        assert_eq!(mgr.node_count_all(&[ab, ab]), mgr.node_count(ab));
    }

    #[test]
    fn support_all_unions() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let d = mgr.var(3);
        assert_eq!(mgr.support_all(&[a, d]), VarSet::from_iter([0u32, 3]));
    }
}
