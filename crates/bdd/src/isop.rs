//! Irredundant sum-of-products covers from BDD intervals
//! (Minato–Morreale ISOP).
//!
//! Given an interval `[lower, upper]` (e.g. the on-set and the complement
//! of the off-set of an incompletely specified function), [`Bdd::isop`]
//! produces a cube cover whose function lies inside the interval and in
//! which no cube is redundant. This is the standard bridge from BDDs back
//! to two-level (PLA) form.

use crate::manager::{Bdd, Func};
use crate::VarId;

/// A product term as a sorted list of literals (`(variable, polarity)`).
pub type IsopCube = Vec<(VarId, bool)>;

impl Bdd {
    /// Minato–Morreale ISOP: computes an irredundant sum-of-products
    /// between `lower` and `upper`.
    ///
    /// Returns the cover's function `f` (with `lower ≤ f ≤ upper`) and
    /// its cube list. The empty cube list denotes constant 0; a cover
    /// containing the empty cube denotes constant 1.
    ///
    /// # Panics
    ///
    /// Panics if `lower ≰ upper` (empty interval).
    pub fn isop(&mut self, lower: Func, upper: Func) -> (Func, Vec<IsopCube>) {
        assert!(self.implies(lower, upper), "isop needs lower ≤ upper");
        let mut cubes = Vec::new();
        let mut path = Vec::new();
        let f = self.isop_rec(lower, upper, &mut path, &mut cubes);
        (f, cubes)
    }

    fn isop_rec(
        &mut self,
        lower: Func,
        upper: Func,
        path: &mut IsopCube,
        out: &mut Vec<IsopCube>,
    ) -> Func {
        if lower.is_zero() {
            return Func::ZERO;
        }
        if upper.is_one() {
            out.push(path.clone());
            return Func::ONE;
        }
        // Split on the topmost variable of either bound.
        let level = self.level(lower).min(self.level(upper));
        let var = self.var_at_level(level);
        let (l0, l1) = self.cofactors_at(lower, level);
        let (u0, u1) = self.cofactors_at(upper, level);
        // Minterms that can only be covered on the ¬x side / x side.
        let nu1 = self.not(u1);
        let lonly0 = self.and(l0, nu1);
        let nu0 = self.not(u0);
        let lonly1 = self.and(l1, nu0);
        path.push((var, false));
        let f0 = self.isop_rec(lonly0, u0, path, out);
        path.pop();
        path.push((var, true));
        let f1 = self.isop_rec(lonly1, u1, path, out);
        path.pop();
        // What remains must be covered by cubes without x.
        let nf0 = self.not(f0);
        let rest0 = self.and(l0, nf0);
        let nf1 = self.not(f1);
        let rest1 = self.and(l1, nf1);
        let lrest = self.or(rest0, rest1);
        let ushared = self.and(u0, u1);
        let fd = self.isop_rec(lrest, ushared, path, out);
        // Assemble x'·f0 + x·f1 + fd.
        let x = self.var(var);
        let nx = self.not(x);
        let t0 = self.and(nx, f0);
        let t1 = self.and(x, f1);
        let t = self.or(t0, t1);
        self.or(t, fd)
    }

    /// The function of a cube list (disjunction of the literal products).
    pub fn cover_function(&mut self, cubes: &[IsopCube]) -> Func {
        let mut f = Func::ZERO;
        for cube in cubes {
            let mut prod = Func::ONE;
            for &(v, pos) in cube {
                let lit = self.literal(v, pos);
                prod = self.and(prod, lit);
            }
            f = self.or(f, prod);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cover function must equal the returned `f`, lie inside the
    /// interval, and be an *irredundant* cover (dropping any cube breaks
    /// `lower ≤ f`).
    fn assert_isop_valid(mgr: &mut Bdd, lower: Func, upper: Func) -> usize {
        let (f, cubes) = mgr.isop(lower, upper);
        let built = mgr.cover_function(&cubes);
        assert_eq!(built, f, "cube list and function must agree");
        assert!(mgr.implies(lower, f), "cover must contain the lower bound");
        assert!(mgr.implies(f, upper), "cover must stay below the upper bound");
        for skip in 0..cubes.len() {
            let reduced: Vec<IsopCube> = cubes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| c.clone())
                .collect();
            let g = mgr.cover_function(&reduced);
            assert!(!mgr.implies(lower, g), "cube {skip} is redundant in {cubes:?}");
        }
        cubes.len()
    }

    #[test]
    fn exact_cover_of_or_of_ands() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b);
        let cd = mgr.and(c, d);
        let f = mgr.or(ab, cd);
        let count = assert_isop_valid(&mut mgr, f, f);
        assert_eq!(count, 2, "the two prime implicants");
    }

    #[test]
    fn constants() {
        let mut mgr = Bdd::new(2);
        let (f, cubes) = mgr.isop(Func::ZERO, Func::ZERO);
        assert!(f.is_zero() && cubes.is_empty());
        let (f, cubes) = mgr.isop(Func::ONE, Func::ONE);
        assert!(f.is_one());
        assert_eq!(cubes, vec![Vec::new()], "the tautology cube");
        let a = mgr.var(0);
        let (f, cubes) = mgr.isop(Func::ZERO, a);
        assert!(f.is_zero() && cubes.is_empty(), "0 is the smallest cover");
    }

    #[test]
    fn dont_cares_shrink_the_cover() {
        // lower = minterm a·b·c, upper = a: one literal suffices.
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let abc = mgr.and(ab, c);
        let (f, cubes) = mgr.isop(abc, a);
        assert_eq!(f, a);
        assert_eq!(cubes, vec![vec![(0, true)]]);
    }

    #[test]
    fn parity_cover_is_minterms() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.xor(a, b);
        let f = mgr.xor(ab, c);
        let count = assert_isop_valid(&mut mgr, f, f);
        assert_eq!(count, 4, "3-input parity has four prime minterms");
    }

    #[test]
    fn randomized_intervals_are_covered_irredundantly() {
        for seed in 0..15u64 {
            let mut mgr = Bdd::new(5);
            // Structured pseudo-random pair from the seed.
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
            let mut f = Func::ZERO;
            let mut g = Func::ZERO;
            for _ in 0..6 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v1 = ((state >> 33) % 5) as u32;
                let v2 = ((state >> 43) % 5) as u32;
                let x = mgr.literal(v1, state & 1 != 0);
                let y = mgr.literal(v2, state & 2 != 0);
                let t = mgr.and(x, y);
                f = mgr.or(f, t);
                let u = mgr.xor(x, y);
                g = mgr.or(g, u);
            }
            let lower = mgr.and(f, g);
            let upper = mgr.or(f, g);
            assert_isop_valid(&mut mgr, lower, upper);
        }
    }
}
