//! Boolean operators: negation, the binary `apply` family, and if-then-else.
//!
//! The public entry points ([`Bdd::apply`], [`Bdd::not`], [`Bdd::ite`] and
//! the named wrappers) optionally time themselves into the manager's
//! per-operation latency histogram ([`Bdd::enable_op_timing`]); the
//! recursion happens in private `*_rec` bodies so a call is sampled once,
//! not once per visited node.

use std::time::Instant;

use crate::manager::{Bdd, CacheKey, CacheOp, Func};

/// Binary Boolean connectives accepted by [`Bdd::apply`].
///
/// The non-monotone connectives NAND/NOR/XNOR/implication are provided for
/// convenience; internally they reduce to the four cached primitives
/// (AND, OR, XOR, difference) plus negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Conjunction `f · g`.
    And,
    /// Disjunction `f + g`.
    Or,
    /// Exclusive or `f ⊕ g`.
    Xor,
    /// Sheffer stroke `¬(f · g)`.
    Nand,
    /// Peirce arrow `¬(f + g)`.
    Nor,
    /// Equivalence `¬(f ⊕ g)`.
    Xnor,
    /// Difference (Boolean SHARP) `f · ¬g`.
    Diff,
    /// Implication `¬f + g`.
    Imp,
}

impl Bdd {
    /// Negation `¬f`.
    pub fn not(&mut self, f: Func) -> Func {
        if !self.op_timing_enabled() {
            return self.not_rec(f);
        }
        let start = Instant::now();
        let result = self.not_rec(f);
        self.record_op_duration(start.elapsed());
        result
    }

    fn not_rec(&mut self, f: Func) -> Func {
        if f.is_zero() {
            return Func::ONE;
        }
        if f.is_one() {
            return Func::ZERO;
        }
        let key = CacheKey { op: CacheOp::Not, a: f.0, b: 0, c: 0 };
        if let Some(hit) = self.cache_get(&key) {
            return hit;
        }
        let node = *self.node(f);
        let low = self.not_rec(node.low);
        let high = self.not_rec(node.high);
        let result = self.mk(node.var, low, high);
        self.cache_put(key, result);
        result
    }

    /// Conjunction `f · g`.
    pub fn and(&mut self, f: Func, g: Func) -> Func {
        self.apply(BinOp::And, f, g)
    }

    /// Disjunction `f + g`.
    pub fn or(&mut self, f: Func, g: Func) -> Func {
        self.apply(BinOp::Or, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Func, g: Func) -> Func {
        self.apply(BinOp::Xor, f, g)
    }

    /// Equivalence `f ≡ g` (XNOR).
    pub fn xnor(&mut self, f: Func, g: Func) -> Func {
        self.apply(BinOp::Xnor, f, g)
    }

    /// Negated conjunction.
    pub fn nand(&mut self, f: Func, g: Func) -> Func {
        self.apply(BinOp::Nand, f, g)
    }

    /// Negated disjunction.
    pub fn nor(&mut self, f: Func, g: Func) -> Func {
        self.apply(BinOp::Nor, f, g)
    }

    /// Boolean difference (SHARP) `f · ¬g` — written `A - B` in the paper.
    pub fn diff(&mut self, f: Func, g: Func) -> Func {
        self.apply(BinOp::Diff, f, g)
    }

    /// Implication `f → g` as a function.
    pub fn imp(&mut self, f: Func, g: Func) -> Func {
        self.apply(BinOp::Imp, f, g)
    }

    /// Decision procedure: does `f ≤ g` hold (i.e. `f` implies `g`)?
    pub fn implies(&mut self, f: Func, g: Func) -> bool {
        self.diff(f, g).is_zero()
    }

    /// Decision procedure: are `f` and `g` disjoint (`f · g = 0`)?
    pub fn disjoint(&mut self, f: Func, g: Func) -> bool {
        self.and(f, g).is_zero()
    }

    /// Applies a binary connective to two functions.
    pub fn apply(&mut self, op: BinOp, f: Func, g: Func) -> Func {
        if !self.op_timing_enabled() {
            return self.apply_rec(op, f, g);
        }
        let start = Instant::now();
        let result = self.apply_rec(op, f, g);
        self.record_op_duration(start.elapsed());
        result
    }

    fn apply_rec(&mut self, op: BinOp, f: Func, g: Func) -> Func {
        match op {
            BinOp::And => self.apply_prim(CacheOp::And, f, g),
            BinOp::Or => self.apply_prim(CacheOp::Or, f, g),
            BinOp::Xor => self.apply_prim(CacheOp::Xor, f, g),
            BinOp::Diff => self.apply_prim(CacheOp::Diff, f, g),
            BinOp::Nand => {
                let t = self.apply_prim(CacheOp::And, f, g);
                self.not_rec(t)
            }
            BinOp::Nor => {
                let t = self.apply_prim(CacheOp::Or, f, g);
                self.not_rec(t)
            }
            BinOp::Xnor => {
                let t = self.apply_prim(CacheOp::Xor, f, g);
                self.not_rec(t)
            }
            BinOp::Imp => {
                let nf = self.not_rec(f);
                self.apply_prim(CacheOp::Or, nf, g)
            }
        }
    }

    fn apply_terminal(op: CacheOp, f: Func, g: Func) -> Option<Func> {
        match op {
            CacheOp::And => {
                if f.is_zero() || g.is_zero() {
                    Some(Func::ZERO)
                } else if f.is_one() {
                    Some(g)
                } else if g.is_one() || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            CacheOp::Or => {
                if f.is_one() || g.is_one() {
                    Some(Func::ONE)
                } else if f.is_zero() {
                    Some(g)
                } else if g.is_zero() || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            CacheOp::Xor => {
                if f == g {
                    Some(Func::ZERO)
                } else if f.is_zero() {
                    Some(g)
                } else if g.is_zero() {
                    Some(f)
                } else {
                    None
                }
            }
            CacheOp::Diff => {
                if f.is_zero() || g.is_one() || f == g {
                    Some(Func::ZERO)
                } else if g.is_zero() {
                    Some(f)
                } else {
                    None
                }
            }
            _ => unreachable!("apply_terminal only sees binary primitives"),
        }
    }

    fn apply_prim(&mut self, op: CacheOp, f: Func, g: Func) -> Func {
        self.note_apply_step();
        if let Some(t) = Self::apply_terminal(op, f, g) {
            return t;
        }
        // Commutative ops: normalize the key.
        let (a, b) = match op {
            CacheOp::And | CacheOp::Or | CacheOp::Xor if f.0 > g.0 => (g, f),
            _ => (f, g),
        };
        let key = CacheKey { op, a: a.0, b: b.0, c: 0 };
        if let Some(hit) = self.cache_get(&key) {
            return hit;
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let top = lf.min(lg);
        let var = self.var_at_level(top);
        let (f0, f1) = if lf == top {
            let n = *self.node(f);
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == top {
            let n = *self.node(g);
            (n.low, n.high)
        } else {
            (g, g)
        };
        let low = self.apply_prim(op, f0, g0);
        let high = self.apply_prim(op, f1, g1);
        let result = self.mk(var, low, high);
        self.cache_put(key, result);
        result
    }

    /// If-then-else `ite(f, g, h) = f·g + ¬f·h`.
    pub fn ite(&mut self, f: Func, g: Func, h: Func) -> Func {
        if !self.op_timing_enabled() {
            return self.ite_rec(f, g, h);
        }
        let start = Instant::now();
        let result = self.ite_rec(f, g, h);
        self.record_op_duration(start.elapsed());
        result
    }

    fn ite_rec(&mut self, f: Func, g: Func, h: Func) -> Func {
        // Terminal cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if g.is_zero() && h.is_one() {
            return self.not_rec(f);
        }
        // Standard-triple normalization: route degenerate triples through
        // the canonical binary-op cache slots instead of a private Ite
        // entry, so `ite(f, 1, h)` and `or(f, h)` share one cached result.
        if g.is_one() {
            return self.apply_prim(CacheOp::Or, f, h);
        }
        if h.is_zero() {
            return self.apply_prim(CacheOp::And, f, g);
        }
        if g.is_zero() {
            // ite(f, 0, h) = ¬f·h = h − f.
            return self.apply_prim(CacheOp::Diff, h, f);
        }
        if h.is_one() {
            // ite(f, g, 1) = ¬f + g.
            let nf = self.not_rec(f);
            return self.apply_prim(CacheOp::Or, nf, g);
        }
        if f == g {
            // ite(f, f, h) = f + h.
            return self.apply_prim(CacheOp::Or, f, h);
        }
        if f == h {
            // ite(f, g, f) = f·g.
            return self.apply_prim(CacheOp::And, f, g);
        }
        let key = CacheKey { op: CacheOp::Ite, a: f.0, b: g.0, c: h.0 };
        if let Some(hit) = self.cache_get(&key) {
            return hit;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let var = self.var_at_level(top);
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let low = self.ite_rec(f0, g0, h0);
        let high = self.ite_rec(f1, g1, h1);
        let result = self.mk(var, low, high);
        self.cache_put(key, result);
        result
    }

    #[inline]
    pub(crate) fn cofactors_at(&self, f: Func, level: u32) -> (Func, Func) {
        if self.level(f) == level {
            let n = self.node(f);
            (n.low, n.high)
        } else {
            (f, f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively compares a BDD operator against the boolean connective
    /// on every input assignment of a 3-variable space.
    fn check3(mgr: &mut Bdd, f: Func, spec: impl Fn(bool, bool, bool) -> bool) {
        for bits in 0..8u32 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(mgr.eval(f, &[a, b, c]), spec(a, b, c), "mismatch at {bits:03b}");
        }
    }

    #[test]
    fn all_binary_ops_match_their_spec() {
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let xy = mgr.and(x, y);
        let f = mgr.or(xy, z);
        check3(&mut mgr, f, |a, b, c| (a && b) || c);

        let g = mgr.xor(x, y);
        check3(&mut mgr, g, |a, b, _| a ^ b);
        let g = mgr.xnor(x, z);
        check3(&mut mgr, g, |a, _, c| a == c);
        let g = mgr.nand(y, z);
        check3(&mut mgr, g, |_, b, c| !(b && c));
        let g = mgr.nor(x, z);
        check3(&mut mgr, g, |a, _, c| !(a || c));
        let g = mgr.diff(x, y);
        check3(&mut mgr, g, |a, b, _| a && !b);
        let g = mgr.imp(x, y);
        check3(&mut mgr, g, |a, b, _| !a || b);
        let g = mgr.not(x);
        check3(&mut mgr, g, |a, _, _| !a);
    }

    #[test]
    fn apply_dispatches_all_ops() {
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        for op in [
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Nand,
            BinOp::Nor,
            BinOp::Xnor,
            BinOp::Diff,
            BinOp::Imp,
        ] {
            let f = mgr.apply(op, x, y);
            let spec = |a: bool, b: bool| match op {
                BinOp::And => a && b,
                BinOp::Or => a || b,
                BinOp::Xor => a ^ b,
                BinOp::Nand => !(a && b),
                BinOp::Nor => !(a || b),
                BinOp::Xnor => a == b,
                BinOp::Diff => a && !b,
                BinOp::Imp => !a || b,
            };
            check3(&mut mgr, f, |a, b, _| spec(a, b));
        }
    }

    #[test]
    fn double_negation_is_identity() {
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.xor(x, y);
        let nf = mgr.not(f);
        assert_eq!(mgr.not(nf), f, "canonical BDDs: ¬¬f is the same handle");
    }

    #[test]
    fn ite_matches_mux_semantics() {
        let mut mgr = Bdd::new(3);
        let s = mgr.var(0);
        let a = mgr.var(1);
        let b = mgr.var(2);
        let f = mgr.ite(s, a, b);
        check3(&mut mgr, f, |sel, x1, x0| if sel { x1 } else { x0 });
        // Special cases return without node construction.
        assert_eq!(mgr.ite(Func::ONE, a, b), a);
        assert_eq!(mgr.ite(Func::ZERO, a, b), b);
        assert_eq!(mgr.ite(s, a, a), a);
        assert_eq!(mgr.ite(s, Func::ONE, Func::ZERO), s);
        let ns = mgr.not(s);
        assert_eq!(mgr.ite(s, Func::ZERO, Func::ONE), ns);
    }

    #[test]
    fn ite_standard_triples_reduce_to_binary_ops() {
        let mut mgr = Bdd::new(3);
        let f = mgr.var(0);
        let g = mgr.var(1);
        let h = mgr.var(2);
        let fg = mgr.and(f, g);
        let fh = mgr.or(f, h);
        // Degenerate triples equal their binary forms…
        assert_eq!(mgr.ite(f, Func::ONE, h), fh);
        assert_eq!(mgr.ite(f, g, Func::ZERO), fg);
        assert_eq!(mgr.ite(f, f, h), fh);
        assert_eq!(mgr.ite(f, g, f), fg);
        let nf = mgr.not(f);
        let nf_or_g = mgr.or(nf, g);
        assert_eq!(mgr.ite(f, g, Func::ONE), nf_or_g);
        let h_minus_f = mgr.diff(h, f);
        assert_eq!(mgr.ite(f, Func::ZERO, h), h_minus_f);
        // …and hit the *binary* cache slot the precomputed op populated.
        let before = mgr.op_stats();
        let _ = mgr.ite(f, Func::ONE, h);
        let after = mgr.op_stats();
        assert_eq!(
            after.cache_hits,
            before.cache_hits + 1,
            "normalized triple shares or(f,h)'s slot"
        );
    }

    #[test]
    fn implication_and_disjointness_tests() {
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let xy = mgr.and(x, y);
        let xory = mgr.or(x, y);
        assert!(mgr.implies(xy, xory));
        assert!(!mgr.implies(xory, xy));
        let nx = mgr.not(x);
        assert!(mgr.disjoint(x, nx));
        assert!(!mgr.disjoint(x, xory));
    }

    #[test]
    fn boolean_algebra_identities() {
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        // De Morgan.
        let lhs = mgr.nand(x, y);
        let nx = mgr.not(x);
        let ny = mgr.not(y);
        let rhs = mgr.or(nx, ny);
        assert_eq!(lhs, rhs);
        // Distributivity.
        let yz = mgr.or(y, z);
        let lhs = mgr.and(x, yz);
        let xy = mgr.and(x, y);
        let xz = mgr.and(x, z);
        let rhs = mgr.or(xy, xz);
        assert_eq!(lhs, rhs);
        // XOR associativity.
        let xy = mgr.xor(x, y);
        let lhs = mgr.xor(xy, z);
        let yz = mgr.xor(y, z);
        let rhs = mgr.xor(x, yz);
        assert_eq!(lhs, rhs);
    }
}
