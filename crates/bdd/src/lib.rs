//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! This crate is a self-contained substitute for the BuDDy package used by
//! the DAC 2001 paper *An Algorithm for Bi-Decomposition of Logic Functions*.
//! Like BuDDy it uses plain (non-complemented) edges, a unique table for
//! canonicity, a computed cache for memoization, and explicit garbage
//! collection from protected roots.
//!
//! The central type is the [`Bdd`] manager. Functions are lightweight
//! [`Func`] handles (indices into the manager's node store); all operations
//! are methods on the manager.
//!
//! ```
//! use bdd::Bdd;
//!
//! let mut mgr = Bdd::new(3);
//! let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
//! let ab = mgr.and(a, b);
//! let f = mgr.or(ab, c); // f = a·b + c
//! assert_eq!(mgr.sat_count(f), 5.0);
//! assert!(mgr.implies(ab, f));
//! ```
//!
//! # Highlights
//!
//! * [`Bdd::apply`]-family binary operators, [`Bdd::ite`], negation.
//! * Existential and universal quantification over variable cubes
//!   ([`Bdd::exists`], [`Bdd::forall`]) — the workhorses of the
//!   bi-decomposition formulas.
//! * Cofactors, restriction and functional composition.
//! * Structural queries: support, node counts, satisfy counts, cube picking.
//! * Explicit mark-and-sweep garbage collection ([`Bdd::gc`]) from
//!   [`Bdd::protect`]ed roots.
//! * Variable reordering by rebuild ([`Bdd::reorder`]) plus static ordering
//!   heuristics ([`reorder::order_by_frequency`]).
//! * Post-run table/cache/GC analytics ([`Bdd::analytics`]): probe-length
//!   distribution, per-op cache hit rates, GC reclaim efficacy.
//! * Graphviz DOT export for debugging ([`Bdd::to_dot`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
mod cofactor;
mod dot;
mod hash;
mod isop;
mod manager;
mod ops;
mod quant;
pub mod reorder;
mod sat;
mod support;
mod varset;

pub use analytics::{Analytics, GcAnalytics, GcSample, OpCacheStats, ProbeStats};
pub use isop::IsopCube;
pub use manager::{Bdd, Func, ManagerSnapshot, MemReport, OpStats, VarId, DEFAULT_CACHE_ENTRIES};
pub use ops::BinOp;
pub use varset::VarSet;
