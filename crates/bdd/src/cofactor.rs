//! Cofactors, cube restriction and functional composition.

use crate::manager::{Bdd, CacheKey, CacheOp, Func};

impl Bdd {
    /// The cofactor `f|x_v = value` (Shannon cofactor w.r.t. one literal).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this manager.
    pub fn cofactor(&mut self, f: Func, v: crate::VarId, value: bool) -> Func {
        assert!((v as usize) < self.num_vars(), "variable x{v} out of range");
        if f.is_const() {
            return f;
        }
        let op = if value { CacheOp::CofPos } else { CacheOp::CofNeg };
        let key = CacheKey { op, a: f.0, b: v, c: 0 };
        if let Some(hit) = self.cache_get(&key) {
            return hit;
        }
        let target = self.level_of_var(v);
        let lf = self.level(f);
        let result = if lf > target {
            f // v does not occur in f
        } else if lf == target {
            let n = self.node(f);
            if value {
                n.high
            } else {
                n.low
            }
        } else {
            let n = *self.node(f);
            let low = self.cofactor(n.low, v, value);
            let high = self.cofactor(n.high, v, value);
            self.mk(n.var, low, high)
        };
        self.cache_put(key, result);
        result
    }

    /// Restricts `f` by every literal of `cube`, which may contain positive
    /// and negative literals (a path cube as returned by
    /// [`Bdd::pick_cube`]).
    pub fn restrict_cube(&mut self, f: Func, cube: Func) -> Func {
        let mut result = f;
        let mut c = cube;
        while !c.is_const() {
            let n = *self.node(c);
            let (value, next) = if n.low.is_zero() {
                (true, n.high)
            } else {
                debug_assert!(n.high.is_zero(), "restrict_cube: argument must be a cube");
                (false, n.low)
            };
            result = self.cofactor(result, n.var, value);
            c = next;
        }
        result
    }

    /// Coudert–Madre *restrict*: heuristically minimizes `f` against a
    /// care set, returning some `g` with `g · care = f · care` (outside
    /// the care set `g` is arbitrary). The classic use is shrinking a BDD
    /// using don't-cares before handing it to a structural mapper.
    ///
    /// Guarantee: the result agrees with `f` on `care`; its node count is
    /// usually (not provably) no larger than `f`'s.
    pub fn restrict(&mut self, f: Func, care: Func) -> Func {
        if care.is_zero() {
            // Everything is a don't-care; any function works.
            return Func::ZERO;
        }
        if f.is_const() || care.is_one() {
            return f;
        }
        let key = CacheKey { op: CacheOp::Restrict, a: f.0, b: care.0, c: 0 };
        if let Some(hit) = self.cache_get(&key) {
            return hit;
        }
        let lf = self.level(f);
        let lc = self.level(care);
        let result = if lc < lf {
            // The care set constrains a variable f does not mention:
            // merge its branches and continue.
            let n = *self.node(care);
            let merged = self.or(n.low, n.high);
            self.restrict(f, merged)
        } else if lf < lc {
            let n = *self.node(f);
            let low = self.restrict(n.low, care);
            let high = self.restrict(n.high, care);
            self.mk(n.var, low, high)
        } else {
            let nf = *self.node(f);
            let nc = *self.node(care);
            if nc.low.is_zero() {
                // Only the high branch is cared about: drop the variable.
                self.restrict(nf.high, nc.high)
            } else if nc.high.is_zero() {
                self.restrict(nf.low, nc.low)
            } else {
                let low = self.restrict(nf.low, nc.low);
                let high = self.restrict(nf.high, nc.high);
                self.mk(nf.var, low, high)
            }
        };
        self.cache_put(key, result);
        result
    }

    /// Renames the variables of `f` according to `map` (`map[v]` is the
    /// new variable for old variable `v`).
    ///
    /// The mapping must be injective on `f`'s support; simultaneous
    /// renaming is performed (swaps are safe).
    ///
    /// # Panics
    ///
    /// Panics if `map` is shorter than the manager's variable count, maps
    /// to an out-of-range variable, or collapses two support variables
    /// onto one.
    pub fn rename(&mut self, f: Func, map: &[crate::VarId]) -> Func {
        assert!(map.len() >= self.num_vars(), "one mapping entry per variable required");
        let support = self.support(f);
        let mut targets = crate::VarSet::new();
        for v in support.iter() {
            let t = map[v as usize];
            assert!((t as usize) < self.num_vars(), "rename target x{t} out of range");
            assert!(targets.insert(t), "rename must be injective on the support");
        }
        let mut memo = std::collections::HashMap::new();
        self.rename_rec(f, map, &mut memo)
    }

    fn rename_rec(
        &mut self,
        f: Func,
        map: &[crate::VarId],
        memo: &mut std::collections::HashMap<Func, Func>,
    ) -> Func {
        if f.is_const() {
            return f;
        }
        if let Some(&hit) = memo.get(&f) {
            return hit;
        }
        let var = self.root_var(f).expect("non-constant");
        let low_child = self.low(f);
        let high_child = self.high(f);
        let low = self.rename_rec(low_child, map, memo);
        let high = self.rename_rec(high_child, map, memo);
        let x = self.var(map[var as usize]);
        let result = self.ite(x, high, low);
        memo.insert(f, result);
        result
    }

    /// Functional composition: substitutes `g` for variable `v` in `f`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this manager.
    pub fn compose(&mut self, f: Func, v: crate::VarId, g: Func) -> Func {
        assert!((v as usize) < self.num_vars(), "variable x{v} out of range");
        if f.is_const() {
            return f;
        }
        let target = self.level_of_var(v);
        if self.level(f) > target {
            return f;
        }
        let key = CacheKey { op: CacheOp::Compose, a: f.0, b: g.0, c: v };
        if let Some(hit) = self.cache_get(&key) {
            return hit;
        }
        let n = *self.node(f);
        let result = if self.level(f) == target {
            self.ite(g, n.high, n.low)
        } else {
            let low = self.compose(n.low, v, g);
            let high = self.compose(n.high, v, g);
            let root = self.var(n.var);
            self.ite(root, high, low)
        };
        self.cache_put(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarSet;

    #[test]
    fn cofactor_shannon_expansion() {
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let yz = mgr.xor(y, z);
        let f = mgr.or(x, yz); // f = x + (y ⊕ z)
                               // Shannon: f = x·f1 + ¬x·f0.
        let f1 = mgr.cofactor(f, 0, true);
        let f0 = mgr.cofactor(f, 0, false);
        assert!(f1.is_one());
        assert_eq!(f0, yz);
        let recomposed = mgr.ite(x, f1, f0);
        assert_eq!(recomposed, f);
    }

    #[test]
    fn cofactor_of_absent_variable() {
        let mut mgr = Bdd::new(3);
        let y = mgr.var(1);
        assert_eq!(mgr.cofactor(y, 0, true), y);
        assert_eq!(mgr.cofactor(y, 2, false), y);
        assert_eq!(mgr.cofactor(Func::ONE, 0, true), Func::ONE);
    }

    #[test]
    fn restrict_by_picked_cube_yields_one() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let nb = mgr.not(b);
        let anb = mgr.and(a, nb);
        let f = mgr.or(anb, c);
        let cube = mgr.pick_cube(f).expect("satisfiable");
        let restricted = mgr.restrict_cube(f, cube);
        assert!(restricted.is_one(), "restricting f by one of its cubes gives 1");
    }

    #[test]
    fn compose_substitutes() {
        let mut mgr = Bdd::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let w = mgr.var(3);
        let f = mgr.xor(x, y); // x ⊕ y
        let g = mgr.and(z, w);
        let h = mgr.compose(f, 1, g); // x ⊕ (z·w)
        for bits in 0..16u32 {
            let vals = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0];
            let expected = vals[0] ^ (vals[2] && vals[3]);
            assert_eq!(mgr.eval(h, &vals), expected);
        }
    }

    #[test]
    fn compose_with_variable_is_renaming() {
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let f = mgr.and(x, y);
        let renamed = mgr.compose(f, 1, z);
        let expected = mgr.and(x, z);
        assert_eq!(renamed, expected);
    }

    #[test]
    fn rename_moves_support() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b); // x0 · x1
        let g = mgr.rename(f, &[2, 3, 0, 1]);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let expected = mgr.and(c, d);
        assert_eq!(g, expected);
        // Swap is simultaneous, not sequential.
        let ab = mgr.xor(a, b);
        let nb = mgr.not(b);
        let h = mgr.and(ab, nb); // (x0 ⊕ x1)·¬x1
        let swapped = mgr.rename(h, &[1, 0, 2, 3]);
        let na = mgr.not(a);
        let expected = mgr.and(ab, na); // (x1 ⊕ x0)·¬x0
        assert_eq!(swapped, expected);
        // Identity map is a no-op.
        assert_eq!(mgr.rename(h, &[0, 1, 2, 3]), h);
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn rename_rejects_collapsing_maps() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let _ = mgr.rename(f, &[2, 2, 2]);
    }

    #[test]
    fn restrict_agrees_on_care_set() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b);
        let cd = mgr.xor(c, d);
        let f = mgr.or(ab, cd);
        let care = mgr.and(a, c); // only care where a·c
        let g = mgr.restrict(f, care);
        let lhs = mgr.and(g, care);
        let rhs = mgr.and(f, care);
        assert_eq!(lhs, rhs, "restrict must agree on the care set");
        assert!(mgr.node_count(g) <= mgr.node_count(f));
    }

    #[test]
    fn restrict_with_cube_care_is_cofactoring() {
        // Caring only about a=1, b=0 reduces f to its cofactor there.
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        let nb = mgr.not(b);
        let care = mgr.and(a, nb);
        let g = mgr.restrict(f, care);
        assert_eq!(g, c, "f|a=1,b=0 = c");
    }

    #[test]
    fn restrict_trivial_cases() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        assert_eq!(mgr.restrict(a, Func::ONE), a);
        assert_eq!(mgr.restrict(a, Func::ZERO), Func::ZERO);
        assert_eq!(mgr.restrict(Func::ONE, a), Func::ONE);
    }

    #[test]
    fn restrict_randomized_soundness() {
        // g·care = f·care on random functions, and sizes do not explode.
        for seed in 0..20u64 {
            let mut mgr = Bdd::new(6);
            // Two structured pseudo-random functions from the seed.
            let mut f = Func::ZERO;
            let mut care = Func::ZERO;
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            for _ in 0..6 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v1 = ((state >> 33) % 6) as u32;
                let v2 = ((state >> 43) % 6) as u32;
                let x = mgr.var(v1);
                let y = mgr.var(v2);
                let t = mgr.and(x, y);
                f = mgr.xor(f, t);
                let u = mgr.or(x, y);
                care = mgr.xor(care, u);
            }
            let g = mgr.restrict(f, care);
            let lhs = mgr.and(g, care);
            let rhs = mgr.and(f, care);
            assert_eq!(lhs, rhs, "seed {seed}");
        }
    }

    #[test]
    fn compose_quantifier_identity() {
        // ∃v f = f[v:=0] + f[v:=1].
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let xz = mgr.and(x, z);
        let f = mgr.xor(xz, y);
        let f0 = mgr.compose(f, 2, Func::ZERO);
        let f1 = mgr.compose(f, 2, Func::ONE);
        let both = mgr.or(f0, f1);
        assert_eq!(mgr.exists_set(f, &VarSet::singleton(2)), both);
    }
}
