//! Variable reordering.
//!
//! The manager supports reordering by *rebuild*: a set of root functions is
//! transferred into a fresh node store under a new variable order
//! ([`Bdd::reorder`]). On top of that, [`order_by_frequency`] provides the
//! classic static ordering heuristic (most frequently used variables near
//! the top), and [`greedy_sift`] is a rebuild-based sifting search that
//! trades time for node-count reductions on small managers.
//!
//! Reordering is an extension beyond the paper (BuDDy 1.9 had sifting, but
//! BI-DECOMP did not invoke it); it is exercised by the ablation benches.

use std::collections::HashMap;

use crate::hash::FxHashMap;
use crate::manager::{Bdd, Func};
use crate::VarId;

impl Bdd {
    /// Rebuilds `roots` under the variable order `level2var` (top to
    /// bottom) and adopts that order.
    ///
    /// Returns the remapped root handles, in the same order as `roots`.
    /// **All other handles become invalid**, protections are dropped, and
    /// the computed cache is cleared.
    ///
    /// # Panics
    ///
    /// Panics if `level2var` is not a permutation of `0..num_vars`.
    pub fn reorder(&mut self, level2var: &[VarId], roots: &[Func]) -> Vec<Func> {
        let n = self.num_vars();
        assert_eq!(level2var.len(), n, "order must mention every variable once");
        let mut seen = vec![false; n];
        for &v in level2var {
            assert!(
                (v as usize) < n && !std::mem::replace(&mut seen[v as usize], true),
                "order must be a permutation of 0..{n}"
            );
        }
        let mut fresh = Bdd::new(n);
        let order: Vec<VarId> = level2var.to_vec();
        fresh.set_order(&order);
        let mut memo: FxHashMap<u32, Func> = HashMap::default();
        let new_roots: Vec<Func> =
            roots.iter().map(|&r| transfer(self, &mut fresh, r, &mut memo)).collect();
        fresh.carry_instrumentation_from(self);
        fresh.note_reorder();
        *self = fresh;
        new_roots
    }

    fn set_order(&mut self, level2var: &[VarId]) {
        // Only callable on an empty manager (no nodes built yet).
        debug_assert_eq!(self.total_nodes(), 2);
        let mut var2level = vec![0u32; level2var.len()];
        for (level, &v) in level2var.iter().enumerate() {
            var2level[v as usize] = level as u32;
        }
        self.replace_order(var2level, level2var.to_vec());
    }

    pub(crate) fn replace_order(&mut self, var2level: Vec<u32>, level2var: Vec<VarId>) {
        self.set_order_raw(var2level, level2var);
    }
}

/// Transfers `f` from `src` into `dst` (which may use a different order).
fn transfer(src: &Bdd, dst: &mut Bdd, f: Func, memo: &mut FxHashMap<u32, Func>) -> Func {
    if f.is_const() {
        return f;
    }
    if let Some(&hit) = memo.get(&f.index()) {
        return hit;
    }
    let var = src.root_var(f).expect("non-constant");
    let low = transfer(src, dst, src.low(f), memo);
    let high = transfer(src, dst, src.high(f), memo);
    let x = dst.var(var);
    let result = dst.ite(x, high, low);
    memo.insert(f.index(), result);
    result
}

/// Static ordering heuristic: variables sorted by decreasing weight
/// (e.g. how often a variable appears in the cubes of a PLA — frequent
/// variables go near the top of the BDD).
///
/// Ties are broken by the original index, making the order deterministic.
///
/// ```
/// let order = bdd::reorder::order_by_frequency(&[1.0, 5.0, 3.0]);
/// assert_eq!(order, vec![1, 2, 0]);
/// ```
pub fn order_by_frequency(weights: &[f64]) -> Vec<VarId> {
    let mut idx: Vec<VarId> = (0..weights.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// Rebuild-based greedy sifting: repeatedly tries moving each variable to
/// every position, keeping the move that most reduces the shared node count
/// of `roots`. Stops after one pass with no improvement or after
/// `max_passes`.
///
/// Returns the remapped roots (the manager adopts the best order found).
/// Intended for small-to-medium managers; cost is
/// `O(num_vars² · rebuild)` per pass.
pub fn greedy_sift(mgr: &mut Bdd, roots: &[Func], max_passes: usize) -> Vec<Func> {
    let n = mgr.num_vars();
    let mut roots: Vec<Func> = roots.to_vec();
    if n < 3 {
        return roots;
    }
    let mut best_count = mgr.node_count_all(&roots);
    for _ in 0..max_passes {
        let mut improved = false;
        for v in 0..n as u32 {
            let current: Vec<VarId> = mgr.order().to_vec();
            let here = current.iter().position(|&x| x == v).expect("var in order");
            let mut best_pos = here;
            let mut best_here = best_count;
            for pos in 0..n {
                if pos == here {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.remove(here);
                candidate.insert(pos, v);
                let moved = mgr.reorder(&candidate, &roots);
                let count = mgr.node_count_all(&moved);
                if count < best_here {
                    best_here = count;
                    best_pos = pos;
                }
                // Restore the current order before trying the next position.
                roots = mgr.reorder(&current, &moved);
            }
            if best_pos != here {
                let mut candidate = current.clone();
                candidate.remove(here);
                candidate.insert(best_pos, v);
                roots = mgr.reorder(&candidate, &roots);
                best_count = best_here;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_keeps_recorder_and_counters() {
        let mut mgr = Bdd::new(3);
        let rec = obs::Recorder::new();
        mgr.set_recorder(Some(rec.clone()));
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let mk_before = mgr.op_stats().mk_calls;
        assert!(mk_before > 0);
        mgr.protect(f);
        let _ = mgr.gc();
        mgr.unprotect(f);
        assert_eq!(mgr.gc_runs(), 1);
        let new = mgr.reorder(&[2, 1, 0], &[f]);
        // The recorder, the lifetime GC count and the op counters all
        // survive the rebuild (the rebuild's own mk calls add on top).
        assert!(mgr.recorder().is_some());
        assert_eq!(mgr.gc_runs(), 1);
        assert_eq!(mgr.op_stats().gc_runs, 1);
        assert!(mgr.op_stats().mk_calls >= mk_before);
        mgr.emit_gauges();
        assert!(rec.gauge_value("bdd.total_nodes").is_some());
        assert!(mgr.eval(new[0], &[true, true, false]));
    }

    #[test]
    fn reorder_preserves_semantics() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b);
        let cd = mgr.and(c, d);
        let f = mgr.or(ab, cd);
        let g = mgr.xor(a, d);
        let new = mgr.reorder(&[3, 1, 2, 0], &[f, g]);
        for bits in 0..16u32 {
            let vals = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0];
            let expect_f = (vals[0] && vals[1]) || (vals[2] && vals[3]);
            let expect_g = vals[0] ^ vals[3];
            assert_eq!(mgr.eval(new[0], &vals), expect_f);
            assert_eq!(mgr.eval(new[1], &vals), expect_g);
        }
        assert_eq!(mgr.order(), &[3, 1, 2, 0]);
    }

    #[test]
    fn interleaving_beats_bad_order_for_comparator() {
        // The classic example: x0·y0 + x1·y1 + x2·y2 is linear with the
        // interleaved order and exponential with the separated order.
        let n = 6; // 6 pairs = 12 vars
        let mut mgr = Bdd::new(2 * n);
        // Separated order: x0..x5 y0..y5 (identity).
        let mut f = Func::ZERO;
        for i in 0..n as u32 {
            let x = mgr.var(i);
            let y = mgr.var(n as u32 + i);
            let t = mgr.and(x, y);
            f = mgr.or(f, t);
        }
        let bad = mgr.node_count(f);
        // Interleaved order: x0 y0 x1 y1 ...
        let mut order = Vec::new();
        for i in 0..n as u32 {
            order.push(i);
            order.push(n as u32 + i);
        }
        let new = mgr.reorder(&order, &[f]);
        let good = mgr.node_count(new[0]);
        assert!(good < bad, "interleaved ({good}) must beat separated ({bad})");
    }

    #[test]
    fn order_by_frequency_sorts_descending() {
        assert_eq!(order_by_frequency(&[0.5, 2.0, 1.0, 2.0]), vec![1, 3, 2, 0]);
        assert_eq!(order_by_frequency(&[]), Vec::<VarId>::new());
    }

    #[test]
    fn greedy_sift_finds_interleaved_order() {
        let n = 4;
        let mut mgr = Bdd::new(2 * n);
        let mut f = Func::ZERO;
        for i in 0..n as u32 {
            let x = mgr.var(i);
            let y = mgr.var(n as u32 + i);
            let t = mgr.and(x, y);
            f = mgr.or(f, t);
        }
        let before = mgr.node_count(f);
        let roots = greedy_sift(&mut mgr, &[f], 2);
        let after = mgr.node_count(roots[0]);
        assert!(after <= before);
        assert!(after < before, "sifting should improve the comparator");
        // Semantics preserved.
        for bits in 0..256u32 {
            let vals: Vec<bool> = (0..8).map(|k| bits & (1 << k) != 0).collect();
            let expected = (0..n).any(|i| vals[i] && vals[n + i]);
            assert_eq!(mgr.eval(roots[0], &vals), expected);
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reorder_rejects_non_permutation() {
        let mut mgr = Bdd::new(3);
        let _ = mgr.reorder(&[0, 0, 1], &[]);
    }
}
