//! Post-run analytics over the manager's tables and counters.
//!
//! Everything here is *analysis*, not instrumentation: the manager keeps a
//! handful of cheap always-on counters (per-op-kind cache counts, one
//! sample per GC run, the reorder count) and this module turns them — plus
//! a one-shot walk of the unique table — into the structured `analytics`
//! section of run reports. Building an [`Analytics`] costs one pass over
//! the unique table; nothing here runs on the operator hot path.

use obs::json::Json;

use crate::manager::{Bdd, CacheOp};

/// Unique-table probe-length distribution, measured from the *real*
/// intrusive chains.
///
/// The unique table is separate-chaining with the links stored inside the
/// nodes, so the manager can walk every bucket's chain exactly:
/// `chain_histogram[k]` counts the buckets holding exactly `k` nodes (the
/// last bin aggregates `k >= MAX_CHAIN_BIN`), and `expected_probes` is the
/// true mean probe count for a successful lookup.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ProbeStats {
    /// Bucket count of the table (power of two).
    pub buckets: usize,
    /// Nodes chained (= unique-table entries).
    pub entries: usize,
    /// Buckets holding at least one key.
    pub occupied_buckets: usize,
    /// Longest chain observed.
    pub max_chain: usize,
    /// `[k]` = buckets holding exactly `k` keys; the last bin is `k` or
    /// more.
    pub chain_histogram: Vec<u64>,
    /// Expected probes for a successful lookup under the chain model
    /// (1.0 = every key alone in its bucket).
    pub expected_probes: f64,
}

/// Chain lengths at or above this land in the histogram's last bin.
const MAX_CHAIN_BIN: usize = 8;

impl ProbeStats {
    /// The distribution as a JSON object.
    pub fn to_json(&self) -> Json {
        let hist: Vec<Json> = self.chain_histogram.iter().map(|&n| Json::from(n)).collect();
        Json::obj()
            .field("buckets", self.buckets)
            .field("entries", self.entries)
            .field("occupied_buckets", self.occupied_buckets)
            .field("max_chain", self.max_chain)
            .field("chain_histogram", hist)
            .field("expected_probes", self.expected_probes)
    }

    /// Adds another table's distribution into this one (bucket counts and
    /// histograms sum; expected probes re-weight by entries). Used when
    /// combining per-worker managers.
    pub fn merge(&mut self, other: &ProbeStats) {
        let total = self.entries + other.entries;
        if total > 0 {
            self.expected_probes = (self.expected_probes * self.entries as f64
                + other.expected_probes * other.entries as f64)
                / total as f64;
        }
        self.buckets += other.buckets;
        self.entries = total;
        self.occupied_buckets += other.occupied_buckets;
        self.max_chain = self.max_chain.max(other.max_chain);
        if self.chain_histogram.len() < other.chain_histogram.len() {
            self.chain_histogram.resize(other.chain_histogram.len(), 0);
        }
        for (i, &n) in other.chain_histogram.iter().enumerate() {
            self.chain_histogram[i] += n;
        }
    }
}

/// Computed-cache traffic of one operation kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OpCacheStats {
    /// Operation name (`and`, `ite`, `exists`, …).
    pub op: &'static str,
    /// Cache lookups issued by this operation.
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
}

impl OpCacheStats {
    /// Hit fraction in `[0, 1]` (0 when the op never looked anything up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// The stats as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("op", self.op)
            .field("lookups", self.lookups)
            .field("hits", self.hits)
            .field("hit_rate", self.hit_rate())
    }
}

/// One garbage-collection run, as sampled by [`Bdd::gc`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GcSample {
    /// Live nodes when the collection started.
    pub nodes_before: u64,
    /// Nodes reclaimed.
    pub freed: u64,
    /// Computed-cache entries dropped (the cache is cleared on GC).
    pub cache_entries_dropped: u64,
    /// Wall-clock nanoseconds spent collecting.
    pub elapsed_ns: u64,
}

impl GcSample {
    /// Fraction of the pre-GC nodes this run reclaimed, in `[0, 1]`.
    pub fn reclaim_fraction(&self) -> f64 {
        if self.nodes_before == 0 {
            0.0
        } else {
            self.freed as f64 / self.nodes_before as f64
        }
    }

    /// The sample as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("nodes_before", self.nodes_before)
            .field("freed", self.freed)
            .field("cache_entries_dropped", self.cache_entries_dropped)
            .field("elapsed_ns", self.elapsed_ns)
            .field("reclaim_fraction", self.reclaim_fraction())
    }
}

/// GC reclaim efficacy across the manager's lifetime.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct GcAnalytics {
    /// Collections run.
    pub runs: u64,
    /// Total nodes reclaimed.
    pub nodes_reclaimed: u64,
    /// Mean per-run [`GcSample::reclaim_fraction`] (0 with no runs).
    pub mean_reclaim_fraction: f64,
    /// Per-run samples, oldest first (capped; see `truncated`).
    pub samples: Vec<GcSample>,
    /// Samples dropped once the retention cap was hit.
    pub truncated: u64,
}

impl GcAnalytics {
    /// The GC analytics as a JSON object.
    pub fn to_json(&self) -> Json {
        let samples: Vec<Json> = self.samples.iter().map(GcSample::to_json).collect();
        Json::obj()
            .field("runs", self.runs)
            .field("nodes_reclaimed", self.nodes_reclaimed)
            .field("mean_reclaim_fraction", self.mean_reclaim_fraction)
            .field("samples_truncated", self.truncated)
            .field("samples", samples)
    }
}

/// The structured `analytics` section: unique-table probe distribution,
/// computed-cache hit rate by operation kind, GC reclaim efficacy, and the
/// reorder count. Built on demand by [`Bdd::analytics`].
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Analytics {
    /// Unique-table probe-length distribution (estimated; see
    /// [`ProbeStats`]).
    pub probe: ProbeStats,
    /// Computed-cache traffic per operation kind, ops with traffic only,
    /// worst hit rate first.
    pub cache_by_op: Vec<OpCacheStats>,
    /// GC reclaim efficacy.
    pub gc: GcAnalytics,
    /// Reorder-by-rebuild runs across the manager's lifetime.
    pub reorders: u64,
}

impl Analytics {
    /// The full section as a JSON object (embedded in run reports).
    pub fn to_json(&self) -> Json {
        let by_op: Vec<Json> = self.cache_by_op.iter().map(OpCacheStats::to_json).collect();
        Json::obj()
            .field("unique_table", self.probe.to_json())
            .field("computed_cache_by_op", by_op)
            .field("gc", self.gc.to_json())
            .field("reorders", self.reorders)
    }

    /// Folds another manager's section into this one (combining per-worker
    /// managers into one run-level `analytics` section).
    pub fn merge(&mut self, other: &Analytics) {
        self.probe.merge(&other.probe);
        for theirs in &other.cache_by_op {
            match self.cache_by_op.iter_mut().find(|mine| mine.op == theirs.op) {
                Some(mine) => {
                    mine.lookups += theirs.lookups;
                    mine.hits += theirs.hits;
                }
                None => self.cache_by_op.push(*theirs),
            }
        }
        self.cache_by_op.sort_by(|a, b| {
            a.hit_rate().partial_cmp(&b.hit_rate()).unwrap_or(std::cmp::Ordering::Equal)
        });
        // Re-weight the mean by sample counts before concatenating.
        let (n1, n2) = (self.gc.samples.len(), other.gc.samples.len());
        if n1 + n2 > 0 {
            self.gc.mean_reclaim_fraction = (self.gc.mean_reclaim_fraction * n1 as f64
                + other.gc.mean_reclaim_fraction * n2 as f64)
                / (n1 + n2) as f64;
        }
        self.gc.runs += other.gc.runs;
        self.gc.nodes_reclaimed += other.gc.nodes_reclaimed;
        self.gc.samples.extend(other.gc.samples.iter().copied());
        self.gc.truncated += other.gc.truncated;
        self.reorders += other.reorders;
    }
}

/// Builds a [`ProbeStats`] from per-bucket chain lengths: one slot per
/// bucket of the intrusive table, value = nodes chained there (the manager
/// fills this by walking the real chains).
pub(crate) fn probe_stats_from_occupancy(occupancy: &[u32]) -> ProbeStats {
    let mut chain_histogram = vec![0u64; MAX_CHAIN_BIN + 1];
    let mut entries = 0usize;
    let mut occupied_buckets = 0;
    let mut max_chain = 0usize;
    // Σ occ·(occ+1)/2 probes over all chains, under "scan the chain from
    // its head" semantics.
    let mut probe_sum = 0u64;
    for &occ in occupancy {
        let occ = occ as usize;
        entries += occ;
        if occ == 0 {
            chain_histogram[0] += 1;
            continue;
        }
        occupied_buckets += 1;
        max_chain = max_chain.max(occ);
        chain_histogram[occ.min(MAX_CHAIN_BIN)] += 1;
        probe_sum += (occ * (occ + 1) / 2) as u64;
    }
    ProbeStats {
        buckets: occupancy.len(),
        entries,
        occupied_buckets,
        max_chain,
        chain_histogram,
        expected_probes: if entries == 0 { 0.0 } else { probe_sum as f64 / entries as f64 },
    }
}

/// Always-on analytics state carried inside the manager: per-op cache
/// counters, the GC sample log, and the reorder count. Cheap enough to
/// maintain unconditionally (two array increments per cache lookup, one
/// push per GC run).
#[derive(Clone, Debug, Default)]
pub(crate) struct AnalyticsState {
    /// `[op][0]` = lookups, `[op][1]` = hits, indexed by [`CacheOp`].
    pub(crate) cache_by_op: [[u64; 2]; CacheOp::COUNT],
    pub(crate) gc_samples: Vec<GcSample>,
    pub(crate) gc_samples_truncated: u64,
    pub(crate) reorders: u64,
}

/// GC samples retained before the log starts dropping (the counters keep
/// counting; only per-run detail is capped).
const GC_SAMPLE_CAP: usize = 256;

impl AnalyticsState {
    #[inline]
    pub(crate) fn note_lookup(&mut self, op: CacheOp, hit: bool) {
        let slot = &mut self.cache_by_op[op as usize];
        slot[0] += 1;
        slot[1] += u64::from(hit);
    }

    pub(crate) fn note_gc(&mut self, sample: GcSample) {
        if self.gc_samples.len() < GC_SAMPLE_CAP {
            self.gc_samples.push(sample);
        } else {
            self.gc_samples_truncated += 1;
        }
    }

    /// Merges `old` into `self` after a reorder-by-rebuild.
    pub(crate) fn absorb(&mut self, old: &AnalyticsState) {
        for (mine, theirs) in self.cache_by_op.iter_mut().zip(&old.cache_by_op) {
            mine[0] += theirs[0];
            mine[1] += theirs[1];
        }
        // The old samples predate this manager's: keep chronology.
        let mut samples = old.gc_samples.clone();
        samples.append(&mut self.gc_samples);
        if samples.len() > GC_SAMPLE_CAP {
            self.gc_samples_truncated += (samples.len() - GC_SAMPLE_CAP) as u64;
            samples.truncate(GC_SAMPLE_CAP);
        }
        self.gc_samples = samples;
        self.gc_samples_truncated += old.gc_samples_truncated;
        self.reorders += old.reorders;
    }
}

impl Bdd {
    /// Builds the structured [`Analytics`] section: one pass over the
    /// unique table plus a summary of the always-on counters.
    pub fn analytics(&self) -> Analytics {
        let state = self.analytics_state();
        let mut cache_by_op: Vec<OpCacheStats> = CacheOp::ALL
            .iter()
            .filter_map(|&op| {
                let [lookups, hits] = state.cache_by_op[op as usize];
                (lookups > 0).then(|| OpCacheStats { op: op.name(), lookups, hits })
            })
            .collect();
        cache_by_op.sort_by(|a, b| {
            a.hit_rate().partial_cmp(&b.hit_rate()).unwrap_or(std::cmp::Ordering::Equal)
        });
        let op = self.op_stats();
        let mean_reclaim_fraction = if state.gc_samples.is_empty() {
            0.0
        } else {
            state.gc_samples.iter().map(GcSample::reclaim_fraction).sum::<f64>()
                / state.gc_samples.len() as f64
        };
        Analytics {
            probe: self.unique_probe_stats(),
            cache_by_op,
            gc: GcAnalytics {
                runs: op.gc_runs,
                nodes_reclaimed: op.gc_nodes_reclaimed,
                mean_reclaim_fraction,
                samples: state.gc_samples.clone(),
                truncated: state.gc_samples_truncated,
            },
            reorders: state.reorders,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_stats_of_empty_and_single() {
        let empty = probe_stats_from_occupancy(&[0; 16]);
        assert_eq!(empty.entries, 0);
        assert_eq!(empty.max_chain, 0);
        assert_eq!(empty.buckets, 16);
        assert_eq!(empty.expected_probes, 0.0);
        let one = probe_stats_from_occupancy(&[0, 1, 0, 0]);
        assert_eq!(one.entries, 1);
        assert_eq!(one.occupied_buckets, 1);
        assert_eq!(one.max_chain, 1);
        assert_eq!(one.expected_probes, 1.0);
    }

    #[test]
    fn probe_stats_counts_every_chained_node_once() {
        // 512 buckets holding 0, 1, 2, 3 nodes in rotation.
        let occupancy: Vec<u32> = (0..512u32).map(|b| b % 4).collect();
        let stats = probe_stats_from_occupancy(&occupancy);
        assert_eq!(stats.entries, 128 * (1 + 2 + 3));
        assert_eq!(stats.buckets, 512);
        assert_eq!(stats.occupied_buckets, 3 * 128);
        assert_eq!(stats.max_chain, 3);
        // Histogram buckets weighted by chain length must cover every node.
        let covered: u64 =
            stats.chain_histogram.iter().enumerate().map(|(k, &n)| k as u64 * n).sum();
        assert_eq!(covered, stats.entries as u64);
        // 128·1 + 128·3 + 128·6 probes over 768 nodes.
        let expected = (128 * (1 + 3 + 6)) as f64 / 768.0;
        assert!((stats.expected_probes - expected).abs() < 1e-12);
        let json = stats.to_json();
        assert_eq!(
            json.get("entries").and_then(Json::as_f64),
            Some(768.0),
            "JSON mirrors the struct"
        );
    }

    #[test]
    fn degenerate_hashing_shows_a_fat_tail() {
        // Every node chained into one bucket: worst case made visible.
        let mut occupancy = vec![0u32; 32];
        occupancy[7] = 20;
        let stats = probe_stats_from_occupancy(&occupancy);
        assert_eq!(stats.occupied_buckets, 1);
        assert_eq!(stats.max_chain, 20);
        assert_eq!(*stats.chain_histogram.last().unwrap(), 1);
        assert!(stats.expected_probes > 10.0);
    }

    #[test]
    fn analytics_merge_combines_workers() {
        let mut a = Analytics {
            probe: probe_stats_from_occupancy(&[1, 2, 0, 0]),
            cache_by_op: vec![OpCacheStats { op: "and", lookups: 10, hits: 5 }],
            gc: GcAnalytics {
                runs: 1,
                nodes_reclaimed: 4,
                mean_reclaim_fraction: 0.5,
                samples: vec![GcSample { nodes_before: 8, freed: 4, ..GcSample::default() }],
                truncated: 0,
            },
            reorders: 1,
        };
        let b = Analytics {
            probe: probe_stats_from_occupancy(&[3, 0, 0, 0]),
            cache_by_op: vec![
                OpCacheStats { op: "and", lookups: 10, hits: 9 },
                OpCacheStats { op: "xor", lookups: 2, hits: 0 },
            ],
            gc: GcAnalytics {
                runs: 2,
                nodes_reclaimed: 6,
                mean_reclaim_fraction: 1.0,
                samples: vec![GcSample { nodes_before: 6, freed: 6, ..GcSample::default() }],
                truncated: 3,
            },
            reorders: 0,
        };
        a.merge(&b);
        assert_eq!(a.probe.entries, 6);
        assert_eq!(a.probe.buckets, 8);
        assert_eq!(a.probe.max_chain, 3);
        let and = a.cache_by_op.iter().find(|s| s.op == "and").unwrap();
        assert_eq!((and.lookups, and.hits), (20, 14));
        assert!(a.cache_by_op.iter().any(|s| s.op == "xor"));
        // Worst hit rate still sorts first after the merge.
        for pair in a.cache_by_op.windows(2) {
            assert!(pair[0].hit_rate() <= pair[1].hit_rate() + 1e-12);
        }
        assert_eq!(a.gc.runs, 3);
        assert_eq!(a.gc.nodes_reclaimed, 10);
        assert_eq!(a.gc.samples.len(), 2);
        assert!((a.gc.mean_reclaim_fraction - 0.75).abs() < 1e-12);
        assert_eq!(a.gc.truncated, 3);
        assert_eq!(a.reorders, 1);
    }

    #[test]
    fn manager_analytics_sees_cache_traffic_and_gc() {
        let mut mgr = Bdd::new(6);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let _ = mgr.and(a, b); // cache hit
        let _ = mgr.xor(a, b);
        let analytics = mgr.analytics();
        assert!(analytics.probe.entries >= 3, "vars and the AND node");
        let and_stats =
            analytics.cache_by_op.iter().find(|s| s.op == "and").expect("AND traffic recorded");
        assert!(and_stats.lookups >= 2);
        assert!(and_stats.hits >= 1);
        assert!(analytics.cache_by_op.iter().all(|s| s.lookups > 0), "quiet ops are omitted");
        // Worst hit rate sorts first.
        for pair in analytics.cache_by_op.windows(2) {
            assert!(pair[0].hit_rate() <= pair[1].hit_rate() + 1e-12);
        }
        assert_eq!(analytics.gc.runs, 0);
        mgr.protect(f);
        let freed = mgr.gc();
        let analytics = mgr.analytics();
        assert_eq!(analytics.gc.runs, 1);
        assert_eq!(analytics.gc.samples.len(), 1);
        assert_eq!(analytics.gc.samples[0].freed, freed as u64);
        assert!(analytics.gc.mean_reclaim_fraction > 0.0);
        let json = analytics.to_json();
        assert!(json.get("unique_table").is_some());
        assert!(json.get("computed_cache_by_op").and_then(Json::as_arr).is_some());
        assert_eq!(json.get("reorders").and_then(Json::as_f64), Some(0.0));
        mgr.unprotect(f);
    }

    #[test]
    fn analytics_survive_reorder() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let _ = mgr.and(a, b);
        let before = mgr.analytics();
        let and_lookups =
            before.cache_by_op.iter().find(|s| s.op == "and").map_or(0, |s| s.lookups);
        assert!(and_lookups >= 2);
        let order: Vec<u32> = (0..4).rev().collect();
        let _roots = mgr.reorder(&order, &[f]);
        let after = mgr.analytics();
        assert_eq!(after.reorders, 1, "the rebuild is counted");
        let after_lookups =
            after.cache_by_op.iter().find(|s| s.op == "and").map_or(0, |s| s.lookups);
        assert!(after_lookups >= and_lookups, "per-op counters survive the rebuild");
    }

    #[test]
    fn gc_sample_log_caps_but_keeps_counting() {
        let mut state = AnalyticsState::default();
        for i in 0..(GC_SAMPLE_CAP + 10) {
            state.note_gc(GcSample { nodes_before: i as u64 + 1, freed: 1, ..GcSample::default() });
        }
        assert_eq!(state.gc_samples.len(), GC_SAMPLE_CAP);
        assert_eq!(state.gc_samples_truncated, 10);
    }
}
