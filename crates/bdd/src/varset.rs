//! Sets of BDD variables as fixed-width bitsets.

use std::fmt;

use crate::manager::VarId;

/// Maximum number of variables a [`VarSet`] (and therefore a manager used
/// with the decomposition algorithms) can hold.
pub const MAX_VARS: usize = 256;
const WORDS: usize = MAX_VARS / 64;

/// A set of BDD variable indices, stored as a 256-bit bitset.
///
/// `VarSet` is `Copy` and cheap to pass around; it is the currency of the
/// variable-grouping procedures of the bi-decomposition algorithm (the sets
/// `X_A`, `X_B`, `X_C` of the paper).
///
/// ```
/// use bdd::VarSet;
///
/// let mut xa = VarSet::new();
/// xa.insert(0);
/// xa.insert(3);
/// let xb = VarSet::from_iter([1, 2]);
/// assert!(xa.is_disjoint(&xb));
/// assert_eq!(xa.union(&xb).len(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VarSet {
    words: [u64; WORDS],
}

impl VarSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set containing the single variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= 256`.
    pub fn singleton(v: VarId) -> Self {
        let mut s = Self::new();
        s.insert(v);
        s
    }

    /// Creates the set `{0, 1, .., n-1}` of the first `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n > 256`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_VARS, "VarSet supports at most {MAX_VARS} variables");
        let mut s = Self::new();
        for v in 0..n {
            s.insert(v as VarId);
        }
        s
    }

    /// Inserts variable `v`; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `v >= 256`.
    pub fn insert(&mut self, v: VarId) -> bool {
        let (w, b) = Self::slot(v);
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Removes variable `v`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v >= 256`.
    pub fn remove(&mut self, v: VarId) -> bool {
        let (w, b) = Self::slot(v);
        let present = self.words[w] & b != 0;
        self.words[w] &= !b;
        present
    }

    /// Tests membership of variable `v`. Variables `>= 256` are never members.
    pub fn contains(&self, v: VarId) -> bool {
        if v as usize >= MAX_VARS {
            return false;
        }
        let (w, b) = Self::slot(v);
        self.words[w] & b != 0
    }

    /// Returns the number of variables in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no variables.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        out
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        out
    }

    /// Returns `true` if the two sets share no variable.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.intersection(other).is_empty()
    }

    /// Returns `true` if every variable of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.difference(other).is_empty()
    }

    /// Returns the smallest variable in the set, if any.
    pub fn first(&self) -> Option<VarId> {
        self.iter().next()
    }

    /// Iterates over the variables in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word: 0, bits: self.words[0] }
    }

    fn slot(v: VarId) -> (usize, u64) {
        let idx = v as usize;
        assert!(idx < MAX_VARS, "variable {v} out of VarSet range ({MAX_VARS})");
        (idx / 64, 1u64 << (idx % 64))
    }
}

impl FromIterator<VarId> for VarSet {
    fn from_iter<T: IntoIterator<Item = VarId>>(iter: T) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<VarId> for VarSet {
    fn extend<T: IntoIterator<Item = VarId>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a VarSet {
    type Item = VarId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{v}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the variables of a [`VarSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a VarSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = VarId;

    fn next(&mut self) -> Option<VarId> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some((self.word as u32 * 64 + tz) as VarId);
            }
            self.word += 1;
            if self.word >= WORDS {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = VarSet::new();
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(s.is_empty());
    }

    #[test]
    fn crosses_word_boundaries() {
        let s: VarSet = [0u32, 63, 64, 127, 128, 255].into_iter().collect();
        assert_eq!(s.len(), 6);
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 255]);
    }

    #[test]
    fn set_algebra() {
        let a = VarSet::from_iter([1u32, 2, 3]);
        let b = VarSet::from_iter([3u32, 4]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b), VarSet::singleton(3));
        assert_eq!(a.difference(&b), VarSet::from_iter([1u32, 2]));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
        assert!(VarSet::singleton(3).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn first_n_and_first() {
        let s = VarSet::first_n(70);
        assert_eq!(s.len(), 70);
        assert_eq!(s.first(), Some(0));
        assert!(s.contains(69));
        assert!(!s.contains(70));
        assert_eq!(VarSet::new().first(), None);
    }

    #[test]
    #[should_panic(expected = "out of VarSet range")]
    fn insert_out_of_range_panics() {
        VarSet::new().insert(256);
    }

    #[test]
    fn display_lists_variables() {
        let s = VarSet::from_iter([0u32, 2]);
        assert_eq!(s.to_string(), "{x0,x2}");
    }
}
