//! A minimal FxHash-style hasher for small fixed-size integer keys.
//!
//! The unique table and computed cache hash millions of `(u32, u32, u32)`
//! keys; the default SipHash is needlessly slow for this, and pulling in an
//! external hashing crate would be padding. This is the classic
//! multiply-rotate Fx construction used by rustc.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` build-hasher alias used throughout the crate.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Shorthand for a `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Direct Fx hash of a `(u32, u32, u32)` triple — the unique-table key —
/// without going through the `Hasher` trait machinery.
#[inline]
pub(crate) fn hash3(a: u32, b: u32, c: u32) -> u64 {
    mix(mix(mix(0, u64::from(a)), u64::from(b)), u64::from(c))
}

/// Direct Fx hash of an `(op, u32, u32, u32)` quadruple — the computed-cache
/// key.
#[inline]
pub(crate) fn hash4(op: u8, a: u32, b: u32, c: u32) -> u64 {
    mix(mix(mix(mix(0, u64::from(op)), u64::from(a)), u64::from(b)), u64::from(c))
}

/// Multiply-rotate hasher; not DoS-resistant, which is fine for internal
/// tables keyed by node indices we generate ourselves.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let mut a = FxHasher::default();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = FxHasher::default();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish(), "order must matter");
    }

    #[test]
    fn empty_hash_is_stable() {
        assert_eq!(FxHasher::default().finish(), FxHasher::default().finish());
    }

    #[test]
    fn direct_hashes_match_the_hasher_trait() {
        let mut h = FxHasher::default();
        h.write_u32(3);
        h.write_u32(7);
        h.write_u32(9);
        assert_eq!(h.finish(), hash3(3, 7, 9));
        let mut h = FxHasher::default();
        h.write_u8(5);
        h.write_u32(3);
        h.write_u32(7);
        h.write_u32(9);
        assert_eq!(h.finish(), hash4(5, 3, 7, 9));
    }
}
