//! A minimal FxHash-style hasher for small fixed-size integer keys.
//!
//! The unique table and computed cache hash millions of `(u32, u32, u32)`
//! keys; the default SipHash is needlessly slow for this, and pulling in an
//! external hashing crate would be padding. This is the classic
//! multiply-rotate Fx construction used by rustc.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` build-hasher alias used throughout the crate.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Shorthand for a `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; not DoS-resistant, which is fine for internal
/// tables keyed by node indices we generate ourselves.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let mut a = FxHasher::default();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = FxHasher::default();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish(), "order must matter");
    }

    #[test]
    fn empty_hash_is_stable() {
        assert_eq!(FxHasher::default().finish(), FxHasher::default().finish());
    }
}
