//! Satisfiability helpers: evaluation, counting, cube picking.

use std::collections::HashMap;

use crate::hash::FxHashMap;
use crate::manager::{Bdd, Func, TERMINAL_LEVEL};

impl Bdd {
    /// Evaluates `f` under a complete assignment (`assignment[v]` is the
    /// value of variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the largest variable index
    /// occurring in `f`.
    pub fn eval(&self, f: Func, assignment: &[bool]) -> bool {
        let mut g = f;
        while !g.is_const() {
            let n = self.node(g);
            g = if assignment[n.var as usize] { n.high } else { n.low };
        }
        g.is_one()
    }

    /// Number of satisfying assignments of `f` over all
    /// [`num_vars`](Bdd::num_vars) variables, as an `f64` (exact up to 2^53).
    pub fn sat_count(&self, f: Func) -> f64 {
        let mut memo: FxHashMap<u32, f64> = HashMap::default();
        let total_levels = self.num_vars() as u32;
        let frac = self.sat_frac(f, &mut memo);
        frac * 2f64.powi(total_levels as i32)
    }

    /// Fraction of the input space on which `f` is true (in `[0, 1]`).
    pub fn sat_fraction(&self, f: Func) -> f64 {
        let mut memo: FxHashMap<u32, f64> = HashMap::default();
        self.sat_frac(f, &mut memo)
    }

    fn sat_frac(&self, f: Func, memo: &mut FxHashMap<u32, f64>) -> f64 {
        if f.is_zero() {
            return 0.0;
        }
        if f.is_one() {
            return 1.0;
        }
        if let Some(&hit) = memo.get(&f.0) {
            return hit;
        }
        let n = self.node(f);
        let result = 0.5 * self.sat_frac(n.low, memo) + 0.5 * self.sat_frac(n.high, memo);
        memo.insert(f.0, result);
        result
    }

    /// Picks one satisfying path cube of `f`, returned as a cube function
    /// (conjunction of the literals on the path; variables not on the path
    /// are don't-cares of the cube).
    ///
    /// Returns `None` iff `f = 0`. This is the paper's `SelectOneCube`.
    /// Deterministic: prefers the high branch.
    pub fn pick_cube(&mut self, f: Func) -> Option<Func> {
        if f.is_zero() {
            return None;
        }
        let mut lits: Vec<(crate::VarId, bool)> = Vec::new();
        let mut g = f;
        while !g.is_const() {
            let n = *self.node(g);
            if !n.high.is_zero() {
                lits.push((n.var, true));
                g = n.high;
            } else {
                lits.push((n.var, false));
                g = n.low;
            }
        }
        // Build the cube bottom-up (literals were collected top-down).
        let mut cube = Func::ONE;
        for (v, positive) in lits.into_iter().rev() {
            cube =
                if positive { self.mk(v, Func::ZERO, cube) } else { self.mk(v, cube, Func::ZERO) };
        }
        Some(cube)
    }

    /// Picks one satisfying *minterm* of `f` as a complete assignment over
    /// all manager variables (don't-care variables default to `false`).
    ///
    /// Returns `None` iff `f = 0`.
    pub fn pick_minterm(&self, f: Func) -> Option<Vec<bool>> {
        if f.is_zero() {
            return None;
        }
        let mut assignment = vec![false; self.num_vars()];
        let mut g = f;
        while !g.is_const() {
            let n = self.node(g);
            if !n.high.is_zero() {
                assignment[n.var as usize] = true;
                g = n.high;
            } else {
                g = n.low;
            }
        }
        Some(assignment)
    }

    /// Enumerates all satisfying path cubes of `f` as literal vectors
    /// (`(var, polarity)` pairs), in depth-first order.
    ///
    /// Exponential in the worst case; intended for small functions, tests
    /// and PLA export.
    pub fn all_cubes(&self, f: Func) -> Vec<Vec<(crate::VarId, bool)>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.cubes_rec(f, &mut path, &mut out);
        out
    }

    fn cubes_rec(
        &self,
        f: Func,
        path: &mut Vec<(crate::VarId, bool)>,
        out: &mut Vec<Vec<(crate::VarId, bool)>>,
    ) {
        if f.is_zero() {
            return;
        }
        if f.is_one() {
            out.push(path.clone());
            return;
        }
        let n = *self.node(f);
        path.push((n.var, false));
        self.cubes_rec(n.low, path, out);
        path.pop();
        path.push((n.var, true));
        self.cubes_rec(n.high, path, out);
        path.pop();
    }

    /// Returns `true` if `f` is a cube (a single conjunction of literals).
    pub fn is_cube(&self, f: Func) -> bool {
        if f.is_zero() {
            return false;
        }
        let mut g = f;
        while !g.is_const() {
            let n = self.node(g);
            if n.low.is_zero() {
                g = n.high;
            } else if n.high.is_zero() {
                g = n.low;
            } else {
                return false;
            }
        }
        g.is_one()
    }

    #[allow(dead_code)]
    pub(crate) fn is_terminal_level(&self, level: u32) -> bool {
        level == TERMINAL_LEVEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_walks_paths() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        assert!(mgr.eval(f, &[true, true, false]));
        assert!(mgr.eval(f, &[false, false, true]));
        assert!(!mgr.eval(f, &[true, false, false]));
    }

    #[test]
    fn sat_count_examples() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert_eq!(mgr.sat_count(Func::ZERO), 0.0);
        assert_eq!(mgr.sat_count(Func::ONE), 8.0);
        assert_eq!(mgr.sat_count(a), 4.0);
        let f = mgr.and(a, b);
        assert_eq!(mgr.sat_count(f), 2.0);
        let g = mgr.xor(a, b);
        assert_eq!(mgr.sat_count(g), 4.0);
        assert!((mgr.sat_fraction(g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pick_cube_satisfies_f() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let nb = mgr.not(b);
        let anb = mgr.and(a, nb);
        let f = mgr.or(anb, c);
        let cube = mgr.pick_cube(f).expect("satisfiable");
        assert!(mgr.is_cube(cube));
        assert!(mgr.implies(cube, f), "picked cube must be inside f");
        assert_eq!(mgr.pick_cube(Func::ZERO), None);
        let one_cube = mgr.pick_cube(Func::ONE).expect("tautology");
        assert!(one_cube.is_one());
    }

    #[test]
    fn pick_minterm_satisfies_f() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let d = mgr.var(3);
        let nd = mgr.not(d);
        let f = mgr.and(a, nd);
        let m = mgr.pick_minterm(f).expect("satisfiable");
        assert!(mgr.eval(f, &m));
        assert_eq!(mgr.pick_minterm(Func::ZERO), None);
    }

    #[test]
    fn all_cubes_cover_exactly_f() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let nc = mgr.not(c);
        let f = mgr.or(ab, nc);
        let cubes = mgr.all_cubes(f);
        // Rebuild f from its cubes.
        let mut rebuilt = Func::ZERO;
        for cube in &cubes {
            let mut prod = Func::ONE;
            for &(v, pos) in cube {
                let lit = mgr.literal(v, pos);
                prod = mgr.and(prod, lit);
            }
            rebuilt = mgr.or(rebuilt, prod);
        }
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn is_cube_rejects_non_cubes() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.or(a, b);
        assert!(!mgr.is_cube(f));
        let g = mgr.and(a, b);
        assert!(mgr.is_cube(g));
        assert!(mgr.is_cube(Func::ONE));
        assert!(!mgr.is_cube(Func::ZERO));
    }
}
