//! The BDD manager: node store, unique table, computed cache, garbage
//! collection.

use std::fmt;
use std::time::{Duration, Instant};

use obs::json::Json;
use obs::{Histogram, Recorder};

use crate::hash::{self, FxHashMap};
use crate::varset::MAX_VARS;

/// Index of a BDD variable (`x0, x1, ..`).
pub type VarId = u32;

/// Sentinel `var` field marking the two terminal nodes.
const TERMINAL_VAR: u32 = u32::MAX;

/// Sentinel `var` field marking a freed slot awaiting reuse. Freed slots are
/// not in the unique table; the sentinel lets GC and table walks skip them
/// without a side lookup. Safe because variables are capped at
/// [`MAX_VARS`] (256), far below both sentinels.
const FREE_VAR: u32 = u32::MAX - 1;

/// End-of-chain marker in the intrusive unique table.
const NIL: u32 = u32::MAX;

/// Smallest unique-table bucket array; always a power of two.
const MIN_BUCKETS: usize = 256;

/// Old buckets moved per `mk` call while an incremental rehash is pending.
const MIGRATE_STEP: usize = 4;

/// Default size of the lossy computed cache, in entries.
pub const DEFAULT_CACHE_ENTRIES: usize = 1 << 16;

/// Level of the terminals: below every variable in any order.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// A handle to a Boolean function stored in a [`Bdd`] manager.
///
/// Handles are plain indices: cheap to copy, but only meaningful together
/// with the manager that produced them. Mixing handles across managers is a
/// logic error (caught by debug assertions where practical).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Func(pub(crate) u32);

impl Func {
    /// The constant-false function. Valid in every manager.
    pub const ZERO: Func = Func(0);
    /// The constant-true function. Valid in every manager.
    pub const ONE: Func = Func(1);

    /// Returns `true` if this is the constant-false function.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Returns `true` if this is the constant-true function.
    #[inline]
    pub fn is_one(self) -> bool {
        self == Self::ONE
    }

    /// Returns `true` if this is one of the two constant functions.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The raw node index, for use as a stable key in external tables.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Func::ZERO => write!(f, "Func(0=⊥)"),
            Func::ONE => write!(f, "Func(1=⊤)"),
            Func(i) => write!(f, "Func({i})"),
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    pub var: u32,
    pub low: Func,
    pub high: Func,
    /// Next node in the same unique-table bucket (intrusive chaining,
    /// BuDDy-style); [`NIL`] terminates the chain.
    pub(crate) next: u32,
}

/// Operation tags for the computed cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum CacheOp {
    And,
    Or,
    Xor,
    Diff,
    Not,
    Ite,
    Exists,
    Forall,
    AndExists,
    Restrict,
    Compose,
    CofPos,
    CofNeg,
}

impl CacheOp {
    /// Number of operation kinds (sizes the per-op analytics arrays).
    pub(crate) const COUNT: usize = 13;

    /// Every operation kind, in declaration order (= discriminant order).
    pub(crate) const ALL: [CacheOp; CacheOp::COUNT] = [
        CacheOp::And,
        CacheOp::Or,
        CacheOp::Xor,
        CacheOp::Diff,
        CacheOp::Not,
        CacheOp::Ite,
        CacheOp::Exists,
        CacheOp::Forall,
        CacheOp::AndExists,
        CacheOp::Restrict,
        CacheOp::Compose,
        CacheOp::CofPos,
        CacheOp::CofNeg,
    ];

    /// Stable lower-case name used in analytics JSON.
    pub(crate) fn name(self) -> &'static str {
        match self {
            CacheOp::And => "and",
            CacheOp::Or => "or",
            CacheOp::Xor => "xor",
            CacheOp::Diff => "diff",
            CacheOp::Not => "not",
            CacheOp::Ite => "ite",
            CacheOp::Exists => "exists",
            CacheOp::Forall => "forall",
            CacheOp::AndExists => "and_exists",
            CacheOp::Restrict => "restrict",
            CacheOp::Compose => "compose",
            CacheOp::CofPos => "cof_pos",
            CacheOp::CofNeg => "cof_neg",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct CacheKey {
    pub op: CacheOp,
    pub a: u32,
    pub b: u32,
    pub c: u32,
}

/// Operation counters of a manager (see [`Bdd::op_stats`]).
///
/// Everything here resets with [`Bdd::reset_op_stats`] — including the GC
/// counters, which makes per-phase deltas easy. The manager's *lifetime*
/// GC count stays available through [`Bdd::gc_runs`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OpStats {
    /// `mk` invocations (node constructions requested).
    pub mk_calls: u64,
    /// `mk` calls satisfied by the unique table (shared nodes).
    pub unique_hits: u64,
    /// Computed-cache lookups across all operators.
    pub cache_lookups: u64,
    /// Computed-cache hits.
    pub cache_hits: u64,
    /// Live computed-cache entries overwritten by a colliding insert (only
    /// the lossy cache evicts; the unbounded shim never does).
    pub cache_evictions: u64,
    /// Recursive `apply` steps across the binary operators.
    pub apply_steps: u64,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Nodes reclaimed by those collections.
    pub gc_nodes_reclaimed: u64,
    /// Wall-clock time spent collecting.
    pub gc_time: Duration,
}

impl OpStats {
    /// Fraction of cache lookups that hit, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Nodes actually constructed: `mk` calls minus unique-table hits (the
    /// same proxy the trace costing uses).
    pub fn nodes_allocated(&self) -> u64 {
        self.mk_calls.saturating_sub(self.unique_hits)
    }

    /// Adds `other`'s counters into `self` (combining per-worker managers
    /// into one run-level report).
    pub fn merge(&mut self, other: &OpStats) {
        self.mk_calls += other.mk_calls;
        self.unique_hits += other.unique_hits;
        self.cache_lookups += other.cache_lookups;
        self.cache_hits += other.cache_hits;
        self.cache_evictions += other.cache_evictions;
        self.apply_steps += other.apply_steps;
        self.gc_runs += other.gc_runs;
        self.gc_nodes_reclaimed += other.gc_nodes_reclaimed;
        self.gc_time += other.gc_time;
    }
}

/// Heap footprint of the manager's three dominant allocations, in bytes
/// (see [`Bdd::mem_report`]).
///
/// All figures are *capacity*-based: they count what the allocator holds
/// for the manager, not just the live entries, because retained capacity is
/// exactly what an out-of-memory investigation needs to see. The unique
/// table is intrusive — chains live inside the node slab — so
/// `unique_table_bytes` covers only the bucket-head arrays (4 bytes per
/// bucket, both generations during an incremental rehash); the chain links
/// are part of `node_slab_bytes`. The computed cache is a flat slot array
/// (or a hashbrown map costed at `size_of::<(K, V)>() + 1` per slot when
/// the unbounded shim is active). `peak_bytes` is the largest total ever
/// *sampled* — the manager samples at every GC and callers may add samples
/// at their own pressure points ([`Bdd::sample_mem`]) — so a spike between
/// samples can be missed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemReport {
    /// Bytes held by the unique table (hash-consing map).
    pub unique_table_bytes: usize,
    /// Bytes held by the computed cache.
    pub computed_cache_bytes: usize,
    /// Bytes held by the node slab and its free list.
    pub node_slab_bytes: usize,
    /// Sum of the three components right now.
    pub total_bytes: usize,
    /// Largest `total_bytes` sampled so far (≥ `total_bytes`).
    pub peak_bytes: usize,
}

impl MemReport {
    /// The report as a JSON object (the `mem` section of run reports).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("unique_table_bytes", self.unique_table_bytes)
            .field("computed_cache_bytes", self.computed_cache_bytes)
            .field("node_slab_bytes", self.node_slab_bytes)
            .field("total_bytes", self.total_bytes)
            .field("peak_bytes", self.peak_bytes)
    }

    /// Sums two reports component-wise. Peaks sum as well: per-worker
    /// managers live concurrently, so the summed peak is an upper bound on
    /// the true process-wide peak.
    pub fn merge(&mut self, other: &MemReport) {
        self.unique_table_bytes += other.unique_table_bytes;
        self.computed_cache_bytes += other.computed_cache_bytes;
        self.node_slab_bytes += other.node_slab_bytes;
        self.total_bytes += other.total_bytes;
        self.peak_bytes += other.peak_bytes;
    }
}

/// Capacity-based byte estimate of a hashbrown-backed map: one flat slot
/// of `(K, V)` plus one control byte per usable slot. Since the unique
/// table went intrusive this only costs the unbounded-cache shim and the
/// protected-roots map.
fn map_bytes<K, V, S>(map: &std::collections::HashMap<K, V, S>) -> usize {
    map.capacity() * (std::mem::size_of::<(K, V)>() + 1)
}

/// One direct-mapped computed-cache slot. `op == SLOT_EMPTY_OP` marks an
/// empty slot; real ops are the [`CacheOp`] discriminants (< 13).
#[derive(Clone, Copy)]
pub(crate) struct CacheSlot {
    op: u8,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

const SLOT_EMPTY_OP: u8 = u8::MAX;

const EMPTY_SLOT: CacheSlot = CacheSlot { op: SLOT_EMPTY_OP, a: 0, b: 0, c: 0, result: 0 };

/// The computed cache: lossy and fixed-size by default, with an unbounded
/// hash-map shim kept for differential testing
/// ([`Bdd::set_unbounded_cache`]).
pub(crate) enum ComputedCache {
    /// Direct-mapped: one slot per hash bucket, overwrite on collision.
    /// `slots` is allocated lazily on the first insert so idle managers
    /// stay small; `capacity` is a power of two.
    Lossy { slots: Vec<CacheSlot>, capacity: usize, len: usize },
    /// Unbounded map — the pre-kernel behaviour.
    Unbounded(FxHashMap<CacheKey, u32>),
}

impl ComputedCache {
    fn lossy(entries: usize) -> Self {
        ComputedCache::Lossy {
            slots: Vec::new(),
            capacity: entries.max(1).next_power_of_two(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        match self {
            ComputedCache::Lossy { len, .. } => *len,
            ComputedCache::Unbounded(map) => map.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            // Dropping to length 0 keeps the allocation; `put` re-fills it.
            ComputedCache::Lossy { slots, len, .. } => {
                slots.clear();
                *len = 0;
            }
            ComputedCache::Unbounded(map) => map.clear(),
        }
    }

    #[inline]
    fn get(&self, key: &CacheKey) -> Option<u32> {
        match self {
            ComputedCache::Lossy { slots, capacity, .. } => {
                if slots.is_empty() {
                    return None;
                }
                let op = key.op as u8;
                let slot = &slots[hash::hash4(op, key.a, key.b, key.c) as usize & (capacity - 1)];
                (slot.op == op && slot.a == key.a && slot.b == key.b && slot.c == key.c)
                    .then_some(slot.result)
            }
            ComputedCache::Unbounded(map) => map.get(key).copied(),
        }
    }

    /// Inserts `key → value`; returns `true` when a *different* live entry
    /// was overwritten (an eviction).
    #[inline]
    fn put(&mut self, key: CacheKey, value: u32) -> bool {
        match self {
            ComputedCache::Lossy { slots, capacity, len } => {
                if slots.is_empty() {
                    slots.resize(*capacity, EMPTY_SLOT);
                }
                let op = key.op as u8;
                let slot =
                    &mut slots[hash::hash4(op, key.a, key.b, key.c) as usize & (*capacity - 1)];
                let evicted = slot.op != SLOT_EMPTY_OP
                    && !(slot.op == op && slot.a == key.a && slot.b == key.b && slot.c == key.c);
                if slot.op == SLOT_EMPTY_OP {
                    *len += 1;
                }
                *slot = CacheSlot { op, a: key.a, b: key.b, c: key.c, result: value };
                evicted
            }
            ComputedCache::Unbounded(map) => {
                map.insert(key, value);
                false
            }
        }
    }

    fn bytes(&self) -> usize {
        match self {
            ComputedCache::Lossy { slots, .. } => {
                slots.capacity() * std::mem::size_of::<CacheSlot>()
            }
            ComputedCache::Unbounded(map) => map_bytes(map),
        }
    }

    fn same_config(&self, other: &ComputedCache) -> bool {
        match (self, other) {
            (
                ComputedCache::Lossy { capacity: a, .. },
                ComputedCache::Lossy { capacity: b, .. },
            ) => a == b,
            (ComputedCache::Unbounded(_), ComputedCache::Unbounded(_)) => true,
            _ => false,
        }
    }

    /// An empty cache with the same configuration (used to carry sizing
    /// across reorder rebuilds).
    fn fresh_like(&self) -> ComputedCache {
        match self {
            ComputedCache::Lossy { capacity, .. } => ComputedCache::lossy(*capacity),
            ComputedCache::Unbounded(_) => ComputedCache::Unbounded(FxHashMap::default()),
        }
    }
}

/// A point-in-time view of the manager's tables (see
/// [`Bdd::telemetry_snapshot`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ManagerSnapshot {
    /// Live nodes (allocated minus freed), including the two terminals.
    pub total_nodes: usize,
    /// Freed slots awaiting reuse.
    pub free_nodes: usize,
    /// Entries in the unique table.
    pub unique_entries: usize,
    /// Unique-table load factor (entries over allocated capacity).
    pub unique_load_factor: f64,
    /// Entries in the computed cache.
    pub cache_entries: usize,
    /// Operation counters at snapshot time.
    pub op_stats: OpStats,
}

impl ManagerSnapshot {
    /// The snapshot as a JSON object (the shape embedded in run reports).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("total_nodes", self.total_nodes)
            .field("free_nodes", self.free_nodes)
            .field("unique_entries", self.unique_entries)
            .field("unique_load_factor", self.unique_load_factor)
            .field("cache_entries", self.cache_entries)
            .field("mk_calls", self.op_stats.mk_calls)
            .field("unique_hits", self.op_stats.unique_hits)
            .field("apply_steps", self.op_stats.apply_steps)
            .field("cache_lookups", self.op_stats.cache_lookups)
            .field("cache_hits", self.op_stats.cache_hits)
            .field("cache_hit_rate", self.op_stats.cache_hit_rate())
            .field("cache_evictions", self.op_stats.cache_evictions)
            .field("gc_runs", self.op_stats.gc_runs)
            .field("gc_nodes_reclaimed", self.op_stats.gc_nodes_reclaimed)
            .field("gc_time_s", self.op_stats.gc_time.as_secs_f64())
    }
}

/// A reduced ordered BDD manager.
///
/// Owns the shared node store for any number of functions. See the
/// [crate-level documentation](crate) for an overview and example.
///
/// # Garbage collection
///
/// Nodes are never freed implicitly. Long-running clients should
/// [`protect`](Bdd::protect) the handles they intend to keep and call
/// [`gc`](Bdd::gc) between operations; everything not reachable from a
/// protected root is recycled. Handles to collected nodes become invalid.
pub struct Bdd {
    nodes: Vec<Node>,
    /// Bucket heads of the intrusive unique table (power-of-two length);
    /// chains run through [`Node::next`].
    heads: Vec<u32>,
    /// Bucket heads of the previous, smaller table while an incremental
    /// rehash is in flight (empty otherwise). Buckets below `migrated`
    /// have already been moved into `heads`.
    old_heads: Vec<u32>,
    migrated: usize,
    /// Live unique-table entries (non-terminal, non-freed nodes).
    unique_entries: usize,
    pub(crate) cache: ComputedCache,
    var2level: Vec<u32>,
    level2var: Vec<u32>,
    protected: FxHashMap<u32, u32>,
    free: Vec<u32>,
    gc_runs: usize,
    op_stats: OpStats,
    recorder: Option<Recorder>,
    /// Largest sampled heap footprint (see [`Bdd::sample_mem`]).
    peak_mem_bytes: usize,
    /// Per-operation latency histogram; `None` (the default) costs one
    /// branch per public operator call.
    op_timing: Option<Box<Histogram>>,
    /// Always-on analytics counters (per-op cache traffic, GC samples,
    /// reorder count); see [`crate::analytics`].
    analytics: crate::analytics::AnalyticsState,
}

impl Bdd {
    /// Creates a manager with `num_vars` variables `x0 .. x{n-1}`, initially
    /// ordered by index.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 256` (the [`crate::VarSet`] width).
    pub fn new(num_vars: usize) -> Self {
        assert!(num_vars <= MAX_VARS, "at most {MAX_VARS} variables supported");
        let mut mgr = Bdd {
            nodes: Vec::with_capacity(1024),
            heads: vec![NIL; MIN_BUCKETS],
            old_heads: Vec::new(),
            migrated: 0,
            unique_entries: 0,
            cache: ComputedCache::lossy(DEFAULT_CACHE_ENTRIES),
            var2level: (0..num_vars as u32).collect(),
            level2var: (0..num_vars as u32).collect(),
            protected: FxHashMap::default(),
            free: Vec::new(),
            gc_runs: 0,
            op_stats: OpStats::default(),
            recorder: None,
            peak_mem_bytes: 0,
            op_timing: None,
            analytics: crate::analytics::AnalyticsState::default(),
        };
        // Slots 0 and 1 are the terminals.
        mgr.nodes.push(Node { var: TERMINAL_VAR, low: Func::ZERO, high: Func::ZERO, next: NIL });
        mgr.nodes.push(Node { var: TERMINAL_VAR, low: Func::ONE, high: Func::ONE, next: NIL });
        mgr
    }

    /// Number of variables in the manager.
    pub fn num_vars(&self) -> usize {
        self.var2level.len()
    }

    /// Appends a fresh variable at the bottom of the order and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the manager already holds 256 variables.
    pub fn add_var(&mut self) -> VarId {
        let v = self.var2level.len() as u32;
        assert!((v as usize) < MAX_VARS, "at most {MAX_VARS} variables supported");
        self.var2level.push(v);
        self.level2var.push(v);
        v
    }

    /// The constant-false function.
    pub fn zero(&self) -> Func {
        Func::ZERO
    }

    /// The constant-true function.
    pub fn one(&self) -> Func {
        Func::ONE
    }

    /// Converts a `bool` into the corresponding constant function.
    pub fn constant(&self, value: bool) -> Func {
        if value {
            Func::ONE
        } else {
            Func::ZERO
        }
    }

    /// The projection function of variable `v` (the function `x_v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this manager.
    pub fn var(&mut self, v: VarId) -> Func {
        assert!((v as usize) < self.num_vars(), "variable x{v} out of range");
        self.mk(v, Func::ZERO, Func::ONE)
    }

    /// The negated projection function `¬x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this manager.
    pub fn nvar(&mut self, v: VarId) -> Func {
        assert!((v as usize) < self.num_vars(), "variable x{v} out of range");
        self.mk(v, Func::ONE, Func::ZERO)
    }

    /// A single literal: `x_v` if `positive`, else `¬x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this manager.
    pub fn literal(&mut self, v: VarId, positive: bool) -> Func {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// Returns the variable labelling the root node of `f`.
    ///
    /// Returns `None` for the constant functions.
    pub fn root_var(&self, f: Func) -> Option<VarId> {
        if f.is_const() {
            None
        } else {
            Some(self.node(f).var)
        }
    }

    /// Low (else) child of a non-constant function's root node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is constant.
    pub fn low(&self, f: Func) -> Func {
        assert!(!f.is_const(), "constants have no cofactors");
        self.node(f).low
    }

    /// High (then) child of a non-constant function's root node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is constant.
    pub fn high(&self, f: Func) -> Func {
        assert!(!f.is_const(), "constants have no cofactors");
        self.node(f).high
    }

    /// The level (depth in the current order) at which variable `v` sits.
    pub fn level_of_var(&self, v: VarId) -> u32 {
        self.var2level[v as usize]
    }

    /// The variable sitting at `level` in the current order.
    pub fn var_at_level(&self, level: u32) -> VarId {
        self.level2var[level as usize]
    }

    /// Current variable order, as the sequence of variables from top level
    /// to bottom.
    pub fn order(&self) -> &[VarId] {
        &self.level2var
    }

    #[inline]
    pub(crate) fn node(&self, f: Func) -> &Node {
        &self.nodes[f.0 as usize]
    }

    /// Level of the root of `f` in the current order (terminals are below
    /// everything).
    #[inline]
    pub(crate) fn level(&self, f: Func) -> u32 {
        let v = self.nodes[f.0 as usize].var;
        if v == TERMINAL_VAR {
            TERMINAL_LEVEL
        } else {
            self.var2level[v as usize]
        }
    }

    /// Hash-conses the node `(var, low, high)`, applying the reduction rules.
    pub(crate) fn mk(&mut self, var: VarId, low: Func, high: Func) -> Func {
        self.op_stats.mk_calls += 1;
        if low == high {
            return low;
        }
        debug_assert!(
            self.var2level[var as usize] < self.level(low)
                && self.var2level[var as usize] < self.level(high),
            "mk: children must be below x{var} in the variable order"
        );
        if !self.old_heads.is_empty() {
            self.migrate_buckets(MIGRATE_STEP);
        }
        let hash = hash::hash3(var, low.0, high.0);
        let bucket = hash as usize & (self.heads.len() - 1);
        let mut cur = self.heads[bucket];
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            if node.var == var && node.low == low && node.high == high {
                self.op_stats.unique_hits += 1;
                return Func(cur);
            }
            cur = node.next;
        }
        // During an incremental rehash the node may still sit in its
        // not-yet-migrated old bucket.
        if !self.old_heads.is_empty() {
            let old_bucket = hash as usize & (self.old_heads.len() - 1);
            if old_bucket >= self.migrated {
                let mut cur = self.old_heads[old_bucket];
                while cur != NIL {
                    let node = &self.nodes[cur as usize];
                    if node.var == var && node.low == low && node.high == high {
                        self.op_stats.unique_hits += 1;
                        return Func(cur);
                    }
                    cur = node.next;
                }
            }
        }
        let node = Node { var, low, high, next: self.heads[bucket] };
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(node);
                id
            }
        };
        self.heads[bucket] = id;
        self.unique_entries += 1;
        if self.old_heads.is_empty() && self.unique_entries * 4 > self.heads.len() * 3 {
            self.grow_unique();
        }
        Func(id)
    }

    /// Doubles the bucket array and starts an incremental rehash: old
    /// buckets are drained [`MIGRATE_STEP`] at a time by subsequent `mk`
    /// calls, so no single operation pays the full rehash. New inserts go
    /// straight into the new table; lookups probe both until done.
    fn grow_unique(&mut self) {
        debug_assert!(self.old_heads.is_empty());
        let new_len = self.heads.len() * 2;
        self.old_heads = std::mem::replace(&mut self.heads, vec![NIL; new_len]);
        self.migrated = 0;
    }

    fn migrate_buckets(&mut self, step: usize) {
        let mask = self.heads.len() - 1;
        for _ in 0..step {
            if self.migrated == self.old_heads.len() {
                break;
            }
            let mut cur = self.old_heads[self.migrated];
            while cur != NIL {
                let node = self.nodes[cur as usize];
                let bucket = hash::hash3(node.var, node.low.0, node.high.0) as usize & mask;
                self.nodes[cur as usize].next = self.heads[bucket];
                self.heads[bucket] = cur;
                cur = node.next;
            }
            self.migrated += 1;
        }
        if self.migrated == self.old_heads.len() {
            self.old_heads = Vec::new();
            self.migrated = 0;
        }
    }

    /// Number of live (allocated, not freed) nodes including terminals.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Number of entries currently in the computed cache.
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    /// Marks `f` as an external root: `f` and everything it references
    /// survives [`gc`](Bdd::gc). Protection is counted; each call must be
    /// matched by one [`unprotect`](Bdd::unprotect).
    pub fn protect(&mut self, f: Func) {
        *self.protected.entry(f.0).or_insert(0) += 1;
    }

    /// Releases one protection of `f` (see [`protect`](Bdd::protect)).
    ///
    /// Unprotecting a handle that is not protected is a no-op.
    pub fn unprotect(&mut self, f: Func) {
        if let Some(count) = self.protected.get_mut(&f.0) {
            *count -= 1;
            if *count == 0 {
                self.protected.remove(&f.0);
            }
        }
    }

    /// Mark-and-sweep garbage collection from the protected roots.
    ///
    /// Returns the number of nodes freed. All unprotected handles become
    /// invalid; the computed cache is cleared. Never call while holding
    /// unprotected intermediates you still need.
    pub fn gc(&mut self) -> usize {
        let start = Instant::now();
        let nodes_before = self.total_nodes();
        let cache_entries = self.cache.len();
        // GC entry is the moment of maximum table pressure: sample memory
        // here so `peak_bytes` captures it.
        let mem_before = self.sample_mem();
        self.gc_runs += 1;
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<u32> = self.protected.keys().copied().collect();
        while let Some(id) = stack.pop() {
            if marked[id as usize] {
                continue;
            }
            marked[id as usize] = true;
            let node = self.nodes[id as usize];
            if node.var != TERMINAL_VAR {
                stack.push(node.low.0);
                stack.push(node.high.0);
            }
        }
        let mut freed = 0;
        for id in 2..self.nodes.len() as u32 {
            let node = &mut self.nodes[id as usize];
            if !marked[id as usize] && node.var != FREE_VAR {
                node.var = FREE_VAR;
                self.free.push(id);
                freed += 1;
            }
        }
        self.unique_entries -= freed;
        self.rebuild_unique(&marked);
        self.cache.clear();
        let elapsed = start.elapsed();
        self.op_stats.gc_runs += 1;
        self.op_stats.gc_nodes_reclaimed += freed as u64;
        self.op_stats.gc_time += elapsed;
        self.analytics.note_gc(crate::analytics::GcSample {
            nodes_before: nodes_before as u64,
            freed: freed as u64,
            cache_entries_dropped: cache_entries as u64,
            elapsed_ns: elapsed.as_nanos() as u64,
        });
        if let Some(rec) = &self.recorder {
            rec.count("bdd.gc.runs", 1);
            rec.count("bdd.gc.nodes_reclaimed", freed as u64);
            rec.point(
                "bdd.gc",
                Json::obj()
                    .field("nodes_before", nodes_before)
                    .field("nodes_after", nodes_before - freed)
                    .field("freed", freed)
                    .field("cache_entries_dropped", cache_entries)
                    .field("mem_bytes_before", mem_before)
                    .field("elapsed_s", elapsed.as_secs_f64()),
            );
            self.emit_mem_gauges(rec);
        }
        freed
    }

    /// GC-time compaction: rebuilds the bucket array sized to the
    /// survivors (abandoning any in-flight incremental rehash) and relinks
    /// every live node in increasing id order, so the table shape after a
    /// collection is a deterministic function of the live node set.
    fn rebuild_unique(&mut self, marked: &[bool]) {
        self.old_heads = Vec::new();
        self.migrated = 0;
        let target = (self.unique_entries * 2).next_power_of_two().max(MIN_BUCKETS);
        if self.heads.len() == target {
            self.heads.fill(NIL);
        } else {
            self.heads = vec![NIL; target];
        }
        let mask = target - 1;
        for (id, &live) in marked.iter().enumerate().skip(2) {
            if live {
                let node = self.nodes[id];
                let bucket = hash::hash3(node.var, node.low.0, node.high.0) as usize & mask;
                self.nodes[id].next = self.heads[bucket];
                self.heads[bucket] = id as u32;
            }
        }
    }

    /// Number of completed [`gc`](Bdd::gc) runs (diagnostics).
    pub fn gc_runs(&self) -> usize {
        self.gc_runs
    }

    /// Clears the computed cache: between decomposition outputs (so one
    /// output's entries cannot alias the next output's work), and in
    /// benchmarks to measure cold-cache performance.
    pub fn clear_computed_cache(&mut self) {
        self.cache.clear();
    }

    /// Resizes the lossy computed cache to `entries` slots (rounded up to a
    /// power of two, minimum 1), clearing it.
    pub fn set_cache_capacity(&mut self, entries: usize) {
        self.cache = ComputedCache::lossy(entries);
    }

    /// Replaces the lossy cache with an unbounded hash map — the
    /// pre-kernel behaviour, kept as a differential-testing shim.
    pub fn set_unbounded_cache(&mut self) {
        self.cache = ComputedCache::Unbounded(FxHashMap::default());
    }

    /// Capacity of the lossy computed cache in entries, or `None` when the
    /// unbounded shim is active.
    pub fn cache_capacity(&self) -> Option<usize> {
        match &self.cache {
            ComputedCache::Lossy { capacity, .. } => Some(*capacity),
            ComputedCache::Unbounded(_) => None,
        }
    }

    pub(crate) fn set_order_raw(&mut self, var2level: Vec<u32>, level2var: Vec<VarId>) {
        debug_assert_eq!(var2level.len(), level2var.len());
        self.var2level = var2level;
        self.level2var = level2var;
    }

    #[inline]
    pub(crate) fn note_apply_step(&mut self) {
        self.op_stats.apply_steps += 1;
    }

    #[inline]
    pub(crate) fn cache_get(&mut self, key: &CacheKey) -> Option<Func> {
        self.op_stats.cache_lookups += 1;
        let hit = self.cache.get(key);
        if hit.is_some() {
            self.op_stats.cache_hits += 1;
        }
        self.analytics.note_lookup(key.op, hit.is_some());
        hit.map(Func)
    }

    #[inline]
    pub(crate) fn cache_put(&mut self, key: CacheKey, value: Func) {
        if self.cache.put(key, value.0) {
            self.op_stats.cache_evictions += 1;
        }
    }

    /// Operation counters accumulated since construction (or the last
    /// [`reset_op_stats`](Bdd::reset_op_stats)).
    pub fn op_stats(&self) -> OpStats {
        self.op_stats
    }

    /// Resets the operation counters (the lifetime [`gc_runs`](Bdd::gc_runs)
    /// count is not affected).
    pub fn reset_op_stats(&mut self) {
        self.op_stats = OpStats::default();
    }

    /// Attaches a telemetry recorder; GC events stream to it and
    /// [`emit_gauges`](Bdd::emit_gauges) publishes table gauges. Pass `None`
    /// to detach. Without a recorder the manager emits nothing.
    pub fn set_recorder(&mut self, recorder: Option<Recorder>) {
        self.recorder = recorder;
    }

    /// The attached telemetry recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Adopts the instrumentation state of `old` after a rebuild: the
    /// attached recorder and the accumulated operation/GC counters survive
    /// [`reorder`](Bdd::reorder) even though the node store does not.
    pub(crate) fn carry_instrumentation_from(&mut self, old: &Bdd) {
        self.recorder = old.recorder.clone();
        self.gc_runs += old.gc_runs;
        self.peak_mem_bytes = self.peak_mem_bytes.max(old.peak_mem_bytes);
        match (&mut self.op_timing, &old.op_timing) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.op_timing = Some(theirs.clone()),
            _ => {}
        }
        let fresh = std::mem::take(&mut self.op_stats);
        self.op_stats = old.op_stats;
        self.op_stats.merge(&fresh);
        self.analytics.absorb(&old.analytics);
        // The rebuilt manager must keep the configured cache geometry
        // (size-1 cache, unbounded shim, …) across a reorder.
        if !self.cache.same_config(&old.cache) {
            self.cache = old.cache.fresh_like();
        }
    }

    /// The always-on analytics counters (per-op cache traffic, GC sample
    /// log, reorder count).
    pub(crate) fn analytics_state(&self) -> &crate::analytics::AnalyticsState {
        &self.analytics
    }

    /// Counts one reorder-by-rebuild run (called by
    /// [`reorder`](Bdd::reorder) on the freshly built manager).
    pub(crate) fn note_reorder(&mut self) {
        self.analytics.reorders += 1;
    }

    /// Exact unique-table probe-length distribution, from walking the real
    /// intrusive chains (see [`crate::analytics::ProbeStats`]). Nodes still
    /// sitting in not-yet-migrated old buckets are counted toward the new
    /// bucket they will land in.
    pub(crate) fn unique_probe_stats(&self) -> crate::analytics::ProbeStats {
        let mask = self.heads.len() - 1;
        let mut occupancy = vec![0u32; self.heads.len()];
        for (bucket, &head) in self.heads.iter().enumerate() {
            let mut cur = head;
            while cur != NIL {
                occupancy[bucket] += 1;
                cur = self.nodes[cur as usize].next;
            }
        }
        if !self.old_heads.is_empty() {
            for &head in &self.old_heads[self.migrated..] {
                let mut cur = head;
                while cur != NIL {
                    let node = &self.nodes[cur as usize];
                    let bucket = hash::hash3(node.var, node.low.0, node.high.0) as usize & mask;
                    occupancy[bucket] += 1;
                    cur = node.next;
                }
            }
        }
        crate::analytics::probe_stats_from_occupancy(&occupancy)
    }

    /// Current heap footprint of the three dominant allocations, in bytes
    /// (capacity-based; see [`MemReport`]).
    pub fn current_mem_bytes(&self) -> usize {
        (self.heads.capacity() + self.old_heads.capacity()) * std::mem::size_of::<u32>()
            + self.cache.bytes()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// Samples the current footprint into the running peak and returns it.
    ///
    /// The manager samples automatically on every [`gc`](Bdd::gc); callers
    /// with other pressure points (end of a build phase, per-output loop)
    /// should sample there too, since `peak_bytes` can only see what was
    /// sampled.
    pub fn sample_mem(&mut self) -> usize {
        let current = self.current_mem_bytes();
        self.peak_mem_bytes = self.peak_mem_bytes.max(current);
        current
    }

    /// The memory report: per-table byte estimates plus the sampled peak.
    ///
    /// The peak is at least the *current* total, so a caller that never
    /// triggered a GC still gets a meaningful figure.
    pub fn mem_report(&self) -> MemReport {
        let unique_table_bytes =
            (self.heads.capacity() + self.old_heads.capacity()) * std::mem::size_of::<u32>();
        let computed_cache_bytes = self.cache.bytes();
        let node_slab_bytes = self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.free.capacity() * std::mem::size_of::<u32>();
        let total_bytes = unique_table_bytes + computed_cache_bytes + node_slab_bytes;
        MemReport {
            unique_table_bytes,
            computed_cache_bytes,
            node_slab_bytes,
            total_bytes,
            peak_bytes: self.peak_mem_bytes.max(total_bytes),
        }
    }

    fn emit_mem_gauges(&self, rec: &Recorder) {
        let mem = self.mem_report();
        rec.gauge("bdd.mem.unique_table_bytes", mem.unique_table_bytes as f64);
        rec.gauge("bdd.mem.computed_cache_bytes", mem.computed_cache_bytes as f64);
        rec.gauge("bdd.mem.node_slab_bytes", mem.node_slab_bytes as f64);
        rec.gauge("bdd.mem.total_bytes", mem.total_bytes as f64);
        rec.gauge("bdd.mem.peak_bytes", mem.peak_bytes as f64);
    }

    /// Turns on the per-operation latency histogram: every public operator
    /// call ([`apply`](Bdd::apply), [`not`](Bdd::not), [`ite`](Bdd::ite) and
    /// the named wrappers) records its wall-clock duration. Off by default;
    /// the disabled path costs one branch per call.
    pub fn enable_op_timing(&mut self) {
        if self.op_timing.is_none() {
            self.op_timing = Some(Box::default());
        }
    }

    #[inline]
    pub(crate) fn op_timing_enabled(&self) -> bool {
        self.op_timing.is_some()
    }

    #[inline]
    pub(crate) fn record_op_duration(&mut self, d: Duration) {
        if let Some(h) = &mut self.op_timing {
            h.record(d);
        }
    }

    /// The per-operation latency histogram, if
    /// [`enable_op_timing`](Bdd::enable_op_timing) was called.
    pub fn op_latency(&self) -> Option<&Histogram> {
        self.op_timing.as_deref()
    }

    /// Unique-table load factor: entries over bucket count, in `[0, 1]`
    /// in steady state (grows are triggered at 3/4).
    pub fn unique_load_factor(&self) -> f64 {
        if self.unique_entries == 0 {
            0.0
        } else {
            self.unique_entries as f64 / self.heads.len() as f64
        }
    }

    /// A point-in-time view of the manager's tables and counters.
    pub fn telemetry_snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot {
            total_nodes: self.total_nodes(),
            free_nodes: self.free.len(),
            unique_entries: self.unique_entries,
            unique_load_factor: self.unique_load_factor(),
            cache_entries: self.cache.len(),
            op_stats: self.op_stats,
        }
    }

    /// Publishes the snapshot as gauges on the attached recorder (no-op
    /// without one).
    pub fn emit_gauges(&self) {
        let Some(rec) = &self.recorder else { return };
        let snap = self.telemetry_snapshot();
        rec.gauge("bdd.total_nodes", snap.total_nodes as f64);
        rec.gauge("bdd.free_nodes", snap.free_nodes as f64);
        rec.gauge("bdd.unique.entries", snap.unique_entries as f64);
        rec.gauge("bdd.unique.load_factor", snap.unique_load_factor);
        rec.gauge("bdd.cache.entries", snap.cache_entries as f64);
        rec.gauge("bdd.cache.hit_rate", snap.op_stats.cache_hit_rate());
        rec.gauge("bdd.cache.evictions", snap.op_stats.cache_evictions as f64);
        self.emit_mem_gauges(rec);
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bdd")
            .field("num_vars", &self.num_vars())
            .field("total_nodes", &self.total_nodes())
            .field("cache_entries", &self.cache.len())
            .field("protected_roots", &self.protected.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let mgr = Bdd::new(2);
        assert!(mgr.zero().is_zero());
        assert!(mgr.one().is_one());
        assert!(mgr.zero().is_const());
        assert_eq!(mgr.constant(true), mgr.one());
        assert_eq!(mgr.constant(false), mgr.zero());
        assert_eq!(mgr.total_nodes(), 2);
    }

    #[test]
    fn mk_is_canonical() {
        let mut mgr = Bdd::new(2);
        let a1 = mgr.var(0);
        let a2 = mgr.var(0);
        assert_eq!(a1, a2, "hash consing must return identical handles");
        assert_eq!(mgr.total_nodes(), 3);
        // Reduction: equal children collapse.
        let c = mgr.mk(1, a1, a1);
        assert_eq!(c, a1);
    }

    #[test]
    fn var_structure() {
        let mut mgr = Bdd::new(3);
        let b = mgr.var(1);
        assert_eq!(mgr.root_var(b), Some(1));
        assert_eq!(mgr.low(b), Func::ZERO);
        assert_eq!(mgr.high(b), Func::ONE);
        let nb = mgr.nvar(1);
        assert_eq!(mgr.low(nb), Func::ONE);
        assert_eq!(mgr.high(nb), Func::ZERO);
        assert_eq!(mgr.literal(1, true), b);
        assert_eq!(mgr.literal(1, false), nb);
        assert_eq!(mgr.root_var(Func::ONE), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut mgr = Bdd::new(2);
        let _ = mgr.var(2);
    }

    #[test]
    fn add_var_extends_order() {
        let mut mgr = Bdd::new(1);
        let v = mgr.add_var();
        assert_eq!(v, 1);
        assert_eq!(mgr.num_vars(), 2);
        let _ = mgr.var(1);
        assert_eq!(mgr.level_of_var(1), 1);
        assert_eq!(mgr.var_at_level(1), 1);
        assert_eq!(mgr.order(), &[0, 1]);
    }

    #[test]
    fn gc_frees_unprotected_nodes() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let keep = mgr.and(a, b);
        let _scratch = {
            let c = mgr.var(2);
            let d = mgr.var(3);
            mgr.or(c, d)
        };
        mgr.protect(keep);
        let before = mgr.total_nodes();
        let freed = mgr.gc();
        assert!(freed > 0, "scratch nodes must be collected");
        assert!(mgr.total_nodes() < before);
        // The protected function still works.
        assert!(mgr.eval(keep, &[true, true, false, false]));
        assert!(!mgr.eval(keep, &[true, false, false, false]));
        mgr.unprotect(keep);
    }

    #[test]
    fn gc_reuses_slots() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        mgr.protect(a);
        mgr.protect(b);
        let f_index = f.index();
        mgr.gc();
        // Rebuilding the same function reuses a freed slot.
        let g = mgr.and(a, b);
        assert_eq!(g.index(), f_index);
    }

    #[test]
    fn op_stats_count_work() {
        let mut mgr = Bdd::new(3);
        assert_eq!(mgr.op_stats(), OpStats::default());
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let stats = mgr.op_stats();
        assert!(stats.mk_calls >= 3, "two vars and one AND node");
        assert!(stats.apply_steps >= 1, "the AND recursed at least once");
        // Repeating the same operation hits the computed cache.
        let lookups_before = mgr.op_stats().cache_lookups;
        let g = mgr.and(a, b);
        assert_eq!(f, g);
        let stats = mgr.op_stats();
        assert!(stats.cache_lookups > lookups_before);
        assert!(stats.cache_hits >= 1);
        assert!(stats.cache_hit_rate() > 0.0);
        mgr.reset_op_stats();
        assert_eq!(mgr.op_stats(), OpStats::default());
        assert_eq!(OpStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn gc_counters_accumulate_and_reset_independently_of_lifetime_count() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let keep = mgr.and(a, b);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let _scratch = mgr.or(c, d);
        mgr.protect(keep);
        let freed = mgr.gc();
        assert!(freed > 0);
        let stats = mgr.op_stats();
        assert_eq!(stats.gc_runs, 1);
        assert_eq!(stats.gc_nodes_reclaimed, freed as u64);
        assert_eq!(mgr.gc_runs(), 1);
        // reset_op_stats clears the per-phase GC counters…
        mgr.reset_op_stats();
        let stats = mgr.op_stats();
        assert_eq!(stats.gc_runs, 0);
        assert_eq!(stats.gc_nodes_reclaimed, 0);
        assert_eq!(stats.gc_time, Duration::ZERO);
        // …but the lifetime count survives, and the next GC starts a fresh
        // delta.
        assert_eq!(mgr.gc_runs(), 1);
        mgr.gc();
        assert_eq!(mgr.op_stats().gc_runs, 1);
        assert_eq!(mgr.gc_runs(), 2);
        mgr.unprotect(keep);
    }

    #[test]
    fn gc_streams_events_to_the_recorder() {
        let mut mgr = Bdd::new(4);
        let rec = Recorder::new();
        let sink = obs::MemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        mgr.set_recorder(Some(rec.clone()));
        assert!(mgr.recorder().is_some());
        let a = mgr.var(0);
        let b = mgr.var(1);
        let keep = mgr.and(a, b);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let _scratch = mgr.or(c, d);
        mgr.protect(keep);
        let freed = mgr.gc();
        assert_eq!(rec.counter("bdd.gc.runs"), 1);
        assert_eq!(rec.counter("bdd.gc.nodes_reclaimed"), freed as u64);
        let point = sink
            .events()
            .into_iter()
            .find_map(|e| match e {
                obs::Event::Point { name, fields } if name == "bdd.gc" => Some(fields),
                _ => None,
            })
            .expect("a bdd.gc point event");
        let before = point.get("nodes_before").and_then(Json::as_f64).unwrap();
        let after = point.get("nodes_after").and_then(Json::as_f64).unwrap();
        assert_eq!(before - after, freed as f64);
        mgr.unprotect(keep);
    }

    #[test]
    fn snapshot_and_gauges_reflect_tables() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let _f = mgr.and(a, b);
        let snap = mgr.telemetry_snapshot();
        assert_eq!(snap.total_nodes, mgr.total_nodes());
        assert_eq!(snap.free_nodes, 0);
        assert!(snap.unique_entries >= 3);
        assert!(snap.unique_load_factor > 0.0 && snap.unique_load_factor <= 1.0);
        assert!(snap.cache_entries >= 1);
        let json = snap.to_json();
        assert_eq!(json.get("total_nodes").and_then(Json::as_f64), Some(mgr.total_nodes() as f64));
        // Gauges publish the same values.
        let rec = Recorder::new();
        mgr.set_recorder(Some(rec.clone()));
        mgr.emit_gauges();
        assert_eq!(rec.gauge_value("bdd.total_nodes"), Some(mgr.total_nodes() as f64));
        assert_eq!(rec.gauge_value("bdd.unique.load_factor"), Some(mgr.unique_load_factor()));
        // Fresh managers report a zero load factor, not NaN.
        assert_eq!(Bdd::new(1).unique_load_factor(), 0.0);
    }

    #[test]
    fn mem_report_components_add_up_and_peak_tracks_gc() {
        let mut mgr = Bdd::new(8);
        let mem = mgr.mem_report();
        assert_eq!(
            mem.total_bytes,
            mem.unique_table_bytes + mem.computed_cache_bytes + mem.node_slab_bytes
        );
        assert!(mem.node_slab_bytes > 0, "the node slab is pre-allocated");
        assert!(mem.peak_bytes >= mem.total_bytes);
        // Build something, then GC: the peak must cover the pre-GC footprint.
        let mut f = mgr.one();
        for v in 0..8 {
            let x = mgr.var(v);
            f = mgr.and(f, x);
        }
        let before_gc = mgr.current_mem_bytes();
        mgr.protect(f);
        mgr.gc();
        let mem = mgr.mem_report();
        assert!(mem.peak_bytes >= before_gc, "GC-point sample must feed the peak");
        assert!(mem.unique_table_bytes > 0);
        let json = mem.to_json();
        assert_eq!(
            json.get("peak_bytes").and_then(Json::as_f64),
            Some(mem.peak_bytes as f64),
            "mem JSON must mirror the struct"
        );
        mgr.unprotect(f);
    }

    #[test]
    fn mem_gauges_are_published_with_the_table_gauges() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let _f = mgr.and(a, b);
        let rec = Recorder::new();
        mgr.set_recorder(Some(rec.clone()));
        mgr.emit_gauges();
        let mem = mgr.mem_report();
        assert_eq!(rec.gauge_value("bdd.mem.total_bytes"), Some(mem.total_bytes as f64));
        assert_eq!(rec.gauge_value("bdd.mem.peak_bytes"), Some(mem.peak_bytes as f64));
        assert_eq!(
            rec.gauge_value("bdd.mem.unique_table_bytes"),
            Some(mem.unique_table_bytes as f64)
        );
    }

    #[test]
    fn op_timing_is_off_by_default_and_records_when_enabled() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let _ = mgr.and(a, b);
        assert!(mgr.op_latency().is_none(), "timing must be opt-in");
        mgr.enable_op_timing();
        mgr.enable_op_timing(); // idempotent: must not clear samples below
        let c = mgr.var(2);
        let f = mgr.not(c);
        let g = mgr.or(f, a);
        let _ = mgr.ite(g, b, c);
        let h = mgr.op_latency().expect("enabled");
        assert!(h.count() >= 3, "not/or/ite calls all record, got {}", h.count());
    }

    #[test]
    fn reorder_carries_peak_mem_and_op_timing() {
        let mut mgr = Bdd::new(6);
        mgr.enable_op_timing();
        let mut f = mgr.zero();
        for v in 0..6 {
            let x = mgr.var(v);
            f = mgr.or(f, x);
        }
        mgr.sample_mem();
        let peak_before = mgr.mem_report().peak_bytes;
        let samples_before = mgr.op_latency().unwrap().count();
        assert!(samples_before > 0);
        let reversed: Vec<VarId> = (0..6).rev().collect();
        let roots = mgr.reorder(&reversed, &[f]);
        assert!(mgr.mem_report().peak_bytes >= peak_before, "peak survives reorder");
        let h = mgr.op_latency().expect("op timing survives reorder");
        assert!(h.count() >= samples_before, "samples survive reorder");
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn unique_table_stays_canonical_across_growth() {
        // The 512 minterms of 9 variables form a trie of ~1000 distinct
        // nodes — several doublings past MIN_BUCKETS — with lookups of old
        // nodes landing mid-rehash throughout.
        let mut mgr = Bdd::new(9);
        let mut triples = Vec::new();
        let mut minterms = Vec::new();
        for i in 0..512u32 {
            let mut f = mgr.one();
            for v in 0..9 {
                let x = mgr.literal(v, (i >> v) & 1 == 1);
                f = mgr.and(x, f);
            }
            if !f.is_const() {
                let n = *mgr.node(f);
                triples.push((n.var, n.low, n.high, f));
            }
            minterms.push((i, f));
        }
        assert!(mgr.total_nodes() > MIN_BUCKETS, "test must outgrow the initial table");
        // Re-making any recorded node returns the identical handle and
        // allocates nothing.
        let allocated_before = mgr.op_stats().nodes_allocated();
        for (var, low, high, expect) in triples {
            assert_eq!(mgr.mk(var, low, high), expect);
        }
        assert_eq!(mgr.op_stats().nodes_allocated(), allocated_before);
        // Every minterm still evaluates to exactly its assignment.
        for (i, f) in minterms.iter().step_by(37) {
            let assignment: Vec<bool> = (0..9).map(|v| (i >> v) & 1 == 1).collect();
            assert!(mgr.eval(*f, &assignment));
        }
        let snap_entries = mgr.telemetry_snapshot().unique_entries;
        assert_eq!(snap_entries, mgr.total_nodes() - 2, "every live non-terminal is an entry");
        let probe = mgr.unique_probe_stats();
        assert_eq!(probe.entries, snap_entries, "chains cover every entry exactly once");
        let lf = mgr.unique_load_factor();
        assert!(lf > 0.0 && lf <= 1.0, "load factor bounded by the grow policy, got {lf}");
    }

    #[test]
    fn lossy_cache_evicts_and_counts() {
        let mut mgr = Bdd::new(8);
        mgr.set_cache_capacity(1);
        assert_eq!(mgr.cache_capacity(), Some(1));
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let _ = mgr.and(a, b);
        let _ = mgr.or(b, c);
        let _ = mgr.xor(a, c);
        let stats = mgr.op_stats();
        assert!(stats.cache_evictions > 0, "a one-slot cache must evict");
        assert!(mgr.cache_entries() <= 1);
        // Results stay correct regardless.
        let f = mgr.and(a, b);
        assert!(mgr.eval(f, &[true, true, false, false, false, false, false, false]));
    }

    #[test]
    fn unbounded_shim_never_evicts() {
        let mut mgr = Bdd::new(8);
        mgr.set_unbounded_cache();
        assert_eq!(mgr.cache_capacity(), None);
        let mut f = mgr.zero();
        for v in 0..8 {
            let x = mgr.var(v);
            f = mgr.xor(f, x);
        }
        assert_eq!(mgr.op_stats().cache_evictions, 0);
        assert!(mgr.cache_entries() > 0);
    }

    #[test]
    fn clear_computed_cache_drops_entries_but_not_nodes() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        assert!(mgr.cache_entries() > 0);
        let nodes = mgr.total_nodes();
        mgr.clear_computed_cache();
        assert_eq!(mgr.cache_entries(), 0);
        assert_eq!(mgr.total_nodes(), nodes);
        // Same op re-runs (a cache miss) but returns the canonical handle.
        let g = mgr.and(a, b);
        assert_eq!(f, g);
    }

    #[test]
    fn gc_compacts_and_stays_canonical() {
        let mut mgr = Bdd::new(12);
        // Grow the table well past MIN_BUCKETS, keep one root, collect.
        let mut keep = mgr.one();
        for v in 0..12 {
            let x = mgr.var(v);
            keep = mgr.and(keep, x);
        }
        let mut scratch = mgr.zero();
        for round in 0..30 {
            for v in 0..12 {
                let x = mgr.var(v);
                let t = if round % 2 == 0 { mgr.or(scratch, x) } else { mgr.xor(scratch, x) };
                scratch = t;
            }
        }
        mgr.protect(keep);
        let freed = mgr.gc();
        assert!(freed > 0);
        let snap = mgr.telemetry_snapshot();
        assert_eq!(snap.unique_entries, mgr.total_nodes() - 2);
        let probe = mgr.unique_probe_stats();
        assert_eq!(probe.entries, snap.unique_entries);
        // The kept conjunction still resolves node-by-node via mk hits.
        let mut expect = mgr.one();
        for v in (0..12).rev() {
            expect = mgr.mk(v, Func::ZERO, expect);
        }
        assert_eq!(expect, keep);
        mgr.unprotect(keep);
    }

    #[test]
    fn op_stats_merge_sums_every_counter() {
        let mut a = OpStats {
            mk_calls: 1,
            unique_hits: 2,
            cache_lookups: 3,
            cache_hits: 4,
            cache_evictions: 5,
            apply_steps: 6,
            gc_runs: 7,
            gc_nodes_reclaimed: 8,
            gc_time: Duration::from_millis(9),
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.mk_calls, 2);
        assert_eq!(a.cache_evictions, 10);
        assert_eq!(a.gc_time, Duration::from_millis(18));
        assert_eq!(b.nodes_allocated(), 0, "hits exceed calls saturates to zero");
        assert_eq!(
            OpStats { mk_calls: 9, unique_hits: 4, ..OpStats::default() }.nodes_allocated(),
            5
        );
    }

    #[test]
    fn mem_report_merge_sums_components_and_peaks() {
        let a = MemReport {
            unique_table_bytes: 1,
            computed_cache_bytes: 2,
            node_slab_bytes: 3,
            total_bytes: 6,
            peak_bytes: 10,
        };
        let mut m = a;
        m.merge(&a);
        assert_eq!(m.total_bytes, 12);
        assert_eq!(m.peak_bytes, 20);
        assert_eq!(m.unique_table_bytes + m.computed_cache_bytes + m.node_slab_bytes, 12);
    }

    #[test]
    fn protect_is_counted() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        mgr.protect(f);
        mgr.protect(f);
        mgr.unprotect(f);
        mgr.gc();
        // Still protected: must survive.
        assert!(mgr.eval(f, &[true, true]));
        mgr.unprotect(f);
        mgr.unprotect(f); // extra unprotect is a no-op
    }
}
