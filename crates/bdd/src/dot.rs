//! Graphviz DOT export for debugging and documentation figures.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::hash::FxBuildHasher;
use crate::manager::{Bdd, Func};

impl Bdd {
    /// Renders the shared DAG of the named roots as a Graphviz `digraph`.
    ///
    /// Solid edges are `high` (then) branches, dashed edges are `low`
    /// (else) branches, in the usual BDD drawing convention.
    ///
    /// ```
    /// use bdd::Bdd;
    /// let mut mgr = Bdd::new(2);
    /// let a = mgr.var(0);
    /// let b = mgr.var(1);
    /// let f = mgr.and(a, b);
    /// let dot = mgr.to_dot(&[("f", f)]);
    /// assert!(dot.contains("digraph bdd"));
    /// ```
    pub fn to_dot(&self, roots: &[(&str, Func)]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  node0 [label=\"0\", shape=box];\n");
        out.push_str("  node1 [label=\"1\", shape=box];\n");
        let mut seen: HashSet<u32, FxBuildHasher> = HashSet::default();
        let mut stack = Vec::new();
        for (name, root) in roots {
            let _ = writeln!(out, "  root_{name} [label=\"{name}\", shape=plaintext];");
            let _ = writeln!(out, "  root_{name} -> node{};", root.index());
            stack.push(*root);
        }
        while let Some(f) = stack.pop() {
            if f.is_const() || !seen.insert(f.index()) {
                continue;
            }
            let var = self.root_var(f).expect("non-constant");
            let (low, high) = (self.low(f), self.high(f));
            let _ = writeln!(out, "  node{} [label=\"x{var}\", shape=circle];", f.index());
            let _ = writeln!(out, "  node{} -> node{} [style=dashed];", f.index(), low.index());
            let _ = writeln!(out, "  node{} -> node{};", f.index(), high.index());
            stack.push(low);
            stack.push(high);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_mentions_every_node() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.xor(a, b);
        let dot = mgr.to_dot(&[("f", f)]);
        assert!(dot.starts_with("digraph bdd"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("root_f"));
        // 3 internal nodes + 2 terminals declared.
        assert_eq!(dot.matches("shape=circle").count(), 3);
    }

    #[test]
    fn dot_of_constant_only_has_terminals() {
        let mgr = Bdd::new(1);
        let dot = mgr.to_dot(&[("t", Func::ONE)]);
        assert_eq!(dot.matches("shape=circle").count(), 0);
        assert!(dot.contains("root_t -> node1"));
    }
}
