//! Existential and universal quantification.
//!
//! These two operators drive every decomposability check in the paper:
//! existential quantification over the column variables of a Karnaugh map
//! ORs the columns together, universal quantification ANDs them (paper,
//! Fig. 2).

use crate::manager::{Bdd, CacheKey, CacheOp, Func};
use crate::varset::VarSet;

impl Bdd {
    /// Builds the positive cube `∏ x_v` over the variables of `vars`.
    ///
    /// Quantifiers take their variable set in this form so the computed
    /// cache can key on its identity.
    ///
    /// # Panics
    ///
    /// Panics if a variable of `vars` is not in this manager.
    pub fn cube(&mut self, vars: &VarSet) -> Func {
        // Build bottom-up in order of decreasing level so `mk` invariants hold.
        let mut by_level: Vec<_> = vars.iter().map(|v| (self.level_of_var(v), v)).collect();
        by_level.sort_unstable();
        let mut acc = Func::ONE;
        for (_, v) in by_level.into_iter().rev() {
            acc = self.mk(v, Func::ZERO, acc);
        }
        acc
    }

    /// Existential quantification `∃ vars . f`.
    ///
    /// `cube` must be a positive cube as produced by [`Bdd::cube`].
    pub fn exists(&mut self, f: Func, cube: Func) -> Func {
        self.quant(f, cube, true)
    }

    /// Universal quantification `∀ vars . f`.
    ///
    /// `cube` must be a positive cube as produced by [`Bdd::cube`].
    pub fn forall(&mut self, f: Func, cube: Func) -> Func {
        self.quant(f, cube, false)
    }

    /// Existential quantification over a [`VarSet`] (builds the cube
    /// internally; prefer [`Bdd::exists`] with a pre-built cube in loops).
    pub fn exists_set(&mut self, f: Func, vars: &VarSet) -> Func {
        let cube = self.cube(vars);
        self.exists(f, cube)
    }

    /// Universal quantification over a [`VarSet`].
    pub fn forall_set(&mut self, f: Func, vars: &VarSet) -> Func {
        let cube = self.cube(vars);
        self.forall(f, cube)
    }

    /// Fused `∃ vars . (f · g)` — never materializes the conjunction.
    ///
    /// The decomposability checks of Theorems 1 and 2 are all of this
    /// shape; the fused recursion short-circuits to constant 1 as soon as
    /// one branch of a quantified variable saturates, which `and` +
    /// `exists` cannot do.
    pub fn and_exists(&mut self, f: Func, g: Func, cube: Func) -> Func {
        if f.is_zero() || g.is_zero() {
            return Func::ZERO;
        }
        if cube.is_one() {
            return self.and(f, g);
        }
        if f.is_one() && g.is_one() {
            return Func::ONE;
        }
        if f.is_one() {
            return self.exists(g, cube);
        }
        if g.is_one() || f == g {
            return self.exists(f, cube);
        }
        // Skip quantified variables above both operands.
        let top = self.level(f).min(self.level(g));
        let mut cube = cube;
        while !cube.is_one() && self.level(cube) < top {
            cube = self.node(cube).high;
        }
        if cube.is_one() {
            return self.and(f, g);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = CacheKey { op: CacheOp::AndExists, a: a.0, b: b.0, c: cube.0 };
        if let Some(hit) = self.cache_get(&key) {
            return hit;
        }
        let var = self.var_at_level(top);
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let result = if self.level(cube) == top {
            let sub = self.node(cube).high;
            let r0 = self.and_exists(f0, g0, sub);
            if r0.is_one() {
                r0
            } else {
                let r1 = self.and_exists(f1, g1, sub);
                self.or(r0, r1)
            }
        } else {
            let low = self.and_exists(f0, g0, cube);
            let high = self.and_exists(f1, g1, cube);
            self.mk(var, low, high)
        };
        self.cache_put(key, result);
        result
    }

    fn quant(&mut self, f: Func, cube: Func, existential: bool) -> Func {
        if f.is_const() || cube.is_one() {
            return f;
        }
        debug_assert!(!cube.is_zero(), "quantifier cube must be a positive cube");
        let lf = self.level(f);
        // Skip cube variables above f's top variable: they do not occur in f.
        let mut cube = cube;
        while !cube.is_one() && self.level(cube) < lf {
            cube = self.node(cube).high;
        }
        if cube.is_one() {
            return f;
        }
        let op = if existential { CacheOp::Exists } else { CacheOp::Forall };
        let key = CacheKey { op, a: f.0, b: cube.0, c: 0 };
        if let Some(hit) = self.cache_get(&key) {
            return hit;
        }
        let lc = self.level(cube);
        let node = *self.node(f);
        let result = if lf == lc {
            // Quantify this variable out.
            let sub_cube = self.node(cube).high;
            let low = self.quant(node.low, sub_cube, existential);
            let high = self.quant(node.high, sub_cube, existential);
            if existential {
                self.or(low, high)
            } else {
                self.and(low, high)
            }
        } else {
            let low = self.quant(node.low, cube, existential);
            let high = self.quant(node.high, cube, existential);
            self.mk(node.var, low, high)
        };
        self.cache_put(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The completely specified function of the paper's Fig. 2 Karnaugh map:
    /// variables (a, b) select the column, (c, d) the row, and
    /// F(a,b,c,d) has the map (rows cd = 00,01,11,10; columns ab = 00,01,11,10):
    ///
    /// ```text
    ///        ab:  00 01 11 10
    /// cd=00:       0  1  0  1
    /// cd=01:       1  1  0  1
    /// cd=11:       0  1  0  0
    /// cd=10:       0  1  1  1
    /// ```
    fn fig2_function(mgr: &mut Bdd) -> Func {
        // Minterm list derived from the map above.
        let rows = [
            (0b00, [false, true, false, true]),
            (0b01, [true, true, false, true]),
            (0b11, [false, true, false, false]),
            (0b10, [false, true, true, true]),
        ];
        let mut f = Func::ZERO;
        for (cd, cols) in rows {
            for (ci, &on) in cols.iter().enumerate() {
                if !on {
                    continue;
                }
                let ab = [0b00, 0b01, 0b11, 0b10][ci];
                let assignment = [
                    (0u32, ab & 0b10 != 0), // a
                    (1, ab & 0b01 != 0),    // b
                    (2, cd & 0b10 != 0),    // c
                    (3, cd & 0b01 != 0),    // d
                ];
                let mut cube = Func::ONE;
                for (v, pos) in assignment {
                    let lit = mgr.literal(v, pos);
                    cube = mgr.and(cube, lit);
                }
                f = mgr.or(f, cube);
            }
        }
        f
    }

    #[test]
    fn karnaugh_fig2_exists_is_or_of_columns() {
        // ∃ab F: for each row (c,d), true iff any column is 1 in that row.
        let mut mgr = Bdd::new(4);
        let f = fig2_function(&mut mgr);
        let ab = VarSet::from_iter([0u32, 1]);
        let ex = mgr.exists_set(f, &ab);
        // Every row of the map contains at least one 1 → ∃ab F ≡ 1.
        assert!(ex.is_one());
    }

    #[test]
    fn karnaugh_fig2_forall_is_and_of_columns() {
        // ∀ab F: for each row, true iff all columns are 1.
        let mut mgr = Bdd::new(4);
        let f = fig2_function(&mut mgr);
        let ab = VarSet::from_iter([0u32, 1]);
        let all = mgr.forall_set(f, &ab);
        // No row has all four columns at 1 → ∀ab F ≡ 0.
        assert!(all.is_zero());
    }

    #[test]
    fn karnaugh_fig2_row_quantification() {
        // Quantifying the row variables instead: column ab=01 is all ones.
        let mut mgr = Bdd::new(4);
        let f = fig2_function(&mut mgr);
        let cd = VarSet::from_iter([2u32, 3]);
        let all = mgr.forall_set(f, &cd);
        // ∀cd F = ¬a·b (only column ab=01 is constant 1).
        let na = mgr.nvar(0);
        let b = mgr.var(1);
        let expected = mgr.and(na, b);
        assert_eq!(all, expected);
        let ex = mgr.exists_set(f, &cd);
        // Every column contains a 1 somewhere → ∃cd F ≡ 1.
        assert!(ex.is_one());
    }

    #[test]
    fn exists_matches_cofactor_disjunction() {
        let mut mgr = Bdd::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let xy = mgr.and(x, y);
        let nyz = {
            let ny = mgr.not(y);
            mgr.and(ny, z)
        };
        let f = mgr.or(xy, nyz);
        let c1 = mgr.cofactor(f, 1, true);
        let c0 = mgr.cofactor(f, 1, false);
        let expected = mgr.or(c0, c1);
        assert_eq!(mgr.exists_set(f, &VarSet::singleton(1)), expected);
        let expected = mgr.and(c0, c1);
        assert_eq!(mgr.forall_set(f, &VarSet::singleton(1)), expected);
    }

    #[test]
    fn quantifying_absent_variables_is_identity() {
        let mut mgr = Bdd::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.and(x, y);
        let others = VarSet::from_iter([2u32, 3]);
        assert_eq!(mgr.exists_set(f, &others), f);
        assert_eq!(mgr.forall_set(f, &others), f);
        assert_eq!(mgr.exists_set(f, &VarSet::new()), f);
    }

    #[test]
    fn quantifier_duality() {
        // ∀X f = ¬∃X ¬f on a randomized-ish structured function.
        let mut mgr = Bdd::new(5);
        let vs: Vec<Func> = (0..5).map(|i| mgr.var(i)).collect();
        let t1 = mgr.and(vs[0], vs[2]);
        let t2 = mgr.xor(vs[1], vs[3]);
        let t3 = mgr.and(t2, vs[4]);
        let f = mgr.or(t1, t3);
        let xs = VarSet::from_iter([0u32, 3, 4]);
        let lhs = mgr.forall_set(f, &xs);
        let nf = mgr.not(f);
        let e = mgr.exists_set(nf, &xs);
        let rhs = mgr.not(e);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn and_exists_equals_sequential() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let f = mgr.or(a, b);
        let g = mgr.xor(b, c);
        let cube = mgr.cube(&VarSet::singleton(1));
        let fused = mgr.and_exists(f, g, cube);
        let fg = mgr.and(f, g);
        let seq = mgr.exists(fg, cube);
        assert_eq!(fused, seq);
    }

    #[test]
    fn cube_structure() {
        let mut mgr = Bdd::new(4);
        let cube = mgr.cube(&VarSet::from_iter([1u32, 3]));
        assert!(mgr.eval(cube, &[false, true, false, true]));
        assert!(!mgr.eval(cube, &[true, true, true, false]));
        assert_eq!(mgr.cube(&VarSet::new()), Func::ONE);
    }
}
