//! Differential verification: the SAT miter and the BDD engine must agree
//! on every equivalence question, including real decomposition outputs.

use netlist::{Gate2, Netlist};
use sat::tseitin::check_equivalence;

/// BDD-based equivalence (the §8 verifier's method).
fn bdd_equivalent(a: &Netlist, b: &Netlist) -> bool {
    let mut mgr = bdd::Bdd::new(a.inputs().len());
    a.to_bdds(&mut mgr) == b.to_bdds(&mut mgr)
}

#[test]
fn decomposed_netlist_equals_its_folded_form() {
    let b = benchmarks::by_name("rd73").expect("known");
    let outcome = bidecomp::decompose_pla(&b.pla, &bidecomp::Options::default());
    let folded = outcome.netlist.fold_inverters();
    assert_eq!(check_equivalence(&outcome.netlist, &folded), None);
    assert!(bdd_equivalent(&outcome.netlist, &folded));
}

#[test]
fn decomposed_netlist_equals_its_blif_roundtrip() {
    let b = benchmarks::by_name("5xp1").expect("known");
    let outcome = bidecomp::decompose_pla(&b.pla, &bidecomp::Options::default());
    let text = outcome.netlist.to_blif("x");
    let back = Netlist::from_blif(&text).expect("roundtrip");
    assert_eq!(check_equivalence(&outcome.netlist, &back), None);
}

#[test]
fn different_option_variants_are_equivalent_when_fully_specified() {
    // A completely specified PLA: every option variant must produce the
    // same function, hence SAT-equivalent netlists.
    let pla: pla::Pla = "\
.i 5
.o 2
11--- 10
--11- 11
----1 01
.e
"
    .parse()
    .expect("valid");
    let default = bidecomp::decompose_pla(&pla, &bidecomp::Options::default());
    for options in [
        bidecomp::Options { use_exor: false, ..bidecomp::Options::default() },
        bidecomp::Options { use_cache: false, ..bidecomp::Options::default() },
        bidecomp::Options::weak_only(),
    ] {
        let other = bidecomp::decompose_pla(&pla, &options);
        assert_eq!(check_equivalence(&default.netlist, &other.netlist), None, "{options:?}");
    }
}

#[test]
fn sat_and_bdd_agree_on_randomized_pairs() {
    // Random structured netlist pairs: sometimes equivalent (rebuilt from
    // the same recipe), sometimes not (one gate type flipped).
    let mut state = 0xABCDEFu64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for round in 0..30 {
        let n = 5;
        let gates = 8;
        let recipe: Vec<(usize, usize, usize)> =
            (0..gates).map(|_| (next() % 3, next(), next())).collect();
        let build = |mutate: Option<usize>| -> Netlist {
            let mut nl = Netlist::new();
            let mut signals: Vec<_> = (0..n).map(|k| nl.add_input(format!("x{k}"))).collect();
            for (idx, &(op, a, b)) in recipe.iter().enumerate() {
                let fa = signals[a % signals.len()];
                let fb = signals[b % signals.len()];
                let mut op = op;
                if mutate == Some(idx) {
                    op = (op + 1) % 3;
                }
                let g = match op {
                    0 => nl.add_gate(Gate2::And, fa, fb),
                    1 => nl.add_gate(Gate2::Or, fa, fb),
                    _ => nl.add_gate(Gate2::Xor, fa, fb),
                };
                signals.push(g);
            }
            nl.add_output("f", *signals.last().expect("nonempty"));
            nl
        };
        let a = build(None);
        let b = if round % 2 == 0 { build(None) } else { build(Some(next() % gates)) };
        let sat_verdict = check_equivalence(&a, &b);
        let bdd_verdict = bdd_equivalent(&a, &b);
        assert_eq!(sat_verdict.is_none(), bdd_verdict, "round {round}: SAT and BDD must agree");
        if let Some(cex) = sat_verdict {
            assert_ne!(a.eval_all(&cex), b.eval_all(&cex), "counterexample must be real");
        }
    }
}
