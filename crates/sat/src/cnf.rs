//! Clause databases.

use std::fmt;

/// A propositional variable (0-based index).
pub type Var = u32;

/// A literal: a variable with a polarity, encoded as `2·var + sign`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive or negative literal of `var`.
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(2 * var + u32::from(!positive))
    }

    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit::new(var, true)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit::new(var, false)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 / 2
    }

    /// `true` for a positive literal.
    pub fn is_positive(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The complemented literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code usable as an array index (`2·var + sign`).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "¬x{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    /// DIMACS convention: 1-based, negative for complemented literals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dimacs = (self.var() as i64 + 1) * if self.is_positive() { 1 } else { -1 };
        write!(f, "{dimacs}")
    }
}

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty (trivially satisfiable) formula with no variables.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = self.num_vars as Var;
        self.num_vars += 1;
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause (a disjunction of literals). An empty clause makes
    /// the formula unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal mentions an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for &l in &clause {
            assert!(
                (l.var() as usize) < self.num_vars,
                "literal {l:?} uses an unallocated variable"
            );
        }
        self.clauses.push(clause);
    }

    /// Convenience: asserts a single literal.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Serializes in DIMACS `cnf` format.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let _ = write!(out, "{lit} ");
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Evaluates the formula under a complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment arity mismatch");
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|l| assignment[l.var() as usize] == l.is_positive()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let p = Lit::pos(3);
        let n = Lit::neg(3);
        assert_eq!(p.var(), 3);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_ne!(p.code(), n.code());
        assert_eq!(Lit::new(3, true), p);
        assert_eq!(format!("{p}"), "4");
        assert_eq!(format!("{n}"), "-4");
        assert_eq!(format!("{n:?}"), "¬x3");
    }

    #[test]
    fn cnf_building_and_eval() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::neg(b)]);
        assert!(cnf.eval(&[true, false]));
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
        let dimacs = cnf.to_dimacs();
        assert!(dimacs.starts_with("p cnf 2 2"));
        assert!(dimacs.contains("1 2 0"));
    }

    #[test]
    #[should_panic(expected = "unallocated variable")]
    fn unallocated_variable_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_unit(Lit::pos(0));
    }
}
