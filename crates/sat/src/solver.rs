//! A DPLL solver with two-watched-literal propagation.
//!
//! No clause learning — circuit miters at this workspace's scale are easy
//! instances, and a chronological solver keeps the implementation small
//! and auditable. The test suite cross-checks it against brute force and
//! against BDD equivalence.

use crate::cnf::{Cnf, Lit};

/// Result of a [`solve`] call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Satisfiable, with one satisfying assignment (indexed by variable).
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
}

impl Verdict {
    /// `true` for the satisfiable case.
    pub fn is_sat(&self) -> bool {
        matches!(self, Verdict::Sat(_))
    }
}

/// Decides satisfiability of a CNF formula.
pub fn solve(cnf: &Cnf) -> Verdict {
    Solver::new(cnf).run()
}

struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// `watchers[l.code()]`: clauses in which literal `l` is watched.
    watchers: Vec<Vec<usize>>,
    assign: Vec<Option<bool>>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Decision stack: (trail length before the decision, literal, was it
    /// already flipped once).
    decisions: Vec<(usize, Lit, bool)>,
    /// Static branching scores: occurrences per literal code.
    occurrences: Vec<u32>,
    initial_units: Vec<Lit>,
    trivially_unsat: bool,
}

impl Solver {
    fn new(cnf: &Cnf) -> Solver {
        let num_vars = cnf.num_vars();
        let mut solver = Solver {
            clauses: Vec::new(),
            watchers: vec![Vec::new(); 2 * num_vars],
            assign: vec![None; num_vars],
            trail: Vec::new(),
            qhead: 0,
            decisions: Vec::new(),
            occurrences: vec![0; 2 * num_vars],
            initial_units: Vec::new(),
            trivially_unsat: false,
        };
        'clauses: for raw in cnf.clauses() {
            let mut clause = raw.clone();
            clause.sort_unstable();
            clause.dedup();
            // Skip tautological clauses (contain l and ¬l).
            for pair in clause.windows(2) {
                if pair[0].var() == pair[1].var() {
                    continue 'clauses;
                }
            }
            for &l in &clause {
                solver.occurrences[l.code()] += 1;
            }
            match clause.len() {
                0 => solver.trivially_unsat = true,
                1 => solver.initial_units.push(clause[0]),
                _ => {
                    let idx = solver.clauses.len();
                    solver.watchers[clause[0].code()].push(idx);
                    solver.watchers[clause[1].code()].push(idx);
                    solver.clauses.push(clause);
                }
            }
        }
        solver
    }

    fn run(mut self) -> Verdict {
        if self.trivially_unsat {
            return Verdict::Unsat;
        }
        for unit in std::mem::take(&mut self.initial_units) {
            if !self.enqueue(unit) {
                return Verdict::Unsat;
            }
        }
        loop {
            if self.propagate_found_conflict() {
                // Chronological backtracking with polarity flipping.
                loop {
                    match self.decisions.pop() {
                        None => return Verdict::Unsat,
                        Some((mark, lit, flipped)) => {
                            self.undo_to(mark);
                            if !flipped {
                                self.decisions.push((mark, !lit, true));
                                let ok = self.enqueue(!lit);
                                debug_assert!(ok, "flipped decision on a free variable");
                                break;
                            }
                        }
                    }
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let model = self.assign.iter().map(|v| v.unwrap_or(false)).collect();
                        return Verdict::Sat(model);
                    }
                    Some(lit) => {
                        self.decisions.push((self.trail.len(), lit, false));
                        let ok = self.enqueue(lit);
                        debug_assert!(ok, "picked an assigned variable");
                    }
                }
            }
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|v| v == l.is_positive())
    }

    /// Assigns `l` true; returns false on an immediate contradiction.
    fn enqueue(&mut self, l: Lit) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.assign[l.var() as usize] = Some(l.is_positive());
                self.trail.push(l);
                true
            }
        }
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let l = self.trail.pop().expect("trail length checked");
            self.assign[l.var() as usize] = None;
        }
        self.qhead = self.trail.len().min(self.qhead).min(mark);
    }

    /// Unit propagation; returns `true` if a conflict was found.
    fn propagate_found_conflict(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let t = self.trail[self.qhead];
            self.qhead += 1;
            let falsified = !t;
            let mut watch_list = std::mem::take(&mut self.watchers[falsified.code()]);
            let mut write = 0;
            let mut conflict = false;
            let mut read = 0;
            while read < watch_list.len() {
                let ci = watch_list[read];
                read += 1;
                // Normalize: watched literals sit at positions 0 and 1,
                // with the falsified one at position 1.
                if self.clauses[ci][0] == falsified {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], falsified);
                if self.value(self.clauses[ci][0]) == Some(true) {
                    watch_list[write] = ci;
                    write += 1;
                    continue;
                }
                // Look for a replacement watch.
                let replacement = (2..self.clauses[ci].len())
                    .find(|&k| self.value(self.clauses[ci][k]) != Some(false));
                match replacement {
                    Some(k) => {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watchers[new_watch.code()].push(ci);
                    }
                    None => {
                        // Unit or conflict on the other watch.
                        watch_list[write] = ci;
                        write += 1;
                        let other = self.clauses[ci][0];
                        if !self.enqueue(other) {
                            conflict = true;
                            // Keep the remaining watchers registered.
                            while read < watch_list.len() {
                                watch_list[write] = watch_list[read];
                                write += 1;
                                read += 1;
                            }
                        }
                    }
                }
            }
            watch_list.truncate(write);
            // Watchers may have been added for `falsified` during the loop
            // (only via replacement pushes to other literals, never to
            // `falsified` itself, since a replacement is non-false while
            // `falsified` is false) — safe to move back wholesale.
            debug_assert!(self.watchers[falsified.code()].is_empty());
            self.watchers[falsified.code()] = watch_list;
            if conflict {
                return true;
            }
        }
        false
    }

    /// Picks the unassigned literal with the most occurrences.
    fn pick_branch(&self) -> Option<Lit> {
        let mut best: Option<(u32, Lit)> = None;
        for var in 0..self.assign.len() {
            if self.assign[var].is_some() {
                continue;
            }
            let pos = Lit::pos(var as u32);
            let neg = Lit::neg(var as u32);
            let (op, on) = (self.occurrences[pos.code()], self.occurrences[neg.code()]);
            let (count, lit) = if op >= on { (op + on, pos) } else { (op + on, neg) };
            if best.is_none_or(|(c, _)| count > c) {
                best = Some((count, lit));
            }
        }
        best.map(|(_, l)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;

    fn brute_force(cnf: &Cnf) -> bool {
        let n = cnf.num_vars();
        assert!(n <= 16);
        (0..1u32 << n).any(|m| {
            let assignment: Vec<bool> = (0..n).map(|k| m & (1 << k) != 0).collect();
            cnf.eval(&assignment)
        })
    }

    #[test]
    fn trivial_cases() {
        let cnf = Cnf::new();
        assert!(solve(&cnf).is_sat(), "empty formula is SAT");
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        cnf.add_unit(Lit::pos(a));
        cnf.add_unit(Lit::neg(a));
        assert_eq!(solve(&cnf), Verdict::Unsat);
        let mut cnf = Cnf::new();
        let _ = cnf.fresh_var();
        cnf.add_clause([]);
        assert_eq!(solve(&cnf), Verdict::Unsat, "empty clause");
    }

    #[test]
    fn model_satisfies_formula() {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..4).map(|_| cnf.fresh_var()).collect();
        cnf.add_clause([Lit::pos(vars[0]), Lit::neg(vars[1])]);
        cnf.add_clause([Lit::pos(vars[1]), Lit::pos(vars[2])]);
        cnf.add_clause([Lit::neg(vars[2]), Lit::neg(vars[0]), Lit::pos(vars[3])]);
        match solve(&cnf) {
            Verdict::Sat(model) => assert!(cnf.eval(&model)),
            Verdict::Unsat => panic!("formula is satisfiable"),
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes two parallel rows
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables p[i][j]: pigeon i in hole j.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| (0..2).map(|_| cnf.fresh_var()).collect()).collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    cnf.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(solve(&cnf), Verdict::Unsat);
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([Lit::pos(a), Lit::neg(a)]); // tautology
        cnf.add_clause([Lit::pos(b)]);
        match solve(&cnf) {
            Verdict::Sat(model) => assert!(model[b as usize]),
            Verdict::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut sat_seen = 0;
        let mut unsat_seen = 0;
        for _ in 0..60 {
            let n = 6;
            let mut cnf = Cnf::new();
            for _ in 0..n {
                cnf.fresh_var();
            }
            // ~4.3 clauses/var straddles the phase transition.
            for _ in 0..26 {
                let mut lits = Vec::new();
                while lits.len() < 3 {
                    let v = (next() % n) as Var;
                    let l = Lit::new(v, next() % 2 == 0);
                    if !lits.contains(&l) && !lits.contains(&!l) {
                        lits.push(l);
                    }
                }
                cnf.add_clause(lits);
            }
            let expected = brute_force(&cnf);
            match solve(&cnf) {
                Verdict::Sat(model) => {
                    assert!(expected, "solver claimed SAT on an UNSAT instance");
                    assert!(cnf.eval(&model), "model must satisfy the formula");
                    sat_seen += 1;
                }
                Verdict::Unsat => {
                    assert!(!expected, "solver claimed UNSAT on a SAT instance");
                    unsat_seen += 1;
                }
            }
        }
        assert!(sat_seen > 5 && unsat_seen > 5, "sweep must exercise both verdicts");
    }
}
