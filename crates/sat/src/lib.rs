//! A compact SAT solver and netlist miters — the second, independent
//! verification engine of the workspace.
//!
//! The paper verifies its results with a BDD-based checker (§8); a
//! production flow wants a *structurally different* second opinion. This
//! crate provides one:
//!
//! * [`Cnf`]/[`Lit`] — clause databases in the usual DIMACS spirit;
//! * [`solve`] — a DPLL solver with two-watched-literal propagation and
//!   an occurrence-based branching heuristic (sized for circuit miters,
//!   not industrial instances);
//! * [`tseitin`] — CNF encodings of [`netlist::Netlist`]s and
//!   [`miter`](tseitin::miter)-based equivalence checking: two circuits
//!   are equivalent iff their XOR-of-outputs miter is UNSAT, and a SAT
//!   answer is a concrete counterexample assignment.
//!
//! ```
//! use netlist::{Netlist, Gate2};
//!
//! let mut a = Netlist::new();
//! let (x, y) = (a.add_input("x"), a.add_input("y"));
//! let g = a.add_gate(Gate2::And, x, y);
//! a.add_output("f", g);
//!
//! let mut b = Netlist::new();
//! let (x, y) = (b.add_input("x"), b.add_input("y"));
//! let nx = b.add_not(x);
//! let ny = b.add_not(y);
//! let nor = b.add_gate(Gate2::Or, nx, ny);
//! let f = b.add_not(nor);
//! b.add_output("f", f);
//!
//! // De Morgan: the two netlists are equivalent.
//! assert_eq!(sat::tseitin::check_equivalence(&a, &b), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod solver;
pub mod tseitin;

pub use cnf::{Cnf, Lit, Var};
pub use solver::{solve, Verdict};
