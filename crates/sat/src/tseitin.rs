//! Tseitin encoding of gate netlists and miter-based equivalence.

use netlist::{Gate, Gate2, Netlist};

use crate::cnf::{Cnf, Lit, Var};
use crate::solver::{solve, Verdict};

/// CNF variables of an encoded netlist.
#[derive(Clone, Debug)]
pub struct Encoded {
    /// CNF variable per primary input, in declaration order.
    pub inputs: Vec<Var>,
    /// CNF variable per primary output, in declaration order.
    pub outputs: Vec<Var>,
}

/// Encodes the (live part of the) netlist into `cnf`, adding one variable
/// per signal. The encoding is consistent: any input assignment extends
/// uniquely to a model.
///
/// With `share_inputs`, input `k` (declaration order) reuses the given
/// variable instead of a fresh one — the mechanism behind
/// [`miter`]-building.
///
/// # Panics
///
/// Panics if `share_inputs` is provided with the wrong length.
pub fn encode(nl: &Netlist, cnf: &mut Cnf, share_inputs: Option<&[Var]>) -> Encoded {
    if let Some(shared) = share_inputs {
        assert_eq!(shared.len(), nl.inputs().len(), "one shared variable per input");
    }
    let mut var_of = vec![None::<Var>; nl.nodes().len()];
    // Inputs first, in declaration order, so sharing lines up even when
    // some inputs are dead.
    let inputs: Vec<Var> = nl
        .inputs()
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            let v = match share_inputs {
                Some(shared) => shared[k],
                None => cnf.fresh_var(),
            };
            var_of[s as usize] = Some(v);
            v
        })
        .collect();
    // Constants get dedicated frozen variables on demand.
    let mut const_var = [None::<Var>; 2];
    for &s in &nl.live_signals() {
        if var_of[s as usize].is_some() {
            continue; // inputs already handled
        }
        let v = match *nl.gate(s) {
            Gate::Input(_) => unreachable!("inputs were pre-assigned"),
            Gate::Const(value) => *const_var[usize::from(value)].get_or_insert_with(|| {
                let v = cnf.fresh_var();
                cnf.add_unit(Lit::new(v, value));
                v
            }),
            Gate::Not(a) => {
                let av = var_of[a as usize].expect("fanin precedes fanout");
                let v = cnf.fresh_var();
                // v ≡ ¬a.
                cnf.add_clause([Lit::pos(v), Lit::pos(av)]);
                cnf.add_clause([Lit::neg(v), Lit::neg(av)]);
                v
            }
            Gate::Binary(op, a, b) => {
                let av = var_of[a as usize].expect("fanin precedes fanout");
                let bv = var_of[b as usize].expect("fanin precedes fanout");
                let v = cnf.fresh_var();
                encode_gate(cnf, op, v, av, bv);
                v
            }
        };
        var_of[s as usize] = Some(v);
    }
    let outputs = nl
        .outputs()
        .iter()
        .map(|&(_, s)| var_of[s as usize].expect("outputs are live by definition"))
        .collect();
    Encoded { inputs, outputs }
}

fn encode_gate(cnf: &mut Cnf, op: Gate2, v: Var, a: Var, b: Var) {
    let (pa, pb, pv) = (Lit::pos(a), Lit::pos(b), Lit::pos(v));
    match op {
        Gate2::And | Gate2::Nand => {
            let out = if op == Gate2::And { pv } else { !pv };
            // out ≡ a ∧ b.
            cnf.add_clause([!out, pa]);
            cnf.add_clause([!out, pb]);
            cnf.add_clause([out, !pa, !pb]);
        }
        Gate2::Or | Gate2::Nor => {
            let out = if op == Gate2::Or { pv } else { !pv };
            // out ≡ a ∨ b.
            cnf.add_clause([out, !pa]);
            cnf.add_clause([out, !pb]);
            cnf.add_clause([!out, pa, pb]);
        }
        Gate2::Xor | Gate2::Xnor => {
            let out = if op == Gate2::Xor { pv } else { !pv };
            // out ≡ a ⊕ b.
            cnf.add_clause([!out, pa, pb]);
            cnf.add_clause([!out, !pa, !pb]);
            cnf.add_clause([out, pa, !pb]);
            cnf.add_clause([out, !pa, pb]);
        }
    }
}

/// Builds the miter of two netlists with identical interfaces: shared
/// inputs, per-output XORs, and the assertion "some output differs".
/// SAT ⟺ the netlists are inequivalent.
///
/// # Panics
///
/// Panics if the netlists differ in input or output count.
pub fn miter(a: &Netlist, b: &Netlist) -> (Cnf, Vec<Var>) {
    assert_eq!(a.inputs().len(), b.inputs().len(), "miter needs equal input counts");
    assert_eq!(a.outputs().len(), b.outputs().len(), "miter needs equal output counts");
    let mut cnf = Cnf::new();
    let shared: Vec<Var> = (0..a.inputs().len()).map(|_| cnf.fresh_var()).collect();
    let ea = encode(a, &mut cnf, Some(&shared));
    let eb = encode(b, &mut cnf, Some(&shared));
    // d_k ≡ out_a[k] ⊕ out_b[k]; assert d_0 ∨ d_1 ∨ …
    let mut diffs = Vec::with_capacity(ea.outputs.len());
    for (&oa, &ob) in ea.outputs.iter().zip(&eb.outputs) {
        let d = cnf.fresh_var();
        encode_gate(&mut cnf, Gate2::Xor, d, oa, ob);
        diffs.push(Lit::pos(d));
    }
    cnf.add_clause(diffs);
    (cnf, shared)
}

/// Checks equivalence of two netlists with identical interfaces.
///
/// Returns `None` if equivalent, or `Some(counterexample)` — an input
/// assignment on which they differ.
///
/// # Panics
///
/// As [`miter`].
pub fn check_equivalence(a: &Netlist, b: &Netlist) -> Option<Vec<bool>> {
    let (cnf, inputs) = miter(a, b);
    match solve(&cnf) {
        Verdict::Unsat => None,
        Verdict::Sat(model) => Some(inputs.iter().map(|&v| model[v as usize]).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(Gate2::Xor, a, b);
        let sum = nl.add_gate(Gate2::Xor, ab, c);
        let g1 = nl.add_gate(Gate2::And, a, b);
        let g2 = nl.add_gate(Gate2::And, ab, c);
        let cout = nl.add_gate(Gate2::Or, g1, g2);
        nl.add_output("sum", sum);
        nl.add_output("cout", cout);
        nl
    }

    fn adder_nand_style() -> Netlist {
        // Same functions, different structure (majority via NAND/NOR mix).
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let axb = nl.add_gate(Gate2::Xnor, a, b); // ¬(a ⊕ b)
        let naxb = nl.add_not(axb); // a ⊕ b
                                    // XNOR(¬t, c) = t ⊕ c — the sum, through complemented gates.
        let sum = nl.add_gate(Gate2::Xnor, axb, c);
        let ab = nl.add_gate(Gate2::Nand, a, b);
        let t = nl.add_gate(Gate2::Nand, naxb, c);
        // NAND(¬x, ¬y) = x + y.
        let cout = nl.add_gate(Gate2::Nand, ab, t);
        nl.add_output("sum", sum);
        nl.add_output("cout", cout);
        nl
    }

    #[test]
    fn encoding_matches_simulation() {
        let nl = adder();
        let mut base = Cnf::new();
        let enc = encode(&nl, &mut base, None);
        // Force each input pattern with unit clauses and solve.
        for m in 0..8u32 {
            let mut cnf = base.clone();
            for (k, &v) in enc.inputs.iter().enumerate() {
                cnf.add_unit(Lit::new(v, m & (1 << k) != 0));
            }
            match solve(&cnf) {
                Verdict::Sat(model) => {
                    let vals: Vec<bool> = (0..3).map(|k| m & (1 << k) != 0).collect();
                    let expected = nl.eval_all(&vals);
                    for (out, &ov) in enc.outputs.iter().enumerate() {
                        assert_eq!(model[ov as usize], expected[out], "m={m:03b} out={out}");
                    }
                }
                Verdict::Unsat => panic!("gate consistency must be satisfiable"),
            }
        }
    }

    #[test]
    fn structurally_different_equivalent_netlists() {
        assert_eq!(check_equivalence(&adder(), &adder_nand_style()), None);
    }

    #[test]
    fn inequivalent_netlists_give_a_real_counterexample() {
        let good = adder();
        let bad = adder();
        // Rewire: replace the cout output with sum (grab existing signals).
        let sum_sig = bad.outputs()[0].1;
        let outs: Vec<(String, netlist::SignalId)> = bad.outputs().to_vec();
        let mut rebuilt = Netlist::new();
        let mut map = std::collections::HashMap::new();
        for (idx, gate) in bad.nodes().iter().enumerate() {
            let new = match gate {
                Gate::Input(n) => rebuilt.add_input(n.clone()),
                Gate::Const(v) => rebuilt.constant(*v),
                Gate::Not(a) => {
                    let fa = map[a];
                    rebuilt.add_not(fa)
                }
                Gate::Binary(op, a, b) => {
                    let (fa, fb) = (map[a], map[b]);
                    rebuilt.add_gate(*op, fa, fb)
                }
            };
            map.insert(idx as netlist::SignalId, new);
        }
        rebuilt.add_output(outs[0].0.clone(), map[&sum_sig]);
        rebuilt.add_output(outs[1].0.clone(), map[&sum_sig]); // wrong!
        let cex = check_equivalence(&good, &rebuilt).expect("must differ");
        let g = good.eval_all(&cex);
        let r = rebuilt.eval_all(&cex);
        assert_ne!(g, r, "counterexample must actually distinguish them");
    }

    #[test]
    fn constants_encode_correctly() {
        let mut a = Netlist::new();
        let x = a.add_input("x");
        let one = a.constant(true);
        let f = a.add_gate(Gate2::And, x, one); // folds to x
        a.add_output("f", f);
        let mut b = Netlist::new();
        let x = b.add_input("x");
        b.add_output("f", x);
        assert_eq!(check_equivalence(&a, &b), None);
    }

    #[test]
    #[should_panic(expected = "equal input counts")]
    fn interface_mismatch_panics() {
        let mut a = Netlist::new();
        let x = a.add_input("x");
        a.add_output("f", x);
        let mut b = Netlist::new();
        let x = b.add_input("x");
        let _y = b.add_input("y");
        b.add_output("f", x);
        let _ = check_equivalence(&a, &b);
    }
}
