//! The SIS-substitute: two-level minimization plus AND/OR tree mapping.

use bdd::{Bdd, Func};
use netlist::{Gate2, Netlist, SignalId};
use pla::{Pla, Trit};

/// A cube as a sorted list of `(variable, polarity)` literals.
type LitCube = Vec<(u32, bool)>;

/// How the cover is mapped into two-input gates.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MappingStyle {
    /// Area-oriented (the paper's SIS configuration): products are built
    /// as small AND trees but the OR plane is accumulated as a chain —
    /// the gate count is minimal and no effort is spent on depth.
    #[default]
    AreaOriented,
    /// Delay-idealized: both planes as perfectly balanced trees (the best
    /// depth any mapper could get from the same cover). Used as a
    /// sensitivity variant in EXPERIMENTS.md.
    Balanced,
}

/// Decomposes a PLA into two-input AND/OR/NOT gates the way a classic
/// two-level flow does: per output, expand each on-set cube against the
/// off-set (don't-cares enlarge the expansion room), drop redundant
/// cubes, then map the cover with structural sharing. No EXOR gates are
/// ever used. Uses the paper's area-oriented mapping style.
pub fn sis_like(pla: &Pla) -> Netlist {
    sis_like_with(pla, MappingStyle::AreaOriented)
}

/// [`sis_like`] with an explicit [`MappingStyle`].
pub fn sis_like_with(pla: &Pla, style: MappingStyle) -> Netlist {
    let n = pla.num_inputs();
    let mut mgr = Bdd::new(n);
    let mut nl = Netlist::new();
    let inputs: Vec<SignalId> = (0..n)
        .map(|k| {
            let name = pla.input_labels().map(|l| l[k].clone()).unwrap_or_else(|| format!("x{k}"));
            nl.add_input(name)
        })
        .collect();
    let output_names: Vec<String> = (0..pla.num_outputs())
        .map(|k| pla.output_labels().map(|l| l[k].clone()).unwrap_or_else(|| format!("y{k}")))
        .collect();

    for (out, output_name) in output_names.iter().enumerate() {
        let on: Vec<LitCube> = pla.on_cubes(out).map(cube_literals).collect();
        let dc: Vec<LitCube> = pla.dc_cubes(out).map(cube_literals).collect();
        let off: Vec<LitCube> = pla.off_cubes(out).map(cube_literals).collect();
        let on_bdd = cover_bdd(&mut mgr, &on);
        let dc_bdd = cover_bdd(&mut mgr, &dc);
        let off_bdd = if pla.pla_type().rest_is_offset() {
            let covered = mgr.or(on_bdd, dc_bdd);
            mgr.not(covered)
        } else {
            let explicit = cover_bdd(&mut mgr, &off);
            let t = mgr.diff(explicit, on_bdd);
            mgr.diff(t, dc_bdd)
        };
        let cover = minimize_cover(&mut mgr, on, on_bdd, dc_bdd, off_bdd);
        let signal = map_cover(&mut nl, &inputs, &cover, style);
        nl.add_output(output_name.clone(), signal);
    }
    nl
}

fn cube_literals(cube: &pla::Cube) -> LitCube {
    cube.inputs()
        .iter()
        .enumerate()
        .filter_map(|(k, &t)| match t {
            Trit::One => Some((k as u32, true)),
            Trit::Zero => Some((k as u32, false)),
            Trit::Dc => None,
        })
        .collect()
}

fn cube_bdd(mgr: &mut Bdd, cube: &LitCube) -> Func {
    let mut f = Func::ONE;
    for &(v, pos) in cube {
        let lit = mgr.literal(v, pos);
        f = mgr.and(f, lit);
    }
    f
}

fn cover_bdd(mgr: &mut Bdd, cubes: &[LitCube]) -> Func {
    let mut terms: Vec<Func> = cubes.iter().map(|c| cube_bdd(mgr, c)).collect();
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        for pair in terms.chunks(2) {
            next.push(if pair.len() == 2 { mgr.or(pair[0], pair[1]) } else { pair[0] });
        }
        terms = next;
    }
    terms.pop().unwrap_or(Func::ZERO)
}

/// EXPAND + deduplicate + IRREDUNDANT (greedy, BDD-backed).
fn minimize_cover(
    mgr: &mut Bdd,
    cubes: Vec<LitCube>,
    on_bdd: Func,
    dc_bdd: Func,
    off_bdd: Func,
) -> Vec<LitCube> {
    // EXPAND: greedily raise literals while the cube avoids the off-set.
    let mut expanded: Vec<LitCube> = Vec::with_capacity(cubes.len());
    for cube in cubes {
        let mut kept = cube;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            let c = cube_bdd(mgr, &candidate);
            if mgr.disjoint(c, off_bdd) {
                kept = candidate; // literal was removable
            } else {
                i += 1;
            }
        }
        kept.sort_unstable();
        expanded.push(kept);
    }
    // Deduplicate exactly (cheap), then drop cubes contained in another
    // cube (quadratic — capped, like espresso's effort limits).
    expanded.sort_unstable();
    expanded.dedup();
    expanded.sort_by_key(Vec::len);
    let primes: Vec<LitCube> = if expanded.len() <= CONTAINMENT_CAP {
        let mut primes: Vec<LitCube> = Vec::new();
        'next: for cube in expanded {
            for p in &primes {
                if p.iter().all(|lit| cube.contains(lit)) {
                    continue 'next; // cube ⊆ p
                }
            }
            primes.push(cube);
        }
        primes
    } else {
        expanded
    };
    // IRREDUNDANT: greedily drop cubes covered by the rest plus
    // don't-cares (quadratic in cover size — capped as well).
    if primes.len() > IRREDUNDANT_CAP {
        return primes;
    }
    let care_target = mgr.diff(on_bdd, dc_bdd);
    let mut keep = vec![true; primes.len()];
    for i in 0..primes.len() {
        keep[i] = false;
        let mut rest = dc_bdd;
        for (j, cube) in primes.iter().enumerate() {
            if keep[j] {
                let c = cube_bdd(mgr, cube);
                rest = mgr.or(rest, c);
            }
        }
        if !mgr.implies(care_target, rest) {
            keep[i] = true;
        }
    }
    primes.into_iter().zip(keep).filter_map(|(c, k)| k.then_some(c)).collect()
}

/// Effort cap for the quadratic containment pass.
const CONTAINMENT_CAP: usize = 4000;
/// Effort cap for the quadratic irredundant pass.
const IRREDUNDANT_CAP: usize = 1200;

/// Maps a cover into AND trees ORed together. Sorted literals and
/// structural hashing share common sub-products across cubes and outputs.
fn map_cover(
    nl: &mut Netlist,
    inputs: &[SignalId],
    cover: &[LitCube],
    style: MappingStyle,
) -> SignalId {
    if cover.is_empty() {
        return nl.constant(false);
    }
    if cover.iter().any(|c| c.is_empty()) {
        return nl.constant(true); // tautological cube
    }
    let mut products: Vec<SignalId> = cover
        .iter()
        .map(|cube| {
            let mut terms: Vec<SignalId> = cube
                .iter()
                .map(|&(v, pos)| {
                    let s = inputs[v as usize];
                    if pos {
                        s
                    } else {
                        nl.add_not(s)
                    }
                })
                .collect();
            balanced(nl, &mut terms, Gate2::And)
        })
        .collect();
    match style {
        MappingStyle::Balanced => balanced(nl, &mut products, Gate2::Or),
        MappingStyle::AreaOriented => {
            // Chain accumulation: the OR plane of a PLA, gate by gate.
            let mut acc = products[0];
            for &p in &products[1..] {
                acc = nl.add_gate(Gate2::Or, acc, p);
            }
            acc
        }
    }
}

fn balanced(nl: &mut Netlist, terms: &mut Vec<SignalId>, op: Gate2) -> SignalId {
    debug_assert!(!terms.is_empty());
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        for pair in terms.chunks(2) {
            next.push(if pair.len() == 2 { nl.add_gate(op, pair[0], pair[1]) } else { pair[0] });
        }
        *terms = next;
    }
    terms[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_implements(pla: &Pla, nl: &Netlist) {
        let n = pla.num_inputs();
        assert!(n <= 16, "exhaustive check limited");
        for m in 0..1u64 << n {
            let vals: Vec<bool> = (0..n).map(|k| m & (1 << k) != 0).collect();
            let got = nl.eval_all(&vals);
            for (out, &bit) in got.iter().enumerate() {
                if let Some(expected) = pla.eval(out, m) {
                    assert_eq!(bit, expected, "m={m:b} out={out}");
                }
            }
        }
    }

    #[test]
    fn simple_sop_maps_correctly() {
        let pla: Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
        let nl = sis_like(&pla);
        check_implements(&pla, &nl);
        let s = nl.stats();
        assert_eq!(s.gates, 3);
        assert_eq!(s.exors, 0, "SIS-substitute never uses EXOR");
    }

    #[test]
    fn expansion_merges_minterms() {
        // Minterm PLA of f = a (4 minterms over 3 vars) must collapse to
        // the single literal.
        let pla: Pla = "\
.i 3
.o 1
100 1
101 1
110 1
111 1
.e
"
        .parse()
        .expect("valid");
        let nl = sis_like(&pla);
        check_implements(&pla, &nl);
        assert_eq!(nl.stats().gates, 0, "f = a needs no gates");
    }

    #[test]
    fn dont_cares_enlarge_expansion() {
        // On: 11, dc: 10 → cube expands to just `a`.
        let pla: Pla = ".i 2\n.o 1\n11 1\n10 d\n.e\n".parse().expect("valid");
        let nl = sis_like(&pla);
        check_implements(&pla, &nl);
        assert_eq!(nl.stats().gates, 0);
    }

    #[test]
    fn parity_has_no_exor_and_is_large() {
        // 4-input odd parity as minterms: SIS-substitute must build an
        // AND/OR cover (8 cubes × 4 literals), far bigger than the 3-XOR
        // netlist BI-DECOMP produces.
        let pla = benchmarks::pla_from_fn(4, 1, |m| u64::from(m.count_ones() % 2 == 1));
        let nl = sis_like(&pla);
        check_implements(&pla, &nl);
        let s = nl.stats();
        assert_eq!(s.exors, 0);
        assert!(s.gates >= 10, "two-level parity is large, got {}", s.gates);
    }

    #[test]
    fn multi_output_shares_products() {
        // Both outputs contain the product a·b; structural hashing shares it.
        let pla: Pla = ".i 3\n.o 2\n11- 11\n--1 10\n.e\n".parse().expect("valid");
        let nl = sis_like(&pla);
        check_implements(&pla, &nl);
        assert_eq!(nl.stats().gates, 2, "a·b shared, one OR");
    }

    #[test]
    fn redundant_cube_is_removed() {
        // Third cube is covered by the other two.
        let pla: Pla = ".i 3\n.o 1\n1-- 1\n-1- 1\n11- 1\n.e\n".parse().expect("valid");
        let nl = sis_like(&pla);
        check_implements(&pla, &nl);
        assert_eq!(nl.stats().gates, 1, "only OR(a, b) remains");
    }

    #[test]
    fn empty_and_tautological_outputs() {
        let pla: Pla = ".i 2\n.o 2\n-- 1-\n.e\n".parse().expect("valid");
        let nl = sis_like(&pla);
        assert_eq!(nl.eval_all(&[false, true]), vec![true, false]);
        assert_eq!(nl.stats().gates, 0);
    }
}
