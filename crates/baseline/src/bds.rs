//! The BDS-substitute: BDD-driven, weak-only decomposition.
//!
//! §8 of the paper conjectures that BDS loses to BI-DECOMP because it
//! "applies only weak bi-decomposition (when one of the decomposed
//! functions can potentially depend on all input variables)". This
//! baseline realizes exactly that discipline: every split dedicates a
//! *single* variable — the BDD's top variable — using dominator-style
//! special cases (OR for a 1-child, AND for a 0-child, EXOR for
//! complemented children) and a multiplexer otherwise. The shared BDD DAG
//! gives the structural reuse BDS gets from its global BDD.

use std::collections::HashMap;

use bdd::{Bdd, Func};
use netlist::{Gate2, Netlist, SignalId};
use pla::{Pla, Trit};

/// Decomposes a PLA by mapping each output's BDD to gates, one top
/// variable at a time (weak-only splits). Don't-cares are assigned to 0
/// up front (BDS consumes completely specified functions).
pub fn bds_like(pla: &Pla) -> Netlist {
    let n = pla.num_inputs();
    let mut mgr = Bdd::new(n);
    let mut nl = Netlist::new();
    let inputs: Vec<SignalId> = (0..n)
        .map(|k| {
            let name = pla.input_labels().map(|l| l[k].clone()).unwrap_or_else(|| format!("x{k}"));
            nl.add_input(name)
        })
        .collect();
    let mut memo: HashMap<Func, SignalId> = HashMap::new();
    for out in 0..pla.num_outputs() {
        let f = output_bdd(&mut mgr, pla, out);
        let name = pla.output_labels().map(|l| l[out].clone()).unwrap_or_else(|| format!("y{out}"));
        let signal = map_node(&mut mgr, &mut nl, &inputs, f, &mut memo);
        nl.add_output(name, signal);
    }
    nl
}

fn output_bdd(mgr: &mut Bdd, pla: &Pla, out: usize) -> Func {
    let mut terms: Vec<Func> = pla
        .on_cubes(out)
        .map(|cube| {
            let mut f = Func::ONE;
            for (v, &t) in cube.inputs().iter().enumerate() {
                let lit = match t {
                    Trit::One => mgr.var(v as u32),
                    Trit::Zero => mgr.nvar(v as u32),
                    Trit::Dc => continue,
                };
                f = mgr.and(f, lit);
            }
            f
        })
        .collect();
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        for pair in terms.chunks(2) {
            next.push(if pair.len() == 2 { mgr.or(pair[0], pair[1]) } else { pair[0] });
        }
        terms = next;
    }
    terms.pop().unwrap_or(Func::ZERO)
}

/// Maps one BDD node to gates, memoized on the node so the shared DAG
/// stays shared in the netlist.
fn map_node(
    mgr: &mut Bdd,
    nl: &mut Netlist,
    inputs: &[SignalId],
    f: Func,
    memo: &mut HashMap<Func, SignalId>,
) -> SignalId {
    if f.is_zero() {
        return nl.constant(false);
    }
    if f.is_one() {
        return nl.constant(true);
    }
    if let Some(&hit) = memo.get(&f) {
        return hit;
    }
    let v = mgr.root_var(f).expect("non-constant");
    let (low, high) = (mgr.low(f), mgr.high(f));
    let x = inputs[v as usize];
    let signal = if high.is_one() {
        // f = x + low  (1-dominator → weak OR split on x).
        let lo = map_node(mgr, nl, inputs, low, memo);
        nl.add_gate(Gate2::Or, x, lo)
    } else if high.is_zero() {
        // f = ¬x · low (0-dominator → weak AND split).
        let lo = map_node(mgr, nl, inputs, low, memo);
        let nx = nl.add_not(x);
        nl.add_gate(Gate2::And, nx, lo)
    } else if low.is_one() {
        // f = ¬x + high.
        let hi = map_node(mgr, nl, inputs, high, memo);
        let nx = nl.add_not(x);
        nl.add_gate(Gate2::Or, nx, hi)
    } else if low.is_zero() {
        // f = x · high.
        let hi = map_node(mgr, nl, inputs, high, memo);
        nl.add_gate(Gate2::And, x, hi)
    } else if mgr.not(high) == low {
        // f = x ⊕ low (x-dominator → weak EXOR split).
        let lo = map_node(mgr, nl, inputs, low, memo);
        nl.add_gate(Gate2::Xor, x, lo)
    } else {
        // General case: a multiplexer on x.
        let hi = map_node(mgr, nl, inputs, high, memo);
        let lo = map_node(mgr, nl, inputs, low, memo);
        let t = nl.add_gate(Gate2::And, x, hi);
        let nx = nl.add_not(x);
        let e = nl.add_gate(Gate2::And, nx, lo);
        nl.add_gate(Gate2::Or, t, e)
    };
    memo.insert(f, signal);
    signal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_implements(pla: &Pla, nl: &Netlist) {
        let n = pla.num_inputs();
        for m in 0..1u64 << n {
            let vals: Vec<bool> = (0..n).map(|k| m & (1 << k) != 0).collect();
            let got = nl.eval_all(&vals);
            for (out, &bit) in got.iter().enumerate() {
                // BDS-substitute assigns don't-cares to 0.
                let expected = pla.eval(out, m).unwrap_or(false);
                assert_eq!(bit, expected, "m={m:b} out={out}");
            }
        }
    }

    #[test]
    fn simple_functions_map_correctly() {
        let pla: Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
        let nl = bds_like(&pla);
        check_implements(&pla, &nl);
    }

    #[test]
    fn parity_uses_xor_chain_via_x_dominators() {
        let pla = benchmarks::pla_from_fn(4, 1, |m| u64::from(m.count_ones() % 2 == 1));
        let nl = bds_like(&pla);
        check_implements(&pla, &nl);
        let s = nl.stats();
        assert_eq!(s.exors, 3, "BDD of parity is a pure x-dominator chain");
        assert_eq!(s.gates, 3);
        // But it is a *chain* — depth n-1, unlike BI-DECOMP's balanced tree.
        assert_eq!(s.cascades, 3);
    }

    #[test]
    fn shared_nodes_shared_gates() {
        // Two outputs equal except for a top variable share the sub-DAG.
        let pla: Pla = ".i 3\n.o 2\n-11 11\n1-- 10\n.e\n".parse().expect("valid");
        let nl = bds_like(&pla);
        check_implements(&pla, &nl);
        let alone: Pla = ".i 3\n.o 1\n-11 1\n1-- 1\n.e\n".parse().expect("valid");
        let nl1 = bds_like(&alone);
        assert!(
            nl.stats().gates < nl1.stats().gates + nl1.stats().gates,
            "outputs must share gates through the BDD DAG"
        );
    }

    #[test]
    fn loses_to_strong_decomposition_on_balanced_or() {
        // OR(a·b, c·d): BI-DECOMP finds the balanced strong split (3 gates,
        // 2 levels); the weak-only baseline also finds 3 gates here but in
        // a deeper chain shape on wider versions. Use the 6-input variant.
        let pla: Pla = ".i 6\n.o 1\n11---- 1\n--11-- 1\n----11 1\n.e\n".parse().expect("valid");
        let weak = bds_like(&pla);
        check_implements(&pla, &weak);
        let strong = bidecomp::decompose_pla(&pla, &bidecomp::Options::default());
        assert!(strong.verified);
        let (ws, ss) = (weak.stats(), strong.netlist.stats());
        assert!(
            ss.cascades <= ws.cascades,
            "strong decomposition must be at least as shallow: {} vs {}",
            ss.cascades,
            ws.cascades
        );
        assert!(ss.gates <= ws.gates);
    }

    #[test]
    fn constant_outputs() {
        let pla: Pla = ".i 2\n.o 2\n-- 1-\n.e\n".parse().expect("valid");
        let nl = bds_like(&pla);
        assert_eq!(nl.eval_all(&[true, false]), vec![true, false]);
        assert_eq!(nl.stats().gates, 0);
    }
}
