//! Comparator decomposers for the paper's Tables 2 and 3.
//!
//! * [`sis_like`] stands in for **SIS 1.2** (`resub -a; simplify -m` +
//!   area-oriented mapping into two-input gates): a two-level SOP flow —
//!   cube expansion against the off-set, irredundant cover extraction,
//!   then balanced AND/OR tree mapping with structural sharing. Like SIS
//!   in the paper's experiments, it "uses mostly NOR/NAND gates but
//!   ignores other two-input gate types" — it never produces EXORs.
//! * [`bds_like`] stands in for **BDS** (Yang & Ciesielski, DAC 2000) as
//!   the paper characterizes it (§8): a BDD-driven decomposer that "applies
//!   only weak bi-decomposition" — every split dedicates a single variable
//!   (1-/0-/x-dominator cuts on the top variable, Shannon otherwise), so
//!   it never searches the strong `(X_A, X_B)` groupings that give
//!   BI-DECOMP its edge.
//!
//! Both return ordinary [`netlist::Netlist`]s so the bench harness can
//! apply the same cost model to all three systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bds;
mod sis;

pub use bds::bds_like;
pub use sis::{sis_like, sis_like_with, MappingStyle};
