//! Incompletely specified functions as intervals over a BDD manager.

use bdd::{Bdd, Func, VarId, VarSet};

/// An incompletely specified Boolean function (ISF), represented by its
/// on-set `Q` and off-set `R` as BDDs in a shared manager.
///
/// The ISF denotes the interval of completely specified functions
/// `[Q, ¬R]`: a CSF `f` is *compatible* with the ISF iff `Q ≤ f ≤ ¬R`.
/// `Q` and `R` must be disjoint (checked by [`Isf::new`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Isf {
    /// The on-set: where every compatible function must be 1.
    pub q: Func,
    /// The off-set: where every compatible function must be 0.
    pub r: Func,
}

impl Isf {
    /// Creates an ISF from its on-set and off-set.
    ///
    /// # Panics
    ///
    /// Panics if `q` and `r` overlap.
    pub fn new(mgr: &mut Bdd, q: Func, r: Func) -> Self {
        assert!(mgr.disjoint(q, r), "ISF on-set and off-set must be disjoint");
        Isf { q, r }
    }

    /// The ISF of a completely specified function (`Q = f`, `R = ¬f`).
    pub fn from_csf(mgr: &mut Bdd, f: Func) -> Self {
        Isf { q: f, r: mgr.not(f) }
    }

    /// Creates an ISF without the disjointness check.
    ///
    /// Only for callers that guarantee disjointness structurally (e.g. the
    /// derivation formulas); debug builds still assert.
    pub(crate) fn new_unchecked(q: Func, r: Func) -> Self {
        Isf { q, r }
    }

    /// The care set `Q + R`.
    pub fn care(&self, mgr: &mut Bdd) -> Func {
        mgr.or(self.q, self.r)
    }

    /// The don't-care set `¬(Q + R)`.
    pub fn dont_care(&self, mgr: &mut Bdd) -> Func {
        let care = self.care(mgr);
        mgr.not(care)
    }

    /// Is the ISF completely specified (no don't-cares)?
    pub fn is_completely_specified(&self, mgr: &mut Bdd) -> bool {
        self.care(mgr).is_one()
    }

    /// Theorem 6: is the CSF `f` compatible with this ISF
    /// (`Q·¬f = 0` and `R·f = 0`)?
    pub fn contains(&self, mgr: &mut Bdd, f: Func) -> bool {
        mgr.implies(self.q, f) && mgr.disjoint(self.r, f)
    }

    /// Theorem 6 (second half): is the *complement* of `f` compatible?
    pub fn contains_complement(&self, mgr: &mut Bdd, f: Func) -> bool {
        let nf = mgr.not(f);
        mgr.implies(self.q, nf) && mgr.disjoint(self.r, nf)
    }

    /// The complemented ISF (swap on-set and off-set).
    pub fn complement(&self) -> Isf {
        Isf { q: self.r, r: self.q }
    }

    /// Cofactor of the interval w.r.t. one literal.
    pub fn cofactor(&self, mgr: &mut Bdd, v: VarId, value: bool) -> Isf {
        Isf { q: mgr.cofactor(self.q, v, value), r: mgr.cofactor(self.r, v, value) }
    }

    /// The *essential* support: variables on which at least one of `Q`, `R`
    /// structurally depends.
    pub fn support(&self, mgr: &Bdd) -> VarSet {
        mgr.support(self.q).union(&mgr.support(self.r))
    }

    /// Is variable `v` inessential — does the interval contain a function
    /// independent of `v`? (`∃v Q` and `∃v R` must not overlap.)
    pub fn is_inessential(&self, mgr: &mut Bdd, v: VarId) -> bool {
        let vs = VarSet::singleton(v);
        let eq = mgr.exists_set(self.q, &vs);
        let er = mgr.exists_set(self.r, &vs);
        mgr.disjoint(eq, er)
    }

    /// Removes inessential variables with the paper's simple greedy sweep
    /// (§7: `RemoveInessentialVariables`): each variable of the support is
    /// tested once and, if inessential, existentially quantified out of
    /// both sets.
    ///
    /// Returns the reduced ISF and the number of variables removed.
    pub fn remove_inessential(&self, mgr: &mut Bdd) -> (Isf, usize) {
        let mut isf = *self;
        let mut removed = 0;
        for v in isf.support(mgr).iter() {
            if isf.is_inessential(mgr, v) {
                let vs = VarSet::singleton(v);
                isf = Isf { q: mgr.exists_set(isf.q, &vs), r: mgr.exists_set(isf.r, &vs) };
                removed += 1;
            }
        }
        (isf, removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_membership() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let ab = mgr.and(a, b);
        let aorb = mgr.or(a, b);
        let nor = mgr.nor(a, b);
        // ISF: must be 1 on a·b, must be 0 on ¬a·¬b; a+b and a·b both fit.
        let isf = Isf::new(&mut mgr, ab, nor);
        assert!(isf.contains(&mut mgr, ab));
        assert!(isf.contains(&mut mgr, aorb));
        assert!(isf.contains(&mut mgr, a));
        assert!(!isf.contains(&mut mgr, nor));
        let n_ab = mgr.not(ab);
        assert!(!isf.contains(&mut mgr, n_ab));
        assert!(isf.contains_complement(&mut mgr, n_ab), "¬(¬(a·b)) = a·b fits");
    }

    #[test]
    fn csf_isf_has_no_dont_cares() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let isf = Isf::from_csf(&mut mgr, a);
        assert!(isf.is_completely_specified(&mut mgr));
        assert!(isf.dont_care(&mut mgr).is_zero());
        assert!(isf.contains(&mut mgr, a));
        let na = mgr.not(a);
        assert!(!isf.contains(&mut mgr, na));
    }

    #[test]
    fn complement_swaps_sets() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let isf = Isf::from_csf(&mut mgr, a);
        let c = isf.complement();
        let na = mgr.not(a);
        assert!(c.contains(&mut mgr, na));
        assert!(!c.contains(&mut mgr, a));
    }

    #[test]
    fn inessential_variable_removal() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        // Q = a·b·c, R = ¬a·b — variable c is inessential (choose f = a·b).
        let abc = {
            let ab = mgr.and(a, b);
            mgr.and(ab, c)
        };
        let nab = {
            let na = mgr.not(a);
            mgr.and(na, b)
        };
        let isf = Isf::new(&mut mgr, abc, nab);
        assert!(isf.is_inessential(&mut mgr, 2));
        assert!(!isf.is_inessential(&mut mgr, 0));
        // Greedy sweep: removing c makes b inessential too (f = a fits the
        // interval), so two variables go.
        let (reduced, removed) = isf.remove_inessential(&mut mgr);
        assert_eq!(removed, 2);
        assert!(!reduced.support(&mgr).contains(2));
        assert!(!reduced.support(&mgr).contains(1));
        assert!(reduced.contains(&mut mgr, a));
        // Every completion of the reduced interval fits the original.
        assert!(isf.contains(&mut mgr, a));
    }

    #[test]
    fn completely_specified_has_no_inessential_support_vars() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.xor(a, b);
        let isf = Isf::from_csf(&mut mgr, f);
        let (reduced, removed) = isf.remove_inessential(&mut mgr);
        assert_eq!(removed, 0);
        assert_eq!(reduced.support(&mgr), isf.support(&mgr));
    }

    #[test]
    #[should_panic(expected = "must be disjoint")]
    fn overlapping_sets_panic() {
        let mut mgr = Bdd::new(1);
        let a = mgr.var(0);
        let _ = Isf::new(&mut mgr, a, a);
    }
}
