//! End-to-end driver: PLA in → two-input gate netlist out.
//!
//! Mirrors the experimental flow of §8: read the PLA, build the on-set and
//! off-set BDDs per output, order the variables, run `BiDecompose` on each
//! output, verify with the BDD verifier, and report statistics and
//! wall-clock time.
//!
//! Outputs are decomposed independently (memoization state is cleared
//! between outputs; shared cones still merge through the netlist's
//! structural hashing), which makes the per-output loop embarrassingly
//! parallel: with [`Options::threads`] `> 1` the outputs are partitioned
//! round-robin over `std::thread::scope` workers, each owning a private BDD
//! manager, and the per-worker netlists, counters and reports are merged
//! into one [`DecompOutcome`]. The produced netlist is byte-identical at
//! any thread count.

use std::time::{Duration, Instant};

use bdd::{reorder, Analytics, Bdd, Func, MemReport, OpStats, VarId};
use netlist::Netlist;
use obs::json::Json;
use obs::{Histogram, Recorder, TimeSeries};
use pla::{Pla, Trit};

use crate::decompose::ComponentCacheStats;
use crate::{verify, Decomposer, Isf, Options, Stats};

/// Wall-clock time of each phase of the [`decompose_pla`] flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseTimes {
    /// Static variable ordering (literal-frequency heuristic).
    pub ordering: Duration,
    /// Building the specification ISF BDDs from the PLA cubes.
    pub bdd_build: Duration,
    /// The recursive bi-decomposition of every output (includes netlist
    /// assembly, which is interleaved with the recursion).
    pub decompose: Duration,
    /// BDD-based verification of the result.
    pub verify: Duration,
}

impl PhaseTimes {
    /// The phase times as a JSON object of seconds (the shape embedded in
    /// run reports).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("ordering_s", self.ordering.as_secs_f64())
            .field("bdd_build_s", self.bdd_build.as_secs_f64())
            .field("decompose_s", self.decompose.as_secs_f64())
            .field("verify_s", self.verify.as_secs_f64())
    }
}

/// Result of decomposing a PLA.
#[derive(Debug)]
pub struct DecompOutcome {
    /// The synthesized two-input gate netlist.
    pub netlist: Netlist,
    /// Algorithm statistics (recursive calls, cache hits, weak rate, …).
    pub stats: Stats,
    /// Did the BDD-based verifier accept the result? (`true` when
    /// verification is disabled in [`Options`].)
    pub verified: bool,
    /// Wall-clock time of decomposition only (excludes PLA parsing,
    /// includes BDD construction and netlist assembly; as in the paper,
    /// input file reading is not included).
    pub elapsed: Duration,
    /// Peak live BDD node count observed.
    pub bdd_nodes: usize,
    /// Per-phase wall-clock breakdown (always populated; cheap).
    pub phases: PhaseTimes,
    /// BDD manager operation counters accumulated across the whole run
    /// (mk/apply/cache plus the GC counters).
    pub op_stats: OpStats,
    /// Recursive calls per depth. Empty unless [`Options::telemetry`] is
    /// on or a recorder was attached.
    pub depth_histogram: Vec<u64>,
    /// The decomposition trace (one event per recursive call). Empty
    /// unless [`Options::trace`] is on.
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Latency distribution of the per-output `decompose` calls (one
    /// sample per PLA output; always populated, it costs one clock read
    /// per output).
    pub output_latency: Histogram,
    /// Per-BDD-operation latency distribution. `None` unless
    /// [`Options::telemetry`] is on or a recorder was attached (timing
    /// every operator call is not free).
    pub op_latency: Option<Histogram>,
    /// BDD manager heap footprint: per-table byte estimates and the peak
    /// sampled across the run (at every GC, after every output, and at
    /// the end).
    pub mem: MemReport,
    /// Structured cache/GC analytics from the BDD manager. `None` unless
    /// [`Options::telemetry`] is on or a recorder was attached (building
    /// it walks the unique table once).
    pub analytics: Option<Analytics>,
    /// Component-cache reuse statistics (§6). Always populated; costs one
    /// pass over the bucket lengths.
    pub component_cache: ComponentCacheStats,
    /// Resource time-series sampled after each output, after each
    /// driver-initiated GC and at the end of the run. Empty unless
    /// [`Options::telemetry`] is on or a recorder was attached.
    pub timeseries: TimeSeries,
    /// Worker threads actually used (`min(Options::threads, outputs)`;
    /// `1` is the serial path).
    pub threads: usize,
}

/// Builds the specification ISFs of every PLA output inside `mgr`.
///
/// Follows espresso semantics: the on-set comes from `1` entries, the
/// don't-care set from `d` entries, and the off-set from `0` entries
/// (`fr`/`fdr`) or the uncovered remainder (`f`/`fd`). Overlaps resolve in
/// favor of the on-set, then the don't-care set.
///
/// # Panics
///
/// Panics if the manager has fewer variables than the PLA has inputs.
pub fn isfs_from_pla(mgr: &mut Bdd, pla: &Pla) -> Vec<Isf> {
    (0..pla.num_outputs()).map(|out| isf_for_output(mgr, pla, out)).collect()
}

/// Builds the specification ISF of a single PLA output inside `mgr` —
/// the per-output unit of [`isfs_from_pla`], also used directly by the
/// parallel driver where each worker builds only its own outputs.
///
/// # Panics
///
/// Panics if the manager has fewer variables than the PLA has inputs, or
/// if `out` is not a valid output index.
pub fn isf_for_output(mgr: &mut Bdd, pla: &Pla, out: usize) -> Isf {
    assert!(
        mgr.num_vars() >= pla.num_inputs(),
        "manager needs at least {} variables",
        pla.num_inputs()
    );
    let on_terms: Vec<Func> = pla.on_cubes(out).map(|c| cube_bdd(mgr, c)).collect();
    let q = balanced_or(mgr, on_terms);
    let dc_terms: Vec<Func> = pla.dc_cubes(out).map(|c| cube_bdd(mgr, c)).collect();
    let dc = balanced_or(mgr, dc_terms);
    let r = if pla.pla_type().rest_is_offset() {
        let covered = mgr.or(q, dc);
        mgr.not(covered)
    } else {
        let mut r = Func::ZERO;
        for cube in pla.off_cubes(out) {
            let c = cube_bdd(mgr, cube);
            r = mgr.or(r, c);
        }
        // On-set wins on overlap, then don't-care.
        let r = mgr.diff(r, q);
        mgr.diff(r, dc)
    };
    // Don't-care beats off-set in fd files where dc overlaps the
    // uncovered remainder by construction; ensure q ∩ r = ∅.
    let r = mgr.diff(r, q);
    Isf::new(mgr, q, r)
}

fn cube_bdd(mgr: &mut Bdd, cube: &pla::Cube) -> Func {
    let mut f = Func::ONE;
    for (v, &t) in cube.inputs().iter().enumerate() {
        let lit = match t {
            Trit::One => mgr.var(v as u32),
            Trit::Zero => mgr.nvar(v as u32),
            Trit::Dc => continue,
        };
        f = mgr.and(f, lit);
    }
    f
}

// Balanced disjunction keeps intermediate BDDs small on minterm-dense
// inputs (e.g. the symmetric benchmarks).
fn balanced_or(mgr: &mut Bdd, mut terms: Vec<Func>) -> Func {
    if terms.is_empty() {
        return Func::ZERO;
    }
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        for pair in terms.chunks(2) {
            next.push(if pair.len() == 2 { mgr.or(pair[0], pair[1]) } else { pair[0] });
        }
        terms = next;
    }
    terms[0]
}

/// Decomposes a multi-output PLA into a netlist of two-input gates —
/// the full BI-DECOMP flow of the paper.
///
/// See the [crate-level example](crate) for usage.
pub fn decompose_pla(pla: &Pla, options: &Options) -> DecompOutcome {
    decompose_pla_with_recorder(pla, options, None)
}

/// [`decompose_pla`] with a telemetry [`Recorder`] attached: every phase
/// and every output runs under a hierarchical span, GC events and table
/// gauges stream from the BDD manager, and the recursion-depth histogram
/// is published at the end. Attaching a recorder implies
/// [`Options::telemetry`].
pub fn decompose_pla_with_recorder(
    pla: &Pla,
    options: &Options,
    recorder: Option<Recorder>,
) -> DecompOutcome {
    let start = Instant::now();
    if options.threads > 1 && pla.num_outputs() > 1 {
        return decompose_pla_parallel(pla, options, recorder, start);
    }
    let run_span = recorder.as_ref().map(|r| r.span("decompose_pla"));
    let n = pla.num_inputs();
    let input_names: Vec<String> = match pla.input_labels() {
        Some(labels) => labels.to_vec(),
        None => (0..n).map(|k| format!("x{k}")).collect(),
    };
    let output_names: Vec<String> = match pla.output_labels() {
        Some(labels) => labels.to_vec(),
        None => (0..pla.num_outputs()).map(|k| format!("y{k}")).collect(),
    };
    let mut dec = Decomposer::with_options(n, Some(&input_names), *options);
    if let Some(rec) = &recorder {
        dec.set_recorder(rec.clone());
    }
    let instrumented = options.telemetry || recorder.is_some();
    if instrumented {
        dec.manager().enable_op_timing();
    }
    let mut phases = PhaseTimes::default();
    let mut output_latency = Histogram::new();
    let mut timeseries = TimeSeries::new(obs::timeseries::DEFAULT_CAPACITY);

    let t = Instant::now();
    {
        let _span = recorder.as_ref().map(|r| r.span("order"));
        if options.order_by_frequency {
            let order = reorder::order_by_frequency(&pla.literal_frequencies());
            dec.set_variable_order(&order);
        }
    }
    phases.ordering = t.elapsed();

    let t = Instant::now();
    let isfs = {
        let _span = recorder.as_ref().map(|r| r.span("bdd_build"));
        isfs_from_pla(dec.manager(), pla)
    };
    phases.bdd_build = t.elapsed();

    let t = Instant::now();
    let mut peak_nodes = dec.manager().total_nodes();
    {
        let _span = recorder.as_ref().map(|r| r.span("decompose"));
        let mut components = Vec::with_capacity(isfs.len());
        for (k, isf) in isfs.iter().enumerate() {
            if k > 0 {
                // Decompose every output from a clean slate (§6 component
                // cache and computed cache) — the independence that lets
                // the parallel driver reproduce this netlist byte for
                // byte. Shared cones still merge via structural hashing.
                dec.clear_between_outputs();
            }
            let _out_span =
                recorder.as_ref().map(|r| r.span(format!("output.{}", output_names[k])));
            let out_start = Instant::now();
            let comp = dec.decompose(*isf);
            output_latency.record(out_start.elapsed());
            dec.add_output(output_names[k].clone(), comp);
            components.push(comp);
            peak_nodes = peak_nodes.max(dec.manager().total_nodes());
            dec.manager().sample_mem();
            if instrumented {
                sample_resources(&mut timeseries, dec.manager(), start, "output");
            }
            if dec.manager().total_nodes() > options.gc_threshold {
                // Keep the remaining specifications and finished components.
                let mut roots: Vec<Func> = components.iter().map(|c| c.func).collect();
                for isf in &isfs[k + 1..] {
                    roots.push(isf.q);
                    roots.push(isf.r);
                }
                for isf in &isfs[..=k] {
                    roots.push(isf.q);
                    roots.push(isf.r);
                }
                dec.gc(&roots);
                if instrumented {
                    sample_resources(&mut timeseries, dec.manager(), start, "gc");
                }
            }
        }
    }
    phases.decompose = t.elapsed();
    let elapsed = start.elapsed();

    dec.emit_recursion_telemetry();
    peak_nodes = peak_nodes.max(dec.peak_live_nodes());
    let depth_histogram = dec.depth_histogram().to_vec();
    let trace = dec.take_trace();
    let component_cache = dec.component_cache_stats();
    let (netlist, stats, mut mgr) = dec.into_parts();

    let t = Instant::now();
    let verified = if options.verify {
        let _span = recorder.as_ref().map(|r| r.span("verify"));
        verify::verify_netlist(&mut mgr, &netlist, &isfs)
    } else {
        true
    };
    phases.verify = t.elapsed();

    peak_nodes = peak_nodes.max(mgr.total_nodes());
    mgr.sample_mem();
    if instrumented {
        sample_resources(&mut timeseries, &mgr, start, "end");
    }
    mgr.emit_gauges();
    drop(run_span);
    if let Some(rec) = &recorder {
        rec.flush();
    }
    DecompOutcome {
        netlist,
        stats,
        verified,
        elapsed,
        bdd_nodes: peak_nodes,
        phases,
        op_stats: mgr.op_stats(),
        depth_histogram,
        trace,
        output_latency,
        op_latency: mgr.op_latency().cloned(),
        mem: mgr.mem_report(),
        analytics: instrumented.then(|| mgr.analytics()),
        component_cache,
        timeseries,
        threads: 1,
    }
}

/// Everything one worker reports back about one decomposed output. Plain
/// `Send` data only — the `Decomposer` (whose telemetry recorder is
/// `Rc`-based) is created, used and torn down entirely inside the worker.
struct OutputSlice {
    netlist: Netlist,
    stats: Stats,
    verified: bool,
    phases: PhaseTimes,
    decompose_time: Duration,
    peak_nodes: usize,
    op_stats: OpStats,
    depth_histogram: Vec<u64>,
    trace: Vec<crate::trace::TraceEvent>,
    op_latency: Option<Histogram>,
    mem: MemReport,
    analytics: Option<Analytics>,
    component_cache: ComponentCacheStats,
    /// `(t_s, live_nodes, unique_bytes, cache_bytes, slab_bytes,
    /// apply_steps)` — the worker's end-of-output resource sample.
    sample: Option<(f64, u64, u64, u64, u64, u64)>,
}

/// The run-constant inputs every worker shares: the PLA, the resolved
/// options/order/names, the run clock and whether telemetry is armed.
struct WorkerCtx<'a> {
    pla: &'a Pla,
    options: &'a Options,
    order: Option<&'a [VarId]>,
    input_names: &'a [String],
    run_start: Instant,
    instrumented: bool,
}

/// Decomposes a single PLA output in a private manager/netlist — the unit
/// of work of the parallel driver. Mirrors the serial flow exactly (order,
/// build, decompose, verify), which is what keeps the replayed netlists
/// byte-identical.
fn decompose_one_output(ctx: &WorkerCtx<'_>, out: usize, output_name: String) -> OutputSlice {
    let WorkerCtx { pla, options, order, input_names, run_start, instrumented } = *ctx;
    let mut worker_options = *options;
    worker_options.telemetry = instrumented;
    let mut dec = Decomposer::with_options(pla.num_inputs(), Some(input_names), worker_options);
    if instrumented {
        dec.manager().enable_op_timing();
    }
    let mut phases = PhaseTimes::default();
    let t = Instant::now();
    if let Some(order) = order {
        dec.set_variable_order(order);
    }
    phases.ordering = t.elapsed();
    let t = Instant::now();
    let isf = isf_for_output(dec.manager(), pla, out);
    phases.bdd_build = t.elapsed();
    let t = Instant::now();
    let comp = dec.decompose(isf);
    let decompose_time = t.elapsed();
    phases.decompose = decompose_time;
    dec.add_output(output_name, comp);
    let mut peak_nodes = dec.manager().total_nodes().max(dec.peak_live_nodes());
    dec.manager().sample_mem();
    let depth_histogram = dec.depth_histogram().to_vec();
    let trace = dec.take_trace();
    let component_cache = dec.component_cache_stats();
    let (netlist, stats, mut mgr) = dec.into_parts();
    let t = Instant::now();
    let verified =
        if options.verify { verify::verify_netlist(&mut mgr, &netlist, &[isf]) } else { true };
    phases.verify = t.elapsed();
    peak_nodes = peak_nodes.max(mgr.total_nodes());
    mgr.sample_mem();
    let sample = instrumented.then(|| {
        let mem = mgr.mem_report();
        let ops = mgr.op_stats();
        (
            run_start.elapsed().as_secs_f64(),
            mgr.total_nodes() as u64,
            mem.unique_table_bytes as u64,
            mem.computed_cache_bytes as u64,
            mem.node_slab_bytes as u64,
            ops.apply_steps,
        )
    });
    OutputSlice {
        netlist,
        stats,
        verified,
        phases,
        decompose_time,
        peak_nodes,
        op_stats: mgr.op_stats(),
        depth_histogram,
        trace,
        op_latency: mgr.op_latency().cloned(),
        mem: mgr.mem_report(),
        analytics: instrumented.then(|| mgr.analytics()),
        component_cache,
        sample,
    }
}

/// The parallel per-output driver: outputs are partitioned round-robin
/// over [`Options::threads`] scoped workers, each decomposing its outputs
/// in private managers, and the per-output netlists are replayed into one
/// netlist in output order (structural hashing merges shared cones exactly
/// as the serial builder would).
///
/// Phase times and counters are **sums across workers** (CPU time, so
/// `phases` can exceed `elapsed`); `bdd_nodes` and memory peaks are the
/// per-manager maxima/sums as documented on their types. With a recorder
/// attached only the run-level spans are emitted — per-output spans would
/// need a `Send` recorder — but the merged report carries every per-worker
/// counter, so doctor and `bench diff` see the full picture.
fn decompose_pla_parallel(
    pla: &Pla,
    options: &Options,
    recorder: Option<Recorder>,
    start: Instant,
) -> DecompOutcome {
    let run_span = recorder.as_ref().map(|r| r.span("decompose_pla"));
    let n = pla.num_inputs();
    let num_outputs = pla.num_outputs();
    let threads = options.threads.min(num_outputs);
    let instrumented = options.telemetry || recorder.is_some();
    let input_names: Vec<String> = match pla.input_labels() {
        Some(labels) => labels.to_vec(),
        None => (0..n).map(|k| format!("x{k}")).collect(),
    };
    let output_names: Vec<String> = match pla.output_labels() {
        Some(labels) => labels.to_vec(),
        None => (0..num_outputs).map(|k| format!("y{k}")).collect(),
    };
    let order: Option<Vec<VarId>> =
        options.order_by_frequency.then(|| reorder::order_by_frequency(&pla.literal_frequencies()));

    let mut results: Vec<(usize, OutputSlice)> = {
        let _span = recorder.as_ref().map(|r| r.span("decompose"));
        let ctx = WorkerCtx {
            pla,
            options,
            order: order.as_deref(),
            input_names: &input_names,
            run_start: start,
            instrumented,
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let ctx = &ctx;
                    let output_names = &output_names;
                    scope.spawn(move || {
                        (w..num_outputs)
                            .step_by(threads)
                            .map(|k| (k, decompose_one_output(ctx, k, output_names[k].clone())))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("decomposition worker panicked"))
                .collect()
        })
    };
    results.sort_by_key(|&(k, _)| k);

    // Merge: replay per-output netlists in output order; sum/maximize the
    // counters as documented on each type's `merge`.
    let mut netlist = Netlist::new();
    for name in &input_names {
        netlist.add_input(name.clone());
    }
    let mut stats = Stats::default();
    let mut verified = true;
    let mut phases = PhaseTimes::default();
    let mut peak_nodes = 0;
    let mut op_stats = OpStats::default();
    let mut depth_histogram: Vec<u64> = Vec::new();
    let mut trace = Vec::new();
    let mut output_latency = Histogram::new();
    let mut op_latency: Option<Histogram> = None;
    let mut mem = MemReport::default();
    let mut analytics: Option<Analytics> = None;
    let mut component_cache = ComponentCacheStats::default();
    let mut timeseries = TimeSeries::new(obs::timeseries::DEFAULT_CAPACITY);
    for (_, slice) in &results {
        netlist.merge_from(&slice.netlist);
        stats.merge(&slice.stats);
        verified &= slice.verified;
        phases.ordering += slice.phases.ordering;
        phases.bdd_build += slice.phases.bdd_build;
        phases.decompose += slice.phases.decompose;
        phases.verify += slice.phases.verify;
        peak_nodes = peak_nodes.max(slice.peak_nodes);
        op_stats.merge(&slice.op_stats);
        if depth_histogram.len() < slice.depth_histogram.len() {
            depth_histogram.resize(slice.depth_histogram.len(), 0);
        }
        for (a, b) in depth_histogram.iter_mut().zip(&slice.depth_histogram) {
            *a += b;
        }
        trace.extend(slice.trace.iter().cloned());
        output_latency.record(slice.decompose_time);
        if let Some(h) = &slice.op_latency {
            op_latency.get_or_insert_with(Histogram::new).merge(h);
        }
        mem.merge(&slice.mem);
        if let Some(a) = &slice.analytics {
            match &mut analytics {
                Some(acc) => acc.merge(a),
                None => analytics = Some(a.clone()),
            }
        }
        component_cache.support_sets += slice.component_cache.support_sets;
        component_cache.components += slice.component_cache.components;
        component_cache.max_bucket =
            component_cache.max_bucket.max(slice.component_cache.max_bucket);
        component_cache.hits += slice.component_cache.hits;
        component_cache.complement_hits += slice.component_cache.complement_hits;
        if let Some((t_s, nodes, unique, cache, slab, steps)) = slice.sample {
            timeseries.record(t_s, "output", nodes, unique, cache, slab, steps);
        }
    }
    if instrumented {
        timeseries.record(
            start.elapsed().as_secs_f64(),
            "end",
            peak_nodes as u64,
            mem.unique_table_bytes as u64,
            mem.computed_cache_bytes as u64,
            mem.node_slab_bytes as u64,
            op_stats.apply_steps,
        );
    }
    let elapsed = start.elapsed();
    drop(run_span);
    if let Some(rec) = &recorder {
        rec.gauge("bdd.total_nodes", peak_nodes as f64);
        rec.gauge("decomp.max_depth", depth_histogram.len() as f64);
        rec.flush();
    }
    DecompOutcome {
        netlist,
        stats,
        verified,
        elapsed,
        bdd_nodes: peak_nodes,
        phases,
        op_stats,
        depth_histogram,
        trace,
        output_latency,
        op_latency,
        mem,
        analytics,
        component_cache,
        timeseries,
        threads,
    }
}

/// Pushes one resource sample from the manager's tables onto the run's
/// time series (the sampling hooks: after each output, after each
/// driver-initiated GC, at the end of the run).
fn sample_resources(ts: &mut TimeSeries, mgr: &Bdd, run_start: Instant, label: &'static str) {
    let mem = mgr.mem_report();
    let ops = mgr.op_stats();
    ts.record(
        run_start.elapsed().as_secs_f64(),
        label,
        mgr.total_nodes() as u64,
        mem.unique_table_bytes as u64,
        mem.computed_cache_bytes as u64,
        mem.node_slab_bytes as u64,
        ops.apply_steps,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_pla_end_to_end() {
        let pla: Pla = "\
.i 4
.o 1
.ilb a b c d
.ob f
11-- 1
--11 1
.e
"
        .parse()
        .expect("valid pla");
        let outcome = decompose_pla(&pla, &Options::default());
        assert!(outcome.verified);
        let s = outcome.netlist.stats();
        assert_eq!(s.gates, 3);
        assert_eq!(s.exors, 0);
        // The netlist computes OR(a·b, c·d).
        for bits in 0..16u64 {
            let vals: Vec<bool> = (0..4).map(|k| bits & (1 << k) != 0).collect();
            let expected = (vals[0] && vals[1]) || (vals[2] && vals[3]);
            assert_eq!(outcome.netlist.eval_all(&vals), vec![expected]);
        }
    }

    #[test]
    fn fd_pla_with_dont_cares() {
        // On: 11, DC: 0-, off: rest (=10). f must be 1 at ab, 0 at a¬b.
        let pla: Pla = ".i 2\n.o 1\n11 1\n0- d\n.e\n".parse().expect("valid");
        let outcome = decompose_pla(&pla, &Options::default());
        assert!(outcome.verified);
        let nl = &outcome.netlist;
        assert_eq!(nl.eval_all(&[true, true]), vec![true]);
        assert_eq!(nl.eval_all(&[true, false]), vec![false]);
        // With the don't-cares the whole thing reduces to the literal b.
        assert_eq!(nl.stats().gates, 0);
    }

    #[test]
    fn fr_pla_interval_semantics() {
        let pla: Pla = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n".parse().expect("valid");
        let mut mgr = Bdd::new(2);
        let isfs = isfs_from_pla(&mut mgr, &pla);
        assert_eq!(isfs.len(), 1);
        let isf = isfs[0];
        assert_eq!(mgr.sat_count(isf.q), 1.0);
        assert_eq!(mgr.sat_count(isf.r), 1.0);
        let dc = isf.dont_care(&mut mgr);
        assert_eq!(mgr.sat_count(dc), 2.0);
        let outcome = decompose_pla(&pla, &Options::default());
        assert!(outcome.verified);
    }

    #[test]
    fn fdr_pla_semantics() {
        // fdr: on, off and dc all explicit; the rest is don't-care.
        let pla: Pla = ".i 2\n.o 1\n.type fdr\n11 1\n00 0\n01 d\n.e\n".parse().expect("valid");
        let mut mgr = Bdd::new(2);
        let isfs = isfs_from_pla(&mut mgr, &pla);
        let isf = isfs[0];
        assert_eq!(mgr.sat_count(isf.q), 1.0);
        assert_eq!(mgr.sat_count(isf.r), 1.0);
        let dc = isf.dont_care(&mut mgr);
        assert_eq!(mgr.sat_count(dc), 2.0, "explicit d plus the uncovered 10");
        let outcome = decompose_pla(&pla, &Options::default());
        assert!(outcome.verified);
    }

    #[test]
    fn multi_output_sharing() {
        // Outputs f = a·b + c and g = a·b + d share the a·b component.
        let pla: Pla = "\
.i 4
.o 2
11-- 11
--1- 10
---1 01
.e
"
        .parse()
        .expect("valid");
        let outcome = decompose_pla(&pla, &Options::default());
        assert!(outcome.verified);
        assert_eq!(outcome.netlist.stats().gates, 3, "a·b shared between outputs");
    }

    #[test]
    fn weak_only_options_still_verify() {
        let pla: Pla = "\
.i 4
.o 1
11-- 1
--11 1
.e
"
        .parse()
        .expect("valid");
        let outcome = decompose_pla(&pla, &Options::weak_only());
        assert!(outcome.verified);
        let strong = decompose_pla(&pla, &Options::default());
        assert!(
            outcome.netlist.stats().gates >= strong.netlist.stats().gates,
            "weak-only must not beat the full algorithm here"
        );
    }

    #[test]
    fn constant_outputs() {
        // Output 0: constant 1 (tautology cube). Output 1: constant 0 (no cubes).
        let pla: Pla = ".i 2\n.o 2\n-- 1-\n.e\n".parse().expect("valid");
        let outcome = decompose_pla(&pla, &Options::default());
        assert!(outcome.verified);
        assert_eq!(outcome.netlist.stats().gates, 0);
        assert_eq!(outcome.netlist.eval_all(&[false, false]), vec![true, false]);
    }

    #[test]
    fn elapsed_and_nodes_are_populated() {
        let pla: Pla = ".i 3\n.o 1\n111 1\n.e\n".parse().expect("valid");
        let outcome = decompose_pla(&pla, &Options::default());
        assert!(outcome.bdd_nodes >= 2);
        assert!(outcome.elapsed.as_nanos() > 0);
        // Phase times and op counters are always populated…
        assert!(outcome.phases.bdd_build.as_nanos() > 0);
        assert!(outcome.phases.decompose.as_nanos() > 0);
        assert!(outcome.phases.verify.as_nanos() > 0);
        assert!(outcome.op_stats.mk_calls > 0);
        // …but the depth histogram needs the telemetry opt-in, and the
        // trace its own flag.
        assert!(outcome.depth_histogram.is_empty());
        assert!(outcome.trace.is_empty());
        let with_trace = decompose_pla(&pla, &Options { trace: true, ..Options::default() });
        assert!(!with_trace.trace.is_empty());
        let with_telemetry =
            decompose_pla(&pla, &Options { telemetry: true, ..Options::default() });
        assert_eq!(with_telemetry.depth_histogram[0], 1);
        assert_eq!(
            with_telemetry.depth_histogram.iter().sum::<u64>(),
            with_telemetry.stats.calls as u64
        );
    }

    #[test]
    fn latency_and_mem_fields_are_populated() {
        let pla: Pla = ".i 3\n.o 2\n111 10\n-11 01\n.e\n".parse().expect("valid");
        let outcome = decompose_pla(&pla, &Options::default());
        // One latency sample per PLA output, unconditionally.
        assert_eq!(outcome.output_latency.count(), 2);
        assert!(outcome.output_latency.max_ns() <= outcome.elapsed.as_nanos() as u64);
        // Memory accounting is always on; per-op timing is the telemetry
        // opt-in.
        assert!(outcome.mem.total_bytes > 0);
        assert!(outcome.mem.peak_bytes >= outcome.mem.total_bytes);
        assert_eq!(
            outcome.mem.total_bytes,
            outcome.mem.unique_table_bytes
                + outcome.mem.computed_cache_bytes
                + outcome.mem.node_slab_bytes
        );
        assert!(outcome.op_latency.is_none());
        let outcome = decompose_pla(&pla, &Options { telemetry: true, ..Options::default() });
        let ops = outcome.op_latency.as_ref().expect("telemetry enables op timing");
        assert!(ops.count() > 0, "manager operators must have recorded samples");
        assert!(ops.p50_ns() <= ops.p99_ns() && ops.p99_ns() <= ops.max_ns());
    }

    #[test]
    fn forensics_fields_follow_the_telemetry_opt_in() {
        let pla: Pla = ".i 3\n.o 2\n111 10\n-11 01\n.e\n".parse().expect("valid");
        let plain = decompose_pla(&pla, &Options::default());
        // Without telemetry the sampler never fires and analytics stay off…
        assert!(plain.analytics.is_none());
        assert!(plain.timeseries.is_empty());
        // …while component-cache stats are plain bookkeeping, always on.
        assert!(plain.component_cache.components >= plain.component_cache.support_sets);
        let rich = decompose_pla(&pla, &Options { telemetry: true, ..Options::default() });
        let analytics = rich.analytics.as_ref().expect("telemetry enables analytics");
        assert!(analytics.probe.entries > 0, "unique table holds live nodes");
        assert!(
            analytics.cache_by_op.iter().any(|op| op.lookups > 0),
            "the decomposition exercises the computed cache"
        );
        // One "output" sample per PLA output plus the final "end" sample.
        assert!(rich.timeseries.len() >= 3);
        let last = rich.timeseries.latest().expect("non-empty series");
        assert_eq!(last.label, "end");
        assert!(last.live_nodes >= 2);
        assert!(last.total_bytes() > 0);
        assert_eq!(rich.timeseries.samples().filter(|s| s.label == "output").count(), 2);
    }

    #[test]
    fn parallel_netlist_is_byte_identical_to_serial() {
        let pla: Pla = "\
.i 4
.o 3
11-- 111
--1- 100
---1 011
1--1 010
.e
"
        .parse()
        .expect("valid");
        let serial = decompose_pla(&pla, &Options::default());
        assert_eq!(serial.threads, 1);
        for threads in [2, 4, 8] {
            let par = decompose_pla(&pla, &Options { threads, ..Options::default() });
            assert!(par.verified);
            assert_eq!(par.threads, threads.min(pla.num_outputs()));
            assert_eq!(
                par.netlist.to_blif("m"),
                serial.netlist.to_blif("m"),
                "threads={threads} must reproduce the serial netlist"
            );
            assert_eq!(par.stats.calls, serial.stats.calls, "same recursion tree");
        }
    }

    #[test]
    fn parallel_outcome_merges_worker_reports() {
        let pla: Pla = ".i 3\n.o 2\n111 10\n-11 01\n101 10\n.e\n".parse().expect("valid");
        let outcome = decompose_pla(&pla, &Options { threads: 2, ..Options::default() });
        assert!(outcome.verified);
        assert_eq!(outcome.threads, 2);
        assert_eq!(outcome.output_latency.count(), 2, "one latency sample per output");
        assert!(outcome.op_stats.mk_calls > 0, "worker counters must merge");
        assert!(outcome.mem.total_bytes > 0);
        assert!(outcome.phases.decompose.as_nanos() > 0);
        // Plain runs keep forensics off, exactly like the serial path.
        assert!(outcome.analytics.is_none());
        assert!(outcome.timeseries.is_empty());
        assert!(outcome.depth_histogram.is_empty());
        // With telemetry the merged forensics ride along.
        let rich =
            decompose_pla(&pla, &Options { threads: 2, telemetry: true, ..Options::default() });
        assert!(rich.analytics.is_some());
        assert_eq!(rich.timeseries.samples().filter(|s| s.label == "output").count(), 2);
        assert_eq!(rich.timeseries.latest().expect("non-empty").label, "end");
        assert_eq!(rich.depth_histogram.iter().sum::<u64>(), rich.stats.calls as u64);
        assert!(rich.op_latency.is_some());
        // Tracing concatenates the per-output traces in output order.
        let traced =
            decompose_pla(&pla, &Options { threads: 2, trace: true, ..Options::default() });
        let serial_traced = decompose_pla(&pla, &Options { trace: true, ..Options::default() });
        assert_eq!(traced.trace, serial_traced.trace, "same steps in the same order");
    }

    #[test]
    fn recorder_sees_nested_phase_spans() {
        use obs::{Event, MemorySink, Recorder};
        let pla: Pla = "\
.i 4
.o 2
11-- 11
--1- 10
---1 01
.e
"
        .parse()
        .expect("valid");
        let rec = Recorder::new();
        let sink = MemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        let outcome = decompose_pla_with_recorder(&pla, &Options::default(), Some(rec.clone()));
        assert!(outcome.verified);
        let events = sink.events();
        let starts: Vec<(String, usize)> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, depth } => Some((name.clone(), *depth)),
                _ => None,
            })
            .collect();
        // The run span wraps the phases; per-output spans nest inside the
        // decompose phase.
        assert_eq!(starts[0], ("decompose_pla".to_owned(), 0));
        assert!(starts.contains(&("order".to_owned(), 1)));
        assert!(starts.contains(&("bdd_build".to_owned(), 1)));
        assert!(starts.contains(&("decompose".to_owned(), 1)));
        assert!(starts.contains(&("output.y0".to_owned(), 2)));
        assert!(starts.contains(&("output.y1".to_owned(), 2)));
        assert!(starts.contains(&("verify".to_owned(), 1)));
        // Every span closed (balanced start/end).
        let ends = events.iter().filter(|e| matches!(e, Event::SpanEnd { .. })).count();
        assert_eq!(starts.len(), ends);
        // Manager gauges were published at the end of the run.
        assert!(rec.gauge_value("bdd.total_nodes").is_some());
        assert_eq!(rec.gauge_value("decomp.max_depth"), Some(outcome.depth_histogram.len() as f64));
        // The histogram rides along even though Options::telemetry was off.
        assert!(!outcome.depth_histogram.is_empty());
    }
}
