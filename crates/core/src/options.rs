//! Configuration of the decomposition algorithm.

/// The gate chosen for one bi-decomposition step.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateChoice {
    /// `F = A + B`.
    Or,
    /// `F = A · B`.
    And,
    /// `F = A ⊕ B`.
    Exor,
}

impl GateChoice {
    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            GateChoice::Or => "or",
            GateChoice::And => "and",
            GateChoice::Exor => "exor",
        }
    }
}

impl std::fmt::Display for GateChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so width/alignment specifiers work.
        f.pad(self.name())
    }
}

/// Tuning knobs of the decomposer.
///
/// The defaults reproduce the paper's configuration; the switches exist
/// for the ablation experiments (every design decision §5–§6 calls out can
/// be turned off individually).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Options {
    /// Search for EXOR bi-decompositions (on in the paper; turning it off
    /// mimics AND/OR-only decomposers).
    pub use_exor: bool,
    /// Reuse already-built components through the support-hashed cache
    /// (§6; "up to 20% component reuse").
    pub use_cache: bool,
    /// Search for strong groupings at all (off = weak-only, mimicking the
    /// paper's §8 characterization of BDS).
    pub use_strong: bool,
    /// Remove inessential variables before decomposing (§7).
    pub remove_inessential: bool,
    /// Order the BDD variables by cube literal frequency before building
    /// the specification (static ordering heuristic).
    pub order_by_frequency: bool,
    /// Run the BDD-based verifier on the result (§8).
    pub verify: bool,
    /// Record a [`crate::trace::TraceEvent`] per recursive call
    /// (retrieved with [`crate::Decomposer::take_trace`]).
    pub trace: bool,
    /// Collect run telemetry: recursion-depth histogram, peak-live-node
    /// sampling, per-phase timing spans and BDD/GC counters (streamed to
    /// an [`obs::Recorder`] when one is attached). Off by default — the
    /// hot recursion then pays only an `Option` branch and allocates
    /// nothing.
    pub telemetry: bool,
    /// Trigger a garbage collection between outputs when the manager
    /// exceeds this many live nodes.
    pub gc_threshold: usize,
    /// Capacity (in entries, rounded up to a power of two) of the BDD
    /// manager's lossy computed cache. Larger caches trade memory for hit
    /// rate; results are identical at any size.
    pub cache_entries: usize,
    /// Worker threads for per-output decomposition. `1` (the default) runs
    /// the serial path; `N > 1` decomposes outputs on `N` scoped threads,
    /// each with its own BDD manager. The produced netlist is byte-identical
    /// at any thread count.
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            use_exor: true,
            use_cache: true,
            use_strong: true,
            remove_inessential: true,
            order_by_frequency: true,
            verify: true,
            trace: false,
            telemetry: false,
            gc_threshold: 2_000_000,
            cache_entries: bdd::DEFAULT_CACHE_ENTRIES,
            threads: 1,
        }
    }
}

impl Options {
    /// The paper's configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Weak-only configuration approximating BDS (§8: "BDS applies only
    /// weak bi-decomposition").
    pub fn weak_only() -> Self {
        Options { use_strong: false, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = Options::default();
        assert!(o.use_exor && o.use_cache && o.use_strong);
        assert!(!o.telemetry, "telemetry is opt-in");
        assert_eq!(o.threads, 1, "the paper's runs are single-threaded");
        assert_eq!(o.cache_entries, bdd::DEFAULT_CACHE_ENTRIES);
        assert_eq!(Options::paper(), o);
        assert!(!Options::weak_only().use_strong);
    }

    #[test]
    fn gate_choice_names() {
        assert_eq!(GateChoice::Or.to_string(), "or");
        assert_eq!(GateChoice::And.name(), "and");
        assert_eq!(GateChoice::Exor.to_string(), "exor");
    }
}
