//! Variable grouping — Section 5 of the paper (Figs. 5 and 6).
//!
//! Grouping proceeds in two steps: [`find_initial_grouping`] seeds
//! `X_A`/`X_B` with one variable each, then [`group_variables`] greedily
//! grows them, always trying the smaller set first so the final sets stay
//! balanced ("the closer their sizes are, the better" — balanced sets give
//! balanced netlists and short delay).

use bdd::{Bdd, VarSet};

use crate::check;
use crate::exor;
use crate::{GateChoice, Isf};

/// A variable grouping: the dedicated input sets of components A and B.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grouping {
    /// Variables feeding only component A.
    pub xa: VarSet,
    /// Variables feeding only component B.
    pub xb: VarSet,
}

impl Grouping {
    /// Total number of dedicated variables.
    pub fn total(&self) -> usize {
        self.xa.len() + self.xb.len()
    }

    /// Size difference between the two sets (0 = perfectly balanced).
    pub fn imbalance(&self) -> usize {
        self.xa.len().abs_diff(self.xb.len())
    }
}

/// Dispatches the gate-specific strong decomposability check.
fn decomposable(mgr: &mut Bdd, isf: &Isf, gate: GateChoice, xa: &VarSet, xb: &VarSet) -> bool {
    match gate {
        GateChoice::Or => check::or_decomposable(mgr, isf, xa, xb),
        GateChoice::And => check::and_decomposable(mgr, isf, xa, xb),
        GateChoice::Exor => exor::exor_decomposable(mgr, isf, xa, xb),
    }
}

/// Fig. 5: finds singleton sets `({x}, {y})` for which the ISF is strongly
/// bi-decomposable with gate `gate`, or `None` if no pair works.
///
/// For EXOR the cheap Theorem 2 pair test is used instead of the full
/// Fig. 4 propagation.
pub fn find_initial_grouping(
    mgr: &mut Bdd,
    isf: &Isf,
    support: &VarSet,
    gate: GateChoice,
) -> Option<Grouping> {
    let vars: Vec<u32> = support.iter().collect();
    // All three checks are symmetric in (X_A, X_B), so unordered pairs
    // suffice (the paper's double loop tests both orders; same outcome).
    for (i, &x) in vars.iter().enumerate() {
        for &y in &vars[i + 1..] {
            let ok = match gate {
                GateChoice::Exor => check::exor_decomposable_pair(mgr, isf, x, y),
                _ => decomposable(mgr, isf, gate, &VarSet::singleton(x), &VarSet::singleton(y)),
            };
            if ok {
                return Some(Grouping { xa: VarSet::singleton(x), xb: VarSet::singleton(y) });
            }
        }
    }
    None
}

/// Fig. 6: grows the initial grouping greedily, trying to add each
/// remaining support variable to the smaller set first.
///
/// Returns `None` if the function has no strong bi-decomposition with
/// `gate` under any grouping.
pub fn group_variables(
    mgr: &mut Bdd,
    isf: &Isf,
    support: &VarSet,
    gate: GateChoice,
) -> Option<Grouping> {
    let mut grouping = find_initial_grouping(mgr, isf, support, gate)?;
    let rest = support.difference(&grouping.xa.union(&grouping.xb));
    for z in rest.iter() {
        let zs = VarSet::singleton(z);
        // Try the smaller set first to keep the grouping balanced.
        let (first_a, second_a) =
            if grouping.xa.len() <= grouping.xb.len() { (true, false) } else { (false, true) };
        for to_a in [first_a, second_a] {
            let (xa, xb) = if to_a {
                (grouping.xa.union(&zs), grouping.xb)
            } else {
                (grouping.xa, grouping.xb.union(&zs))
            };
            if decomposable(mgr, isf, gate, &xa, &xb) {
                grouping = Grouping { xa, xb };
                break;
            }
        }
    }
    Some(grouping)
}

/// `FindBestVariableGrouping` of Fig. 7: picks the best of the candidate
/// groupings found for OR, AND and EXOR.
///
/// The cost function follows §7: more included variables is better;
/// among equals, better balance is better. Ties prefer OR, then AND, then
/// EXOR (EXOR gates are the most expensive in the §8 cost model).
pub fn find_best_grouping(
    candidates: [(GateChoice, Option<Grouping>); 3],
) -> Option<(GateChoice, Grouping)> {
    let mut best: Option<(GateChoice, Grouping)> = None;
    for (gate, candidate) in candidates {
        let Some(g) = candidate else { continue };
        let better = match &best {
            None => true,
            Some((_, b)) => {
                g.total() > b.total() || (g.total() == b.total() && g.imbalance() < b.imbalance())
            }
        };
        if better {
            best = Some((gate, g));
        }
    }
    best
}

/// Weak variable grouping (§7): chooses the single dedicated variable
/// `X_A = {x}` and the gate (weak OR or weak AND) that move the most
/// on-/off-set minterms into component A's don't-care set.
///
/// Returns `None` when no weak decomposition is useful for any variable —
/// the caller must then fall back to Shannon expansion (the paper states
/// one of the weak forms always exists for non-trivial functions; the
/// fallback keeps the implementation total regardless).
pub fn group_variables_weak(
    mgr: &mut Bdd,
    isf: &Isf,
    support: &VarSet,
) -> Option<(GateChoice, VarSet)> {
    let mut best: Option<(GateChoice, VarSet, f64)> = None;
    for x in support.iter() {
        let xs = VarSet::singleton(x);
        let cube = mgr.cube(&xs);
        // Weak OR gain: on-set minterms whose row has no off-set point.
        let er = mgr.exists(isf.r, cube);
        let qa = mgr.and(isf.q, er);
        let gain_or = mgr.sat_count(isf.q) - mgr.sat_count(qa);
        if gain_or > 0.0 && best.as_ref().is_none_or(|&(_, _, g)| gain_or > g) {
            best = Some((GateChoice::Or, xs, gain_or));
        }
        // Weak AND gain: dual.
        let eq = mgr.exists(isf.q, cube);
        let ra = mgr.and(isf.r, eq);
        let gain_and = mgr.sat_count(isf.r) - mgr.sat_count(ra);
        if gain_and > 0.0 && best.as_ref().is_none_or(|&(_, _, g)| gain_and > g) {
            best = Some((GateChoice::And, xs, gain_and));
        }
    }
    best.map(|(gate, xs, _)| (gate, xs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdd::Func;

    #[test]
    fn fig3_grouping_found() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b);
        let cd = mgr.and(c, d);
        let f = mgr.or(ab, cd);
        let isf = Isf::from_csf(&mut mgr, f);
        let support = isf.support(&mgr);
        let g =
            group_variables(&mut mgr, &isf, &support, GateChoice::Or).expect("OR grouping exists");
        // The greedy growth must find the full balanced split {a,b}/{c,d}
        // (in some order).
        assert_eq!(g.total(), 4);
        assert_eq!(g.imbalance(), 0);
        let split_ok = (g.xa == VarSet::from_iter([0u32, 1])
            && g.xb == VarSet::from_iter([2u32, 3]))
            || (g.xa == VarSet::from_iter([2u32, 3]) && g.xb == VarSet::from_iter([0u32, 1]));
        assert!(split_ok, "got {:?}", g);
    }

    #[test]
    fn parity_grouping_is_exor_and_total() {
        let mut mgr = Bdd::new(6);
        let mut f = Func::ZERO;
        for v in 0..6 {
            let x = mgr.var(v);
            f = mgr.xor(f, x);
        }
        let isf = Isf::from_csf(&mut mgr, f);
        let support = isf.support(&mgr);
        assert!(group_variables(&mut mgr, &isf, &support, GateChoice::Or).is_none());
        assert!(group_variables(&mut mgr, &isf, &support, GateChoice::And).is_none());
        let g = group_variables(&mut mgr, &isf, &support, GateChoice::Exor)
            .expect("parity is EXOR-decomposable");
        assert_eq!(g.total(), 6, "every variable lands in a dedicated set");
        assert!(g.imbalance() <= 1);
    }

    #[test]
    fn majority_has_no_strong_grouping() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let ac = mgr.and(a, c);
        let bc = mgr.and(b, c);
        let t = mgr.or(ab, ac);
        let maj = mgr.or(t, bc);
        let isf = Isf::from_csf(&mut mgr, maj);
        let support = isf.support(&mgr);
        for gate in [GateChoice::Or, GateChoice::And, GateChoice::Exor] {
            assert!(find_initial_grouping(&mut mgr, &isf, &support, gate).is_none());
        }
        // But a weak grouping exists.
        assert!(group_variables_weak(&mut mgr, &isf, &support).is_some());
    }

    #[test]
    fn best_grouping_prefers_more_variables_then_balance() {
        let g22 = Grouping { xa: VarSet::from_iter([0u32, 1]), xb: VarSet::from_iter([2u32, 3]) };
        let g31 = Grouping { xa: VarSet::from_iter([0u32, 1, 2]), xb: VarSet::singleton(3) };
        let g21 = Grouping { xa: VarSet::from_iter([0u32, 1]), xb: VarSet::singleton(2) };
        // Same total: balance wins.
        let best = find_best_grouping([
            (GateChoice::Or, Some(g31)),
            (GateChoice::And, Some(g22)),
            (GateChoice::Exor, None),
        ])
        .expect("candidates exist");
        assert_eq!(best.0, GateChoice::And);
        assert_eq!(best.1, g22);
        // Larger total wins over balance.
        let best = find_best_grouping([
            (GateChoice::Or, Some(g21)),
            (GateChoice::And, None),
            (GateChoice::Exor, Some(g31)),
        ])
        .expect("candidates exist");
        assert_eq!(best.0, GateChoice::Exor);
        // No candidates → none.
        assert!(find_best_grouping([
            (GateChoice::Or, None),
            (GateChoice::And, None),
            (GateChoice::Exor, None),
        ])
        .is_none());
    }

    #[test]
    fn weak_grouping_picks_most_dont_cares() {
        // F = a·b + c. Quantifying a (or b) out of R leaves only rows with
        // an off-set point in the ¬c half-space, freeing 4 of the 5 on-set
        // minterms; quantifying c frees only 2. The weak grouping must
        // therefore pick X_A = {a} (the first maximal-gain variable).
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        let isf = Isf::from_csf(&mut mgr, f);
        let support = isf.support(&mgr);
        let (gate, xa) = group_variables_weak(&mut mgr, &isf, &support).expect("useful");
        assert_eq!(gate, GateChoice::Or);
        assert_eq!(xa, VarSet::singleton(0));
        // Sanity: the gain of {a} beats the gain of {c}.
        let gain = |mgr: &mut Bdd, xs: &VarSet| {
            let cube = mgr.cube(xs);
            let er = mgr.exists(isf.r, cube);
            let qa = mgr.and(isf.q, er);
            mgr.sat_count(isf.q) - mgr.sat_count(qa)
        };
        let ga = gain(&mut mgr, &VarSet::singleton(0));
        let gc = gain(&mut mgr, &VarSet::singleton(2));
        assert!(ga > gc, "gain(a)={ga} must exceed gain(c)={gc}");
    }

    #[test]
    fn weak_grouping_returns_none_for_parity() {
        let mut mgr = Bdd::new(4);
        let mut f = Func::ZERO;
        for v in 0..4 {
            let x = mgr.var(v);
            f = mgr.xor(f, x);
        }
        let isf = Isf::from_csf(&mut mgr, f);
        let support = isf.support(&mgr);
        assert!(group_variables_weak(&mut mgr, &isf, &support).is_none());
    }
}
