//! Exporting synthesized netlists back to two-level form.
//!
//! Closes the loop of the §8 toolchain: PLA in → netlist out →
//! (optionally) minimized PLA back out, via BDD extraction and the
//! Minato–Morreale ISOP cover.

use bdd::Bdd;
use netlist::Netlist;
use pla::{Cube, OutputValue, Pla, Trit};

/// Re-expresses a netlist as a PLA whose cover is an irredundant SOP per
/// output (computed over the netlist's exact functions; no don't-cares).
///
/// Input/output names are carried over from the netlist.
///
/// # Panics
///
/// Panics if the netlist has more than 256 inputs (BDD manager limit).
pub fn pla_from_netlist(netlist: &Netlist) -> Pla {
    let num_inputs = netlist.inputs().len();
    let num_outputs = netlist.outputs().len();
    let mut mgr = Bdd::new(num_inputs);
    let bdds = netlist.to_bdds(&mut mgr);
    let input_labels: Vec<String> =
        netlist.inputs().iter().map(|&s| netlist.input_name(s).to_owned()).collect();
    let output_labels: Vec<String> = netlist.outputs().iter().map(|(n, _)| n.clone()).collect();
    let mut pla = Pla::new(num_inputs, num_outputs)
        .with_input_labels(input_labels)
        .with_output_labels(output_labels);
    for (out, &f) in bdds.iter().enumerate() {
        let (_, cubes) = mgr.isop(f, f);
        for cube in cubes {
            let mut inputs = vec![Trit::Dc; num_inputs];
            for (v, pos) in cube {
                inputs[v as usize] = if pos { Trit::One } else { Trit::Zero };
            }
            let mut outputs = vec![OutputValue::NotUsed; num_outputs];
            outputs[out] = OutputValue::One;
            pla.push(Cube::new(inputs, outputs));
        }
    }
    pla
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decompose_pla, Options};

    #[test]
    fn roundtrip_pla_netlist_pla() {
        let original: Pla = "\
.i 4
.o 2
.ilb a b c d
.ob f g
11-- 10
--11 10
1--1 01
.e
"
        .parse()
        .expect("valid");
        let outcome = decompose_pla(&original, &Options::default());
        assert!(outcome.verified);
        let exported = pla_from_netlist(&outcome.netlist);
        assert_eq!(exported.num_inputs(), 4);
        assert_eq!(exported.num_outputs(), 2);
        assert_eq!(exported.input_labels().unwrap(), ["a", "b", "c", "d"]);
        // The exported cover computes the same functions.
        for m in 0..16u64 {
            for out in 0..2 {
                assert_eq!(exported.eval(out, m), original.eval(out, m), "m={m:04b} out={out}");
            }
        }
        // And it is compact: the two-cube ON-set of f is recovered.
        assert_eq!(exported.on_cubes(0).count(), 2);
        assert_eq!(exported.on_cubes(1).count(), 1);
    }

    #[test]
    fn exported_pla_redecomposes_identically() {
        let b: Pla = ".i 5\n.o 1\n11--- 1\n--11- 1\n----1 1\n.e\n".parse().expect("valid");
        let first = decompose_pla(&b, &Options::default());
        let exported = pla_from_netlist(&first.netlist);
        let second = decompose_pla(&exported, &Options::default());
        assert!(second.verified);
        assert_eq!(
            first.netlist.stats().gates,
            second.netlist.stats().gates,
            "stable fixed point through the loop"
        );
    }

    #[test]
    fn constant_outputs_export() {
        let pla: Pla = ".i 2\n.o 2\n-- 1-\n.e\n".parse().expect("valid");
        let outcome = decompose_pla(&pla, &Options::default());
        let exported = pla_from_netlist(&outcome.netlist);
        assert_eq!(exported.eval(0, 0), Some(true), "tautology survives");
        assert_eq!(exported.eval(1, 0), Some(false));
        // Constant 1 appears as the single tautology cube.
        assert_eq!(exported.on_cubes(0).count(), 1);
        assert_eq!(exported.on_cubes(0).next().unwrap().literal_count(), 0);
        assert_eq!(exported.on_cubes(1).count(), 0);
    }
}
