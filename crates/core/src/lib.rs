//! **BI-DECOMP** — BDD-based bi-decomposition of incompletely specified
//! multi-output logic functions into netlists of two-input AND/OR/EXOR
//! gates.
//!
//! Reproduction of: A. Mishchenko, B. Steinbach, M. Perkowski, *An
//! Algorithm for Bi-Decomposition of Logic Functions*, DAC 2001.
//!
//! The algorithm recursively splits an incompletely specified function
//! (ISF, an interval `[Q, ¬R]` given by on-set `Q` and off-set `R`) as
//! `F = A Θ B` where `Θ` is a two-input AND, OR or EXOR gate and the
//! components `A`, `B` see disjoint *dedicated* variable sets `X_A`, `X_B`
//! plus shared variables `X_C` (Fig. 1 of the paper). Don't-cares are
//! exploited at every step, components are reused through a support-hashed
//! cache, and the resulting netlists are non-redundant (fully single
//! stuck-at testable, Theorem 5).
//!
//! # Quick start
//!
//! ```
//! use bidecomp::{decompose_pla, Options};
//!
//! let pla: pla::Pla = "\
//! .i 4
//! .o 1
//! 11-- 1
//! --11 1
//! .e
//! ".parse()?;
//! let outcome = decompose_pla(&pla, &Options::default());
//! assert!(outcome.verified);
//! let stats = outcome.netlist.stats();
//! assert_eq!(stats.gates, 3); // OR(a·b, c·d)
//! # Ok::<(), pla::ParsePlaError>(())
//! ```
//!
//! # Module map
//!
//! * [`Isf`] — intervals of Boolean functions over a BDD manager.
//! * [`check`] — decomposability conditions (Theorems 1 and 2).
//! * [`mod@derive`] — component derivation (Theorems 3 and 4, Table 1).
//! * [`exor`] — the `CheckExorBiDecomp` constraint-propagation algorithm
//!   (Fig. 4).
//! * [`grouping`] — variable grouping (Figs. 5 and 6).
//! * [`Decomposer`] — the recursive `BiDecompose` procedure (Fig. 7) with
//!   the component-reuse cache (Theorem 6).
//! * [`decompose_pla`] / [`verify`] — the end-to-end driver and the
//!   BDD-based verifier.
//! * [`trace`] / [`trace::tree`] — cost-attributed decomposition traces
//!   and tree reconstruction with inclusive/exclusive rollups.
//! * [`doctor`] — anomaly detection over a finished run (cache thrash,
//!   Shannon storms, memory cliffs, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod decompose;
pub mod derive;
pub mod doctor;
mod driver;
pub mod exor;
mod export;
pub mod grouping;
mod isf;
mod options;
mod stats;
pub mod trace;
pub mod verify;

pub use decompose::{Component, ComponentCacheStats, Decomposer};
pub use driver::{
    decompose_pla, decompose_pla_with_recorder, isfs_from_pla, DecompOutcome, PhaseTimes,
};
pub use export::pla_from_netlist;
pub use isf::Isf;
pub use options::{GateChoice, Options};
pub use stats::Stats;
