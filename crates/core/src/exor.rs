//! EXOR bi-decomposition with arbitrary variable sets — Fig. 4 of the
//! paper (`CheckExorBiDecomp`).
//!
//! The procedure simultaneously *checks* decomposability and *derives* the
//! component ISFs: starting from a seed cube of the on-set it alternately
//! propagates forced values between the A-side (functions over
//! `X_A ∪ X_C`) and the B-side (functions over `X_B ∪ X_C`), subtracting
//! decided constraint minterms from the working on/off-sets. A conflict
//! (`q ∧ r ≠ 0` on either side) proves non-decomposability; exhaustion of
//! the on-set yields the component intervals.

use bdd::{Bdd, Func, VarSet};

use crate::Isf;

/// Result of a successful EXOR decomposition: the component ISFs.
#[derive(Clone, Copy, Debug)]
pub struct ExorComponents {
    /// Component A, a function of `X_A ∪ X_C`.
    pub a: Isf,
    /// Component B, a function of `X_B ∪ X_C`.
    pub b: Isf,
}

/// The paper's `CheckExorBiDecomp` (Fig. 4): checks EXOR-decomposability
/// of the ISF with arbitrary disjoint sets `(X_A, X_B)` and, on success,
/// returns the component ISFs.
///
/// Returns `None` if no decomposition with these sets exists.
///
/// # Panics
///
/// Panics (in debug builds) if `X_A` and `X_B` overlap.
pub fn check_exor_bidecomp(
    mgr: &mut Bdd,
    isf: &Isf,
    xa: &VarSet,
    xb: &VarSet,
) -> Option<ExorComponents> {
    debug_assert!(xa.is_disjoint(xb), "X_A and X_B must be disjoint");
    let ca = mgr.cube(xa);
    let cb = mgr.cube(xb);

    // Working constraint sets (minterms of the full space not yet decided).
    let mut q = isf.q;
    let mut r = isf.r;
    // Accumulated component sets.
    let mut qa_all = Func::ZERO;
    let mut ra_all = Func::ZERO;
    let mut qb_all = Func::ZERO;
    let mut rb_all = Func::ZERO;

    while !q.is_zero() {
        // Seed a new connected component: force A = 1 on the X_B-projection
        // of one on-set cube (any polarity works within a component; 1 is
        // the paper's choice).
        let cube = mgr.pick_cube(q).expect("q is non-zero");
        let mut q_a = mgr.exists(cube, cb);
        let mut r_a = Func::ZERO;
        while !q_a.is_zero() || !r_a.is_zero() {
            // Propagate A-side decisions to the B side. Where A = 1,
            // B = ¬F; where A = 0, B = F. The quantifier distributes over
            // the disjunction, so each term uses the fused and-exists.
            let t1 = mgr.and_exists(q, r_a, ca);
            let t2 = mgr.and_exists(r, q_a, ca);
            let q_b = mgr.or(t1, t2);
            let t3 = mgr.and_exists(q, q_a, ca);
            let t4 = mgr.and_exists(r, r_a, ca);
            let r_b = mgr.or(t3, t4);
            if !mgr.disjoint(q_b, r_b) {
                return None;
            }
            // The constraints inside decided A-regions are now satisfied.
            let decided_a = mgr.or(q_a, r_a);
            q = mgr.diff(q, decided_a);
            r = mgr.diff(r, decided_a);
            qa_all = mgr.or(qa_all, q_a);
            ra_all = mgr.or(ra_all, r_a);
            // Propagate the fresh B-side decisions back to the A side.
            let t1 = mgr.and_exists(q, r_b, cb);
            let t2 = mgr.and_exists(r, q_b, cb);
            q_a = mgr.or(t1, t2);
            let t3 = mgr.and_exists(q, q_b, cb);
            let t4 = mgr.and_exists(r, r_b, cb);
            r_a = mgr.or(t3, t4);
            if !mgr.disjoint(q_a, r_a) {
                return None;
            }
            let decided_b = mgr.or(q_b, r_b);
            q = mgr.diff(q, decided_b);
            r = mgr.diff(r, decided_b);
            qb_all = mgr.or(qb_all, q_b);
            rb_all = mgr.or(rb_all, r_b);
        }
    }
    // Leftover off-set components never touched a constraint with the
    // on-set: force both components to 0 there (0 ⊕ 0 = 0).
    if !r.is_zero() {
        let pa = mgr.exists(r, cb);
        ra_all = mgr.or(ra_all, pa);
        let pb = mgr.exists(r, ca);
        rb_all = mgr.or(rb_all, pb);
    }
    if !mgr.disjoint(qa_all, ra_all) || !mgr.disjoint(qb_all, rb_all) {
        return None;
    }
    Some(ExorComponents {
        a: Isf::new_unchecked(qa_all, ra_all),
        b: Isf::new_unchecked(qb_all, rb_all),
    })
}

/// Convenience wrapper: does an EXOR decomposition with these sets exist?
pub fn exor_decomposable(mgr: &mut Bdd, isf: &Isf, xa: &VarSet, xb: &VarSet) -> bool {
    check_exor_bidecomp(mgr, isf, xa, xb).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parity_isf(mgr: &mut Bdd, n: u32) -> Isf {
        let mut f = Func::ZERO;
        for v in 0..n {
            let x = mgr.var(v);
            f = mgr.xor(f, x);
        }
        Isf::from_csf(mgr, f)
    }

    /// Validates a returned decomposition end to end: supports are right,
    /// intervals are consistent, and minimal completions XOR back into the
    /// original interval.
    fn assert_valid(mgr: &mut Bdd, isf: &Isf, xa: &VarSet, xb: &VarSet, comps: &ExorComponents) {
        assert!(mgr.disjoint(comps.a.q, comps.a.r));
        assert!(mgr.disjoint(comps.b.q, comps.b.r));
        assert!(mgr.support(comps.a.q).union(&mgr.support(comps.a.r)).is_disjoint(xb));
        assert!(mgr.support(comps.b.q).union(&mgr.support(comps.b.r)).is_disjoint(xa));
        // Any compatible completions must recompose. Try the minimal and
        // the maximal ones in all four combinations.
        let a_choices = [comps.a.q, {
            let dc = comps.a.dont_care(mgr);
            mgr.or(comps.a.q, dc)
        }];
        let b_choices = [comps.b.q, {
            let dc = comps.b.dont_care(mgr);
            mgr.or(comps.b.q, dc)
        }];
        for fa in a_choices {
            for fb in b_choices {
                let f = mgr.xor(fa, fb);
                assert!(isf.contains(mgr, f), "recomposition must fit the interval");
            }
        }
    }

    #[test]
    fn parity_decomposes_with_any_split() {
        let mut mgr = Bdd::new(6);
        let isf = parity_isf(&mut mgr, 6);
        let xa = VarSet::from_iter([0u32, 1, 2]);
        let xb = VarSet::from_iter([3u32, 4, 5]);
        let comps = check_exor_bidecomp(&mut mgr, &isf, &xa, &xb).expect("parity splits");
        assert_valid(&mut mgr, &isf, &xa, &xb, &comps);
        // With common variables too.
        let xa = VarSet::from_iter([0u32, 1]);
        let xb = VarSet::from_iter([4u32, 5]);
        let comps = check_exor_bidecomp(&mut mgr, &isf, &xa, &xb).expect("parity splits");
        assert_valid(&mut mgr, &isf, &xa, &xb, &comps);
    }

    #[test]
    fn and_of_vars_is_not_exor_decomposable() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let isf = Isf::from_csf(&mut mgr, f);
        assert!(!exor_decomposable(&mut mgr, &isf, &VarSet::singleton(0), &VarSet::singleton(1)));
    }

    #[test]
    fn mixed_function_with_common_variables() {
        // F = (a ⊕ b) ⊕ (c · d) with X_A = {a}, X_B = {b}, X_C = {c, d}.
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.xor(a, b);
        let cd = mgr.and(c, d);
        let f = mgr.xor(ab, cd);
        let isf = Isf::from_csf(&mut mgr, f);
        let xa = VarSet::singleton(0);
        let xb = VarSet::singleton(1);
        let comps = check_exor_bidecomp(&mut mgr, &isf, &xa, &xb).expect("decomposable");
        assert_valid(&mut mgr, &isf, &xa, &xb, &comps);
    }

    #[test]
    fn matches_truth_table_oracle_on_random_isfs() {
        use boolfn::{oracle, TruthTable};
        let n = 5;
        let mut decomposable_seen = 0;
        for seed in 0..80u64 {
            // Generous don't-cares make decomposable instances common.
            let f = TruthTable::random(n, 0.5, seed);
            let care = TruthTable::random(n, 0.4, seed ^ 0xfeed);
            let qt = f.and(&care);
            let rt = f.complement().and(&care);
            let mut mgr = Bdd::new(n);
            let q = qt.to_bdd(&mut mgr);
            let r = rt.to_bdd(&mut mgr);
            let isf = Isf::new(&mut mgr, q, r);
            for (xam, xbm) in [(0b00011u32, 0b11100u32), (0b00001, 0b00010), (0b01001, 0b00110)] {
                let xa: VarSet = (0..n as u32).filter(|v| xam & (1 << v) != 0).collect();
                let xb: VarSet = (0..n as u32).filter(|v| xbm & (1 << v) != 0).collect();
                let got = check_exor_bidecomp(&mut mgr, &isf, &xa, &xb);
                let expected = oracle::exor_bidecomposable(&qt, &rt, xam, xbm);
                assert_eq!(got.is_some(), expected, "seed {seed} sets {xam:b}/{xbm:b}");
                if let Some(comps) = got {
                    decomposable_seen += 1;
                    assert_valid(&mut mgr, &isf, &xa, &xb, &comps);
                }
            }
        }
        assert!(decomposable_seen > 10, "sweep must exercise the success path");
    }

    #[test]
    fn fully_unspecified_function_decomposes_trivially() {
        let mut mgr = Bdd::new(3);
        let isf = Isf::new(&mut mgr, Func::ZERO, Func::ZERO);
        let comps =
            check_exor_bidecomp(&mut mgr, &isf, &VarSet::singleton(0), &VarSet::singleton(1))
                .expect("everything is compatible");
        assert!(comps.a.q.is_zero() && comps.a.r.is_zero());
        assert!(comps.b.q.is_zero() && comps.b.r.is_zero());
    }
}
