//! Decomposition statistics — the §7 instrumentation.
//!
//! The paper quotes three empirical rates for typical MCNC benchmarks:
//! inessential variables occur in "less than 1% of recursive calls", weak
//! decomposition is needed in "20–30% of recursive calls", and the cache
//! achieves "up to 20% component reuse". These counters let the `stats`
//! bench binary reproduce those numbers.

use std::fmt;

use obs::report::{pct, pct2, ratio};

/// Counters accumulated across one decomposition run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Total recursive `BiDecompose` calls.
    pub calls: usize,
    /// Calls resolved by the component cache.
    pub cache_hits: usize,
    /// Calls resolved by the cache through a complemented component.
    pub cache_hits_complement: usize,
    /// Calls that hit the ≤2-variable terminal case.
    pub terminal_cases: usize,
    /// Calls that performed a strong OR decomposition.
    pub strong_or: usize,
    /// Calls that performed a strong AND decomposition.
    pub strong_and: usize,
    /// Calls that performed a strong EXOR decomposition.
    pub strong_exor: usize,
    /// Calls that fell back to weak OR/AND decomposition.
    pub weak: usize,
    /// Calls that fell back to Shannon expansion (no useful weak form).
    pub shannon: usize,
    /// Calls in which at least one inessential variable was removed.
    pub calls_with_inessential: usize,
    /// Total inessential variables removed.
    pub inessential_removed: usize,
}

impl Stats {
    /// Fraction of recursive calls resolved by component reuse.
    pub fn cache_hit_rate(&self) -> f64 {
        ratio(self.cache_hits + self.cache_hits_complement, self.calls)
    }

    /// Fraction of *decomposing* calls (strong + weak + Shannon) that had
    /// to use a weak decomposition — the paper's "20–30%".
    pub fn weak_rate(&self) -> f64 {
        let decomposing =
            self.strong_or + self.strong_and + self.strong_exor + self.weak + self.shannon;
        ratio(self.weak + self.shannon, decomposing)
    }

    /// Fraction of recursive calls that saw inessential variables — the
    /// paper's "less than 1%".
    pub fn inessential_rate(&self) -> f64 {
        ratio(self.calls_with_inessential, self.calls)
    }

    /// Merges counters from another run (used by the multi-output driver).
    pub fn merge(&mut self, other: &Stats) {
        self.calls += other.calls;
        self.cache_hits += other.cache_hits;
        self.cache_hits_complement += other.cache_hits_complement;
        self.terminal_cases += other.terminal_cases;
        self.strong_or += other.strong_or;
        self.strong_and += other.strong_and;
        self.strong_exor += other.strong_exor;
        self.weak += other.weak;
        self.shannon += other.shannon;
        self.calls_with_inessential += other.calls_with_inessential;
        self.inessential_removed += other.inessential_removed;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "calls:            {}", self.calls)?;
        writeln!(
            f,
            "cache hits:       {} (+{} complemented, {})",
            self.cache_hits,
            self.cache_hits_complement,
            pct(self.cache_hit_rate())
        )?;
        writeln!(f, "terminal cases:   {}", self.terminal_cases)?;
        writeln!(
            f,
            "strong or/and/exor: {}/{}/{}",
            self.strong_or, self.strong_and, self.strong_exor
        )?;
        writeln!(
            f,
            "weak + shannon:   {} + {} ({} of decomposing calls)",
            self.weak,
            self.shannon,
            pct(self.weak_rate())
        )?;
        write!(
            f,
            "inessential vars: {} in {} calls ({} of calls)",
            self.inessential_removed,
            self.calls_with_inessential,
            pct2(self.inessential_rate())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = Stats {
            calls: 100,
            cache_hits: 15,
            cache_hits_complement: 5,
            strong_or: 30,
            strong_and: 20,
            strong_exor: 10,
            weak: 18,
            shannon: 2,
            calls_with_inessential: 1,
            inessential_removed: 2,
            terminal_cases: 20,
        };
        assert!((s.cache_hit_rate() - 0.20).abs() < 1e-12);
        assert!((s.weak_rate() - 0.25).abs() < 1e-12);
        assert!((s.inessential_rate() - 0.01).abs() < 1e-12);
        let shown = s.to_string();
        assert!(shown.contains("calls:            100"));
        assert!(shown.contains("25.0%"));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Stats { calls: 10, weak: 2, ..Default::default() };
        let b = Stats { calls: 5, strong_or: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.calls, 15);
        assert_eq!(a.strong_or, 3);
        assert_eq!(a.weak, 2);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = Stats::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.weak_rate(), 0.0);
    }
}
