//! Decomposition-tree reconstruction from the flat trace stream.
//!
//! The decomposer emits exactly one depth-tagged [`TraceEvent`] per
//! recursive `BiDecompose` call, in preorder. [`DecompTree::from_trace`]
//! rebuilds the tree from that stream (a run over several outputs yields
//! several roots), rolls the per-call [`CallCost`]s up into inclusive and
//! exclusive figures, and renders the result as annotated Graphviz DOT —
//! the "which subtree burned the nodes" view the raw stream cannot give.

use std::fmt::Write as _;

use crate::trace::{CallCost, Step, TraceEvent};

/// One node of the reconstructed decomposition tree.
#[derive(Clone, PartialEq, Debug)]
pub struct TreeNode {
    /// The originating trace event (depth, step, measured cost).
    pub event: TraceEvent,
    /// Index of the parent node, `None` for roots.
    pub parent: Option<usize>,
    /// Indices of the children, in recursion order.
    pub children: Vec<usize>,
    /// Cost of the whole subtree rooted here. Equal to the event's own
    /// measured cost when present (per-call costs are captured around the
    /// full recursive call); the sum of the children otherwise.
    pub inclusive: CallCost,
    /// Cost spent in this call itself, excluding its children
    /// (`inclusive − Σ children.inclusive`, saturating).
    pub exclusive: CallCost,
}

/// A reconstructed decomposition tree (a forest when the trace covers
/// several outputs).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DecompTree {
    nodes: Vec<TreeNode>,
    roots: Vec<usize>,
}

impl DecompTree {
    /// Rebuilds the tree from a flat preorder trace.
    ///
    /// An event at depth `d` becomes a child of the most recent event
    /// with a smaller depth; depth-0 events start new roots. Traces
    /// concatenated across outputs therefore come back as a forest, and
    /// flattening the result ([`DecompTree::flatten`]) reproduces the
    /// input stream exactly.
    pub fn from_trace(trace: &[TraceEvent]) -> Self {
        let mut tree = DecompTree::default();
        // Stack of (depth, node index) — the path to the current node.
        let mut path: Vec<(usize, usize)> = Vec::new();
        for event in trace {
            while path.last().is_some_and(|&(d, _)| d >= event.depth) {
                path.pop();
            }
            let parent = path.last().map(|&(_, idx)| idx);
            let idx = tree.nodes.len();
            tree.nodes.push(TreeNode {
                event: event.clone(),
                parent,
                children: Vec::new(),
                inclusive: CallCost::default(),
                exclusive: CallCost::default(),
            });
            match parent {
                Some(p) => tree.nodes[p].children.push(idx),
                None => tree.roots.push(idx),
            }
            path.push((event.depth, idx));
        }
        // Preorder puts children after their parent, so one reverse pass
        // sees every child's inclusive cost before its parent needs it.
        for idx in (0..tree.nodes.len()).rev() {
            let child_sum = tree.nodes[idx]
                .children
                .iter()
                .fold(CallCost::default(), |acc, &c| acc + tree.nodes[c].inclusive);
            let node = &mut tree.nodes[idx];
            node.inclusive = node.event.cost.unwrap_or(child_sum);
            node.exclusive = node.inclusive.saturating_sub(child_sum);
        }
        tree
    }

    /// All nodes, in the original preorder.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Indices of the root nodes (one per traced output).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Recursion depth of the deepest node (0 for an empty tree).
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.event.depth).max().unwrap_or(0)
    }

    /// Sum of the roots' inclusive costs — the whole run.
    pub fn total_inclusive(&self) -> CallCost {
        self.roots.iter().fold(CallCost::default(), |acc, &r| acc + self.nodes[r].inclusive)
    }

    /// The tree flattened back into the preorder event stream. For every
    /// well-formed trace, `DecompTree::from_trace(t).flatten() == t`.
    pub fn flatten(&self) -> Vec<TraceEvent> {
        // Nodes are stored in insertion order = preorder.
        self.nodes.iter().map(|n| n.event.clone()).collect()
    }

    /// Node indices sorted by exclusive wall time, hottest first.
    pub fn hottest(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            self.nodes[b]
                .exclusive
                .elapsed_ns
                .cmp(&self.nodes[a].exclusive.elapsed_ns)
                .then(a.cmp(&b))
        });
        order.truncate(k);
        order
    }

    /// The tree as a standalone Graphviz `digraph`.
    ///
    /// With `include_costs` each node is annotated with its inclusive
    /// wall time, allocated nodes and theorem checks; without it the
    /// output depends only on the decomposition structure (byte-stable
    /// across runs, which the golden tests rely on).
    pub fn to_dot(&self, include_costs: bool) -> String {
        let mut out = String::new();
        out.push_str("digraph decomposition {\n");
        out.push_str("  rankdir=TB;\n");
        out.push_str("  node [shape=box, style=filled, fontname=\"Helvetica\"];\n");
        self.write_nodes(&mut out, "n", include_costs);
        out.push_str("}\n");
        out
    }

    /// Writes the nodes and edges as a `subgraph cluster` (used by the
    /// `stats` binary to put every benchmark's tree in one document).
    pub fn write_cluster(&self, out: &mut String, id: &str, title: &str, include_costs: bool) {
        let _ = writeln!(out, "  subgraph cluster_{id} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(title));
        let prefix = format!("{id}_n");
        self.write_nodes(out, &prefix, include_costs);
        out.push_str("  }\n");
    }

    fn write_nodes(&self, out: &mut String, prefix: &str, include_costs: bool) {
        for (idx, node) in self.nodes.iter().enumerate() {
            let mut label = step_label(&node.event.step);
            if include_costs {
                let c = node.inclusive;
                let _ = write!(
                    &mut label,
                    "\\n{} · {} alloc · {} chk",
                    fmt_ns(c.elapsed_ns),
                    c.nodes_allocated,
                    c.theorem_checks
                );
            }
            let _ = writeln!(
                out,
                "  {prefix}{idx} [label=\"{}\", fillcolor=\"{}\"];",
                escape(&label),
                step_color(&node.event.step)
            );
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            for &child in &node.children {
                let _ = writeln!(out, "  {prefix}{idx} -> {prefix}{child};");
            }
        }
    }
}

/// Renders one `digraph` holding a cluster per named tree (the
/// `stats --tree-dot` document shape).
pub fn render_dot_clusters(trees: &[(String, DecompTree)], include_costs: bool) -> String {
    let mut out = String::new();
    out.push_str("digraph decomposition {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str("  node [shape=box, style=filled, fontname=\"Helvetica\"];\n");
    for (i, (name, tree)) in trees.iter().enumerate() {
        tree.write_cluster(&mut out, &format!("c{i}"), name, include_costs);
    }
    out.push_str("}\n");
    out
}

/// One-line label of a step (matches the vocabulary of
/// [`render_trace`](crate::trace::render_trace)).
fn step_label(step: &Step) -> String {
    match step {
        Step::CacheHit { complemented } => {
            if *complemented {
                "cache hit (complemented)".to_owned()
            } else {
                "cache hit".to_owned()
            }
        }
        Step::Terminal { desc } => format!("leaf {desc}"),
        Step::Strong { gate, xa, xb } => format!("{gate} XA={xa} XB={xb}"),
        Step::Weak { gate, xa } => format!("weak {gate} XA={xa}"),
        Step::Shannon { var } => format!("shannon x{var}"),
    }
}

/// Fill color per step kind: decomposition quality reads off the tree at
/// a glance (green = reuse, white = leaf, blue = strong, orange = weak,
/// red = Shannon fallback).
fn step_color(step: &Step) -> &'static str {
    match step {
        Step::CacheHit { .. } => "palegreen",
        Step::Terminal { .. } => "white",
        Step::Strong { .. } => "lightblue",
        Step::Weak { .. } => "orange",
        Step::Shannon { .. } => "lightcoral",
    }
}

/// Escapes a string for a double-quoted DOT label.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            // A literal backslash must stay a backslash in DOT escapes
            // we emit ourselves (`\n` line breaks arrive pre-escaped), so
            // only quotes need protection.
            '"' => out.push_str("\\\""),
            _ => out.push(ch),
        }
    }
    out
}

/// Human-readable nanoseconds (µs below 1 ms, ms above).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}µs", ns as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use bdd::VarSet;

    use super::*;
    use crate::GateChoice;

    fn cost(elapsed_ns: u64, nodes: u64) -> Option<CallCost> {
        Some(CallCost {
            elapsed_ns,
            nodes_allocated: nodes,
            cache_lookups: nodes,
            cache_hits: nodes / 2,
            theorem_checks: 1,
        })
    }

    /// A forest exercising every `Step` variant: two roots, with
    /// CacheHit and Shannon among the children.
    fn every_variant_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(
                0,
                Step::Strong {
                    gate: GateChoice::Or,
                    xa: VarSet::from_iter([0u32, 1]),
                    xb: VarSet::from_iter([2u32]),
                },
            ),
            TraceEvent::new(1, Step::Weak { gate: GateChoice::And, xa: VarSet::singleton(0) }),
            TraceEvent::new(2, Step::Terminal { desc: "x0".into() }),
            TraceEvent::new(2, Step::CacheHit { complemented: true }),
            TraceEvent::new(1, Step::Shannon { var: 2 }),
            TraceEvent::new(2, Step::Terminal { desc: "x2".into() }),
            TraceEvent::new(2, Step::CacheHit { complemented: false }),
            // Second output starts a new root.
            TraceEvent::new(
                0,
                Step::Strong {
                    gate: GateChoice::Exor,
                    xa: VarSet::singleton(1),
                    xb: VarSet::singleton(3),
                },
            ),
            TraceEvent::new(1, Step::Terminal { desc: "x1".into() }),
            TraceEvent::new(1, Step::Terminal { desc: "x3".into() }),
        ]
    }

    #[test]
    fn round_trips_every_step_variant() {
        let trace = every_variant_trace();
        let tree = DecompTree::from_trace(&trace);
        assert_eq!(tree.flatten(), trace, "depth and order must round-trip exactly");
        assert_eq!(tree.roots().len(), 2);
        assert_eq!(tree.len(), trace.len());
        assert_eq!(tree.max_depth(), 2);
    }

    #[test]
    fn round_trips_each_variant_alone() {
        let singletons = vec![
            Step::CacheHit { complemented: false },
            Step::CacheHit { complemented: true },
            Step::Terminal { desc: "leaf".into() },
            Step::Strong {
                gate: GateChoice::And,
                xa: VarSet::singleton(0),
                xb: VarSet::singleton(1),
            },
            Step::Weak { gate: GateChoice::Or, xa: VarSet::singleton(0) },
            Step::Shannon { var: 7 },
        ];
        for step in singletons {
            let trace = vec![TraceEvent::new(0, step)];
            let tree = DecompTree::from_trace(&trace);
            assert_eq!(tree.flatten(), trace);
            assert_eq!(tree.roots(), &[0]);
        }
    }

    #[test]
    fn parent_child_structure_matches_depths() {
        let tree = DecompTree::from_trace(&every_variant_trace());
        let nodes = tree.nodes();
        assert_eq!(nodes[0].parent, None);
        assert_eq!(nodes[0].children, vec![1, 4]);
        assert_eq!(nodes[1].parent, Some(0));
        assert_eq!(nodes[1].children, vec![2, 3]);
        assert_eq!(nodes[4].children, vec![5, 6]);
        assert_eq!(nodes[7].parent, None);
        assert_eq!(nodes[7].children, vec![8, 9]);
    }

    #[test]
    fn cost_rollups_inclusive_and_exclusive() {
        let mut trace = vec![
            TraceEvent::new(0, Step::Shannon { var: 0 }),
            TraceEvent::new(1, Step::Terminal { desc: "a".into() }),
            TraceEvent::new(1, Step::Terminal { desc: "b".into() }),
        ];
        trace[0].cost = cost(100, 50);
        trace[1].cost = cost(30, 10);
        trace[2].cost = cost(20, 15);
        let tree = DecompTree::from_trace(&trace);
        let root = &tree.nodes()[0];
        assert_eq!(root.inclusive.elapsed_ns, 100, "measured cost is already inclusive");
        assert_eq!(root.exclusive.elapsed_ns, 50, "100 − (30 + 20)");
        assert_eq!(root.exclusive.nodes_allocated, 25, "50 − (10 + 15)");
        let leaf = &tree.nodes()[1];
        assert_eq!(leaf.inclusive, leaf.exclusive, "leaves own their whole cost");
        assert_eq!(tree.total_inclusive().elapsed_ns, 100);
        // Hottest-by-exclusive ranks the root first.
        assert_eq!(tree.hottest(2), vec![0, 1]);
    }

    #[test]
    fn missing_costs_fall_back_to_child_sums() {
        let mut trace = vec![
            TraceEvent::new(0, Step::Shannon { var: 0 }),
            TraceEvent::new(1, Step::Terminal { desc: "a".into() }),
            TraceEvent::new(1, Step::Terminal { desc: "b".into() }),
        ];
        // Only the leaves were measured.
        trace[1].cost = cost(30, 10);
        trace[2].cost = cost(20, 15);
        let tree = DecompTree::from_trace(&trace);
        let root = &tree.nodes()[0];
        assert_eq!(root.inclusive.elapsed_ns, 50, "children sum upward");
        assert_eq!(root.exclusive, CallCost::default());
        // With no costs at all everything is zero and nothing panics.
        let bare = DecompTree::from_trace(&every_variant_trace());
        assert_eq!(bare.total_inclusive(), CallCost::default());
    }

    #[test]
    fn dot_output_is_structurally_complete() {
        let tree = DecompTree::from_trace(&every_variant_trace());
        let dot = tree.to_dot(false);
        assert!(dot.starts_with("digraph decomposition {"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches(" -> ").count(), 8, "10 nodes, 2 roots → 8 edges");
        assert!(dot.contains("lightcoral"), "Shannon nodes are highlighted");
        assert!(dot.contains("palegreen"), "cache hits are highlighted");
        assert!(!dot.contains("alloc"), "no cost annotations without include_costs");
        // Cost-annotated output adds the annotations.
        let mut priced = every_variant_trace();
        for ev in &mut priced {
            ev.cost = cost(2_500_000, 3);
        }
        let tree = DecompTree::from_trace(&priced);
        let dot = tree.to_dot(true);
        assert!(dot.contains("2.50ms"), "costs are annotated: {dot}");
        assert!(dot.contains("alloc"));
    }

    #[test]
    fn clustered_rendering_prefixes_node_ids() {
        let tree = DecompTree::from_trace(&[TraceEvent::new(0, Step::Shannon { var: 0 })]);
        let doc = render_dot_clusters(
            &[("9sym".to_owned(), tree.clone()), ("apex\"7".to_owned(), tree)],
            false,
        );
        assert!(doc.contains("subgraph cluster_c0"));
        assert!(doc.contains("subgraph cluster_c1"));
        assert!(doc.contains("label=\"9sym\""));
        assert!(doc.contains("c0_n0"));
        assert!(doc.contains("c1_n0"));
        assert!(doc.contains("apex\\\"7"), "hostile names are escaped");
    }

    #[test]
    fn empty_trace_yields_empty_tree() {
        let tree = DecompTree::from_trace(&[]);
        assert!(tree.is_empty());
        assert!(tree.roots().is_empty());
        assert_eq!(tree.flatten(), Vec::<TraceEvent>::new());
        let dot = tree.to_dot(true);
        assert!(dot.starts_with("digraph"));
    }
}
