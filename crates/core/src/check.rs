//! Decomposability checks — Section 3 of the paper.
//!
//! All checks take the variable sets as [`VarSet`]s and build the
//! quantifier cubes internally; the caller can also use the `_cubes`
//! variants inside grouping loops to reuse pre-built cubes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bdd::{Bdd, Func, VarId, VarSet};

use crate::Isf;

/// Process-global count of theorem checks evaluated (Theorem 1 and its
/// AND dual, Theorem 2 pairs, weak-usefulness tests). Monotonic; cost
/// attribution reads *deltas* around each recursive call, so the absolute
/// value (shared across tests in one process) never matters. Follows the
/// same process-global pattern as the mutation switch below — the check
/// functions only see a `&mut Bdd`, so there is nowhere per-run to hang
/// the counter without widening every grouping-loop signature.
static THEOREM_CHECKS: AtomicU64 = AtomicU64::new(0);

/// Total theorem checks evaluated by this process so far.
pub fn theorem_checks() -> u64 {
    THEOREM_CHECKS.load(Ordering::Relaxed)
}

#[inline]
fn note_check() {
    THEOREM_CHECKS.fetch_add(1, Ordering::Relaxed);
}

/// Deliberate-fault switch used by the differential fuzz harness to prove
/// it can catch real bugs: when enabled, [`or_decomposable_cubes`]
/// quantifies the `X_B` side of Theorem 1 universally instead of
/// existentially. `∀X_B R ⊆ ∃X_B R`, so the intersection with `∃X_A R`
/// shrinks and the check wrongly *accepts* groupings the true condition
/// rejects, producing components that violate the `[Q, ¬R]` interval.
///
/// Process-global; never enabled in production paths.
static MUTATE_OR_CHECK: AtomicBool = AtomicBool::new(false);

/// Enables or disables the deliberate Theorem 1 mutation (see
/// [`or_check_mutation_enabled`]). Only the fuzz harness self-check and the
/// `fuzz --mutate` binary flip this; remember to restore `false`.
pub fn set_or_check_mutation(enabled: bool) {
    MUTATE_OR_CHECK.store(enabled, Ordering::SeqCst);
}

/// Is the deliberate Theorem 1 mutation currently enabled?
pub fn or_check_mutation_enabled() -> bool {
    MUTATE_OR_CHECK.load(Ordering::SeqCst)
}

/// Theorem 1: is the ISF OR-bi-decomposable with sets `(X_A, X_B)`?
///
/// Condition: `Q · ∃X_A R · ∃X_B R = 0`.
pub fn or_decomposable(mgr: &mut Bdd, isf: &Isf, xa: &VarSet, xb: &VarSet) -> bool {
    let ca = mgr.cube(xa);
    let cb = mgr.cube(xb);
    or_decomposable_cubes(mgr, isf, ca, cb)
}

/// [`or_decomposable`] with pre-built quantifier cubes.
pub fn or_decomposable_cubes(mgr: &mut Bdd, isf: &Isf, xa_cube: Func, xb_cube: Func) -> bool {
    note_check();
    let ra = mgr.exists(isf.r, xa_cube);
    let rb = if or_check_mutation_enabled() {
        mgr.forall(isf.r, xb_cube)
    } else {
        mgr.exists(isf.r, xb_cube)
    };
    let t = mgr.and(ra, rb);
    mgr.disjoint(isf.q, t)
}

/// Dual of Theorem 1: is the ISF AND-bi-decomposable with `(X_A, X_B)`?
///
/// Condition: `R · ∃X_A Q · ∃X_B Q = 0`.
pub fn and_decomposable(mgr: &mut Bdd, isf: &Isf, xa: &VarSet, xb: &VarSet) -> bool {
    or_decomposable(mgr, &isf.complement(), xa, xb)
}

/// [`and_decomposable`] with pre-built quantifier cubes.
pub fn and_decomposable_cubes(mgr: &mut Bdd, isf: &Isf, xa_cube: Func, xb_cube: Func) -> bool {
    or_decomposable_cubes(mgr, &isf.complement(), xa_cube, xb_cube)
}

/// Theorem 2: is the ISF EXOR-bi-decomposable with the singleton sets
/// `X_A = {xa}`, `X_B = {xb}`?
///
/// Uses the Boolean derivative of the interval w.r.t. `xa`:
/// `Q_D = ∃xa Q · ∃xa R` (derivative must be 1), `R_D = ∀xa Q + ∀xa R`
/// (derivative must be 0). Decomposable iff `Q_D · ∃xb R_D = 0`.
pub fn exor_decomposable_pair(mgr: &mut Bdd, isf: &Isf, xa: VarId, xb: VarId) -> bool {
    note_check();
    let (qd, rd) = derivative(mgr, isf, xa);
    let cb = mgr.cube(&VarSet::singleton(xb));
    let erd = mgr.exists(rd, cb);
    mgr.disjoint(qd, erd)
}

/// The on-set and off-set of the Boolean derivative of the ISF w.r.t. `v`.
///
/// `Q_D` marks the points (of the space without `v`) where every
/// compatible completion must change value when `v` flips; `R_D` where it
/// must not.
pub fn derivative(mgr: &mut Bdd, isf: &Isf, v: VarId) -> (Func, Func) {
    let cube = mgr.cube(&VarSet::singleton(v));
    let eq = mgr.exists(isf.q, cube);
    let er = mgr.exists(isf.r, cube);
    let qd = mgr.and(eq, er);
    let aq = mgr.forall(isf.q, cube);
    let ar = mgr.forall(isf.r, cube);
    let rd = mgr.or(aq, ar);
    (qd, rd)
}

/// Is a *weak* OR-bi-decomposition with dedicated set `X_A` useful — does
/// it strictly increase the don't-cares of component A?
///
/// Condition (Table 1): `Q · ∃X_A R ≠ Q`.
pub fn weak_or_useful(mgr: &mut Bdd, isf: &Isf, xa: &VarSet) -> bool {
    note_check();
    let ca = mgr.cube(xa);
    let er = mgr.exists(isf.r, ca);
    let qa = mgr.and(isf.q, er);
    qa != isf.q
}

/// Dual: is a weak AND-bi-decomposition with dedicated set `X_A` useful?
pub fn weak_and_useful(mgr: &mut Bdd, isf: &Isf, xa: &VarSet) -> bool {
    weak_or_useful(mgr, &isf.complement(), xa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_isf(mgr: &mut Bdd) -> Isf {
        // F = OR(a·b, c·d) with a,b,c,d = vars 0..3.
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b);
        let cd = mgr.and(c, d);
        let f = mgr.or(ab, cd);
        Isf::from_csf(mgr, f)
    }

    #[test]
    fn fig3_or_decomposability() {
        let mut mgr = Bdd::new(4);
        let isf = fig3_isf(&mut mgr);
        let xa = VarSet::from_iter([2u32, 3]);
        let xb = VarSet::from_iter([0u32, 1]);
        assert!(or_decomposable(&mut mgr, &isf, &xa, &xb));
        assert!(!and_decomposable(&mut mgr, &isf, &xa, &xb));
        // Mixed groups are not OR-decomposable.
        let xa_bad = VarSet::from_iter([0u32, 2]);
        let xb_bad = VarSet::from_iter([1u32, 3]);
        assert!(!or_decomposable(&mut mgr, &isf, &xa_bad, &xb_bad));
    }

    #[test]
    fn parity_is_exor_decomposable_only() {
        let mut mgr = Bdd::new(4);
        let vars: Vec<Func> = (0..4).map(|i| mgr.var(i)).collect();
        let f = vars.iter().skip(1).fold(vars[0], |acc, &v| mgr.xor(acc, v));
        let isf = Isf::from_csf(&mut mgr, f);
        assert!(exor_decomposable_pair(&mut mgr, &isf, 0, 1));
        assert!(exor_decomposable_pair(&mut mgr, &isf, 2, 3));
        let xa = VarSet::singleton(0);
        let xb = VarSet::singleton(1);
        assert!(!or_decomposable(&mut mgr, &isf, &xa, &xb));
        assert!(!and_decomposable(&mut mgr, &isf, &xa, &xb));
    }

    #[test]
    fn majority_has_no_strong_pairwise_decomposition() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let ac = mgr.and(a, c);
        let bc = mgr.and(b, c);
        let t = mgr.or(ab, ac);
        let maj = mgr.or(t, bc);
        let isf = Isf::from_csf(&mut mgr, maj);
        for xa in 0..3u32 {
            for xb in 0..3u32 {
                if xa == xb {
                    continue;
                }
                let sa = VarSet::singleton(xa);
                let sb = VarSet::singleton(xb);
                assert!(!or_decomposable(&mut mgr, &isf, &sa, &sb));
                assert!(!and_decomposable(&mut mgr, &isf, &sa, &sb));
                assert!(!exor_decomposable_pair(&mut mgr, &isf, xa, xb));
            }
        }
    }

    #[test]
    fn derivative_of_xor_is_constant_one() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.xor(a, b);
        let isf = Isf::from_csf(&mut mgr, f);
        let (qd, rd) = derivative(&mut mgr, &isf, 0);
        assert!(qd.is_one(), "xor always toggles");
        assert!(rd.is_zero());
    }

    #[test]
    fn derivative_of_and_depends_on_other_input() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let isf = Isf::from_csf(&mut mgr, f);
        let (qd, rd) = derivative(&mut mgr, &isf, 0);
        assert_eq!(qd, b, "a·b toggles with a exactly when b=1");
        let nb = mgr.not(b);
        assert_eq!(rd, nb);
    }

    #[test]
    fn weak_usefulness_conditions() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        let isf = Isf::from_csf(&mut mgr, f);
        // Quantifying X_A = {c}: rows with c=1 are pure on-set rows.
        assert!(weak_or_useful(&mut mgr, &isf, &VarSet::singleton(2)));
        // For parity nothing is useful.
        let p = {
            let t = mgr.xor(a, b);
            mgr.xor(t, c)
        };
        let pisf = Isf::from_csf(&mut mgr, p);
        for v in 0..3 {
            assert!(!weak_or_useful(&mut mgr, &pisf, &VarSet::singleton(v)));
            assert!(!weak_and_useful(&mut mgr, &pisf, &VarSet::singleton(v)));
        }
    }

    #[test]
    fn checks_agree_with_truth_table_oracle() {
        // Randomized cross-check of Theorems 1 and 2 against the
        // enumeration oracles from `boolfn`.
        use boolfn::{oracle, TruthTable};
        for seed in 0..30u64 {
            let n = 5;
            let f = TruthTable::random(n, 0.5, seed);
            let care = TruthTable::random(n, 0.75, seed ^ 0xdead);
            let qt = f.and(&care);
            let rt = f.complement().and(&care);
            let mut mgr = Bdd::new(n);
            let q = qt.to_bdd(&mut mgr);
            let r = rt.to_bdd(&mut mgr);
            let isf = Isf::new(&mut mgr, q, r);
            for (xa_mask, xb_mask) in
                [(0b00011u32, 0b11100u32), (0b00101, 0b01010), (0b00001, 0b00010)]
            {
                let xa: VarSet = (0..n as u32).filter(|v| xa_mask & (1 << v) != 0).collect();
                let xb: VarSet = (0..n as u32).filter(|v| xb_mask & (1 << v) != 0).collect();
                assert_eq!(
                    or_decomposable(&mut mgr, &isf, &xa, &xb),
                    oracle::or_bidecomposable(&qt, &rt, xa_mask, xb_mask),
                    "OR seed {seed} sets {xa_mask:b}/{xb_mask:b}"
                );
                assert_eq!(
                    and_decomposable(&mut mgr, &isf, &xa, &xb),
                    oracle::and_bidecomposable(&qt, &rt, xa_mask, xb_mask),
                    "AND seed {seed} sets {xa_mask:b}/{xb_mask:b}"
                );
            }
            assert_eq!(
                exor_decomposable_pair(&mut mgr, &isf, 0, 1),
                oracle::exor_bidecomposable(&qt, &rt, 0b1, 0b10),
                "EXOR seed {seed}"
            );
        }
    }
}
