//! The recursive `BiDecompose` procedure — Fig. 7 of the paper — together
//! with the component-reuse cache of Section 6.

use std::collections::HashMap;

use bdd::{Bdd, Func, VarId, VarSet};
use netlist::{Gate2, Netlist, SignalId};
use obs::Recorder;

use crate::grouping::{self, Grouping};
use crate::trace::{Step, TraceEvent};
use crate::{derive, exor, GateChoice, Isf, Options, Stats};

/// A decomposed component: the completely specified function it realizes
/// (as a BDD) and the netlist signal computing it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Component {
    /// The CSF implemented by the netlist cone.
    pub func: Func,
    /// The driving signal in the decomposer's netlist.
    pub signal: SignalId,
}

/// Reuse statistics of the §6 component cache (one bucket of candidate
/// components per support set).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ComponentCacheStats {
    /// Distinct support sets with at least one cached component.
    pub support_sets: usize,
    /// Total cached components across all buckets.
    pub components: usize,
    /// Largest bucket (components sharing one support set).
    pub max_bucket: usize,
    /// Lookups resolved by a cached component as-is.
    pub hits: usize,
    /// Lookups resolved by a cached component complemented (Theorem 6's
    /// free inverter).
    pub complement_hits: usize,
}

impl ComponentCacheStats {
    /// Hits of either polarity.
    pub fn total_hits(&self) -> usize {
        self.hits + self.complement_hits
    }

    /// The stats as a JSON object (the `component_cache` part of the
    /// report's `analytics` section).
    pub fn to_json(&self) -> obs::json::Json {
        obs::json::Json::obj()
            .field("support_sets", self.support_sets)
            .field("components", self.components)
            .field("max_bucket", self.max_bucket)
            .field("hits", self.hits)
            .field("complement_hits", self.complement_hits)
    }
}

/// The bi-decomposition engine.
///
/// Owns the BDD manager and the netlist under construction. Typical use:
/// build the specification ISFs through [`manager`](Decomposer::manager),
/// call [`decompose`](Decomposer::decompose) per output, then take the
/// result with [`into_netlist`](Decomposer::into_netlist).
///
/// ```
/// use bidecomp::{Decomposer, Isf};
///
/// let mut dec = Decomposer::new(3, None);
/// let f = {
///     let mgr = dec.manager();
///     let a = mgr.var(0);
///     let b = mgr.var(1);
///     let c = mgr.var(2);
///     let ab = mgr.and(a, b);
///     mgr.or(ab, c)
/// };
/// let isf = Isf::from_csf(dec.manager(), f);
/// let comp = dec.decompose(isf);
/// dec.add_output("f", comp);
/// assert_eq!(dec.netlist().stats().gates, 2);
/// ```
pub struct Decomposer {
    mgr: Bdd,
    netlist: Netlist,
    inputs: Vec<SignalId>,
    cache: HashMap<VarSet, Vec<Component>>,
    stats: Stats,
    options: Options,
    trace: Option<Vec<TraceEvent>>,
    telemetry: Option<Telemetry>,
    depth: usize,
}

impl std::fmt::Debug for Decomposer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Decomposer")
            .field("mgr", &self.mgr)
            .field("stats", &self.stats)
            .field("options", &self.options)
            .field("telemetry", &self.telemetry.is_some())
            .finish_non_exhaustive()
    }
}

/// Run telemetry collected when [`Options::telemetry`] is on: the recursion
/// shape and memory pressure of the decomposition, plus the recorder the
/// events stream to.
struct Telemetry {
    recorder: Recorder,
    /// `depth_hist[d]` = recursive calls entered at depth `d`.
    depth_hist: Vec<u64>,
    /// Largest live-node count sampled at any recursion entry.
    peak_live_nodes: usize,
}

impl Decomposer {
    /// Creates a decomposer for functions of `num_vars` inputs with
    /// default [`Options`]. Input `k` is named after `input_names[k]`, or
    /// `x{k}` if no names are given.
    ///
    /// # Panics
    ///
    /// Panics if `input_names` is provided with the wrong length.
    pub fn new(num_vars: usize, input_names: Option<&[String]>) -> Self {
        Self::with_options(num_vars, input_names, Options::default())
    }

    /// Creates a decomposer with explicit [`Options`].
    ///
    /// # Panics
    ///
    /// Panics if `input_names` is provided with the wrong length.
    pub fn with_options(num_vars: usize, input_names: Option<&[String]>, options: Options) -> Self {
        if let Some(names) = input_names {
            assert_eq!(names.len(), num_vars, "one name per input required");
        }
        let mut netlist = Netlist::new();
        let inputs = (0..num_vars)
            .map(|k| match input_names {
                Some(names) => netlist.add_input(names[k].clone()),
                None => netlist.add_input(format!("x{k}")),
            })
            .collect();
        let mut mgr = Bdd::new(num_vars);
        mgr.set_cache_capacity(options.cache_entries);
        Decomposer {
            mgr,
            netlist,
            inputs,
            cache: HashMap::new(),
            stats: Stats::default(),
            options,
            trace: options.trace.then(Vec::new),
            telemetry: options.telemetry.then(|| Telemetry {
                recorder: Recorder::new(),
                depth_hist: Vec::new(),
                peak_live_nodes: 0,
            }),
            depth: 0,
        }
    }

    /// Attaches a telemetry recorder (and enables collection even if
    /// [`Options::telemetry`] was off). The recorder is shared with the
    /// BDD manager, so GC events stream through the same sinks.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.mgr.set_recorder(Some(recorder.clone()));
        match &mut self.telemetry {
            Some(t) => t.recorder = recorder,
            None => {
                self.telemetry =
                    Some(Telemetry { recorder, depth_hist: Vec::new(), peak_live_nodes: 0 });
            }
        }
    }

    /// The telemetry recorder, if collection is enabled.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.telemetry.as_ref().map(|t| &t.recorder)
    }

    /// Recursive calls per depth (`[d]` = calls entered at depth `d`).
    /// Empty unless telemetry is enabled.
    pub fn depth_histogram(&self) -> &[u64] {
        self.telemetry.as_ref().map_or(&[], |t| &t.depth_hist)
    }

    /// Deepest recursion level reached (0 when telemetry is off or no
    /// decomposition has run).
    pub fn max_depth(&self) -> usize {
        self.depth_histogram().len()
    }

    /// Largest live BDD node count sampled at a recursion entry (0 unless
    /// telemetry is enabled).
    pub fn peak_live_nodes(&self) -> usize {
        self.telemetry.as_ref().map_or(0, |t| t.peak_live_nodes)
    }

    /// Publishes the recursion telemetry (depth histogram, max depth, peak
    /// live nodes) on the recorder. No-op when telemetry is off.
    pub fn emit_recursion_telemetry(&self) {
        let Some(t) = &self.telemetry else { return };
        t.recorder.gauge("decomp.max_depth", t.depth_hist.len() as f64);
        t.recorder.gauge("decomp.peak_live_nodes", t.peak_live_nodes as f64);
        let hist =
            obs::json::Json::Arr(t.depth_hist.iter().map(|&c| obs::json::Json::from(c)).collect());
        t.recorder
            .point("decomp.depth_histogram", obs::json::Json::obj().field("calls_by_depth", hist));
    }

    fn record(&mut self, step: Step) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::new(self.depth.saturating_sub(1), step));
        }
    }

    /// Takes the recorded decomposition trace (empty unless
    /// [`Options::trace`] is on). Subsequent calls start a fresh trace.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.trace {
            Some(trace) => std::mem::take(trace),
            None => Vec::new(),
        }
    }

    /// The BDD manager in which specification ISFs must be built.
    /// Manager variable `k` corresponds to netlist input `k`.
    pub fn manager(&mut self) -> &mut Bdd {
        &mut self.mgr
    }

    /// Applies a variable order to the (still empty) manager.
    ///
    /// # Panics
    ///
    /// Panics if any BDD node has already been built, or if `order` is not
    /// a permutation of the variables.
    pub fn set_variable_order(&mut self, order: &[VarId]) {
        assert_eq!(self.mgr.total_nodes(), 2, "set the order before building BDDs");
        self.mgr.reorder(order, &[]);
    }

    /// The netlist built so far.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reuse statistics of the component cache (cheap: one pass over the
    /// bucket lengths).
    pub fn component_cache_stats(&self) -> ComponentCacheStats {
        ComponentCacheStats {
            support_sets: self.cache.len(),
            components: self.cache.values().map(Vec::len).sum(),
            max_bucket: self.cache.values().map(Vec::len).max().unwrap_or(0),
            hits: self.stats.cache_hits,
            complement_hits: self.stats.cache_hits_complement,
        }
    }

    /// Declares a named primary output driven by a decomposed component.
    pub fn add_output(&mut self, name: impl Into<String>, component: Component) {
        self.netlist.add_output(name, component.signal);
    }

    /// Consumes the decomposer, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Consumes the decomposer, returning netlist, statistics and manager
    /// (the manager still holds the component BDDs for verification).
    pub fn into_parts(self) -> (Netlist, Stats, Bdd) {
        (self.netlist, self.stats, self.mgr)
    }

    /// Clears the per-run memoization state between top-level outputs: the
    /// §6 component-reuse cache and the manager's computed cache. Makes the
    /// decomposition of each output independent of the outputs decomposed
    /// before it, which is what keeps the serial and parallel drivers
    /// byte-identical. The netlist's structural hashing still deduplicates
    /// shared cones across outputs.
    pub fn clear_between_outputs(&mut self) {
        self.cache.clear();
        self.mgr.clear_computed_cache();
    }

    /// Garbage-collects the BDD manager, keeping the cached components and
    /// any `extra_roots` alive. Safe only between top-level
    /// [`decompose`](Decomposer::decompose) calls.
    pub fn gc(&mut self, extra_roots: &[Func]) -> usize {
        let mut protected: Vec<Func> = extra_roots.to_vec();
        for comps in self.cache.values() {
            protected.extend(comps.iter().map(|c| c.func));
        }
        for &f in &protected {
            self.mgr.protect(f);
        }
        let freed = self.mgr.gc();
        for &f in &protected {
            self.mgr.unprotect(f);
        }
        freed
    }

    /// Decomposes one ISF into two-input gates; returns the component
    /// realizing a compatible completely specified function.
    ///
    /// This is the paper's `BiDecompose` (Fig. 7). Idempotent across
    /// outputs: components are shared through the cache and through the
    /// netlist's structural hashing.
    pub fn decompose(&mut self, isf: Isf) -> Component {
        self.bidecompose(isf)
    }

    fn bidecompose(&mut self, isf_in: Isf) -> Component {
        self.stats.calls += 1;
        self.depth += 1;
        if let Some(t) = &mut self.telemetry {
            if t.depth_hist.len() < self.depth {
                t.depth_hist.resize(self.depth, 0);
            }
            t.depth_hist[self.depth - 1] += 1;
            t.peak_live_nodes = t.peak_live_nodes.max(self.mgr.total_nodes());
        }
        // Cost attribution: only when *both* tracing (somewhere to put
        // the cost) and telemetry (the opt-in for measurement overhead)
        // are on; the disabled path pays these two `Option` tests and
        // nothing else.
        let probe = match (&self.trace, &self.telemetry) {
            (Some(trace), Some(_)) => Some((
                trace.len(),
                std::time::Instant::now(),
                self.mgr.op_stats(),
                crate::check::theorem_checks(),
            )),
            _ => None,
        };
        let comp = self.bidecompose_inner(isf_in);
        if let Some((idx, start, ops_before, checks_before)) = probe {
            let ops = self.mgr.op_stats();
            let cost = crate::trace::CallCost {
                elapsed_ns: start.elapsed().as_nanos() as u64,
                nodes_allocated: (ops.mk_calls - ops_before.mk_calls)
                    .saturating_sub(ops.unique_hits - ops_before.unique_hits),
                cache_lookups: ops.cache_lookups - ops_before.cache_lookups,
                cache_hits: ops.cache_hits - ops_before.cache_hits,
                theorem_checks: crate::check::theorem_checks() - checks_before,
            };
            // Every call records exactly one event, and it is the first
            // one this call pushes — so `idx` is this call's event.
            if let Some(event) = self.trace.as_mut().and_then(|t| t.get_mut(idx)) {
                event.cost = Some(cost);
            }
        }
        self.depth -= 1;
        comp
    }

    fn bidecompose_inner(&mut self, isf_in: Isf) -> Component {
        // RemoveInessentialVariables (§7).
        let isf = if self.options.remove_inessential {
            let (isf, removed) = isf_in.remove_inessential(&mut self.mgr);
            if removed > 0 {
                self.stats.calls_with_inessential += 1;
                self.stats.inessential_removed += removed;
            }
            isf
        } else {
            isf_in
        };
        let support = isf.support(&self.mgr);
        // LookupCacheForACompatibleComponent (§6, Theorem 6).
        if self.options.use_cache {
            if let Some(hit) = self.cache_lookup(&isf, &support) {
                return hit;
            }
        }
        // Terminal case: two or fewer support variables. `find_gate` can
        // decline only when EXOR gates are disabled and the interval
        // contains nothing but XOR/XNOR — then the normal machinery below
        // (ultimately Shannon expansion) takes over.
        if support.len() <= 2 {
            if let Some((comp, desc)) = self.find_gate(&isf, &support) {
                self.stats.terminal_cases += 1;
                self.record(Step::Terminal { desc });
                self.cache_insert(comp);
                return comp;
            }
        }
        let comp = if self.options.use_strong {
            match self.best_strong_grouping(&isf, &support) {
                Some((gate, grouping)) => self.decompose_strong(&isf, gate, &grouping),
                None => self.decompose_weak_or_shannon(&isf, &support),
            }
        } else {
            self.decompose_weak_or_shannon(&isf, &support)
        };
        debug_assert!(
            isf.contains(&mut self.mgr, comp.func),
            "decomposed component must be compatible with its ISF"
        );
        self.cache_insert(comp);
        comp
    }

    fn best_strong_grouping(
        &mut self,
        isf: &Isf,
        support: &VarSet,
    ) -> Option<(GateChoice, Grouping)> {
        let or = grouping::group_variables(&mut self.mgr, isf, support, GateChoice::Or);
        let and = grouping::group_variables(&mut self.mgr, isf, support, GateChoice::And);
        let exor = if self.options.use_exor {
            grouping::group_variables(&mut self.mgr, isf, support, GateChoice::Exor)
        } else {
            None
        };
        grouping::find_best_grouping([
            (GateChoice::Or, or),
            (GateChoice::And, and),
            (GateChoice::Exor, exor),
        ])
    }

    fn decompose_strong(&mut self, isf: &Isf, gate: GateChoice, grouping: &Grouping) -> Component {
        let (xa, xb) = (grouping.xa, grouping.xb);
        match gate {
            GateChoice::Or => {
                self.stats.strong_or += 1;
                self.record(Step::Strong { gate: GateChoice::Or, xa, xb });
                let isf_a = derive::or_component_a(&mut self.mgr, isf, &xa, &xb);
                let a = self.bidecompose(isf_a);
                let isf_b = derive::or_component_b(&mut self.mgr, isf, a.func, &xa);
                let b = self.bidecompose(isf_b);
                self.combine(Gate2::Or, a, b)
            }
            GateChoice::And => {
                self.stats.strong_and += 1;
                self.record(Step::Strong { gate: GateChoice::And, xa, xb });
                let isf_a = derive::and_component_a(&mut self.mgr, isf, &xa, &xb);
                let a = self.bidecompose(isf_a);
                let isf_b = derive::and_component_b(&mut self.mgr, isf, a.func, &xa);
                let b = self.bidecompose(isf_b);
                self.combine(Gate2::And, a, b)
            }
            GateChoice::Exor => {
                self.stats.strong_exor += 1;
                self.record(Step::Strong { gate: GateChoice::Exor, xa, xb });
                let comps = exor::check_exor_bidecomp(&mut self.mgr, isf, &xa, &xb)
                    .expect("grouping guarantees EXOR decomposability");
                let a = self.bidecompose(comps.a);
                let b = self.bidecompose(comps.b);
                self.combine(Gate2::Xor, a, b)
            }
        }
    }

    fn decompose_weak_or_shannon(&mut self, isf: &Isf, support: &VarSet) -> Component {
        if let Some((gate, xa)) = grouping::group_variables_weak(&mut self.mgr, isf, support) {
            self.stats.weak += 1;
            self.record(Step::Weak { gate, xa });
            match gate {
                GateChoice::Or => {
                    let isf_a = derive::weak_or_component_a(&mut self.mgr, isf, &xa);
                    let a = self.bidecompose(isf_a);
                    let isf_b = derive::weak_or_component_b(&mut self.mgr, isf, a.func, &xa);
                    let b = self.bidecompose(isf_b);
                    self.combine(Gate2::Or, a, b)
                }
                _ => {
                    let isf_a = derive::weak_and_component_a(&mut self.mgr, isf, &xa);
                    let a = self.bidecompose(isf_a);
                    let isf_b = derive::weak_and_component_b(&mut self.mgr, isf, a.func, &xa);
                    let b = self.bidecompose(isf_b);
                    self.combine(Gate2::And, a, b)
                }
            }
        } else {
            // Shannon fallback: F = x·F₁ + ¬x·F₀. The paper claims a weak
            // decomposition always exists; this branch keeps the algorithm
            // total even on adversarial intervals (e.g. parity-like ISFs
            // with EXOR disabled).
            self.stats.shannon += 1;
            let v = support.first().expect("support non-empty beyond terminal case");
            self.record(Step::Shannon { var: v });
            let isf1 = isf.cofactor(&mut self.mgr, v, true);
            let isf0 = isf.cofactor(&mut self.mgr, v, false);
            let c1 = self.bidecompose(isf1);
            let c0 = self.bidecompose(isf0);
            let x = self.mgr.var(v);
            let x_sig = self.inputs[v as usize];
            let hi_func = self.mgr.and(x, c1.func);
            let hi_sig = self.netlist.add_gate(Gate2::And, x_sig, c1.signal);
            let nx = self.mgr.not(x);
            let nx_sig = self.netlist.add_not(x_sig);
            let lo_func = self.mgr.and(nx, c0.func);
            let lo_sig = self.netlist.add_gate(Gate2::And, nx_sig, c0.signal);
            let func = self.mgr.or(hi_func, lo_func);
            let signal = self.netlist.add_gate(Gate2::Or, hi_sig, lo_sig);
            Component { func, signal }
        }
    }

    fn combine(&mut self, op: Gate2, a: Component, b: Component) -> Component {
        let func = match op {
            Gate2::Or => self.mgr.or(a.func, b.func),
            Gate2::And => self.mgr.and(a.func, b.func),
            Gate2::Xor => self.mgr.xor(a.func, b.func),
            _ => unreachable!("decomposition gates are AND/OR/XOR"),
        };
        let signal = self.netlist.add_gate(op, a.signal, b.signal);
        Component { func, signal }
    }

    fn cache_lookup(&mut self, isf: &Isf, support: &VarSet) -> Option<Component> {
        let candidates = self.cache.get(support)?.clone();
        for comp in candidates {
            if isf.contains(&mut self.mgr, comp.func) {
                self.stats.cache_hits += 1;
                self.record(Step::CacheHit { complemented: false });
                return Some(comp);
            }
            if isf.contains_complement(&mut self.mgr, comp.func) {
                self.stats.cache_hits_complement += 1;
                self.record(Step::CacheHit { complemented: true });
                let func = self.mgr.not(comp.func);
                let signal = self.netlist.add_not(comp.signal);
                return Some(Component { func, signal });
            }
        }
        None
    }

    fn cache_insert(&mut self, comp: Component) {
        if !self.options.use_cache {
            return;
        }
        let support = self.mgr.support(comp.func);
        let entry = self.cache.entry(support).or_default();
        if !entry.iter().any(|c| c.func == comp.func) {
            entry.push(comp);
        }
    }

    /// Terminal case (`FindGate` of Fig. 7): picks the cheapest constant,
    /// literal or single two-input gate compatible with an ISF of at most
    /// two support variables.
    ///
    /// Returns `None` only when [`Options::use_exor`] is off and the
    /// interval contains nothing but the two EXOR-family functions.
    fn find_gate(&mut self, isf: &Isf, support: &VarSet) -> Option<(Component, String)> {
        debug_assert!(support.len() <= 2);
        let vars: Vec<VarId> = support.iter().collect();
        // Candidates in increasing cost order; with EXOR enabled the 16
        // two-variable functions are all reachable.
        let mut candidates: Vec<Leaf> = vec![Leaf::Const(false), Leaf::Const(true)];
        for &v in &vars {
            candidates.push(Leaf::Lit(v, true));
            candidates.push(Leaf::Lit(v, false));
        }
        if let [x, y] = vars[..] {
            for op in [Gate2::And, Gate2::Or] {
                for (px, py) in [(true, true), (true, false), (false, true), (false, false)] {
                    candidates.push(Leaf::Gate(op, (x, px), (y, py)));
                }
            }
            if self.options.use_exor {
                candidates.push(Leaf::Gate(Gate2::Xor, (x, true), (y, true)));
                candidates.push(Leaf::Gate(Gate2::Xnor, (x, true), (y, true)));
            }
        }
        for leaf in candidates {
            let func = leaf.func(&mut self.mgr);
            if isf.contains(&mut self.mgr, func) {
                let signal = leaf.signal(&mut self.netlist, &self.inputs);
                return Some((Component { func, signal }, leaf.describe()));
            }
        }
        None
    }
}

/// A terminal-case candidate.
#[derive(Clone, Copy, Debug)]
enum Leaf {
    Const(bool),
    Lit(VarId, bool),
    Gate(Gate2, (VarId, bool), (VarId, bool)),
}

impl Leaf {
    fn describe(&self) -> String {
        let lit = |v: VarId, pos: bool| if pos { format!("x{v}") } else { format!("¬x{v}") };
        match *self {
            Leaf::Const(v) => format!("const {}", u8::from(v)),
            Leaf::Lit(v, pos) => lit(v, pos),
            Leaf::Gate(op, (x, px), (y, py)) => {
                format!("{}({}, {})", op.name(), lit(x, px), lit(y, py))
            }
        }
    }

    fn func(self, mgr: &mut Bdd) -> Func {
        match self {
            Leaf::Const(v) => mgr.constant(v),
            Leaf::Lit(v, pos) => mgr.literal(v, pos),
            Leaf::Gate(op, (x, px), (y, py)) => {
                let fx = mgr.literal(x, px);
                let fy = mgr.literal(y, py);
                match op {
                    Gate2::And => mgr.and(fx, fy),
                    Gate2::Or => mgr.or(fx, fy),
                    Gate2::Xor => mgr.xor(fx, fy),
                    Gate2::Xnor => mgr.xnor(fx, fy),
                    Gate2::Nand => mgr.nand(fx, fy),
                    Gate2::Nor => mgr.nor(fx, fy),
                }
            }
        }
    }

    fn signal(self, nl: &mut Netlist, inputs: &[SignalId]) -> SignalId {
        let lit = |nl: &mut Netlist, v: VarId, pos: bool| {
            let s = inputs[v as usize];
            if pos {
                s
            } else {
                nl.add_not(s)
            }
        };
        match self {
            Leaf::Const(v) => nl.constant(v),
            Leaf::Lit(v, pos) => lit(nl, v, pos),
            Leaf::Gate(op, (x, px), (y, py)) => {
                let sx = lit(nl, x, px);
                let sy = lit(nl, y, py);
                nl.add_gate(op, sx, sy)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csf_isf(dec: &mut Decomposer, build: impl FnOnce(&mut Bdd) -> Func) -> Isf {
        let mgr = dec.manager();
        let f = build(mgr);
        Isf::from_csf(mgr, f)
    }

    /// Decomposes a CSF and verifies the netlist implements it exactly.
    fn roundtrip(num_vars: usize, build: impl FnOnce(&mut Bdd) -> Func) -> Decomposer {
        let mut dec = Decomposer::new(num_vars, None);
        let isf = csf_isf(&mut dec, build);
        let comp = dec.decompose(isf);
        assert_eq!(comp.func, isf.q, "CSF must be implemented exactly");
        dec.add_output("f", comp);
        // Cross-check the netlist against the BDD on every assignment.
        let bdds = dec.netlist.to_bdds(&mut dec.mgr);
        assert_eq!(bdds[0], isf.q, "netlist must compute the same function");
        dec
    }

    #[test]
    fn or_of_ands() {
        let dec = roundtrip(4, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let d = mgr.var(3);
            let ab = mgr.and(a, b);
            let cd = mgr.and(c, d);
            mgr.or(ab, cd)
        });
        let stats = dec.netlist().stats();
        assert_eq!(stats.gates, 3, "optimal: two ANDs and one OR");
        assert_eq!(stats.exors, 0);
        assert_eq!(stats.cascades, 2);
    }

    #[test]
    fn parity_uses_exor_chain() {
        let dec = roundtrip(6, |mgr| {
            let mut f = Func::ZERO;
            for v in 0..6 {
                let x = mgr.var(v);
                f = mgr.xor(f, x);
            }
            f
        });
        let stats = dec.netlist().stats();
        assert_eq!(stats.gates, 5, "n-input parity needs n-1 gates");
        assert_eq!(stats.exors, 5, "and they are all EXORs");
        assert_eq!(stats.cascades, 3, "balanced tree, not a chain");
    }

    #[test]
    fn parity_without_exor_still_correct() {
        let mut dec =
            Decomposer::with_options(4, None, Options { use_exor: false, ..Options::default() });
        let isf = csf_isf(&mut dec, |mgr| {
            let mut f = Func::ZERO;
            for v in 0..4 {
                let x = mgr.var(v);
                f = mgr.xor(f, x);
            }
            f
        });
        let comp = dec.decompose(isf);
        assert_eq!(comp.func, isf.q);
        dec.add_output("f", comp);
        let stats = dec.netlist().stats();
        assert_eq!(stats.exors, 0, "EXOR disabled");
        assert!(stats.gates > 3, "AND/OR realization of parity is bigger");
    }

    #[test]
    fn majority_decomposes_via_weak() {
        let dec = roundtrip(3, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let ab = mgr.and(a, b);
            let ac = mgr.and(a, c);
            let bc = mgr.and(b, c);
            let t = mgr.or(ab, ac);
            mgr.or(t, bc)
        });
        assert!(dec.stats().weak > 0, "majority needs the weak path");
    }

    #[test]
    fn dont_cares_shrink_the_netlist() {
        // ISF: must be 1 on a·b·c, 0 on ¬a·¬b·¬c — a single literal fits.
        let mut dec = Decomposer::new(3, None);
        let isf = {
            let mgr = dec.manager();
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let ab = mgr.and(a, b);
            let abc = mgr.and(ab, c);
            let na = mgr.not(a);
            let nb = mgr.not(b);
            let nc = mgr.not(c);
            let nanb = mgr.and(na, nb);
            let none = mgr.and(nanb, nc);
            Isf::new(mgr, abc, none)
        };
        let comp = dec.decompose(isf);
        assert!(isf.contains(dec.manager(), comp.func));
        dec.add_output("f", comp);
        assert_eq!(dec.netlist().stats().gates, 0, "a literal suffices");
    }

    #[test]
    fn cache_shares_components_across_outputs() {
        // Two outputs sharing the subfunction a·b.
        let mut dec = Decomposer::new(4, None);
        let (isf1, isf2) = {
            let mgr = dec.manager();
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let d = mgr.var(3);
            let ab = mgr.and(a, b);
            let f1 = mgr.or(ab, c);
            let f2 = mgr.or(ab, d);
            (Isf::from_csf(mgr, f1), Isf::from_csf(mgr, f2))
        };
        let c1 = dec.decompose(isf1);
        let c2 = dec.decompose(isf2);
        dec.add_output("f1", c1);
        dec.add_output("f2", c2);
        let stats = dec.netlist().stats();
        assert_eq!(stats.gates, 3, "a·b built once, two ORs");
    }

    #[test]
    fn complemented_cache_hits() {
        let mut dec = Decomposer::new(2, None);
        let (isf, nisf) = {
            let mgr = dec.manager();
            let a = mgr.var(0);
            let b = mgr.var(1);
            let f = mgr.and(a, b);
            let isf = Isf::from_csf(mgr, f);
            (isf, isf.complement())
        };
        let c1 = dec.decompose(isf);
        let c2 = dec.decompose(nisf);
        dec.add_output("f", c1);
        dec.add_output("nf", c2);
        // The complement is realized with an inverter on the shared gate
        // (cache hit) or a NAND leaf; either way at most 2 binary gates.
        assert!(dec.netlist().stats().gates <= 2);
        let expected = dec.manager().not(c1.func);
        assert_eq!(expected, c2.func);
    }

    #[test]
    fn find_gate_covers_all_two_var_functions() {
        // Exhaustive: every one of the 16 two-variable CSFs decomposes to
        // a compatible component with at most one binary gate.
        for truth in 0..16u32 {
            let mut dec = Decomposer::new(2, None);
            let isf = {
                let mgr = dec.manager();
                let mut f = Func::ZERO;
                for m in 0..4u32 {
                    if truth & (1 << m) != 0 {
                        let la = mgr.literal(0, m & 1 != 0);
                        let lb = mgr.literal(1, m & 2 != 0);
                        let cube = mgr.and(la, lb);
                        f = mgr.or(f, cube);
                    }
                }
                Isf::from_csf(mgr, f)
            };
            let comp = dec.decompose(isf);
            assert_eq!(comp.func, isf.q, "truth table {truth:04b}");
            dec.add_output("f", comp);
            assert!(dec.netlist().stats().gates <= 1, "truth {truth:04b}");
        }
    }

    #[test]
    fn gc_keeps_cache_alive() {
        let mut dec = Decomposer::new(4, None);
        let isf = csf_isf(&mut dec, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let ab = mgr.and(a, b);
            mgr.or(ab, c)
        });
        let comp = dec.decompose(isf);
        dec.gc(&[comp.func]);
        // The manager and cache must still be usable after collection.
        let isf2 = csf_isf(&mut dec, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            mgr.and(a, b)
        });
        let c2 = dec.decompose(isf2);
        assert!(dec.stats().cache_hits > 0, "a·b must come from the cache");
        dec.add_output("f", comp);
        dec.add_output("g", c2);
    }

    #[test]
    fn stats_track_strong_gates() {
        let dec = roundtrip(4, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let d = mgr.var(3);
            let ab = mgr.and(a, b);
            let cd = mgr.and(c, d);
            mgr.or(ab, cd)
        });
        let s = dec.stats();
        assert!(s.strong_or >= 1);
        assert!(s.calls >= 3);
    }

    #[test]
    #[should_panic(expected = "one name per input")]
    fn wrong_name_count_panics() {
        let _ = Decomposer::new(2, Some(&["only".to_owned()]));
    }

    #[test]
    fn trace_records_the_decomposition_tree() {
        use crate::trace::{render_trace, Step};
        let mut dec =
            Decomposer::with_options(4, None, Options { trace: true, ..Options::default() });
        let isf = csf_isf(&mut dec, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let d = mgr.var(3);
            let ab = mgr.and(a, b);
            let cd = mgr.and(c, d);
            mgr.or(ab, cd)
        });
        let _ = dec.decompose(isf);
        let trace = dec.take_trace();
        assert!(!trace.is_empty());
        // The root step is the strong OR split.
        assert!(matches!(&trace[0].step, Step::Strong { gate: GateChoice::Or, .. }));
        assert_eq!(trace[0].depth, 0);
        // Two terminal leaves at depth 1.
        let leaves: Vec<_> =
            trace.iter().filter(|e| matches!(e.step, Step::Terminal { .. })).collect();
        assert_eq!(leaves.len(), 2);
        assert!(leaves.iter().all(|e| e.depth == 1));
        let rendered = render_trace(&trace);
        assert!(rendered.contains("or"));
        assert!(rendered.contains("leaf and("), "{rendered}");
        // The trace resets after take_trace.
        assert!(dec.take_trace().is_empty());
    }

    #[test]
    fn telemetry_collects_recursion_shape() {
        let mut dec =
            Decomposer::with_options(4, None, Options { telemetry: true, ..Options::default() });
        let isf = csf_isf(&mut dec, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let d = mgr.var(3);
            let ab = mgr.and(a, b);
            let cd = mgr.and(c, d);
            mgr.or(ab, cd)
        });
        let comp = dec.decompose(isf);
        dec.add_output("f", comp);
        let hist = dec.depth_histogram();
        assert_eq!(hist[0], 1, "exactly one top-level call");
        assert!(dec.max_depth() >= 2, "the OR split recurses");
        assert_eq!(
            hist.iter().sum::<u64>(),
            dec.stats().calls as u64,
            "every recursive call lands in exactly one bucket"
        );
        assert!(dec.peak_live_nodes() >= 2);
        // The histogram is publishable on the recorder.
        let rec = dec.recorder().expect("telemetry implies a recorder").clone();
        let sink = obs::MemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        dec.emit_recursion_telemetry();
        assert_eq!(rec.gauge_value("decomp.max_depth"), Some(dec.max_depth() as f64));
        assert!(sink.events().iter().any(
            |e| matches!(e, obs::Event::Point { name, .. } if name == "decomp.depth_histogram")
        ));
    }

    #[test]
    fn telemetry_off_collects_nothing() {
        let mut dec = Decomposer::new(3, None);
        let isf = csf_isf(&mut dec, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            mgr.and(a, b)
        });
        let _ = dec.decompose(isf);
        assert!(dec.recorder().is_none());
        assert!(dec.depth_histogram().is_empty());
        assert_eq!(dec.peak_live_nodes(), 0);
        dec.emit_recursion_telemetry(); // no-op, must not panic
    }

    #[test]
    fn set_recorder_enables_collection_and_reaches_the_manager() {
        let mut dec = Decomposer::new(3, None);
        let rec = Recorder::new();
        dec.set_recorder(rec.clone());
        let isf = csf_isf(&mut dec, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            mgr.or(a, b)
        });
        let _ = dec.decompose(isf);
        assert!(!dec.depth_histogram().is_empty());
        // The manager shares the recorder: a GC shows up as a counter.
        dec.gc(&[]);
        assert_eq!(rec.counter("bdd.gc.runs"), 1);
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut dec = Decomposer::new(2, None);
        let isf = csf_isf(&mut dec, |mgr| {
            let a = mgr.var(0);
            let b = mgr.var(1);
            mgr.and(a, b)
        });
        let _ = dec.decompose(isf);
        assert!(dec.take_trace().is_empty());
    }
}
