//! The decomposition *doctor*: a pure analysis pass over a finished
//! [`DecompOutcome`] that flags anomalies worth a human look — computed
//! caches that thrash, Shannon-fallback storms, systematically unbalanced
//! variable groupings, reorder churn, memory cliffs and unproductive GC.
//!
//! The doctor never re-runs anything: every detector reads the forensic
//! data the run already produced (trace costs, [`bdd::Analytics`], the
//! resource time series). Detectors that need telemetry simply stay
//! silent when the run was executed without it.
//!
//! Findings carry a severity, a human-readable message and machine-usable
//! evidence; [`DoctorReport::to_json`] serializes the whole report under
//! the `bidecomp-doctor/v1` schema.

use bdd::{Analytics, OpStats};
use obs::json::Json;
use obs::TimeSeries;

use crate::trace::{Step, TraceEvent};
use crate::{DecompOutcome, Options, Stats};

/// Schema identifier stamped on every serialized doctor report.
pub const DOCTOR_SCHEMA: &str = "bidecomp-doctor/v1";

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Worth knowing, no action needed.
    Info,
    /// Likely costing time or memory; investigate.
    Warning,
    /// The run is broken or pathological.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON and rendered reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One anomaly the doctor found.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable kebab-case detector kind (e.g. `cache-thrash`).
    pub kind: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// One-line human-readable description.
    pub message: String,
    /// Machine-usable evidence backing the finding.
    pub evidence: Json,
}

impl Finding {
    /// The finding as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("kind", self.kind)
            .field("severity", self.severity.name())
            .field("message", self.message.as_str())
            .field("evidence", self.evidence.clone())
    }
}

/// Detector thresholds. The defaults are deliberately conservative: a
/// healthy run produces an empty report.
#[derive(Clone, Debug)]
pub struct DoctorConfig {
    /// Minimum per-op computed-cache lookups before hit rates are judged.
    pub cache_min_lookups: u64,
    /// Per-op hit rate below this (with enough traffic) is cache thrash.
    pub cache_thrash_hit_rate: f64,
    /// Minimum recursive calls before the Shannon fraction is judged.
    pub shannon_min_calls: usize,
    /// Shannon fraction at or above this warns.
    pub shannon_warn_fraction: f64,
    /// Shannon fraction at or above this is an error (the strong/weak
    /// machinery is effectively not working).
    pub shannon_error_fraction: f64,
    /// Minimum strong steps before grouping balance is judged.
    pub unbalanced_min_strong: usize,
    /// A strong step is unbalanced when `max(|XA|,|XB|)` is at least this
    /// multiple of `min(|XA|,|XB|).max(1)`.
    pub unbalanced_ratio: usize,
    /// Fraction of unbalanced strong steps at or above this warns.
    pub unbalanced_fraction: f64,
    /// Variable reorders at or above this count are churn.
    pub reorder_churn_runs: u64,
    /// Consecutive-sample memory growth factor that counts as a cliff.
    pub memory_cliff_factor: f64,
    /// Ignore cliffs smaller than this many bytes of absolute growth.
    pub memory_cliff_min_bytes: u64,
    /// Minimum GC runs before reclaim efficacy is judged.
    pub gc_thrash_runs: u64,
    /// Mean reclaim fraction below this (with enough runs) is GC thrash.
    pub gc_thrash_reclaim: f64,
}

impl Default for DoctorConfig {
    fn default() -> DoctorConfig {
        DoctorConfig {
            cache_min_lookups: 512,
            cache_thrash_hit_rate: 0.02,
            shannon_min_calls: 8,
            shannon_warn_fraction: 0.25,
            shannon_error_fraction: 0.60,
            unbalanced_min_strong: 4,
            unbalanced_ratio: 8,
            unbalanced_fraction: 0.5,
            reorder_churn_runs: 3,
            memory_cliff_factor: 2.0,
            memory_cliff_min_bytes: 1 << 20,
            gc_thrash_runs: 4,
            gc_thrash_reclaim: 0.10,
        }
    }
}

/// The doctor's verdict on one run.
#[derive(Clone, Debug)]
pub struct DoctorReport {
    /// All findings, most severe first.
    pub findings: Vec<Finding>,
}

impl DoctorReport {
    /// Counts by severity: `(info, warning, error)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.findings {
            match f.severity {
                Severity::Info => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Error => c.2 += 1,
            }
        }
        c
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// The report as a JSON document under [`DOCTOR_SCHEMA`].
    pub fn to_json(&self) -> Json {
        let (info, warning, error) = self.counts();
        Json::obj()
            .field("schema", DOCTOR_SCHEMA)
            .field(
                "counts",
                Json::obj().field("info", info).field("warning", warning).field("error", error),
            )
            .field("findings", Json::Arr(self.findings.iter().map(Finding::to_json).collect()))
    }

    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        if self.findings.is_empty() {
            return "doctor: no anomalies detected\n".to_owned();
        }
        let (info, warning, error) = self.counts();
        let mut out = format!(
            "doctor: {} finding(s) — {error} error, {warning} warning, {info} info\n",
            self.findings.len()
        );
        for f in &self.findings {
            out.push_str(&format!("  [{}] {}: {}\n", f.severity.name(), f.kind, f.message));
        }
        out
    }
}

/// Runs every detector over a finished run.
pub fn diagnose(outcome: &DecompOutcome, cfg: &DoctorConfig) -> DoctorReport {
    let mut findings = Vec::new();
    check_verified(outcome.verified, &mut findings);
    check_cache_thrash(outcome.analytics.as_ref(), &outcome.op_stats, cfg, &mut findings);
    check_shannon_storm(&outcome.stats, cfg, &mut findings);
    check_unbalanced_grouping(&outcome.trace, cfg, &mut findings);
    check_reorder_churn(outcome.analytics.as_ref(), cfg, &mut findings);
    check_memory_cliff(&outcome.timeseries, cfg, &mut findings);
    check_gc_thrash(outcome.analytics.as_ref(), cfg, &mut findings);
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    DoctorReport { findings }
}

/// Decomposes a PLA with tracing and telemetry forced on (the doctor
/// needs both) and diagnoses the outcome in one step.
pub fn diagnose_pla(
    pla: &pla::Pla,
    options: &Options,
    cfg: &DoctorConfig,
) -> (DecompOutcome, DoctorReport) {
    let options = Options { trace: true, telemetry: true, ..*options };
    let outcome = crate::decompose_pla(pla, &options);
    let report = diagnose(&outcome, cfg);
    (outcome, report)
}

fn check_verified(verified: bool, out: &mut Vec<Finding>) {
    if !verified {
        out.push(Finding {
            kind: "verify-failed",
            severity: Severity::Error,
            message: "the synthesized netlist does not match its specification".to_owned(),
            evidence: Json::obj().field("verified", false),
        });
    }
}

fn check_cache_thrash(
    analytics: Option<&Analytics>,
    ops: &OpStats,
    cfg: &DoctorConfig,
    out: &mut Vec<Finding>,
) {
    let Some(analytics) = analytics else { return };
    for op in &analytics.cache_by_op {
        if op.lookups >= cfg.cache_min_lookups && op.hit_rate() < cfg.cache_thrash_hit_rate {
            out.push(Finding {
                kind: "cache-thrash",
                severity: Severity::Warning,
                message: format!(
                    "computed cache is thrashing on `{}`: {:.2}% hits over {} lookups",
                    op.op,
                    op.hit_rate() * 100.0,
                    op.lookups
                ),
                evidence: Json::obj()
                    .field("op", op.op)
                    .field("lookups", op.lookups)
                    .field("hits", op.hits)
                    .field("hit_rate", op.hit_rate()),
            });
        }
    }
    let overall_rate =
        if ops.cache_lookups == 0 { 1.0 } else { ops.cache_hits as f64 / ops.cache_lookups as f64 };
    if ops.cache_lookups >= 4 * cfg.cache_min_lookups && overall_rate < cfg.cache_thrash_hit_rate {
        out.push(Finding {
            kind: "cache-thrash",
            severity: Severity::Warning,
            message: format!(
                "computed cache is thrashing overall: {:.2}% hits over {} lookups",
                overall_rate * 100.0,
                ops.cache_lookups
            ),
            evidence: Json::obj()
                .field("op", "all")
                .field("lookups", ops.cache_lookups)
                .field("hits", ops.cache_hits)
                .field("hit_rate", overall_rate),
        });
    }
}

fn check_shannon_storm(stats: &Stats, cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    if stats.calls < cfg.shannon_min_calls {
        return;
    }
    let fraction = stats.shannon as f64 / stats.calls as f64;
    if fraction < cfg.shannon_warn_fraction {
        return;
    }
    let severity =
        if fraction >= cfg.shannon_error_fraction { Severity::Error } else { Severity::Warning };
    out.push(Finding {
        kind: "shannon-storm",
        severity,
        message: format!(
            "Shannon fallback fired on {:.1}% of {} calls — bi-decomposition is \
             rarely succeeding",
            fraction * 100.0,
            stats.calls
        ),
        evidence: Json::obj()
            .field("shannon", stats.shannon)
            .field("calls", stats.calls)
            .field("fraction", fraction),
    });
}

fn check_unbalanced_grouping(trace: &[TraceEvent], cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    let mut strong = 0usize;
    let mut unbalanced = 0usize;
    let mut worst: Option<(usize, usize)> = None;
    for event in trace {
        let Step::Strong { xa, xb, .. } = &event.step else { continue };
        strong += 1;
        let (small, large) =
            if xa.len() <= xb.len() { (xa.len(), xb.len()) } else { (xb.len(), xa.len()) };
        if large >= cfg.unbalanced_ratio * small.max(1) {
            unbalanced += 1;
            if worst.is_none_or(|(ws, wl)| large * ws.max(1) > wl * small.max(1)) {
                worst = Some((small, large));
            }
        }
    }
    if strong < cfg.unbalanced_min_strong {
        return;
    }
    let fraction = unbalanced as f64 / strong as f64;
    if fraction < cfg.unbalanced_fraction {
        return;
    }
    let (small, large) = worst.unwrap_or((0, 0));
    out.push(Finding {
        kind: "unbalanced-grouping",
        severity: Severity::Warning,
        message: format!(
            "{unbalanced} of {strong} strong steps split their dedicated sets at \
             {}:1 or worse (worst |XA|,|XB| split: {small} vs {large})",
            cfg.unbalanced_ratio
        ),
        evidence: Json::obj()
            .field("strong_steps", strong)
            .field("unbalanced", unbalanced)
            .field("fraction", fraction)
            .field("worst_small", small)
            .field("worst_large", large),
    });
}

fn check_reorder_churn(analytics: Option<&Analytics>, cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    let Some(analytics) = analytics else { return };
    if analytics.reorders >= cfg.reorder_churn_runs {
        out.push(Finding {
            kind: "reorder-churn",
            severity: Severity::Warning,
            message: format!(
                "variable order was rebuilt {} times in one run — ordering is churning",
                analytics.reorders
            ),
            evidence: Json::obj().field("reorders", analytics.reorders),
        });
    }
}

fn check_memory_cliff(timeseries: &TimeSeries, cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    let samples: Vec<_> = timeseries.samples().collect();
    for pair in samples.windows(2) {
        let (before, after) = (pair[0], pair[1]);
        let (from, to) = (before.total_bytes(), after.total_bytes());
        let growth = to.saturating_sub(from);
        if growth >= cfg.memory_cliff_min_bytes
            && to as f64 >= from.max(1) as f64 * cfg.memory_cliff_factor
        {
            out.push(Finding {
                kind: "memory-cliff",
                severity: Severity::Warning,
                message: format!(
                    "resident BDD memory jumped {from} → {to} bytes between the \
                     `{}` sample at t={:.3}s and the `{}` sample at t={:.3}s",
                    before.label, before.t_s, after.label, after.t_s
                ),
                evidence: Json::obj()
                    .field("from_bytes", from)
                    .field("to_bytes", to)
                    .field("from_t_s", before.t_s)
                    .field("to_t_s", after.t_s)
                    .field("from_label", before.label)
                    .field("to_label", after.label),
            });
        }
    }
}

fn check_gc_thrash(analytics: Option<&Analytics>, cfg: &DoctorConfig, out: &mut Vec<Finding>) {
    let Some(analytics) = analytics else { return };
    let gc = &analytics.gc;
    if gc.runs >= cfg.gc_thrash_runs && gc.mean_reclaim_fraction < cfg.gc_thrash_reclaim {
        out.push(Finding {
            kind: "gc-thrash",
            severity: Severity::Warning,
            message: format!(
                "{} GC runs reclaimed only {:.1}% of live nodes on average — the \
                 threshold is too low or roots pin everything",
                gc.runs,
                gc.mean_reclaim_fraction * 100.0
            ),
            evidence: Json::obj()
                .field("runs", gc.runs)
                .field("nodes_reclaimed", gc.nodes_reclaimed)
                .field("mean_reclaim_fraction", gc.mean_reclaim_fraction),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdd::{GcAnalytics, GcSample, OpCacheStats, ProbeStats, VarSet};
    use obs::timeseries::TimeSeries;

    fn analytics() -> Analytics {
        Analytics {
            probe: ProbeStats {
                buckets: 16,
                entries: 8,
                occupied_buckets: 8,
                max_chain: 1,
                chain_histogram: vec![8, 8],
                expected_probes: 1.0,
            },
            cache_by_op: Vec::new(),
            gc: GcAnalytics {
                runs: 0,
                nodes_reclaimed: 0,
                mean_reclaim_fraction: 0.0,
                samples: Vec::new(),
                truncated: 0,
            },
            reorders: 0,
        }
    }

    #[test]
    fn cache_thrash_needs_traffic_and_misses() {
        let cfg = DoctorConfig::default();
        let mut a = analytics();
        a.cache_by_op.push(OpCacheStats { op: "and", lookups: 10_000, hits: 50 });
        let ops = OpStats::default();
        let mut findings = Vec::new();
        check_cache_thrash(Some(&a), &ops, &cfg, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "cache-thrash");
        assert_eq!(findings[0].severity, Severity::Warning);
        assert_eq!(findings[0].evidence.get("op").and_then(Json::as_str), Some("and"));
        // Healthy hit rate on the same traffic: silent.
        a.cache_by_op[0].hits = 5_000;
        findings.clear();
        check_cache_thrash(Some(&a), &ops, &cfg, &mut findings);
        assert!(findings.is_empty());
        // Low traffic never judged, even at 0% hits.
        a.cache_by_op[0] = OpCacheStats { op: "xor", lookups: 100, hits: 0 };
        findings.clear();
        check_cache_thrash(Some(&a), &ops, &cfg, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn shannon_storm_escalates_with_the_fraction() {
        let cfg = DoctorConfig::default();
        let mut stats = Stats { calls: 100, shannon: 10, ..Stats::default() };
        let mut findings = Vec::new();
        check_shannon_storm(&stats, &cfg, &mut findings);
        assert!(findings.is_empty(), "10% is healthy");
        stats.shannon = 30;
        check_shannon_storm(&stats, &cfg, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "shannon-storm");
        assert_eq!(findings[0].severity, Severity::Warning);
        stats.shannon = 70;
        findings.clear();
        check_shannon_storm(&stats, &cfg, &mut findings);
        assert_eq!(findings[0].severity, Severity::Error);
        // Tiny runs are never judged.
        let tiny = Stats { calls: 4, shannon: 4, ..Stats::default() };
        findings.clear();
        check_shannon_storm(&tiny, &cfg, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn unbalanced_grouping_reads_strong_steps_from_the_trace() {
        use crate::GateChoice;
        let cfg = DoctorConfig::default();
        let lopsided = |n: usize| {
            let mut xa = VarSet::new();
            xa.insert(0);
            let mut xb = VarSet::new();
            for v in 1..=n as u32 {
                xb.insert(v);
            }
            TraceEvent::new(0, Step::Strong { gate: GateChoice::Or, xa, xb })
        };
        let trace: Vec<TraceEvent> = (0..4).map(|_| lopsided(9)).collect();
        let mut findings = Vec::new();
        check_unbalanced_grouping(&trace, &cfg, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "unbalanced-grouping");
        assert_eq!(findings[0].evidence.get("worst_large").and_then(Json::as_f64), Some(9.0));
        // Balanced splits (1 vs 2) stay silent.
        let trace: Vec<TraceEvent> = (0..4).map(|_| lopsided(2)).collect();
        findings.clear();
        check_unbalanced_grouping(&trace, &cfg, &mut findings);
        assert!(findings.is_empty());
        // Too few strong steps: silent even when all are lopsided.
        let trace: Vec<TraceEvent> = (0..3).map(|_| lopsided(9)).collect();
        findings.clear();
        check_unbalanced_grouping(&trace, &cfg, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn reorder_churn_counts_rebuilds() {
        let cfg = DoctorConfig::default();
        let mut a = analytics();
        a.reorders = 2;
        let mut findings = Vec::new();
        check_reorder_churn(Some(&a), &cfg, &mut findings);
        assert!(findings.is_empty());
        a.reorders = 3;
        check_reorder_churn(Some(&a), &cfg, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "reorder-churn");
        // No analytics (telemetry off): silent.
        findings.clear();
        check_reorder_churn(None, &cfg, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn memory_cliff_requires_both_factor_and_absolute_growth() {
        let cfg = DoctorConfig::default();
        let mut ts = TimeSeries::new(16);
        let mib = 1u64 << 20;
        ts.record(0.1, "output", 100, mib, 0, mib, 0);
        ts.record(0.2, "output", 100, 8 * mib, 0, 8 * mib, 0);
        let mut findings = Vec::new();
        check_memory_cliff(&ts, &cfg, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "memory-cliff");
        assert_eq!(
            findings[0].evidence.get("to_bytes").and_then(Json::as_f64),
            Some((16 * mib) as f64)
        );
        // A 4x jump on tiny absolute numbers is not a cliff.
        let mut ts = TimeSeries::new(16);
        ts.record(0.1, "output", 100, 1000, 0, 1000, 0);
        ts.record(0.2, "output", 100, 4000, 0, 4000, 0);
        findings.clear();
        check_memory_cliff(&ts, &cfg, &mut findings);
        assert!(findings.is_empty());
        // Large absolute growth below the factor is steady growth, not a
        // cliff.
        let mut ts = TimeSeries::new(16);
        ts.record(0.1, "output", 100, 8 * mib, 0, 8 * mib, 0);
        ts.record(0.2, "output", 100, 10 * mib, 0, 10 * mib, 0);
        findings.clear();
        check_memory_cliff(&ts, &cfg, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn gc_thrash_needs_many_unproductive_runs() {
        let cfg = DoctorConfig::default();
        let mut a = analytics();
        a.gc = GcAnalytics {
            runs: 6,
            nodes_reclaimed: 30,
            mean_reclaim_fraction: 0.005,
            samples: vec![GcSample {
                nodes_before: 1000,
                freed: 5,
                cache_entries_dropped: 0,
                elapsed_ns: 100,
            }],
            truncated: 0,
        };
        let mut findings = Vec::new();
        check_gc_thrash(Some(&a), &cfg, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "gc-thrash");
        // Productive GC at the same cadence: silent.
        a.gc.mean_reclaim_fraction = 0.6;
        findings.clear();
        check_gc_thrash(Some(&a), &cfg, &mut findings);
        assert!(findings.is_empty());
        // Few runs: silent regardless of efficacy.
        a.gc.runs = 2;
        a.gc.mean_reclaim_fraction = 0.001;
        findings.clear();
        check_gc_thrash(Some(&a), &cfg, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn diagnose_pla_on_a_healthy_circuit_is_clean() {
        let pla: pla::Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
        let (outcome, report) = diagnose_pla(&pla, &Options::default(), &DoctorConfig::default());
        assert!(outcome.verified);
        assert!(!report.has_errors());
        let json = report.to_json();
        assert_eq!(json.get("schema").and_then(Json::as_str), Some(DOCTOR_SCHEMA));
        // The serialized report round-trips through the parser.
        let parsed = Json::parse(&json.render()).expect("valid JSON");
        assert!(parsed.get("findings").and_then(Json::as_arr).is_some());
        assert!(report.render().starts_with("doctor:"));
    }

    #[test]
    fn reports_sort_errors_first_and_count_by_severity() {
        let mk = |severity| Finding {
            kind: "cache-thrash",
            severity,
            message: "x".to_owned(),
            evidence: Json::obj(),
        };
        let mut report = DoctorReport { findings: vec![mk(Severity::Info), mk(Severity::Error)] };
        report.findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
        assert_eq!(report.findings[0].severity, Severity::Error);
        assert_eq!(report.counts(), (1, 0, 1));
        assert!(report.has_errors());
    }
}
