//! Decomposition tracing: a structured record of the recursion — the
//! paper's "decomposition tree" (`AddGateToDecompositionTree`), exposed
//! for inspection, debugging and documentation.
//!
//! Each [`TraceEvent`] optionally carries a [`CallCost`]: per-call wall
//! time, BDD nodes allocated, computed-cache traffic and theorem-check
//! counts, captured as deltas on the manager's counters when both
//! `Options::trace` and `Options::telemetry` are on. The [`tree`]
//! submodule reconstructs the decomposition tree from the flat event
//! stream and rolls those costs up inclusively/exclusively.

use std::fmt::Write as _;
use std::io;

use bdd::{VarId, VarSet};
use obs::json::Json;
use obs::{Event, JsonlSink, Sink as _};

use crate::GateChoice;

pub mod tree;

/// What one recursive `BiDecompose` call did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Step {
    /// Resolved from the component cache (§6).
    CacheHit {
        /// Whether the cached component was used complemented.
        complemented: bool,
    },
    /// Terminal case: a constant, literal or single gate (`FindGate`).
    Terminal {
        /// Human-readable description of the leaf (e.g. `and(x0, ¬x1)`).
        desc: String,
    },
    /// Strong bi-decomposition with the given gate and dedicated sets.
    Strong {
        /// The decomposition gate.
        gate: GateChoice,
        /// Variables dedicated to component A.
        xa: VarSet,
        /// Variables dedicated to component B.
        xb: VarSet,
    },
    /// Weak bi-decomposition (X_B empty).
    Weak {
        /// OR or AND.
        gate: GateChoice,
        /// The dedicated set of component A (a single variable in the
        /// paper's configuration).
        xa: VarSet,
    },
    /// Shannon-expansion safeguard on one variable.
    Shannon {
        /// The expanded variable.
        var: VarId,
    },
}

/// Measured cost of one recursive `BiDecompose` call, captured as deltas
/// on the manager's counters around the call. All figures are
/// *inclusive* (they cover the whole subtree rooted at the call); use
/// [`tree::DecompTree`] for exclusive (own-cost) figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CallCost {
    /// Wall-clock time of the call, nanoseconds.
    pub elapsed_ns: u64,
    /// BDD nodes constructed (`mk` calls minus unique-table hits).
    pub nodes_allocated: u64,
    /// Computed-cache lookups issued.
    pub cache_lookups: u64,
    /// Computed-cache hits among those lookups.
    pub cache_hits: u64,
    /// Theorem checks evaluated (Theorems 1/2 and weak-usefulness).
    pub theorem_checks: u64,
}

impl std::ops::Add for CallCost {
    type Output = CallCost;

    /// Component-wise sum.
    fn add(self, other: CallCost) -> CallCost {
        CallCost {
            elapsed_ns: self.elapsed_ns + other.elapsed_ns,
            nodes_allocated: self.nodes_allocated + other.nodes_allocated,
            cache_lookups: self.cache_lookups + other.cache_lookups,
            cache_hits: self.cache_hits + other.cache_hits,
            theorem_checks: self.theorem_checks + other.theorem_checks,
        }
    }
}

impl CallCost {
    /// Component-wise saturating difference (used for exclusive costs,
    /// where timer jitter could otherwise underflow).
    pub fn saturating_sub(self, other: CallCost) -> CallCost {
        CallCost {
            elapsed_ns: self.elapsed_ns.saturating_sub(other.elapsed_ns),
            nodes_allocated: self.nodes_allocated.saturating_sub(other.nodes_allocated),
            cache_lookups: self.cache_lookups.saturating_sub(other.cache_lookups),
            cache_hits: self.cache_hits.saturating_sub(other.cache_hits),
            theorem_checks: self.theorem_checks.saturating_sub(other.theorem_checks),
        }
    }

    /// The cost as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("elapsed_ns", self.elapsed_ns)
            .field("nodes_allocated", self.nodes_allocated)
            .field("cache_lookups", self.cache_lookups)
            .field("cache_hits", self.cache_hits)
            .field("theorem_checks", self.theorem_checks)
    }
}

/// One trace record: the recursion depth, the step taken, and (when
/// telemetry is on) the measured cost of the call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Recursion depth of the `BiDecompose` call (0 = a top-level call).
    pub depth: usize,
    /// What the call did.
    pub step: Step,
    /// Inclusive per-call cost; `None` unless both tracing and telemetry
    /// were enabled for the run.
    pub cost: Option<CallCost>,
}

impl TraceEvent {
    /// An event with no cost attribution (the plain-tracing shape).
    pub fn new(depth: usize, step: Step) -> Self {
        TraceEvent { depth, step, cost: None }
    }
    /// The event as a JSON object (the per-line shape of
    /// [`write_trace_jsonl`]).
    pub fn to_json(&self) -> Json {
        let base = Json::obj().field("depth", self.depth);
        let base = match &self.step {
            Step::CacheHit { complemented } => {
                base.field("step", "cache_hit").field("complemented", *complemented)
            }
            Step::Terminal { desc } => base.field("step", "terminal").field("leaf", desc.as_str()),
            Step::Strong { gate, xa, xb } => base
                .field("step", "strong")
                .field("gate", gate.name())
                .field("xa", xa.to_string())
                .field("xb", xb.to_string()),
            Step::Weak { gate, xa } => {
                base.field("step", "weak").field("gate", gate.name()).field("xa", xa.to_string())
            }
            Step::Shannon { var } => base.field("step", "shannon").field("var", *var as u64),
        };
        match &self.cost {
            Some(cost) => base.field("cost", cost.to_json()),
            None => base,
        }
    }

    /// The event wrapped as an [`obs::Event`] point, for streaming through
    /// any recorder sink.
    pub fn to_point(&self) -> Event {
        Event::Point { name: "trace".to_owned(), fields: self.to_json() }
    }
}

/// Streams a decomposition trace through an [`obs::JsonlSink`]: one
/// machine-readable line per recursive call (consumed by the `stats`
/// binary's `--trace-out`). Per-line write failures do not abort the
/// stream (sinks are observability, not control flow) but they are
/// *counted*: the returned value is the number of lines that failed to
/// write, for an `obs.sink.write_errors` counter or a run-report field.
///
/// # Errors
///
/// Propagates I/O errors from the closing flush of the writer.
pub fn write_trace_jsonl<W: io::Write>(trace: &[TraceEvent], writer: W) -> io::Result<u64> {
    let mut sink = JsonlSink::new(writer);
    let errors = sink.write_errors();
    for event in trace {
        sink.accept(&event.to_point());
    }
    sink.into_inner().flush()?;
    Ok(errors.get())
}

/// Renders a trace as an indented tree, one line per recursive call.
///
/// ```
/// use bidecomp::trace::{render_trace, Step, TraceEvent};
/// use bidecomp::GateChoice;
/// use bdd::VarSet;
///
/// let trace = vec![
///     TraceEvent::new(0, Step::Strong {
///         gate: GateChoice::Or,
///         xa: VarSet::from_iter([2u32, 3]),
///         xb: VarSet::from_iter([0u32, 1]),
///     }),
///     TraceEvent::new(1, Step::Terminal { desc: "and(x2, x3)".into() }),
///     TraceEvent::new(1, Step::Terminal { desc: "and(x0, x1)".into() }),
/// ];
/// let text = render_trace(&trace);
/// assert!(text.contains("or  XA={x2,x3} XB={x0,x1}"));
/// ```
pub fn render_trace(trace: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in trace {
        for _ in 0..event.depth {
            out.push_str("  ");
        }
        match &event.step {
            Step::CacheHit { complemented } => {
                let _ = writeln!(
                    out,
                    "cache hit{}",
                    if *complemented { " (complemented)" } else { "" }
                );
            }
            Step::Terminal { desc } => {
                let _ = writeln!(out, "leaf {desc}");
            }
            Step::Strong { gate, xa, xb } => {
                let _ = writeln!(out, "{gate:<3} XA={xa} XB={xb}");
            }
            Step::Weak { gate, xa } => {
                let _ = writeln!(out, "weak {gate} XA={xa}");
            }
            Step::Shannon { var } => {
                let _ = writeln!(out, "shannon x{var}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_indents_by_depth() {
        let trace = vec![
            TraceEvent::new(
                0,
                Step::Strong {
                    gate: GateChoice::Exor,
                    xa: VarSet::singleton(0),
                    xb: VarSet::singleton(1),
                },
            ),
            TraceEvent::new(1, Step::Terminal { desc: "x0".into() }),
            TraceEvent::new(1, Step::CacheHit { complemented: true }),
        ];
        let text = render_trace(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("exor"));
        assert!(lines[1].starts_with("  leaf x0"));
        assert!(lines[2].contains("(complemented)"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(render_trace(&[]), "");
    }

    #[test]
    fn cost_attribution_serializes_only_when_present() {
        let mut ev = TraceEvent::new(0, Step::Shannon { var: 1 });
        assert!(ev.to_json().get("cost").is_none(), "no cost field without telemetry");
        ev.cost = Some(CallCost {
            elapsed_ns: 5,
            nodes_allocated: 2,
            cache_lookups: 3,
            cache_hits: 1,
            theorem_checks: 4,
        });
        let json = ev.to_json();
        let cost = json.get("cost").expect("cost object");
        assert_eq!(cost.get("elapsed_ns").and_then(Json::as_f64), Some(5.0));
        assert_eq!(cost.get("nodes_allocated").and_then(Json::as_f64), Some(2.0));
        assert_eq!(cost.get("theorem_checks").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn call_cost_arithmetic_saturates() {
        let a = CallCost {
            elapsed_ns: 10,
            nodes_allocated: 5,
            cache_lookups: 8,
            cache_hits: 2,
            theorem_checks: 1,
        };
        let b = CallCost { elapsed_ns: 15, ..CallCost::default() };
        assert_eq!((a + b).elapsed_ns, 25);
        let d = a.saturating_sub(b);
        assert_eq!(d.elapsed_ns, 0, "timer jitter must not underflow");
        assert_eq!(d.nodes_allocated, 5);
    }

    #[test]
    fn trace_events_round_trip_through_jsonl() {
        let trace = vec![
            TraceEvent::new(
                0,
                Step::Strong {
                    gate: GateChoice::Or,
                    xa: VarSet::singleton(2),
                    xb: VarSet::singleton(0),
                },
            ),
            TraceEvent::new(1, Step::Terminal { desc: "and(x0, ¬x1)".into() }),
            TraceEvent::new(1, Step::CacheHit { complemented: true }),
            TraceEvent::new(2, Step::Shannon { var: 3 }),
        ];
        let buf = obs::SharedBuf::new();
        write_trace_jsonl(&trace, buf.clone()).expect("in-memory write");
        let contents = buf.contents();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 4);
        for (line, event) in lines.iter().zip(&trace) {
            let parsed = Json::parse(line).expect("sink output must parse");
            assert_eq!(parsed.get("type").and_then(Json::as_str), Some("point"));
            assert_eq!(parsed.get("name").and_then(Json::as_str), Some("trace"));
            let fields = parsed.get("fields").expect("payload");
            assert_eq!(fields.get("depth").and_then(Json::as_f64), Some(event.depth as f64));
        }
        // Spot-check the per-step payloads (including the non-ASCII leaf).
        let first = Json::parse(lines[0]).unwrap();
        let fields = first.get("fields").unwrap();
        assert_eq!(fields.get("step").and_then(Json::as_str), Some("strong"));
        assert_eq!(fields.get("gate").and_then(Json::as_str), Some("or"));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(
            second.get("fields").and_then(|f| f.get("leaf")).and_then(Json::as_str),
            Some("and(x0, ¬x1)")
        );
        let fourth = Json::parse(lines[3]).unwrap();
        assert_eq!(
            fourth.get("fields").and_then(|f| f.get("var")).and_then(Json::as_f64),
            Some(3.0)
        );
    }
}
