//! Decomposition tracing: a structured record of the recursion — the
//! paper's "decomposition tree" (`AddGateToDecompositionTree`), exposed
//! for inspection, debugging and documentation.

use std::fmt::Write as _;

use bdd::{VarId, VarSet};

use crate::GateChoice;

/// What one recursive `BiDecompose` call did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Step {
    /// Resolved from the component cache (§6).
    CacheHit {
        /// Whether the cached component was used complemented.
        complemented: bool,
    },
    /// Terminal case: a constant, literal or single gate (`FindGate`).
    Terminal {
        /// Human-readable description of the leaf (e.g. `and(x0, ¬x1)`).
        desc: String,
    },
    /// Strong bi-decomposition with the given gate and dedicated sets.
    Strong {
        /// The decomposition gate.
        gate: GateChoice,
        /// Variables dedicated to component A.
        xa: VarSet,
        /// Variables dedicated to component B.
        xb: VarSet,
    },
    /// Weak bi-decomposition (X_B empty).
    Weak {
        /// OR or AND.
        gate: GateChoice,
        /// The dedicated set of component A (a single variable in the
        /// paper's configuration).
        xa: VarSet,
    },
    /// Shannon-expansion safeguard on one variable.
    Shannon {
        /// The expanded variable.
        var: VarId,
    },
}

/// One trace record: the recursion depth and the step taken.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Recursion depth of the `BiDecompose` call (0 = a top-level call).
    pub depth: usize,
    /// What the call did.
    pub step: Step,
}

/// Renders a trace as an indented tree, one line per recursive call.
///
/// ```
/// use bidecomp::trace::{render_trace, Step, TraceEvent};
/// use bidecomp::GateChoice;
/// use bdd::VarSet;
///
/// let trace = vec![
///     TraceEvent { depth: 0, step: Step::Strong {
///         gate: GateChoice::Or,
///         xa: VarSet::from_iter([2u32, 3]),
///         xb: VarSet::from_iter([0u32, 1]),
///     }},
///     TraceEvent { depth: 1, step: Step::Terminal { desc: "and(x2, x3)".into() } },
///     TraceEvent { depth: 1, step: Step::Terminal { desc: "and(x0, x1)".into() } },
/// ];
/// let text = render_trace(&trace);
/// assert!(text.contains("or  XA={x2,x3} XB={x0,x1}"));
/// ```
pub fn render_trace(trace: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in trace {
        for _ in 0..event.depth {
            out.push_str("  ");
        }
        match &event.step {
            Step::CacheHit { complemented } => {
                let _ = writeln!(
                    out,
                    "cache hit{}",
                    if *complemented { " (complemented)" } else { "" }
                );
            }
            Step::Terminal { desc } => {
                let _ = writeln!(out, "leaf {desc}");
            }
            Step::Strong { gate, xa, xb } => {
                let _ = writeln!(out, "{gate:<3} XA={xa} XB={xb}");
            }
            Step::Weak { gate, xa } => {
                let _ = writeln!(out, "weak {gate} XA={xa}");
            }
            Step::Shannon { var } => {
                let _ = writeln!(out, "shannon x{var}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_indents_by_depth() {
        let trace = vec![
            TraceEvent {
                depth: 0,
                step: Step::Strong {
                    gate: GateChoice::Exor,
                    xa: VarSet::singleton(0),
                    xb: VarSet::singleton(1),
                },
            },
            TraceEvent { depth: 1, step: Step::Terminal { desc: "x0".into() } },
            TraceEvent { depth: 1, step: Step::CacheHit { complemented: true } },
        ];
        let text = render_trace(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("exor"));
        assert!(lines[1].starts_with("  leaf x0"));
        assert!(lines[2].contains("(complemented)"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(render_trace(&[]), "");
    }
}
