//! BDD-based verification of decomposition results.
//!
//! §8: "The correctness of the resulting networks has been tested using a
//! BDD-based verifier." For each primary output, the netlist's extracted
//! BDD must be compatible with the specification interval `[Q, ¬R]`.

use bdd::Bdd;
use netlist::Netlist;

use crate::Isf;

/// Verifies that every output of `netlist` implements a function
/// compatible with the corresponding specification ISF.
///
/// `isfs[k]` is the specification of output `k` (netlist output order);
/// netlist input `k` must correspond to manager variable `k` — the
/// convention used throughout this workspace.
///
/// # Panics
///
/// Panics if the number of ISFs differs from the number of netlist
/// outputs.
pub fn verify_netlist(mgr: &mut Bdd, netlist: &Netlist, isfs: &[Isf]) -> bool {
    assert_eq!(
        isfs.len(),
        netlist.outputs().len(),
        "one specification interval per netlist output required"
    );
    let bdds = netlist.to_bdds(mgr);
    bdds.iter().zip(isfs).all(|(&f, isf)| isf.contains(mgr, f))
}

/// Like [`verify_netlist`] but returns the indices of the failing outputs
/// (empty = verified).
pub fn failing_outputs(mgr: &mut Bdd, netlist: &Netlist, isfs: &[Isf]) -> Vec<usize> {
    assert_eq!(isfs.len(), netlist.outputs().len());
    let bdds = netlist.to_bdds(mgr);
    bdds.iter()
        .zip(isfs)
        .enumerate()
        .filter_map(|(k, (&f, isf))| (!isf.contains(mgr, f)).then_some(k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Gate2;

    #[test]
    fn correct_netlist_verifies() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let isf = Isf::from_csf(&mut mgr, f);
        let mut nl = Netlist::new();
        let sa = nl.add_input("a");
        let sb = nl.add_input("b");
        let g = nl.add_gate(Gate2::And, sa, sb);
        nl.add_output("f", g);
        assert!(verify_netlist(&mut mgr, &nl, &[isf]));
        assert!(failing_outputs(&mut mgr, &nl, &[isf]).is_empty());
    }

    #[test]
    fn wrong_netlist_fails() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let isf = Isf::from_csf(&mut mgr, f);
        let mut nl = Netlist::new();
        let sa = nl.add_input("a");
        let sb = nl.add_input("b");
        let g = nl.add_gate(Gate2::Or, sa, sb); // wrong gate
        nl.add_output("f", g);
        assert!(!verify_netlist(&mut mgr, &nl, &[isf]));
        assert_eq!(failing_outputs(&mut mgr, &nl, &[isf]), vec![0]);
    }

    #[test]
    fn dont_cares_admit_any_compatible_completion() {
        let mut mgr = Bdd::new(2);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let ab = mgr.and(a, b);
        let nor = mgr.nor(a, b);
        let isf = Isf::new(&mut mgr, ab, nor); // 1 on ab, 0 on ¬a¬b, else dc
                                               // Netlist computing just `a` is a valid completion.
        let mut nl = Netlist::new();
        let sa = nl.add_input("a");
        let _sb = nl.add_input("b");
        nl.add_output("f", sa);
        assert!(verify_netlist(&mut mgr, &nl, &[isf]));
    }

    #[test]
    #[should_panic(expected = "one specification interval")]
    fn arity_mismatch_panics() {
        let mut mgr = Bdd::new(1);
        let nl = Netlist::new();
        let a = mgr.var(0);
        let isf = Isf::from_csf(&mut mgr, a);
        let _ = verify_netlist(&mut mgr, &nl, &[isf]);
    }
}
