//! Component derivation — Section 4 (Theorems 3 and 4) and Table 1.
//!
//! Given a decomposable ISF and the variable sets, these formulas produce
//! the ISFs of components A and B. Component A is derived first; its
//! completed CSF `f_A` (obtained by recursive decomposition) then enters
//! the formula for component B, which lets B absorb every don't-care A
//! left unused.

use bdd::{Bdd, Func, VarSet};

use crate::Isf;

/// Theorem 3: component A of a strong OR-decomposition.
///
/// `Q_A = ∃X_B (Q · ∃X_A R)`, `R_A = ∃X_B R`.
pub fn or_component_a(mgr: &mut Bdd, isf: &Isf, xa: &VarSet, xb: &VarSet) -> Isf {
    let ca = mgr.cube(xa);
    let cb = mgr.cube(xb);
    let er_a = mgr.exists(isf.r, ca);
    let q_need = mgr.and(isf.q, er_a);
    let qa = mgr.exists(q_need, cb);
    let ra = mgr.exists(isf.r, cb);
    Isf::new_unchecked(qa, ra)
}

/// Theorem 4: component B of a strong OR-decomposition, given the chosen
/// CSF `f_a` for component A.
///
/// `Q_B = ∃X_A (Q − f_A)`, `R_B = ∃X_A R`.
pub fn or_component_b(mgr: &mut Bdd, isf: &Isf, f_a: Func, xa: &VarSet) -> Isf {
    let ca = mgr.cube(xa);
    let q_rest = mgr.diff(isf.q, f_a);
    let qb = mgr.exists(q_rest, ca);
    let rb = mgr.exists(isf.r, ca);
    Isf::new_unchecked(qb, rb)
}

/// Dual of Theorem 3: component A of a strong AND-decomposition.
///
/// `Q_A = ∃X_B Q`, `R_A = ∃X_B (R · ∃X_A Q)`.
pub fn and_component_a(mgr: &mut Bdd, isf: &Isf, xa: &VarSet, xb: &VarSet) -> Isf {
    or_component_a(mgr, &isf.complement(), xa, xb).complement()
}

/// Dual of Theorem 4: component B of a strong AND-decomposition given
/// `f_a`.
///
/// `Q_B = ∃X_A Q`, `R_B = ∃X_A (R · f_A)`.
pub fn and_component_b(mgr: &mut Bdd, isf: &Isf, f_a: Func, xa: &VarSet) -> Isf {
    let nfa = mgr.not(f_a);
    or_component_b(mgr, &isf.complement(), nfa, xa).complement()
}

/// Weak OR-decomposition, component A (Table 1, second row):
/// `Q_A = Q · ∃X_A R`, `R_A = R`. The dedicated set `X_A` stays in A's
/// support; the gain is the enlarged don't-care set.
pub fn weak_or_component_a(mgr: &mut Bdd, isf: &Isf, xa: &VarSet) -> Isf {
    let ca = mgr.cube(xa);
    let er = mgr.exists(isf.r, ca);
    let qa = mgr.and(isf.q, er);
    Isf::new_unchecked(qa, isf.r)
}

/// Weak OR-decomposition, component B: same formula as the strong case
/// (Theorem 4) — `Q_B = ∃X_A (Q − f_A)`, `R_B = ∃X_A R`.
pub fn weak_or_component_b(mgr: &mut Bdd, isf: &Isf, f_a: Func, xa: &VarSet) -> Isf {
    or_component_b(mgr, isf, f_a, xa)
}

/// Weak AND-decomposition, component A (dual of the weak OR row):
/// `Q_A = Q`, `R_A = R · ∃X_A Q`.
pub fn weak_and_component_a(mgr: &mut Bdd, isf: &Isf, xa: &VarSet) -> Isf {
    weak_or_component_a(mgr, &isf.complement(), xa).complement()
}

/// Weak AND-decomposition, component B given `f_a`:
/// `Q_B = ∃X_A Q`, `R_B = ∃X_A (R · f_A)`.
pub fn weak_and_component_b(mgr: &mut Bdd, isf: &Isf, f_a: Func, xa: &VarSet) -> Isf {
    and_component_b(mgr, isf, f_a, xa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;

    /// End-to-end sanity for one derivation: pick any compatible completion
    /// of A (we use `Q_A` itself, the minimal one), derive B, pick B's
    /// minimal completion, and verify `A Θ B` lies inside the original
    /// interval and respects the support restrictions.
    fn assert_valid_or_decomposition(mgr: &mut Bdd, isf: &Isf, xa: &VarSet, xb: &VarSet) {
        let isf_a = or_component_a(mgr, isf, xa, xb);
        assert!(mgr.disjoint(isf_a.q, isf_a.r), "component A interval non-empty");
        let fa = isf_a.q; // minimal compatible completion
        assert!(isf_a.contains(mgr, fa));
        assert!(mgr.support(fa).is_disjoint(xb), "A must not see X_B");
        let isf_b = or_component_b(mgr, isf, fa, xa);
        assert!(mgr.disjoint(isf_b.q, isf_b.r), "component B interval non-empty");
        let fb = isf_b.q;
        assert!(mgr.support(fb).is_disjoint(xa), "B must not see X_A");
        let f = mgr.or(fa, fb);
        assert!(isf.contains(mgr, f), "A + B must implement the ISF");
    }

    #[test]
    fn fig3_derivation_recovers_or_of_ands() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b);
        let cd = mgr.and(c, d);
        let f = mgr.or(ab, cd);
        let isf = Isf::from_csf(&mut mgr, f);
        let xa = VarSet::from_iter([2u32, 3]);
        let xb = VarSet::from_iter([0u32, 1]);
        assert!(check::or_decomposable(&mut mgr, &isf, &xa, &xb));
        let isf_a = or_component_a(&mut mgr, &isf, &xa, &xb);
        // For this completely specified example A is forced to be exactly c·d.
        assert_eq!(isf_a.q, cd);
        let n_cd = mgr.not(cd);
        assert_eq!(isf_a.r, n_cd);
        let isf_b = or_component_b(&mut mgr, &isf, cd, &xa);
        assert_eq!(isf_b.q, ab);
        assert_valid_or_decomposition(&mut mgr, &isf, &xa, &xb);
    }

    #[test]
    fn and_derivation_on_product_of_sums() {
        let mut mgr = Bdd::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let aorb = mgr.or(a, b);
        let cord = mgr.or(c, d);
        let f = mgr.and(aorb, cord);
        let isf = Isf::from_csf(&mut mgr, f);
        let xa = VarSet::from_iter([2u32, 3]);
        let xb = VarSet::from_iter([0u32, 1]);
        assert!(check::and_decomposable(&mut mgr, &isf, &xa, &xb));
        let isf_a = and_component_a(&mut mgr, &isf, &xa, &xb);
        assert!(mgr.disjoint(isf_a.q, isf_a.r));
        // A is forced to c + d.
        assert_eq!(isf_a.q, cord);
        let fa = isf_a.q;
        let isf_b = and_component_b(&mut mgr, &isf, fa, &xa);
        assert_eq!(isf_b.q, aorb);
        let fb = isf_b.q;
        let g = mgr.and(fa, fb);
        assert!(isf.contains(&mut mgr, g));
    }

    #[test]
    fn randomized_or_derivations_are_sound() {
        use boolfn::TruthTable;
        let mut checked = 0;
        for seed in 0..60u64 {
            let n = 5;
            let f = TruthTable::random(n, 0.5, seed);
            let care = TruthTable::random(n, 0.7, seed ^ 0xbeef);
            let qt = f.and(&care);
            let rt = f.complement().and(&care);
            let mut mgr = Bdd::new(n);
            let q = qt.to_bdd(&mut mgr);
            let r = rt.to_bdd(&mut mgr);
            let isf = Isf::new(&mut mgr, q, r);
            for (xam, xbm) in [(0b00011u32, 0b11100u32), (0b00001, 0b00110)] {
                let xa: VarSet = (0..n as u32).filter(|v| xam & (1 << v) != 0).collect();
                let xb: VarSet = (0..n as u32).filter(|v| xbm & (1 << v) != 0).collect();
                if check::or_decomposable(&mut mgr, &isf, &xa, &xb) {
                    assert_valid_or_decomposition(&mut mgr, &isf, &xa, &xb);
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "sweep must hit decomposable instances");
    }

    #[test]
    fn weak_or_derivation_increases_dont_cares_and_stays_sound() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        let isf = Isf::from_csf(&mut mgr, f);
        let xa = VarSet::singleton(2);
        assert!(check::weak_or_useful(&mut mgr, &isf, &xa));
        let isf_a = weak_or_component_a(&mut mgr, &isf, &xa);
        let dc_before = isf.dont_care(&mut mgr);
        let dc_after = isf_a.dont_care(&mut mgr);
        assert!(mgr.implies(dc_before, dc_after));
        assert_ne!(dc_before, dc_after, "weak decomposition must add don't-cares");
        // Complete A minimally, derive B, and check F = A + B.
        let fa = isf_a.q;
        let isf_b = weak_or_component_b(&mut mgr, &isf, fa, &xa);
        let fb = isf_b.q;
        assert!(mgr.support(fb).is_disjoint(&xa));
        let g = mgr.or(fa, fb);
        assert!(isf.contains(&mut mgr, g));
    }

    #[test]
    fn weak_and_derivation_is_dual() {
        let mut mgr = Bdd::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let aorb = mgr.or(a, b);
        let nc = mgr.not(c);
        let f = mgr.and(aorb, nc);
        let isf = Isf::from_csf(&mut mgr, f);
        let xa = VarSet::singleton(2);
        assert!(check::weak_and_useful(&mut mgr, &isf, &xa));
        let isf_a = weak_and_component_a(&mut mgr, &isf, &xa);
        let fa = {
            let ndc = isf_a.dont_care(&mut mgr);
            mgr.or(isf_a.q, ndc) // maximal completion
        };
        assert!(isf_a.contains(&mut mgr, fa));
        let isf_b = weak_and_component_b(&mut mgr, &isf, fa, &xa);
        let fb = {
            let ndc = isf_b.dont_care(&mut mgr);
            mgr.or(isf_b.q, ndc)
        };
        assert!(mgr.support(fb).is_disjoint(&xa));
        let g = mgr.and(fa, fb);
        assert!(isf.contains(&mut mgr, g));
    }
}
