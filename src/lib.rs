//! Umbrella crate of the BI-DECOMP reproduction: re-exports every
//! subsystem and provides cross-crate flows that combine them.
//!
//! The individual crates are usable on their own:
//!
//! | crate | role |
//! |-------|------|
//! | [`bdd`] | ROBDD engine (BuDDy substitute) |
//! | [`boolfn`] | truth tables + brute-force oracles |
//! | [`pla`] | PLA file format and cube lists |
//! | [`netlist`] | two-input gate networks, cost model, BLIF |
//! | [`atpg`] | stuck-at fault testing |
//! | [`benchmarks`] | MCNC-style workloads |
//! | [`bidecomp`] | the DAC 2001 algorithm |
//! | [`baseline`] | SIS-like and BDS-like comparators |
//! | [`mv`] | multi-valued MIN/MAX bi-decomposition (§9 future work) |
//! | [`sat`] | DPLL solver + Tseitin miters (second verification engine) |
//!
//! The [`flow`] module implements the §9 "future work" integration: test
//! pattern generation as part of the decomposition run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atpg;
pub use baseline;
pub use bdd;
pub use benchmarks;
pub use bidecomp;
pub use boolfn;
pub use mv;
pub use netlist;
pub use pla;
pub use sat;

pub mod flow {
    //! Combined flows across subsystems.

    use atpg::TestReport;
    use bidecomp::{DecompOutcome, Options};
    use pla::Pla;

    /// Result of the ATPG-integrated decomposition flow.
    #[derive(Debug)]
    pub struct TestedOutcome {
        /// The ordinary decomposition outcome (netlist, stats, verifier).
        pub outcome: DecompOutcome,
        /// Complete single-stuck-at ATPG over the produced netlist.
        pub report: TestReport,
    }

    impl TestedOutcome {
        /// Theorem 5 holds for this run: the netlist verified and every
        /// collapsed fault has a test.
        pub fn fully_testable(&self) -> bool {
            self.outcome.verified && self.report.redundant == 0
        }
    }

    /// Decomposes a PLA and generates a complete single-stuck-at test set
    /// for the result — the paper's §9 roadmap item ("a test pattern
    /// generation technique can be integrated into the decomposition
    /// algorithm with little if any increase in complexity"): the netlist
    /// arrives together with its tests.
    ///
    /// ```
    /// let pla: pla::Pla = ".i 3\n.o 1\n11- 1\n--1 1\n.e\n".parse()?;
    /// let tested = bidecomp_suite::flow::decompose_with_tests(
    ///     &pla,
    ///     &bidecomp::Options::default(),
    /// );
    /// assert!(tested.fully_testable());
    /// assert!(!tested.report.tests.is_empty());
    /// # Ok::<(), pla::ParsePlaError>(())
    /// ```
    pub fn decompose_with_tests(pla: &Pla, options: &Options) -> TestedOutcome {
        let outcome = bidecomp::decompose_pla(pla, options);
        let report = atpg::generate_tests(&outcome.netlist);
        TestedOutcome { outcome, report }
    }
}

#[cfg(test)]
mod tests {
    use super::flow;

    #[test]
    fn integrated_flow_produces_tests() {
        let pla: pla::Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
        let tested = flow::decompose_with_tests(&pla, &bidecomp::Options::default());
        assert!(tested.fully_testable());
        assert_eq!(tested.report.testable_coverage(), 1.0);
        // The tests exercise the netlist meaningfully.
        assert!(tested.report.tests.len() >= 3);
        for t in &tested.report.tests {
            assert_eq!(t.len(), 4);
        }
    }
}
