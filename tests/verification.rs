//! The §8 verification flow over the benchmark suite: every decomposed
//! netlist is accepted by the BDD verifier and by independent simulation,
//! and the BLIF output round-trips.

use bidecomp::{decompose_pla, isfs_from_pla, Options};
use netlist::Netlist;

/// Debug builds are slow; verify the suite members that stay fast.
const FAST_SUITE: &[&str] = &["9sym", "rd73", "rd84", "5xp1", "misex1", "con1", "e64", "cordic"];

fn fast_suite() -> Vec<benchmarks::Benchmark> {
    FAST_SUITE.iter().filter_map(|n| benchmarks::by_name(n)).collect()
}

#[test]
fn verifier_accepts_all_fast_benchmarks() {
    for b in fast_suite() {
        let outcome = decompose_pla(&b.pla, &Options::default());
        assert!(outcome.verified, "{}", b.name);
    }
}

#[test]
fn verifier_rejects_a_sabotaged_netlist() {
    let b = benchmarks::by_name("rd73").expect("known");
    let outcome = decompose_pla(&b.pla, &Options::default());
    // Rebuild the netlist with outputs swapped — must fail verification.
    let good = &outcome.netlist;
    let mut bad = Netlist::new();
    let mut map = std::collections::HashMap::new();
    for (idx, gate) in good.nodes().iter().enumerate() {
        let new = match gate {
            netlist::Gate::Input(name) => bad.add_input(name.clone()),
            netlist::Gate::Const(v) => bad.constant(*v),
            netlist::Gate::Not(a) => {
                let fa = map[a];
                bad.add_not(fa)
            }
            netlist::Gate::Binary(op, a, b) => {
                let (fa, fb) = (map[a], map[b]);
                bad.add_gate(*op, fa, fb)
            }
        };
        map.insert(idx as netlist::SignalId, new);
    }
    let outs: Vec<_> = good.outputs().to_vec();
    bad.add_output(outs[0].0.clone(), map[&outs[1].1]); // swapped!
    bad.add_output(outs[1].0.clone(), map[&outs[0].1]);
    bad.add_output(outs[2].0.clone(), map[&outs[2].1]);
    let mut mgr = bdd::Bdd::new(b.pla.num_inputs());
    let isfs = isfs_from_pla(&mut mgr, &b.pla);
    assert!(!bidecomp::verify::verify_netlist(&mut mgr, &bad, &isfs));
    let failing = bidecomp::verify::failing_outputs(&mut mgr, &bad, &isfs);
    assert_eq!(failing, vec![0, 1], "outputs 0 and 1 were swapped");
}

#[test]
fn simulation_agrees_with_pla_semantics() {
    for b in fast_suite() {
        let n = b.pla.num_inputs();
        if n > 16 {
            continue; // exhaustive simulation only
        }
        let outcome = decompose_pla(&b.pla, &Options::default());
        for m in (0..1u64 << n).step_by(7) {
            let vals: Vec<bool> = (0..n).map(|k| m & (1 << k) != 0).collect();
            let got = outcome.netlist.eval_all(&vals);
            for (out, &bit) in got.iter().enumerate() {
                if let Some(expected) = b.pla.eval(out, m) {
                    assert_eq!(bit, expected, "{} m={m:b} out={out}", b.name);
                }
            }
        }
    }
}

#[test]
fn blif_roundtrip_preserves_benchmark_netlists() {
    for b in fast_suite() {
        let outcome = decompose_pla(&b.pla, &Options::default());
        let text = outcome.netlist.to_blif(b.name);
        let back = Netlist::from_blif(&text).expect("parse back");
        // Spot-check equivalence by simulation on a pattern batch.
        let n = b.pla.num_inputs();
        let patterns: Vec<u64> =
            (0..n).map(|k| 0x9e3779b97f4a7c15u64.rotate_left(k as u32)).collect();
        assert_eq!(outcome.netlist.simulate(&patterns), back.simulate(&patterns), "{}", b.name);
    }
}

#[test]
fn dot_export_of_a_decomposed_component() {
    let b = benchmarks::by_name("rd73").expect("known");
    let mut dec = bidecomp::Decomposer::new(7, None);
    let isfs = isfs_from_pla(dec.manager(), &b.pla);
    let comp = dec.decompose(isfs[0]);
    let dot = dec.manager().to_dot(&[("out0", comp.func)]);
    assert!(dot.contains("digraph bdd"));
    assert!(dot.matches("shape=circle").count() >= 7, "rd73 bit 0 is parity of 7 vars");
}
