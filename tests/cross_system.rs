//! Cross-system differential tests: the Boolean decomposer, the
//! multi-valued decomposer restricted to Boolean domains, and the SAT
//! engine must all tell one consistent story.

use boolfn::TruthTable;
use mv::{decompose, MvIsf, MvTable};
use pla::{Cube, OutputValue, Pla, Trit};

fn boolean_mv_table(f: &TruthTable) -> MvTable {
    let n = f.num_vars();
    let domains = vec![2usize; n];
    MvTable::from_fn(&domains, 2, |p| {
        let m = p.iter().enumerate().fold(0u32, |acc, (i, &v)| acc | ((v as u32) << i));
        usize::from(f.get(m))
    })
}

fn pla_of(f: &TruthTable) -> Pla {
    let n = f.num_vars();
    let mut pla = Pla::new(n, 1);
    for m in f.minterms() {
        let inputs: Vec<Trit> =
            (0..n).map(|k| if m & (1 << k) != 0 { Trit::One } else { Trit::Zero }).collect();
        pla.push(Cube::new(inputs, vec![OutputValue::One]));
    }
    pla
}

#[test]
fn boolean_and_mv_decomposers_realize_the_same_functions() {
    for seed in 0..12u64 {
        let f = TruthTable::random(5, 0.5, seed);
        // Boolean path.
        let outcome = bidecomp::decompose_pla(&pla_of(&f), &bidecomp::Options::default());
        assert!(outcome.verified, "seed {seed}");
        // MV path over Boolean domains.
        let isf = MvIsf::from_table(&boolean_mv_table(&f));
        let (mv_nl, root) = decompose(&isf);
        for m in 0..1u32 << 5 {
            let vals: Vec<bool> = (0..5).map(|k| m & (1 << k) != 0).collect();
            let points: Vec<usize> = vals.iter().map(|&b| usize::from(b)).collect();
            let expected = f.get(m);
            assert_eq!(
                outcome.netlist.eval_all(&vals)[0],
                expected,
                "seed {seed} boolean path m={m:b}"
            );
            assert_eq!(mv_nl.eval(root, &points) == 1, expected, "seed {seed} mv path m={m:b}");
        }
    }
}

#[test]
fn mv_min_max_gate_counts_are_competitive_on_monotone_functions() {
    // On a monotone AND/OR structure the MV decomposer (restricted to
    // Boolean) should find the same optimal gate count as BI-DECOMP
    // (which may also use EXOR but has no use for it here).
    let f = TruthTable::from_fn(6, |m| {
        let bit = |k: u32| m & (1 << k) != 0;
        (bit(0) && bit(1)) || (bit(2) && bit(3)) || (bit(4) && bit(5))
    });
    let outcome = bidecomp::decompose_pla(&pla_of(&f), &bidecomp::Options::default());
    let isf = MvIsf::from_table(&boolean_mv_table(&f));
    let (mv_nl, root) = decompose(&isf);
    for m in 0..64u32 {
        let points: Vec<usize> = (0..6).map(|k| usize::from(m & (1 << k) != 0)).collect();
        assert_eq!(mv_nl.eval(root, &points) == 1, f.get(m));
    }
    assert_eq!(outcome.netlist.stats().gates, 5);
    assert_eq!(mv_nl.min_max_gates(), 5, "same optimal AND/OR tree");
}

#[test]
fn sat_confirms_the_bdd_verifier_on_a_suite_slice() {
    // The decomposed netlist against its own exported-PLA redecomposition:
    // two genuinely different netlists for the same function, proven
    // equivalent by the SAT miter.
    for name in ["rd73", "misex1", "con1"] {
        let b = benchmarks::by_name(name).expect("known");
        let first = bidecomp::decompose_pla(&b.pla, &bidecomp::Options::default());
        let exported = bidecomp::pla_from_netlist(&first.netlist);
        let second = bidecomp::decompose_pla(&exported, &bidecomp::Options::default());
        assert!(first.verified && second.verified, "{name}");
        assert_eq!(
            sat::tseitin::check_equivalence(&first.netlist, &second.netlist),
            None,
            "{name}: the two decompositions must be equivalent"
        );
    }
}
