//! Full-pipeline tests: PLA text → parse → decompose → BLIF → re-parse →
//! equivalence, plus baseline comparisons on the same inputs — the
//! complete §8 experimental flow in miniature.

use baseline::{bds_like, sis_like};
use bidecomp::{decompose_pla, Options};
use netlist::Netlist;
use pla::Pla;

const ADDER_PLA: &str = "\
# 3-bit ripple sum bit 2 plus carry-out, as a PLA
.i 6
.o 2
.ilb a0 a1 a2 b0 b1 b2
.ob s2 cout
.type fd
";

/// Builds the PLA of the 2 most significant outputs of a 3-bit adder by
/// enumeration (uses the text header above for labels).
fn adder_pla() -> Pla {
    let mut text = String::from(ADDER_PLA);
    for m in 0..64u32 {
        let a = m & 0b111;
        let b = (m >> 3) & 0b111;
        let sum = a + b;
        let s2 = sum & 0b100 != 0;
        let cout = sum & 0b1000 != 0;
        if !s2 && !cout {
            continue;
        }
        let ins: String = (0..6).map(|k| if m & (1 << k) != 0 { '1' } else { '0' }).collect();
        let outs = format!("{}{}", if s2 { '1' } else { '-' }, if cout { '1' } else { '-' });
        text.push_str(&format!("{ins} {outs}\n"));
    }
    text.push_str(".e\n");
    text.parse().expect("generated PLA is valid")
}

fn equivalent(a: &Netlist, b: &Netlist, num_inputs: usize) -> bool {
    let mut mgr = bdd::Bdd::new(num_inputs);
    let fa = a.to_bdds(&mut mgr);
    let fb = b.to_bdds(&mut mgr);
    fa == fb
}

#[test]
fn adder_pipeline_end_to_end() {
    let pla = adder_pla();
    assert_eq!(pla.input_labels().unwrap()[0], "a0");
    let outcome = decompose_pla(&pla, &Options::default());
    assert!(outcome.verified);
    // Output names survive into the netlist and the BLIF.
    let names: Vec<&str> = outcome.netlist.outputs().iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["s2", "cout"]);
    let blif = outcome.netlist.to_blif("adder_hi");
    assert!(blif.contains(".inputs a0 a1 a2 b0 b1 b2"));
    let back = Netlist::from_blif(&blif).expect("roundtrip");
    assert!(equivalent(&outcome.netlist, &back, 6));
    // Check the arithmetic on every input.
    for m in 0..64u32 {
        let a = m & 0b111;
        let b = (m >> 3) & 0b111;
        let sum = a + b;
        let vals: Vec<bool> = (0..6).map(|k| m & (1 << k) != 0).collect();
        let got = outcome.netlist.eval_all(&vals);
        assert_eq!(got[0], sum & 0b100 != 0, "s2 at {m:06b}");
        assert_eq!(got[1], sum & 0b1000 != 0, "cout at {m:06b}");
    }
}

#[test]
fn three_systems_same_function_different_structure() {
    let pla = adder_pla();
    let bi = decompose_pla(&pla, &Options::default());
    let sis = sis_like(&pla);
    let bds = bds_like(&pla);
    // All three implement compatible functions (the spec is completely
    // specified here, so all are equivalent).
    assert!(equivalent(&bi.netlist, &sis, 6));
    assert!(equivalent(&bi.netlist, &bds, 6));
    // The adder is EXOR-intensive: BI-DECOMP must use EXORs and come out
    // smallest.
    let (bs, ss, ds) = (bi.netlist.stats(), sis.stats(), bds.stats());
    assert!(bs.exors > 0);
    assert_eq!(ss.exors, 0);
    assert!(bs.gates <= ss.gates, "BI-DECOMP {} vs SIS-like {}", bs.gates, ss.gates);
    assert!(bs.gates <= ds.gates, "BI-DECOMP {} vs BDS-like {}", bs.gates, ds.gates);
}

#[test]
fn pla_written_and_reread_gives_identical_results() {
    // The benchmark generators emit PLA values; their textual form must
    // round-trip through the parser with identical decomposition results.
    let b = benchmarks::by_name("rd73").expect("known");
    let text = b.pla.to_string();
    let reparsed: Pla = text.parse().expect("roundtrip");
    assert_eq!(b.pla, reparsed);
    let o1 = decompose_pla(&b.pla, &Options::default());
    let o2 = decompose_pla(&reparsed, &Options::default());
    assert_eq!(o1.netlist.stats().gates, o2.netlist.stats().gates);
    assert!(equivalent(&o1.netlist, &o2.netlist, 7));
}

#[test]
fn gc_threshold_does_not_change_results() {
    let b = benchmarks::by_name("rd84").expect("known");
    let normal = decompose_pla(&b.pla, &Options::default());
    let tight = decompose_pla(&b.pla, &Options { gc_threshold: 500, ..Options::default() });
    assert!(normal.verified && tight.verified);
    assert!(equivalent(&normal.netlist, &tight.netlist, 8));
}

#[test]
fn suite_sanity_cross_system() {
    // On a slice of the suite: every system implements a function
    // compatible with the specification (don't-cares may differ).
    for name in ["rd73", "5xp1"] {
        let b = benchmarks::by_name(name).expect("known");
        let n = b.pla.num_inputs();
        let bi = decompose_pla(&b.pla, &Options::default()).netlist;
        let sis = sis_like(&b.pla);
        let bds = bds_like(&b.pla);
        for m in (0..1u64 << n).step_by(5) {
            let vals: Vec<bool> = (0..n).map(|k| m & (1 << k) != 0).collect();
            for out in 0..b.pla.num_outputs() {
                if let Some(expected) = b.pla.eval(out, m) {
                    assert_eq!(bi.eval_all(&vals)[out], expected, "{name} bi {m:b}");
                    assert_eq!(sis.eval_all(&vals)[out], expected, "{name} sis {m:b}");
                    assert_eq!(bds.eval_all(&vals)[out], expected, "{name} bds {m:b}");
                }
            }
        }
    }
}
