//! Theorem 5 end to end: netlists produced by bi-decomposition are fully
//! testable for single stuck-at faults — complete ATPG finds a test for
//! every collapsed fault and proves nothing redundant.

use bidecomp::{decompose_pla, Options};

fn assert_fully_testable(name: &str, pla: &pla::Pla, options: &Options) {
    let outcome = decompose_pla(pla, options);
    assert!(outcome.verified, "{name}: verification failed");
    let report = atpg::generate_tests(&outcome.netlist);
    assert_eq!(
        report.redundant, 0,
        "{name}: Theorem 5 violated; redundant faults: {:?}",
        report.redundant_faults
    );
    assert_eq!(report.coverage(), 1.0, "{name}");
    // The emitted tests really achieve the coverage they claim.
    let faults = atpg::collapse(&outcome.netlist, &atpg::enumerate_faults(&outcome.netlist));
    assert_eq!(
        atpg::fault_coverage(&outcome.netlist, &faults, &report.tests),
        1.0,
        "{name}: generated test set must cover all faults"
    );
}

#[test]
fn rd73_is_fully_testable() {
    let b = benchmarks::by_name("rd73").expect("known");
    assert_fully_testable("rd73", &b.pla, &Options::default());
}

#[test]
fn fivexp1_is_fully_testable() {
    let b = benchmarks::by_name("5xp1").expect("known");
    assert_fully_testable("5xp1", &b.pla, &Options::default());
}

#[test]
fn random_isfs_are_fully_testable() {
    // Don't-care-rich specifications exercise the interval paths.
    for seed in 0..6u64 {
        let f = boolfn::TruthTable::random(5, 0.5, seed);
        let care = boolfn::TruthTable::random(5, 0.6, seed ^ 0x1234);
        let q = f.and(&care);
        let r = f.complement().and(&care);
        let mut pla = pla::Pla::new(5, 1).with_type(pla::PlaType::Fr);
        for m in q.minterms() {
            let ins: String = (0..5).map(|k| if m & (1 << k) != 0 { '1' } else { '0' }).collect();
            pla.push_str(&ins, "1");
        }
        for m in r.minterms() {
            let ins: String = (0..5).map(|k| if m & (1 << k) != 0 { '1' } else { '0' }).collect();
            pla.push_str(&ins, "0");
        }
        assert_fully_testable(&format!("random-{seed}"), &pla, &Options::default());
    }
}

#[test]
fn weak_only_netlists_remain_testable() {
    // The weak path also produces non-redundant logic (the theorem covers
    // weak decompositions too).
    let b = benchmarks::by_name("rd73").expect("known");
    assert_fully_testable("rd73-weak", &b.pla, &Options::weak_only());
}

#[test]
fn test_pattern_counts_are_reasonable() {
    // Fault dropping keeps the test sets compact: far fewer tests than
    // faults.
    let b = benchmarks::by_name("rd73").expect("known");
    let outcome = decompose_pla(&b.pla, &Options::default());
    let report = atpg::generate_tests(&outcome.netlist);
    assert!(
        report.tests.len() * 3 < report.total_faults,
        "{} tests for {} faults",
        report.tests.len(),
        report.total_faults
    );
}

#[test]
fn t481_near_miss_is_repaired_by_redundancy_removal() {
    // The one suite member where our completion choices leave residual
    // redundancy: t481's decomposed netlist carries 2 undetectable faults
    // (a don't-care overlap between OR components — Theorem 5's exact
    // premises come from [8], which constrains completions more tightly
    // than this paper specifies). Classic redundancy removal repairs it.
    let b = benchmarks::by_name("t481").expect("known");
    let outcome = decompose_pla(&b.pla, &Options::default());
    assert!(outcome.verified);
    let report = atpg::generate_tests(&outcome.netlist);
    assert!(report.redundant <= 2, "regression: more redundancy than recorded");
    if report.redundant > 0 {
        // Iterative removal may expose further redundancies as constants
        // propagate, so `removed` can exceed the initial count.
        let (clean, removed) = atpg::remove_redundancies(&outcome.netlist);
        assert!(removed >= report.redundant);
        let after = atpg::generate_tests(&clean);
        assert_eq!(after.redundant, 0);
        assert!(clean.stats().gates <= outcome.netlist.stats().gates);
        // Function preserved (check through the BDD verifier).
        let mut mgr = bdd::Bdd::new(16);
        let isfs = bidecomp::isfs_from_pla(&mut mgr, &b.pla);
        assert!(bidecomp::verify::verify_netlist(&mut mgr, &clean, &isfs));
    }
}

#[test]
fn baseline_netlists_can_contain_redundancy_detector_works() {
    // Sanity for the redundancy detector itself: an absorbed term is
    // reported redundant (so a Theorem 5 pass is meaningful, not vacuous).
    let mut nl = netlist::Netlist::new();
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let ab = nl.add_gate(netlist::Gate2::And, a, b);
    let f = nl.add_gate(netlist::Gate2::Or, a, ab);
    nl.add_output("f", f);
    let report = atpg::generate_tests(&nl);
    assert!(report.redundant > 0);
}
