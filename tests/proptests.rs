//! Workspace-level property tests: random multi-output incompletely
//! specified PLAs driven through every system, with the independent
//! truth-table referee from `boolfn`.

use baseline::{bds_like, sis_like};
use bidecomp::{decompose_pla, Options};
use boolfn::TruthTable;
use pla::{Cube, OutputValue, Pla, PlaType, Trit};
use proptest::prelude::*;

const MAX_VARS: usize = 6;

/// A random multi-output ISF described by per-output (function, care) seed
/// pairs plus a PLA type.
#[derive(Debug, Clone)]
struct RandomSpec {
    num_vars: usize,
    outputs: Vec<(u64, u64)>,
    fr_type: bool,
}

fn spec_strategy() -> impl Strategy<Value = RandomSpec> {
    (
        3usize..=MAX_VARS,
        proptest::collection::vec((any::<u64>(), any::<u64>()), 1..=3),
        any::<bool>(),
    )
        .prop_map(|(num_vars, outputs, fr_type)| RandomSpec { num_vars, outputs, fr_type })
}

struct Materialized {
    pla: Pla,
    qs: Vec<TruthTable>,
    rs: Vec<TruthTable>,
}

fn materialize(spec: &RandomSpec) -> Materialized {
    let n = spec.num_vars;
    let mut qs = Vec::new();
    let mut rs = Vec::new();
    for &(fseed, cseed) in &spec.outputs {
        let f = TruthTable::random(n, 0.5, fseed);
        let care = if spec.fr_type {
            TruthTable::random(n, 0.7, cseed)
        } else {
            TruthTable::ones(n)
        };
        qs.push(f.and(&care));
        rs.push(f.complement().and(&care));
    }
    let ty = if spec.fr_type { PlaType::Fr } else { PlaType::Fd };
    let mut pla = Pla::new(n, spec.outputs.len()).with_type(ty);
    for m in 0..1u32 << n {
        let mut outs = vec![OutputValue::NotUsed; spec.outputs.len()];
        let mut any = false;
        for (k, (q, r)) in qs.iter().zip(&rs).enumerate() {
            if q.get(m) {
                outs[k] = OutputValue::One;
                any = true;
            } else if spec.fr_type && r.get(m) {
                outs[k] = OutputValue::Zero;
                any = true;
            }
        }
        if !any {
            continue;
        }
        let inputs: Vec<Trit> = (0..n)
            .map(|k| if m & (1 << k) != 0 { Trit::One } else { Trit::Zero })
            .collect();
        pla.push(Cube::new(inputs, outs));
    }
    Materialized { pla, qs, rs }
}

/// Asserts a netlist respects the on-/off-sets of every output.
fn assert_in_interval(name: &str, nl: &netlist::Netlist, m: &Materialized) {
    let n = m.pla.num_inputs();
    for minterm in 0..1u64 << n {
        let vals: Vec<bool> = (0..n).map(|k| minterm & (1 << k) != 0).collect();
        let got = nl.eval_all(&vals);
        for (k, (q, r)) in m.qs.iter().zip(&m.rs).enumerate() {
            if q.get(minterm as u32) {
                assert!(got[k], "{name}: out {k} must be 1 at {minterm:b}");
            }
            if r.get(minterm as u32) {
                assert!(!got[k], "{name}: out {k} must be 0 at {minterm:b}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bidecomp_respects_random_intervals(spec in spec_strategy()) {
        let m = materialize(&spec);
        let outcome = decompose_pla(&m.pla, &Options::default());
        prop_assert!(outcome.verified);
        assert_in_interval("bidecomp", &outcome.netlist, &m);
    }

    #[test]
    fn baselines_respect_random_intervals(spec in spec_strategy()) {
        let m = materialize(&spec);
        assert_in_interval("sis_like", &sis_like(&m.pla), &m);
        assert_in_interval("bds_like", &bds_like(&m.pla), &m);
    }

    #[test]
    fn blif_roundtrip_on_random_netlists(spec in spec_strategy()) {
        let m = materialize(&spec);
        let outcome = decompose_pla(&m.pla, &Options::default());
        let text = outcome.netlist.to_blif("random");
        let back = netlist::Netlist::from_blif(&text).expect("roundtrip");
        let n = m.pla.num_inputs();
        for minterm in 0..1u64 << n {
            let vals: Vec<bool> = (0..n).map(|k| minterm & (1 << k) != 0).collect();
            prop_assert_eq!(outcome.netlist.eval_all(&vals), back.eval_all(&vals));
        }
    }

    #[test]
    fn inverter_folding_preserves_random_netlists(spec in spec_strategy()) {
        let m = materialize(&spec);
        let outcome = decompose_pla(&m.pla, &Options::default());
        let folded = outcome.netlist.fold_inverters();
        let n = m.pla.num_inputs();
        for minterm in 0..1u64 << n {
            let vals: Vec<bool> = (0..n).map(|k| minterm & (1 << k) != 0).collect();
            prop_assert_eq!(outcome.netlist.eval_all(&vals), folded.eval_all(&vals));
        }
        // Only input inverters (which have no gate to fold into) may remain.
        for &s in &folded.live_signals() {
            if let netlist::Gate::Not(a) = folded.gate(s) {
                prop_assert!(
                    matches!(folded.gate(*a), netlist::Gate::Input(_)),
                    "all internal inverters must fold into complement gates"
                );
            }
        }
    }

    #[test]
    fn pla_text_roundtrip_random(spec in spec_strategy()) {
        let m = materialize(&spec);
        let text = m.pla.to_string();
        let back: Pla = text.parse().expect("own output must parse");
        prop_assert_eq!(&m.pla, &back);
    }

    #[test]
    fn decomposed_netlists_are_fully_testable(spec in spec_strategy()) {
        // Theorem 5 as a property over random ISFs (the strongest end-to-
        // end invariant in the paper).
        let m = materialize(&spec);
        let outcome = decompose_pla(&m.pla, &Options::default());
        let report = atpg::generate_tests(&outcome.netlist);
        prop_assert_eq!(report.redundant, 0, "redundant: {:?}", report.redundant_faults);
    }
}
