//! Workspace-level property tests: random multi-output incompletely
//! specified PLAs driven through every system, with the independent
//! truth-table referee from `boolfn`.
//!
//! Cases are generated from a seeded splitmix64 stream (the workspace
//! carries no external property-testing dependency), so failures
//! reproduce from their seed alone.

use baseline::{bds_like, sis_like};
use benchmarks::SplitMix64;
use bidecomp::{decompose_pla, Options};
use boolfn::TruthTable;
use pla::{Cube, OutputValue, Pla, PlaType, Trit};

const MAX_VARS: usize = 6;

/// Seeded random cases per property (mirrors the old proptest case count).
const CASES: u64 = 24;

/// A random multi-output ISF described by per-output (function, care) seed
/// pairs plus a PLA type.
#[derive(Debug, Clone)]
struct RandomSpec {
    num_vars: usize,
    outputs: Vec<(u64, u64)>,
    fr_type: bool,
}

fn random_spec(seed: u64) -> RandomSpec {
    let mut rng = SplitMix64::new(seed);
    let num_vars = 3 + rng.gen_range(MAX_VARS - 2); // 3..=MAX_VARS
    let num_outputs = 1 + rng.gen_range(3); // 1..=3
    let outputs = (0..num_outputs).map(|_| (rng.next_u64(), rng.next_u64())).collect();
    RandomSpec { num_vars, outputs, fr_type: rng.gen_bool(0.5) }
}

struct Materialized {
    pla: Pla,
    qs: Vec<TruthTable>,
    rs: Vec<TruthTable>,
}

fn materialize(spec: &RandomSpec) -> Materialized {
    let n = spec.num_vars;
    let mut qs = Vec::new();
    let mut rs = Vec::new();
    for &(fseed, cseed) in &spec.outputs {
        let f = TruthTable::random(n, 0.5, fseed);
        let care =
            if spec.fr_type { TruthTable::random(n, 0.7, cseed) } else { TruthTable::ones(n) };
        qs.push(f.and(&care));
        rs.push(f.complement().and(&care));
    }
    let ty = if spec.fr_type { PlaType::Fr } else { PlaType::Fd };
    let mut pla = Pla::new(n, spec.outputs.len()).with_type(ty);
    for m in 0..1u32 << n {
        let mut outs = vec![OutputValue::NotUsed; spec.outputs.len()];
        let mut any = false;
        for (k, (q, r)) in qs.iter().zip(&rs).enumerate() {
            if q.get(m) {
                outs[k] = OutputValue::One;
                any = true;
            } else if spec.fr_type && r.get(m) {
                outs[k] = OutputValue::Zero;
                any = true;
            }
        }
        if !any {
            continue;
        }
        let inputs: Vec<Trit> =
            (0..n).map(|k| if m & (1 << k) != 0 { Trit::One } else { Trit::Zero }).collect();
        pla.push(Cube::new(inputs, outs));
    }
    Materialized { pla, qs, rs }
}

/// Asserts a netlist respects the on-/off-sets of every output.
fn assert_in_interval(name: &str, nl: &netlist::Netlist, m: &Materialized) {
    let n = m.pla.num_inputs();
    for minterm in 0..1u64 << n {
        let vals: Vec<bool> = (0..n).map(|k| minterm & (1 << k) != 0).collect();
        let got = nl.eval_all(&vals);
        for (k, (q, r)) in m.qs.iter().zip(&m.rs).enumerate() {
            if q.get(minterm as u32) {
                assert!(got[k], "{name}: out {k} must be 1 at {minterm:b}");
            }
            if r.get(minterm as u32) {
                assert!(!got[k], "{name}: out {k} must be 0 at {minterm:b}");
            }
        }
    }
}

#[test]
fn bidecomp_respects_random_intervals() {
    for seed in 0..CASES {
        let m = materialize(&random_spec(seed));
        let outcome = decompose_pla(&m.pla, &Options::default());
        assert!(outcome.verified, "seed {seed}");
        assert_in_interval("bidecomp", &outcome.netlist, &m);
    }
}

#[test]
fn baselines_respect_random_intervals() {
    for seed in 0..CASES {
        let m = materialize(&random_spec(seed));
        assert_in_interval("sis_like", &sis_like(&m.pla), &m);
        assert_in_interval("bds_like", &bds_like(&m.pla), &m);
    }
}

#[test]
fn blif_roundtrip_on_random_netlists() {
    for seed in 0..CASES {
        let m = materialize(&random_spec(seed));
        let outcome = decompose_pla(&m.pla, &Options::default());
        let text = outcome.netlist.to_blif("random");
        let back = netlist::Netlist::from_blif(&text).expect("roundtrip");
        let n = m.pla.num_inputs();
        for minterm in 0..1u64 << n {
            let vals: Vec<bool> = (0..n).map(|k| minterm & (1 << k) != 0).collect();
            assert_eq!(outcome.netlist.eval_all(&vals), back.eval_all(&vals), "seed {seed}");
        }
    }
}

#[test]
fn inverter_folding_preserves_random_netlists() {
    for seed in 0..CASES {
        let m = materialize(&random_spec(seed));
        let outcome = decompose_pla(&m.pla, &Options::default());
        let folded = outcome.netlist.fold_inverters();
        let n = m.pla.num_inputs();
        for minterm in 0..1u64 << n {
            let vals: Vec<bool> = (0..n).map(|k| minterm & (1 << k) != 0).collect();
            assert_eq!(outcome.netlist.eval_all(&vals), folded.eval_all(&vals), "seed {seed}");
        }
        // Only input inverters (which have no gate to fold into) may remain.
        for &s in &folded.live_signals() {
            if let netlist::Gate::Not(a) = folded.gate(s) {
                assert!(
                    matches!(folded.gate(*a), netlist::Gate::Input(_)),
                    "seed {seed}: all internal inverters must fold into complement gates"
                );
            }
        }
    }
}

#[test]
fn pla_text_roundtrip_random() {
    for seed in 0..CASES {
        let m = materialize(&random_spec(seed));
        let text = m.pla.to_string();
        let back: Pla = text.parse().expect("own output must parse");
        assert_eq!(&m.pla, &back, "seed {seed}");
    }
}

#[test]
fn decomposed_netlists_are_fully_testable() {
    // Theorem 5 as a property over random ISFs (the strongest end-to-
    // end invariant in the paper).
    for seed in 0..CASES {
        let m = materialize(&random_spec(seed));
        let outcome = decompose_pla(&m.pla, &Options::default());
        let report = atpg::generate_tests(&outcome.netlist);
        assert_eq!(report.redundant, 0, "seed {seed}: {:?}", report.redundant_faults);
    }
}
