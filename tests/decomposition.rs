//! Cross-crate end-to-end tests: random and structured specifications
//! through the full decomposition, checked against independent oracles.

use bidecomp::{decompose_pla, isfs_from_pla, Options};
use boolfn::TruthTable;
use pla::{Cube, OutputValue, Pla, Trit};

/// Builds a single-output `fr`-type PLA from explicit on/off truth tables.
fn pla_from_tables(q: &TruthTable, r: &TruthTable) -> Pla {
    let n = q.num_vars();
    let mut pla = Pla::new(n, 1).with_type(pla::PlaType::Fr);
    for m in q.minterms() {
        pla.push(minterm_cube(n, m, OutputValue::One));
    }
    for m in r.minterms() {
        pla.push(minterm_cube(n, m, OutputValue::Zero));
    }
    pla
}

fn minterm_cube(n: usize, m: u32, value: OutputValue) -> Cube {
    let inputs = (0..n).map(|k| if m & (1 << k) != 0 { Trit::One } else { Trit::Zero }).collect();
    Cube::new(inputs, vec![value])
}

#[test]
fn random_isfs_decompose_to_compatible_netlists() {
    for seed in 0..25u64 {
        let n = 6;
        let f = TruthTable::random(n, 0.5, seed);
        let care = TruthTable::random(n, 0.7, seed ^ 0xa5a5);
        let q = f.and(&care);
        let r = f.complement().and(&care);
        let pla = pla_from_tables(&q, &r);
        let outcome = decompose_pla(&pla, &Options::default());
        assert!(outcome.verified, "seed {seed}: BDD verifier must accept");
        // Independent check through simulation against the truth tables.
        for m in 0..1u64 << n {
            let vals: Vec<bool> = (0..n).map(|k| m & (1 << k) != 0).collect();
            let got = outcome.netlist.eval_all(&vals)[0];
            if q.get(m as u32) {
                assert!(got, "seed {seed}: on-set violated at {m:b}");
            }
            if r.get(m as u32) {
                assert!(!got, "seed {seed}: off-set violated at {m:b}");
            }
        }
    }
}

#[test]
fn every_option_variant_produces_correct_netlists() {
    let variants = [
        Options::default(),
        Options { use_exor: false, ..Options::default() },
        Options { use_cache: false, ..Options::default() },
        Options { remove_inessential: false, ..Options::default() },
        Options { order_by_frequency: false, ..Options::default() },
        Options::weak_only(),
    ];
    for (vi, options) in variants.iter().enumerate() {
        for seed in 0..8u64 {
            let n = 5;
            let f = TruthTable::random(n, 0.45, seed.wrapping_mul(77).wrapping_add(vi as u64));
            let q = f.clone();
            let r = f.complement();
            let pla = pla_from_tables(&q, &r);
            let outcome = decompose_pla(&pla, options);
            assert!(outcome.verified, "variant {vi} seed {seed}");
        }
    }
}

#[test]
fn more_dont_cares_never_hurt_much() {
    // §1: "the more don't-cares, the more efficient is the algorithm".
    // Compare the fully specified function against the same function with
    // 60% of the space freed; gate count must not grow.
    let mut freed_total = 0usize;
    let mut full_total = 0usize;
    for seed in 0..10u64 {
        let n = 6;
        let f = TruthTable::random(n, 0.5, seed);
        let full = pla_from_tables(&f, &f.complement());
        let care = TruthTable::random(n, 0.4, seed ^ 0x77);
        let freed = pla_from_tables(&f.and(&care), &f.complement().and(&care));
        let g_full = decompose_pla(&full, &Options::default());
        let g_freed = decompose_pla(&freed, &Options::default());
        assert!(g_full.verified && g_freed.verified);
        full_total += g_full.netlist.stats().gates;
        freed_total += g_freed.netlist.stats().gates;
    }
    assert!(
        freed_total < full_total,
        "don't-cares must reduce total gates: {freed_total} vs {full_total}"
    );
}

#[test]
fn multi_output_pla_spec_intervals_are_respected() {
    // A 3-output fd PLA with shared structure and don't-cares.
    let text = "\
.i 5
.o 3
11--- 11-
--11- 1-1
----1 -1-
00000 --d
.e
";
    let pla: Pla = text.parse().expect("valid");
    let outcome = decompose_pla(&pla, &Options::default());
    assert!(outcome.verified);
    // Manual interval check via a fresh manager.
    let mut mgr = bdd::Bdd::new(5);
    let isfs = isfs_from_pla(&mut mgr, &pla);
    assert!(bidecomp::verify::verify_netlist(&mut mgr, &outcome.netlist, &isfs));
    assert_eq!(outcome.netlist.outputs().len(), 3);
}

#[test]
fn weak_vs_strong_netlist_quality() {
    // Strong decomposition must beat weak-only on a deeply decomposable
    // function: an 8-input disjoint OR of ANDs.
    let mut pla = Pla::new(8, 1);
    for k in 0..4 {
        let mut inputs = vec![Trit::Dc; 8];
        inputs[2 * k] = Trit::One;
        inputs[2 * k + 1] = Trit::One;
        pla.push(Cube::new(inputs, vec![OutputValue::One]));
    }
    let strong = decompose_pla(&pla, &Options::default());
    let weak = decompose_pla(&pla, &Options::weak_only());
    assert!(strong.verified && weak.verified);
    let (ss, ws) = (strong.netlist.stats(), weak.netlist.stats());
    assert_eq!(ss.gates, 7, "optimal OR-of-ANDs");
    assert!(ss.cascades <= ws.cascades);
    assert!(ss.gates <= ws.gates);
    // And the strong netlist is balanced: 7 gates in 3 levels.
    assert_eq!(ss.cascades, 3);
}

#[test]
fn decomposition_statistics_are_consistent() {
    let b = benchmarks::by_name("rd73").expect("known");
    let outcome = decompose_pla(&b.pla, &Options::default());
    let s = outcome.stats;
    assert!(s.calls > 0);
    let classified = s.cache_hits
        + s.cache_hits_complement
        + s.terminal_cases
        + s.strong_or
        + s.strong_and
        + s.strong_exor
        + s.weak
        + s.shannon;
    assert_eq!(classified, s.calls, "every call ends in exactly one class");
}

#[test]
fn paper_configuration_beats_exorless_on_symmetric_functions() {
    let b = benchmarks::by_name("rd73").expect("known");
    let with_exor = decompose_pla(&b.pla, &Options::default());
    let without = decompose_pla(&b.pla, &Options { use_exor: false, ..Options::default() });
    assert!(with_exor.verified && without.verified);
    assert!(
        with_exor.netlist.stats().gates < without.netlist.stats().gates,
        "EXOR gates must pay off on the ones-counter: {} vs {}",
        with_exor.netlist.stats().gates,
        without.netlist.stats().gates
    );
}
