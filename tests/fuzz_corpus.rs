//! Replays the committed regression corpus (`artifacts/corpus/`) through
//! the full differential harness: every minimized counterexample ever
//! found (against deliberately mutated builds) must pass on HEAD, for
//! both the operator-level oracles and the end-to-end pipeline.

use std::path::Path;

use fuzz::{corpus, replay, FuzzConfig};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("artifacts/corpus")
}

#[test]
fn committed_corpus_replays_clean() {
    let cases = corpus::load_dir(&corpus_dir()).expect("corpus directory is readable");
    assert!(
        cases.len() >= 20,
        "the committed corpus must hold at least 20 minimized cases, found {}",
        cases.len()
    );
    let report = replay(&cases, &FuzzConfig::default());
    assert_eq!(report.cases, cases.len() as u64);
    let summary: Vec<String> =
        report.failures.iter().map(|f| format!("{}: [{}] {}", f.mode, f.kind, f.detail)).collect();
    assert!(report.clean(), "corpus replay found regressions: {summary:#?}");
}

#[test]
fn corpus_files_are_canonical() {
    // Each file must round-trip bit-exactly and carry the content hash it
    // was saved under, so on-disk edits that break replayability are
    // caught here rather than silently skipped.
    for (name, pla) in corpus::load_dir(&corpus_dir()).expect("corpus directory is readable") {
        let reparsed: pla::Pla = pla.to_string().parse().expect("round trip");
        assert_eq!(reparsed, pla, "{name}: does not round-trip");
        let kind = name
            .strip_prefix("case-")
            .and_then(|rest| rest.rsplit_once('-').map(|(kind, _)| kind))
            .unwrap_or_else(|| panic!("{name}: unexpected corpus filename"));
        assert_eq!(corpus::case_filename(kind, &pla), format!("{name}.pla"), "{name}: stale hash");
    }
}
