//! Forensics golden tests: the decomposition-tree DOT export and the
//! doctor findings JSON must stay byte-stable on fixed inputs, and the
//! tree reconstruction must round-trip real traces.
//!
//! Regenerate the goldens with `BLESS=1 cargo test --test forensics`
//! after an intentional format change, and review the diff.

use bidecomp::doctor::{diagnose_pla, DoctorConfig, DOCTOR_SCHEMA};
use bidecomp::trace::tree::{render_dot_clusters, DecompTree};
use bidecomp::Options;
use obs::json::Json;
use pla::Pla;

/// Fig. 3 of the paper: f = a·b + c·d, the canonical strong-OR example.
const FIG3: &str = ".i 4\n.o 1\n.ilb a b c d\n.ob f\n11-- 1\n--11 1\n.e\n";

/// The multi-output sharing example from the driver tests: f = a·b + c,
/// g = a·b + d. The shared a·b component makes the trace exercise the
/// component cache.
const SHARED: &str = ".i 4\n.o 2\n11-- 11\n--1- 10\n---1 01\n.e\n";

fn trace_of(text: &str) -> Vec<bidecomp::trace::TraceEvent> {
    let pla: Pla = text.parse().expect("valid pla");
    // Trace on, telemetry off: no cost attribution, so the DOT output is
    // byte-deterministic.
    let outcome = bidecomp::decompose_pla(&pla, &Options { trace: true, ..Options::default() });
    assert!(outcome.verified);
    outcome.trace
}

/// Compares `actual` against the committed golden file, or rewrites the
/// golden when `BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path} (run with BLESS=1 to create): {e}"));
    assert_eq!(actual, expected, "{name} drifted — bless deliberately with BLESS=1");
}

#[test]
fn decomposition_tree_dot_is_golden() {
    let trees = vec![
        ("fig3".to_owned(), DecompTree::from_trace(&trace_of(FIG3))),
        ("shared".to_owned(), DecompTree::from_trace(&trace_of(SHARED))),
    ];
    check_golden("forensics_tree.dot", &render_dot_clusters(&trees, false));
}

#[test]
fn doctor_findings_json_is_golden() {
    let pla: Pla = FIG3.parse().expect("valid pla");
    let (outcome, report) = diagnose_pla(&pla, &Options::default(), &DoctorConfig::default());
    assert!(outcome.verified);
    let json = report.to_json().render();
    // The workspace parser must accept the doctor's output.
    let parsed = Json::parse(&json).expect("doctor JSON parses");
    assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(DOCTOR_SCHEMA));
    check_golden("forensics_doctor.json", &(json + "\n"));
}

#[test]
fn tree_reconstruction_round_trips_real_traces() {
    for text in [FIG3, SHARED] {
        let trace = trace_of(text);
        let tree = DecompTree::from_trace(&trace);
        assert_eq!(tree.len(), trace.len());
        // Flattening the tree in preorder reproduces the trace exactly
        // (depths, steps and cost slots).
        assert_eq!(tree.flatten(), trace);
        // Parent/child depths are consistent.
        for node in tree.nodes() {
            if let Some(parent) = node.parent {
                assert_eq!(tree.nodes()[parent].event.depth + 1, node.event.depth);
            }
        }
    }
}

#[test]
fn cost_attributed_traces_roll_up_in_real_runs() {
    let pla: Pla = SHARED.parse().expect("valid pla");
    let options = Options { trace: true, telemetry: true, ..Options::default() };
    let outcome = bidecomp::decompose_pla(&pla, &options);
    assert!(outcome.trace.iter().all(|e| e.cost.is_some()), "telemetry attributes every call");
    let tree = DecompTree::from_trace(&outcome.trace);
    let total = tree.total_inclusive();
    assert!(total.elapsed_ns > 0);
    // Exclusive costs partition the inclusive total.
    let excl_sum: u64 = tree.nodes().iter().map(|n| n.exclusive.elapsed_ns).sum();
    assert!(excl_sum <= total.elapsed_ns);
    // The costliest call by exclusive time is a real node.
    let hottest = tree.hottest(1);
    assert_eq!(hottest.len(), 1);
}
