//! Reproductions of the paper's worked figures and in-text examples.

use bdd::{Bdd, VarSet};
use bidecomp::{check, derive, exor, grouping, GateChoice, Isf};

/// Fig. 3 (left): the completely specified 4-variable function whose
/// Karnaugh map the paper shows, `F = OR(a·b, c·d)`.
fn fig3_left(mgr: &mut Bdd) -> Isf {
    let a = mgr.var(0);
    let b = mgr.var(1);
    let c = mgr.var(2);
    let d = mgr.var(3);
    let ab = mgr.and(a, b);
    let cd = mgr.and(c, d);
    let f = mgr.or(ab, cd);
    Isf::from_csf(mgr, f)
}

#[test]
fn fig3_left_or_bidecomposition() {
    // "This function is bi-decomposable using OR-gate with X_A = {c,d}
    // and X_B = {a,b}. The result of bi-decomposition is F = OR(a·b, c·d)."
    let mut mgr = Bdd::new(4);
    let isf = fig3_left(&mut mgr);
    let xa = VarSet::from_iter([2u32, 3]);
    let xb = VarSet::from_iter([0u32, 1]);
    assert!(check::or_decomposable(&mut mgr, &isf, &xa, &xb));
    let comp_a = derive::or_component_a(&mut mgr, &isf, &xa, &xb);
    let c = mgr.var(2);
    let d = mgr.var(3);
    let cd = mgr.and(c, d);
    assert!(comp_a.contains(&mut mgr, cd), "component A is c·d");
    let comp_b = derive::or_component_b(&mut mgr, &isf, cd, &xa);
    let a = mgr.var(0);
    let b = mgr.var(1);
    let ab = mgr.and(a, b);
    assert!(comp_b.contains(&mut mgr, ab), "component B is a·b");
}

#[test]
fn fig3_right_isf_is_or_bidecomposable_with_same_formula() {
    // "The requirement does not change for functions with don't-cares, as
    // witnessed by an ISF in Fig. 3 (right), which is OR-bi-decomposable
    // using the same formula."
    let mut mgr = Bdd::new(4);
    let csf = fig3_left(&mut mgr);
    // Punch don't-care holes into both sets.
    let a = mgr.var(0);
    let b = mgr.var(1);
    let c = mgr.var(2);
    let d = mgr.var(3);
    let hole1 = {
        // minterm a·b·¬c·¬d out of the on-set
        let nc = mgr.not(c);
        let nd = mgr.not(d);
        let t = mgr.and(a, b);
        let u = mgr.and(nc, nd);
        mgr.and(t, u)
    };
    let hole2 = {
        // minterm ¬a·b·c·¬d out of the off-set
        let na = mgr.not(a);
        let nd = mgr.not(d);
        let t = mgr.and(na, b);
        let u = mgr.and(c, nd);
        mgr.and(t, u)
    };
    let q = mgr.diff(csf.q, hole1);
    let r = mgr.diff(csf.r, hole2);
    let isf = Isf::new(&mut mgr, q, r);
    let xa = VarSet::from_iter([2u32, 3]);
    let xb = VarSet::from_iter([0u32, 1]);
    assert!(check::or_decomposable(&mut mgr, &isf, &xa, &xb));
    // The same completion F = OR(a·b, c·d) is still compatible.
    let ab = mgr.and(a, b);
    let cd = mgr.and(c, d);
    let f = mgr.or(ab, cd);
    assert!(isf.contains(&mut mgr, f));
}

#[test]
fn or_property_cell_with_zero_in_row_and_column() {
    // The Property of §3.1: F is NOT OR-bi-decomposable iff some on-set
    // cell has off-set cells in both its row and its column. Construct
    // exactly that situation and check the Theorem 1 formula agrees.
    let mut mgr = Bdd::new(4);
    // Rows = (a, b), columns = (c, d). Put a 1 at the origin and 0s in its
    // row and column.
    let a = mgr.var(0);
    let b = mgr.var(1);
    let c = mgr.var(2);
    let d = mgr.var(3);
    let na = mgr.not(a);
    let nb = mgr.not(b);
    let nc = mgr.not(c);
    let nd = mgr.not(d);
    let origin = [na, nb, nc, nd].iter().fold(bdd::Func::ONE, |acc, &l| mgr.and(acc, l));
    // Same row (same a,b), different column: a 0 cell.
    let row_zero = {
        let t = mgr.and(na, nb);
        let u = mgr.and(c, d);
        mgr.and(t, u)
    };
    // Same column, different row: another 0 cell.
    let col_zero = {
        let t = mgr.and(a, b);
        let u = mgr.and(nc, nd);
        mgr.and(t, u)
    };
    let q = origin;
    let r = mgr.or(row_zero, col_zero);
    let isf = Isf::new(&mut mgr, q, r);
    let xa = VarSet::from_iter([0u32, 1]);
    let xb = VarSet::from_iter([2u32, 3]);
    assert!(
        !check::or_decomposable(&mut mgr, &isf, &xa, &xb),
        "a 1-cell with 0s in both row and column blocks OR-decomposition"
    );
    // Removing either zero restores decomposability.
    let isf_row_only = Isf::new(&mut mgr, q, row_zero);
    assert!(check::or_decomposable(&mut mgr, &isf_row_only, &xa, &xb));
    let isf_col_only = Isf::new(&mut mgr, q, col_zero);
    assert!(check::or_decomposable(&mut mgr, &isf_col_only, &xa, &xb));
}

#[test]
fn fig1_weak_decomposition_increases_dont_cares() {
    // §2: "The advantage, however, consists in increasing the number of
    // don't-cares of component A." Weak decomposition of a 5-input
    // function that is not strongly decomposable.
    let mut mgr = Bdd::new(5);
    // maj(a,b,c) + d·e is strongly decomposable; use a majority-of-5-ish
    // blocker instead: the 5-input majority.
    let vars: Vec<_> = (0..5).map(|v| mgr.var(v)).collect();
    let mut f = bdd::Func::ZERO;
    for m in 0..32u32 {
        if m.count_ones() >= 3 {
            let mut cube = bdd::Func::ONE;
            for (v, &x) in vars.iter().enumerate() {
                let lit = if m & (1 << v) != 0 { x } else { mgr.not(x) };
                cube = mgr.and(cube, lit);
            }
            f = mgr.or(f, cube);
        }
    }
    let isf = Isf::from_csf(&mut mgr, f);
    let support = isf.support(&mgr);
    assert_eq!(support.len(), 5);
    // No strong grouping exists for majority.
    for gate in [GateChoice::Or, GateChoice::And, GateChoice::Exor] {
        assert!(grouping::find_initial_grouping(&mut mgr, &isf, &support, gate).is_none());
    }
    // But a weak grouping does, and it strictly grows the don't-care set.
    let (gate, xa) = grouping::group_variables_weak(&mut mgr, &isf, &support).expect("weak exists");
    let comp_a = match gate {
        GateChoice::Or => derive::weak_or_component_a(&mut mgr, &isf, &xa),
        _ => derive::weak_and_component_a(&mut mgr, &isf, &xa),
    };
    let dc_before = isf.dont_care(&mut mgr);
    let dc_after = comp_a.dont_care(&mut mgr);
    assert!(dc_before.is_zero());
    assert!(!dc_after.is_zero(), "weak decomposition must add don't-cares");
    assert_eq!(
        comp_a.support(&mgr).len(),
        5,
        "weak component A may still see all five inputs (Fig. 1 right)"
    );
}

#[test]
fn fig4_exor_check_derives_components() {
    // CheckExorBiDecomp on a function with common variables:
    // F = (a·c) ⊕ (b + c) with X_A = {a}, X_B = {b}, X_C = {c}.
    let mut mgr = Bdd::new(3);
    let a = mgr.var(0);
    let b = mgr.var(1);
    let c = mgr.var(2);
    let ac = mgr.and(a, c);
    let borc = mgr.or(b, c);
    let f = mgr.xor(ac, borc);
    let isf = Isf::from_csf(&mut mgr, f);
    let xa = VarSet::singleton(0);
    let xb = VarSet::singleton(1);
    let comps =
        exor::check_exor_bidecomp(&mut mgr, &isf, &xa, &xb).expect("decomposable by construction");
    // Components must avoid the other side's dedicated variable.
    assert!(!mgr.support(comps.a.q).contains(1));
    assert!(!mgr.support(comps.b.q).contains(0));
    // Minimal completions recompose into the interval.
    let g = mgr.xor(comps.a.q, comps.b.q);
    assert!(isf.contains(&mut mgr, g));
}

#[test]
fn theorem5_claim_on_fig3() {
    // The Fig. 3 netlist produced by the full algorithm is 100% testable.
    let pla: pla::Pla = ".i 4\n.o 1\n11-- 1\n--11 1\n.e\n".parse().expect("valid");
    let outcome = bidecomp::decompose_pla(&pla, &bidecomp::Options::default());
    assert!(outcome.verified);
    let report = atpg::generate_tests(&outcome.netlist);
    assert_eq!(report.redundant, 0);
    assert_eq!(report.coverage(), 1.0);
}
