//! The paper's headline workloads: totally symmetric functions are
//! EXOR-intensive, and bi-decomposition crushes their two-level covers.
//!
//! Run with: `cargo run --release --example symmetric_functions`

use baseline::sis_like;
use bidecomp::{decompose_pla, Options};

fn main() {
    println!("Symmetric functions: BI-DECOMP vs a two-level cover\n");
    println!(
        "{:8} {:>5} | {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "name", "ins", "SIS gts", "SIS lvl", "BI gts", "BI exor", "BI lvl"
    );
    for name in ["9sym", "rd73", "rd84"] {
        let b = benchmarks::by_name(name).expect("known benchmark");
        let sis = sis_like(&b.pla).stats();
        let outcome = decompose_pla(&b.pla, &Options::default());
        assert!(outcome.verified);
        let bi = outcome.netlist.stats();
        println!(
            "{:8} {:>5} | {:>7} {:>7} | {:>7} {:>7} {:>7}",
            name, bi.inputs, sis.gates, sis.cascades, bi.gates, bi.exors, bi.cascades
        );
    }
    println!("\nThe EXOR share is the story: ones-counters and symmetry");
    println!("checks decompose into balanced EXOR trees that two-level");
    println!("logic cannot express compactly (paper §8, 9sym and 16Sym8 rows).");
}
