//! Two independent verification engines on one decomposition: the paper's
//! BDD-based verifier (§8) and a SAT miter — and what happens when a
//! netlist is wrong.
//!
//! Run with: `cargo run --release --example equivalence_checking`

use netlist::{Gate, Gate2, Netlist};
use sat::tseitin::check_equivalence;

fn main() {
    let b = benchmarks::by_name("rd73").expect("known benchmark");
    let outcome = bidecomp::decompose_pla(&b.pla, &bidecomp::Options::default());
    println!("rd73 decomposed: {}", outcome.netlist.summary());
    println!("BDD verifier accepted: {}", outcome.verified);

    // Second opinion: fold inverters (a real transformation) and prove the
    // result equivalent with the SAT miter.
    let folded = outcome.netlist.fold_inverters();
    match check_equivalence(&outcome.netlist, &folded) {
        None => println!("SAT miter: folded netlist proven equivalent (UNSAT)"),
        Some(cex) => println!("SAT miter: DIFFERS at {cex:?} — a bug!"),
    }

    // Now sabotage one gate and watch both engines catch it.
    let mut bad = Netlist::new();
    let mut map = std::collections::HashMap::new();
    let mut flipped = false;
    for (idx, gate) in outcome.netlist.nodes().iter().enumerate() {
        let new = match gate {
            Gate::Input(n) => bad.add_input(n.clone()),
            Gate::Const(v) => bad.constant(*v),
            Gate::Not(a) => {
                let fa = map[a];
                bad.add_not(fa)
            }
            Gate::Binary(op, a, b) => {
                let (fa, fb) = (map[a], map[b]);
                let op = if !flipped && *op == Gate2::Xor {
                    flipped = true;
                    Gate2::Xnor // one flipped gate deep inside
                } else {
                    *op
                };
                bad.add_gate(op, fa, fb)
            }
        };
        map.insert(idx as netlist::SignalId, new);
    }
    for (name, s) in outcome.netlist.outputs() {
        bad.add_output(name.clone(), map[s]);
    }
    match check_equivalence(&outcome.netlist, &bad) {
        None => println!("sabotage NOT caught — impossible"),
        Some(cex) => {
            println!("\none XOR flipped to XNOR; SAT counterexample: {cex:?}");
            println!(
                "  good outputs: {:?}\n  bad outputs:  {:?}",
                outcome.netlist.eval_all(&cex),
                bad.eval_all(&cex)
            );
        }
    }
}
