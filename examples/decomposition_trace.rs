//! Watch the algorithm work: a traced decomposition printed as the
//! paper's decomposition tree, plus DOT exports of the netlist.
//!
//! Run with: `cargo run --example decomposition_trace`

use bidecomp::trace::render_trace;
use bidecomp::{isfs_from_pla, Decomposer, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A function with all three gate types in its optimal decomposition:
    // F = (a·b) ⊕ (c + d), built through the Decomposer API.
    let mut dec = Decomposer::with_options(
        4,
        Some(&["a".into(), "b".into(), "c".into(), "d".into()]),
        Options { trace: true, ..Options::default() },
    );
    let isf = {
        let mgr = dec.manager();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b);
        let cd = mgr.or(c, d);
        let f = mgr.xor(ab, cd);
        bidecomp::Isf::from_csf(mgr, f)
    };
    let comp = dec.decompose(isf);
    dec.add_output("f", comp);
    println!("decomposing F = (a·b) ⊕ (c + d)\n");
    println!("decomposition tree:");
    println!("{}", render_trace(&dec.take_trace()));
    let netlist = dec.into_netlist();
    println!("netlist: {}", netlist.summary());
    println!("\ngate histogram:");
    let mut entries: Vec<_> = netlist.gate_histogram().into_iter().collect();
    entries.sort_by_key(|(op, _)| op.name());
    for (op, count) in entries {
        println!("  {op}: {count}");
    }
    println!("\nGraphviz (pipe into `dot -Tpng`):\n{}", netlist.to_dot("traced"));
    // Also demonstrate the PLA-driver path with an EXOR-rich benchmark.
    let b = benchmarks::by_name("rd73").expect("known");
    let mut dec = Decomposer::with_options(
        b.pla.num_inputs(),
        None,
        Options { trace: true, ..Options::default() },
    );
    let isfs = isfs_from_pla(dec.manager(), &b.pla);
    let comp = dec.decompose(isfs[0]);
    dec.add_output("rd73_bit0", comp);
    println!("rd73 output 0 (parity of 7 inputs) decomposition tree:");
    println!("{}", render_trace(&dec.take_trace()));
    Ok(())
}
