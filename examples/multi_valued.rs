//! The paper's closing future-work item, §9: "generalization of the
//! algorithm for multi-valued logic with potential applications in
//! datamining". Decomposes multi-valued interval specifications into
//! MIN/MAX/unary networks.
//!
//! Run with: `cargo run --example multi_valued`

use mv::{decompose_with_options, MvIsf, MvOptions, MvTable};

fn main() {
    // A ternary "grade combiner": overall = max(min(q1, q2), bonus),
    // where q1, q2 are ternary quality scores and bonus ∈ {0, 1, 2}.
    let f = MvTable::from_fn(&[3, 3, 3], 3, |p| (p[0].min(p[1])).max(p[2]));
    let isf = MvIsf::from_table(&f);
    let (nl, root, stats) = decompose_with_options(&isf, &MvOptions::default());
    println!("grade combiner: max(min(q1, q2), bonus) over ternary values");
    println!(
        "  {} MIN/MAX gates, {} unary literals; calls: {}, min/max splits: {}/{}",
        nl.min_max_gates(),
        nl.unary_count(),
        stats.calls,
        stats.strong_min,
        stats.strong_max
    );
    for p in [[0usize, 2, 1], [2, 2, 0], [1, 0, 0]] {
        println!("  f{p:?} = {}", nl.eval(root, &p));
    }

    // The MV parity analogue resists MIN/MAX splitting and falls back to
    // the multi-valued Shannon expansion.
    let g = MvTable::from_fn(&[3, 3], 3, |p| (p[0] + p[1]) % 3);
    let gisf = MvIsf::from_table(&g);
    let (gnl, groot, gstats) = decompose_with_options(&gisf, &MvOptions::default());
    println!("\nmodular sum (x0 + x1) mod 3:");
    println!(
        "  {} MIN/MAX gates, {} unary literals, {} Shannon expansions",
        gnl.min_max_gates(),
        gnl.unary_count(),
        gstats.shannon
    );
    assert_eq!(gnl.eval(groot, &[2, 2]), 1);

    // Intervals (the data-mining use case): only a handful of training
    // points are pinned; everything else is free — the network collapses.
    let lo = MvTable::from_fn(&[3, 3, 3], 3, |p| if p == [2, 2, 2] { 2 } else { 0 });
    let hi = MvTable::from_fn(&[3, 3, 3], 3, |p| if p == [0, 0, 0] { 0 } else { 2 });
    let sparse = MvIsf::new(lo, hi);
    let (snl, sroot, _) = decompose_with_options(&sparse, &MvOptions::default());
    println!("\nsparse training data (2 pinned points of 27):");
    println!("  {} MIN/MAX gates suffice", snl.min_max_gates());
    assert_eq!(snl.eval(sroot, &[2, 2, 2]), 2);
    assert_eq!(snl.eval(sroot, &[0, 0, 0]), 0);
}
